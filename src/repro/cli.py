"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``train``      — collect data and train the hybrid model for an app,
* ``run``        — deploy a manager against a load and report the episode
  (``--fault-profile`` injects crashes / stragglers / telemetry faults),
* ``sweep``      — the Figure 11 protocol: managers x loads comparison,
* ``resilience`` — fault profiles x managers sweep with recovery metrics,
* ``explain``    — LIME-style tier/resource attribution for a model,
* ``bench``      — fast-vs-reference micro-benchmarks: the per-decision
  scoring path (``BENCH_decision.json``) or, with ``--training``, the
  model training path (``BENCH_training.json``).
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--app",
        choices=("social_network", "hotel_reservation"),
        default="social_network",
        help="application to manage",
    )
    parser.add_argument("--budget", default=None,
                        help="pipeline budget: small / medium / large")
    parser.add_argument("--seed", type=int, default=0)


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan episodes out over N worker processes "
             "(0 = one per CPU; default: serial)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sinan (ASPLOS'21) reproduction pipeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="collect data and train the model")
    _add_common(train)
    _add_jobs(train)
    train.add_argument("--no-cache", action="store_true",
                       help="retrain even if a cached model exists "
                            "(the fresh model still refreshes the cache)")

    from repro.sim.faults import FAULT_PROFILES

    managers = ("sinan", "autoscale-opt", "autoscale-cons", "powerchief",
                "static")

    run = sub.add_parser("run", help="run one manager/load episode")
    _add_common(run)
    run.add_argument("--manager", default="sinan", choices=managers)
    run.add_argument("--users", type=float, default=250)
    run.add_argument("--duration", type=int, default=150)
    run.add_argument("--fault-profile", default=None,
                     choices=sorted(FAULT_PROFILES),
                     help="inject a named fault profile into the episode")

    sweep = sub.add_parser("sweep", help="Figure 11 comparison sweep")
    _add_common(sweep)
    _add_jobs(sweep)
    sweep.add_argument("--duration", type=int, default=150)
    sweep.add_argument(
        "--managers", default="sinan,autoscale-opt,autoscale-cons,powerchief"
    )

    resilience = sub.add_parser(
        "resilience", help="fault profiles x managers resilience sweep"
    )
    _add_common(resilience)
    _add_jobs(resilience)
    resilience.add_argument("--users", type=float, default=250)
    resilience.add_argument("--duration", type=int, default=120)
    resilience.add_argument(
        "--profiles", default="crash-storm,telemetry-dropout",
        help="comma-separated fault profile names "
             f"(available: {','.join(sorted(FAULT_PROFILES))})",
    )
    resilience.add_argument(
        "--managers", default="sinan,autoscale-cons,static",
        help="comma-separated manager names",
    )

    explain = sub.add_parser("explain", help="attribute tail latency to tiers")
    _add_common(explain)
    explain.add_argument("--tier", default=None,
                         help="also rank this tier's resource channels")

    bench = sub.add_parser(
        "bench", help="benchmark the per-decision scoring or training path"
    )
    _add_common(bench)
    bench.add_argument("--training", action="store_true",
                       help="benchmark model training (histogram trees, "
                            "im2col CNN) instead of the decision path")
    bench.add_argument("--candidates", default="16,64,128",
                       help="comma-separated candidate batch sizes")
    bench.add_argument("--window", type=int, default=5,
                       help="telemetry window length (n_timesteps)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timing repetitions, min is kept "
                            "(default: 30 decision / 2 training)")
    bench.add_argument("--trees", type=int, default=None,
                       help="boosted-tree ensemble size "
                            "(default: 300 decision / 400 training)")
    bench.add_argument("--epochs", type=int, default=5,
                       help="CNN training epochs (--training only)")
    bench.add_argument("--samples", type=int, default=1536,
                       help="training dataset rows (--training only)")
    bench.add_argument("--intervals", type=int, default=25,
                       help="scheduler-replay decision intervals")
    bench.add_argument("--output", default=None,
                       help="result JSON path ('' to skip writing; default "
                            "BENCH_decision.json / BENCH_training.json)")
    return parser


def _make_manager(name: str, predictor, spec, graph):
    from repro.harness.pipeline import make_manager

    return make_manager(name, graph, spec.qos, predictor)


def cmd_train(args) -> int:
    from repro.harness.pipeline import get_trained_predictor

    # --no-cache skips only the cache *read*: the model is retrained
    # from scratch and the fresh result still refreshes the disk cache.
    predictor = get_trained_predictor(
        args.app, args.budget, seed=args.seed,
        read_cache=not args.no_cache, jobs=args.jobs,
    )
    report = predictor.report
    print(f"trained {args.app}: {report.n_train} train samples")
    print(f"  CNN val RMSE: {report.rmse_val:.1f} ms")
    print(f"  BT val accuracy: {report.bt_accuracy_val:.3f} "
          f"(FP {report.bt_false_pos_val:.3f}, FN {report.bt_false_neg_val:.3f}, "
          f"{report.bt_trees} trees)")
    return 0


def cmd_run(args) -> int:
    from repro.harness.experiment import run_episode
    from repro.harness.pipeline import app_spec, get_trained_predictor, make_cluster
    from repro.harness.resilience import run_resilience_episode

    spec = app_spec(args.app)
    graph = spec.graph_factory()
    predictor = None
    if args.manager == "sinan":
        predictor = get_trained_predictor(args.app, args.budget, seed=args.seed)
    manager = _make_manager(args.manager, predictor, spec, graph)
    cluster = make_cluster(graph, args.users, seed=args.seed,
                           fault_profile=args.fault_profile)
    warmup = min(30, args.duration // 4)
    if args.fault_profile:
        result = run_resilience_episode(
            manager, cluster, args.duration, spec.qos, warmup=warmup,
        )
    else:
        result = run_episode(manager, cluster, args.duration, spec.qos,
                             warmup=warmup)
    print(f"{manager.name} @ {args.users:g} users for {args.duration}s:")
    print(f"  mean CPU: {result.mean_total_cpu:.1f} cores "
          f"(max {result.max_total_cpu:.1f})")
    print(f"  P(meet QoS): {result.qos_fraction:.3f} "
          f"(QoS = {spec.qos.latency_ms:.0f} ms p99)")
    if args.fault_profile:
        print(f"  faults: {result.n_faults} injected "
              f"({args.fault_profile}), mean recovery "
              f"{result.mean_recovery:.1f} intervals, telemetry "
              f"{result.dropped_intervals} dropped / "
              f"{result.corrupted_intervals} corrupted")
        if result.mispredictions is not None:
            print(f"  safety: {result.mispredictions} mispredictions, "
                  f"{result.fallbacks} max-alloc fallbacks "
                  f"({result.predictor_failures} predictor failures), "
                  f"trusted={result.trusted}")
    return 0


def cmd_resilience(args) -> int:
    from repro.harness.pipeline import get_trained_predictor
    from repro.harness.resilience import (
        format_resilience_report,
        sweep_resilience,
    )

    profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]
    names = [n.strip() for n in args.managers.split(",") if n.strip()]
    predictor = None
    if "sinan" in names:
        predictor = get_trained_predictor(
            args.app, args.budget, seed=args.seed, jobs=args.jobs
        )
    results = sweep_resilience(
        args.app, profiles, names,
        users=args.users, duration=args.duration, seed=args.seed,
        warmup=min(30, args.duration // 4), predictor=predictor,
        jobs=args.jobs,
    )
    print(format_resilience_report(results))
    return 0


def _sweep_cell_episode(app, manager_name, users, seed, duration, predictor):
    """One (manager, load) cell of the Figure 11 sweep — picklable worker."""
    from repro.harness.experiment import run_episode
    from repro.harness.pipeline import app_spec, make_cluster

    spec = app_spec(app)
    graph = spec.graph_factory()
    manager = _make_manager(manager_name, predictor, spec, graph)
    cluster = make_cluster(graph, users, seed=seed)
    return run_episode(manager, cluster, duration, spec.qos,
                       warmup=min(30, duration // 4))


def cmd_sweep(args) -> int:
    from repro.harness.parallel import EpisodeTask, run_episodes
    from repro.harness.pipeline import app_spec, get_trained_predictor
    from repro.harness.reporting import format_table

    spec = app_spec(args.app)
    names = [n.strip() for n in args.managers.split(",") if n.strip()]
    predictor = None
    if "sinan" in names:
        predictor = get_trained_predictor(
            args.app, args.budget, seed=args.seed, jobs=args.jobs
        )

    # The cluster seed depends only on the load, so every manager faces
    # the same workload draw at each user count (a paired comparison).
    tasks = []
    for users in spec.fig11_loads:
        for name in names:
            tasks.append(EpisodeTask(
                index=len(tasks),
                label=f"{name}@{users:g}",
                fn=_sweep_cell_episode,
                kwargs=dict(
                    app=args.app,
                    manager_name=name,
                    users=float(users),
                    seed=args.seed * 997 + int(users),
                    duration=args.duration,
                    predictor=predictor if name == "sinan" else None,
                ),
            ))
    start = time.perf_counter()
    summary = run_episodes(tasks, jobs=args.jobs)
    elapsed = time.perf_counter() - start

    rows = []
    it = iter(summary.outcomes)
    for users in spec.fig11_loads:
        row = [f"{users:g}"]
        for _name in names:
            outcome = next(it)
            if outcome.ok:
                result = outcome.result
                row.append(f"{result.mean_total_cpu:.0f}/{result.qos_fraction:.2f}")
            else:
                row.append("ERR")
        rows.append(row)
    print(format_table(
        ["Users"] + names, rows,
        title=f"{args.app}: mean CPU / P(meet QoS) per manager",
    ))
    print(f"{len(tasks)} episodes in {elapsed:.1f}s "
          f"(jobs={summary.jobs}, {len(summary.failures)} failed)")
    return 1 if len(summary.failures) == len(tasks) else 0


def cmd_explain(args) -> int:
    from repro.core.interpret import LimeExplainer
    from repro.harness.pipeline import (
        collect_training_data, app_spec, get_trained_predictor,
    )
    from repro.harness.reporting import format_table

    spec = app_spec(args.app)
    predictor = get_trained_predictor(args.app, args.budget, seed=args.seed)
    dataset = collect_training_data(
        spec.graph_factory(), "small", seed=args.seed + 7
    )
    explainer = LimeExplainer(predictor, seed=args.seed)
    tiers = explainer.explain_tiers(dataset, top_k=5)
    print(format_table(
        ["Rank", "Tier", "Weight"],
        [[i + 1, a.name, f"{a.weight:+.1f}"] for i, a in enumerate(tiers)],
        title="Top-5 latency-critical tiers",
    ))
    if args.tier:
        resources = explainer.explain_resources(dataset, tier=args.tier, top_k=3)
        print(format_table(
            ["Rank", "Resource", "Weight"],
            [[i + 1, a.name, f"{a.weight:+.1f}"]
             for i, a in enumerate(resources)],
            title=f"Critical resources of {args.tier}",
        ))
    return 0


def cmd_bench(args) -> int:
    from repro.harness.bench import BenchConfig, format_bench, run_bench
    from repro.harness.pipeline import resolve_budget

    small = resolve_budget(args.budget).name == "small"
    if args.training:
        return _cmd_bench_training(args, small)

    counts = tuple(int(c) for c in args.candidates.split(",") if c.strip())
    repeats = args.repeats if args.repeats is not None else 30
    trees = args.trees if args.trees is not None else 300
    intervals = args.intervals
    if small:
        # CI smoke: keep the run to a few seconds; equivalence checks
        # still run at full strength, only the timing repeats shrink.
        repeats = min(repeats, 8)
        trees = min(trees, 150)
        intervals = min(intervals, 10)
    output = args.output if args.output is not None else "BENCH_decision.json"
    results = run_bench(BenchConfig(
        app=args.app,
        candidate_counts=counts,
        n_timesteps=args.window,
        repeats=repeats,
        seed=args.seed,
        n_trees=trees,
        decision_intervals=intervals,
        output=output,
    ))
    print(format_bench(results))
    if output:
        print(f"wrote {output}")
    ok = all(r["bitwise_equal"] for r in results["components"])
    ok = ok and results["scheduler"]["identical_traces"]
    return 0 if ok else 1


def _cmd_bench_training(args, small: bool) -> int:
    from repro.harness.bench import (
        TrainingBenchConfig,
        format_training_bench,
        run_training_bench,
    )

    samples = args.samples
    trees = args.trees if args.trees is not None else 400
    repeats = args.repeats if args.repeats is not None else 2
    if small:
        # CI smoke: shrink the dataset and ensemble so the three timed
        # fits finish in well under a minute; the fast-vs-reference
        # equivalence checks are unaffected by the sizes.
        samples = min(samples, 768)
        trees = min(trees, 200)
        repeats = 1
    output = args.output if args.output is not None else "BENCH_training.json"
    results = run_training_bench(TrainingBenchConfig(
        app=args.app,
        n_samples=samples,
        n_timesteps=args.window,
        n_trees=trees,
        cnn_epochs=args.epochs,
        seed=args.seed,
        repeats=repeats,
        output=output,
    ))
    print(format_training_bench(results))
    if output:
        print(f"wrote {output}")
    return 0 if results["equivalent"] else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)
    # Surface the harness's per-episode progress/timing lines on stderr.
    logging.basicConfig(
        stream=sys.stderr, level=logging.INFO, format="%(message)s"
    )
    handlers = {
        "train": cmd_train,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "resilience": cmd_resilience,
        "explain": cmd_explain,
        "bench": cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
