"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``train``      — collect data and train the hybrid model for an app,
* ``run``        — deploy a manager against a load and report the episode
  (``--fault-profile`` injects crashes / stragglers / telemetry faults;
  ``--continuous`` turns on the Sinan continuous-learning loop),
* ``retrain``    — the end-to-end drift scenario: a capacity regression
  invalidates the deploy-time model, the drift detector fires, a
  challenger is fine-tuned in the background, shadowed, and promoted;
  reports post-promotion QoS against a frozen incumbent on the same
  seeded episode,
* ``sweep``      — the Figure 11 protocol: managers x loads comparison,
* ``resilience`` — fault profiles x managers sweep with recovery metrics,
* ``multitenant`` — N apps sharing one finite cluster: per-tenant Sinan
  schedulers under credit-based arbitration, compared against
  equal-capacity static partitioning (exit 1 if credit loses the
  aggregate-QoS-at-equal-CPU comparison),
* ``explain``    — LIME-style tier/resource attribution for a model,
* ``bench``      — fast-vs-reference micro-benchmarks: the per-decision
  scoring path (``BENCH_decision.json``), with ``--training`` the
  model training path (``BENCH_training.json``), with ``--sim`` the
  batched-tick simulation core (``BENCH_sim.json``), or with
  ``--sweep`` the fan-out layer — warm worker pool + one-time model
  broadcast vs cold per-task pickling (``BENCH_sweep.json``),
* ``audit``      — inspect a decision audit log written by
  ``run --audit-out`` (table overview, or ``--interval`` for one
  decision's full explanation).

``run`` and ``resilience`` grow observability exports (see
:mod:`repro.obs`): ``--trace`` writes a Chrome/Perfetto-loadable trace
(or JSONL with a ``.jsonl`` suffix), ``--metrics-out`` a Prometheus
text (or ``.json``) metrics dump, ``--audit-out`` the per-decision
audit JSONL.  Without these flags observability stays off and episodes
are bitwise-identical to pre-instrumentation runs.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--app",
        choices=("social_network", "hotel_reservation", "media_service"),
        default="social_network",
        help="application to manage",
    )
    parser.add_argument("--budget", default=None,
                        help="pipeline budget: small / medium / large")
    parser.add_argument("--seed", type=int, default=0)


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan episodes out over N worker processes "
             "(0 = one per CPU; default: $REPRO_JOBS, else serial). "
             "Fanned-out calls share a warm worker pool that broadcasts "
             "the model once (REPRO_WARM_POOL=0 restores cold pools)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a trace of the episode: Chrome trace_event JSON "
             "(chrome://tracing / Perfetto), or JSONL when PATH ends "
             "in .jsonl",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write episode metrics: Prometheus text format, or JSON "
             "when PATH ends in .json",
    )
    parser.add_argument(
        "--audit-out", default=None, metavar="PATH",
        help="write the scheduler decision audit log as JSONL "
             "(inspect with 'repro audit PATH')",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=1, metavar="K",
        help="trace every K-th interval/request (default 1 = all)",
    )


def _make_cli_recorder(args):
    """Build an ActiveRecorder for whichever artifacts were requested,
    or ``None`` when observability should stay off entirely."""
    if not (args.trace or args.metrics_out or args.audit_out):
        return None
    from repro.obs import ActiveRecorder, AuditLog, MetricsRegistry, Tracer

    return ActiveRecorder(
        metrics=MetricsRegistry() if args.metrics_out else None,
        tracer=Tracer(sample_every=max(args.trace_sample, 1))
        if args.trace else None,
        audit_log=AuditLog() if args.audit_out else None,
        all_pillars=False,
    )


def _write_obs_artifacts(args, recorder) -> None:
    if recorder is None:
        return
    if args.trace:
        recorder.tracer.write(args.trace)
        print(f"wrote trace: {args.trace} ({len(recorder.tracer)} spans)")
    if args.metrics_out:
        recorder.metrics.write(args.metrics_out)
        print(f"wrote metrics: {args.metrics_out}")
    if args.audit_out:
        recorder.audit_log.write_jsonl(args.audit_out)
        print(f"wrote audit log: {args.audit_out} "
              f"({len(recorder.audit_log)} decisions)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sinan (ASPLOS'21) reproduction pipeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="collect data and train the model")
    _add_common(train)
    _add_jobs(train)
    train.add_argument("--no-cache", action="store_true",
                       help="retrain even if a cached model exists "
                            "(the fresh model still refreshes the cache)")

    from repro.sim.faults import FAULT_PROFILES

    managers = ("sinan", "autoscale-opt", "autoscale-cons", "powerchief",
                "static")

    run = sub.add_parser("run", help="run one manager/load episode")
    _add_common(run)
    run.add_argument("--manager", default="sinan", choices=managers)
    run.add_argument("--users", type=float, default=250)
    run.add_argument("--duration", type=int, default=150)
    run.add_argument("--fault-profile", default=None,
                     choices=sorted(FAULT_PROFILES),
                     help="inject a named fault profile into the episode")
    run.add_argument("--continuous", action="store_true",
                     help="wrap the manager in the continuous-learning "
                          "loop: drift detection, background retraining, "
                          "shadow promotion (sinan only)")
    _add_obs(run)

    retrain = sub.add_parser(
        "retrain",
        help="end-to-end drift scenario: detect, retrain, shadow, promote",
    )
    _add_common(retrain)
    _add_jobs(retrain)
    retrain.add_argument("--users", type=float, default=250)
    retrain.add_argument("--duration", type=int, default=240)
    retrain.add_argument("--drift-start", type=float, default=60.0,
                         help="episode time (s) the capacity regression "
                              "begins")
    retrain.add_argument("--drift-ramp", type=float, default=30.0,
                         help="seconds over which capacity ramps down")
    retrain.add_argument("--drift-capacity", type=float, default=0.55,
                         help="final capacity fraction after the drift")
    retrain.add_argument("--registry", default=None, metavar="DIR",
                         help="persist model versions and the manifest "
                              "to DIR (default: in-memory only)")
    retrain.add_argument("--require-promotion", action="store_true",
                         help="exit non-zero unless a challenger was "
                              "promoted during the episode")
    _add_obs(retrain)

    sweep = sub.add_parser("sweep", help="Figure 11 comparison sweep")
    _add_common(sweep)
    _add_jobs(sweep)
    sweep.add_argument("--duration", type=int, default=150)
    sweep.add_argument(
        "--managers", default="sinan,autoscale-opt,autoscale-cons,powerchief"
    )

    resilience = sub.add_parser(
        "resilience", help="fault profiles x managers resilience sweep"
    )
    _add_common(resilience)
    _add_jobs(resilience)
    resilience.add_argument("--users", type=float, default=250)
    resilience.add_argument("--duration", type=int, default=120)
    resilience.add_argument(
        "--profiles", default="crash-storm,telemetry-dropout",
        help="comma-separated fault profile names "
             f"(available: {','.join(sorted(FAULT_PROFILES))})",
    )
    resilience.add_argument(
        "--managers", default="sinan,autoscale-cons,static",
        help="comma-separated manager names",
    )
    resilience.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write harness metrics (episode counts/failures/durations): "
             "Prometheus text, or JSON when PATH ends in .json",
    )

    multitenant = sub.add_parser(
        "multitenant",
        help="N tenants sharing one cluster: credit arbitration vs "
             "equal static partitions",
    )
    multitenant.add_argument("--budget", default=None,
                             help="pipeline budget: small / medium / large")
    multitenant.add_argument("--seed", type=int, default=0)
    multitenant.add_argument("--seeds", type=int, default=1, metavar="N",
                             help="paired (credit, static) episode seeds")
    multitenant.add_argument("--cluster-cpu", type=float, default=240.0,
                             help="shared cluster CPU budget (cores)")
    multitenant.add_argument("--duration", type=int, default=160)
    multitenant.add_argument("--manager", default="sinan",
                             choices=("sinan", "autoscale-opt",
                                      "autoscale-cons", "powerchief"),
                             help="per-tenant scheduler in the credit arm "
                                  "(the static arm always uses static "
                                  "provisioning)")
    _add_jobs(multitenant)
    _add_obs(multitenant)

    explain = sub.add_parser("explain", help="attribute tail latency to tiers")
    _add_common(explain)
    explain.add_argument("--tier", default=None,
                         help="also rank this tier's resource channels")

    bench = sub.add_parser(
        "bench",
        help="benchmark the per-decision scoring, training, or "
             "simulation path",
    )
    _add_common(bench)
    bench.add_argument("--sim", action="store_true",
                       help="benchmark the batched-tick simulation core "
                            "(fast vs reference interval path, "
                            "BENCH_sim.json)")
    bench.add_argument("--training", action="store_true",
                       help="benchmark model training (histogram trees, "
                            "im2col CNN) instead of the decision path")
    bench.add_argument("--sweep", action="store_true",
                       help="benchmark the fan-out layer (warm worker "
                            "pool + model broadcast vs cold per-task "
                            "pickling, BENCH_sweep.json)")
    bench.add_argument("--episodes", type=int, default=None,
                       help="[--sweep] episodes in the timed collection "
                            "sweep (default 32; budget small: 12)")
    bench.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="[--sweep] pool workers for the timed sweeps "
                            "(default 0 = one per CPU)")
    bench.add_argument("--episode", action="store_true",
                       help="benchmark the end-to-end episode loop "
                            "(Sinan-attached fluid episodes + event-engine "
                            "runs, fast vs reference, BENCH_episode.json)")
    bench.add_argument("--candidates", default="16,64,128",
                       help="comma-separated candidate batch sizes")
    bench.add_argument("--window", type=int, default=5,
                       help="telemetry window length (n_timesteps)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timing repetitions, min is kept "
                            "(default: 30 decision / 2 training / 3 sim)")
    bench.add_argument("--trees", type=int, default=None,
                       help="boosted-tree ensemble size "
                            "(default: 300 decision / 400 training)")
    bench.add_argument("--epochs", type=int, default=5,
                       help="CNN training epochs (--training only)")
    bench.add_argument("--samples", type=int, default=1536,
                       help="training dataset rows (--training only)")
    bench.add_argument("--intervals", type=int, default=None,
                       help="scheduler-replay decision intervals, or timed "
                            "episode intervals with --sim "
                            "(default: 25 decision / 300 sim)")
    bench.add_argument("--output", default=None,
                       help="result JSON path ('' to skip writing; relative "
                            "paths anchor to the repo root; default "
                            "BENCH_decision.json / BENCH_training.json / "
                            "BENCH_sim.json)")

    audit = sub.add_parser(
        "audit", help="inspect a decision audit log (from run --audit-out)"
    )
    audit.add_argument("file", help="audit JSONL file to read")
    audit.add_argument("--interval", type=int, default=None, metavar="N",
                       help="explain the decision at interval N in full "
                            "(default: one-line-per-decision table)")
    audit.add_argument("--qos", type=float, default=None, metavar="MS",
                       help="QoS target in ms, to annotate violations")
    audit.add_argument("--last", type=int, default=None, metavar="K",
                       help="limit the table to the last K decisions")
    return parser


def _make_manager(name: str, predictor, spec, graph):
    from repro.harness.pipeline import make_manager

    return make_manager(name, graph, spec.qos, predictor)


def cmd_train(args) -> int:
    from repro.harness.pipeline import get_trained_predictor

    # --no-cache skips only the cache *read*: the model is retrained
    # from scratch and the fresh result still refreshes the disk cache.
    predictor = get_trained_predictor(
        args.app, args.budget, seed=args.seed,
        read_cache=not args.no_cache, jobs=args.jobs,
    )
    report = predictor.report
    print(f"trained {args.app}: {report.n_train} train samples")
    print(f"  CNN val RMSE: {report.rmse_val:.1f} ms")
    print(f"  BT val accuracy: {report.bt_accuracy_val:.3f} "
          f"(FP {report.bt_false_pos_val:.3f}, FN {report.bt_false_neg_val:.3f}, "
          f"{report.bt_trees} trees)")
    return 0


def cmd_run(args) -> int:
    from repro.harness.experiment import run_episode
    from repro.harness.pipeline import app_spec, get_trained_predictor, make_cluster
    from repro.harness.resilience import run_resilience_episode

    spec = app_spec(args.app)
    graph = spec.graph_factory()
    predictor = None
    if args.manager == "sinan":
        predictor = get_trained_predictor(args.app, args.budget, seed=args.seed)
    if args.continuous:
        if args.manager != "sinan":
            print("--continuous requires --manager sinan", file=sys.stderr)
            return 2
        from repro.core.retrain import ContinuousSinanManager
        from repro.harness.continuous import BoundaryCollector

        manager = ContinuousSinanManager(
            predictor, spec.qos,
            collect=BoundaryCollector(
                graph, spec.qos,
                loads=(args.users * 0.6, args.users, args.users * 1.5),
            ),
            graph=graph,
        )
    else:
        manager = _make_manager(args.manager, predictor, spec, graph)
    cluster = make_cluster(graph, args.users, seed=args.seed,
                           fault_profile=args.fault_profile)
    warmup = min(30, args.duration // 4)
    recorder = _make_cli_recorder(args)
    if args.fault_profile:
        result = run_resilience_episode(
            manager, cluster, args.duration, spec.qos, warmup=warmup,
            recorder=recorder,
        )
    else:
        result = run_episode(manager, cluster, args.duration, spec.qos,
                             warmup=warmup, recorder=recorder)
    print(f"{manager.name} @ {args.users:g} users for {args.duration}s:")
    print(f"  mean CPU: {result.mean_total_cpu:.1f} cores "
          f"(max {result.max_total_cpu:.1f})")
    print(f"  P(meet QoS): {result.qos_fraction:.3f} "
          f"(QoS = {spec.qos.latency_ms:.0f} ms p99)")
    if args.fault_profile:
        print(f"  faults: {result.n_faults} injected "
              f"({args.fault_profile}), mean recovery "
              f"{result.mean_recovery:.1f} intervals, telemetry "
              f"{result.dropped_intervals} dropped / "
              f"{result.corrupted_intervals} corrupted")
        if result.mispredictions is not None:
            print(f"  safety: {result.mispredictions} mispredictions, "
                  f"{result.fallbacks} max-alloc fallbacks "
                  f"({result.predictor_failures} predictor failures), "
                  f"trusted={result.trusted}")
    if args.continuous:
        print(f"  continuous: {len(manager.detector.signals)} drift "
              f"signals, {manager.retrains} retrains, "
              f"{manager.promotions} promotions, "
              f"final state {manager.state} "
              f"(model v{manager.incumbent_version} live)")
    _write_obs_artifacts(args, recorder)
    return 0


def cmd_retrain(args) -> int:
    from repro.core.retrain import ModelRegistry
    from repro.harness.continuous import (
        BoundaryCollector,
        format_drift_scenario,
        run_drift_scenario,
    )
    from repro.harness.pipeline import (
        app_spec,
        get_trained_predictor,
        resolve_budget,
    )
    from repro.sim.behaviors import CapacityDrift

    spec = app_spec(args.app)
    graph = spec.graph_factory()
    predictor = get_trained_predictor(
        args.app, args.budget, seed=args.seed, jobs=args.jobs
    )
    drift = CapacityDrift(
        start=args.drift_start, ramp=args.drift_ramp,
        final_capacity=args.drift_capacity,
    )
    loads = (args.users * 0.6, args.users, args.users * 1.5)
    seconds_per_load = 60
    if resolve_budget(args.budget).name == "small":
        # CI smoke: two loads and shorter sweeps keep the background
        # collection to a few seconds without changing the protocol.
        loads = (args.users, args.users * 1.5)
        seconds_per_load = 40
    collect = BoundaryCollector(
        graph, spec.qos, capacity=args.drift_capacity,
        loads=loads, seconds_per_load=seconds_per_load, jobs=args.jobs,
    )
    registry = ModelRegistry(args.registry) if args.registry else None
    recorder = _make_cli_recorder(args)
    result = run_drift_scenario(
        predictor, graph, spec.qos,
        users=args.users, duration=args.duration, seed=args.seed,
        drift=drift, collect=collect, registry=registry,
        warmup=min(30, args.duration // 4), recorder=recorder,
    )
    print(format_drift_scenario(result))
    if args.registry:
        print(f"model registry: {args.registry} "
              f"(active version {registry.active})")
    _write_obs_artifacts(args, recorder)
    if args.require_promotion and result.continuous.promotions < 1:
        print("no challenger was promoted", file=sys.stderr)
        return 1
    return 0


def cmd_resilience(args) -> int:
    from repro.harness.pipeline import get_trained_predictor
    from repro.harness.resilience import (
        format_resilience_report,
        sweep_resilience,
    )

    profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]
    names = [n.strip() for n in args.managers.split(",") if n.strip()]
    predictor = None
    if "sinan" in names:
        predictor = get_trained_predictor(
            args.app, args.budget, seed=args.seed, jobs=args.jobs
        )
    recorder = None
    if args.metrics_out:
        from repro.obs import ActiveRecorder, MetricsRegistry

        recorder = ActiveRecorder(
            metrics=MetricsRegistry(), all_pillars=False
        )
    results = sweep_resilience(
        args.app, profiles, names,
        users=args.users, duration=args.duration, seed=args.seed,
        warmup=min(30, args.duration // 4), predictor=predictor,
        jobs=args.jobs, recorder=recorder,
    )
    print(format_resilience_report(results))
    if recorder is not None:
        recorder.metrics.write(args.metrics_out)
        print(f"wrote metrics: {args.metrics_out}")
    return 0


def _sweep_cell_episode(app, manager_name, users, seed, duration, predictor):
    """One (manager, load) cell of the Figure 11 sweep — picklable worker."""
    from repro.harness.experiment import run_episode
    from repro.harness.pipeline import app_spec, make_cluster

    spec = app_spec(app)
    graph = spec.graph_factory()
    manager = _make_manager(manager_name, predictor, spec, graph)
    cluster = make_cluster(graph, users, seed=seed)
    return run_episode(manager, cluster, duration, spec.qos,
                       warmup=min(30, duration // 4))


def cmd_sweep(args) -> int:
    from repro.harness.parallel import EpisodeTask, run_episodes
    from repro.harness.pipeline import app_spec, get_trained_predictor
    from repro.harness.reporting import format_table

    spec = app_spec(args.app)
    names = [n.strip() for n in args.managers.split(",") if n.strip()]
    predictor = None
    if "sinan" in names:
        predictor = get_trained_predictor(
            args.app, args.budget, seed=args.seed, jobs=args.jobs
        )

    # The cluster seed depends only on the load, so every manager faces
    # the same workload draw at each user count (a paired comparison).
    tasks = []
    for users in spec.fig11_loads:
        for name in names:
            tasks.append(EpisodeTask(
                index=len(tasks),
                label=f"{name}@{users:g}",
                fn=_sweep_cell_episode,
                kwargs=dict(
                    app=args.app,
                    manager_name=name,
                    users=float(users),
                    seed=args.seed * 997 + int(users),
                    duration=args.duration,
                    predictor=predictor if name == "sinan" else None,
                ),
            ))
    start = time.perf_counter()
    summary = run_episodes(tasks, jobs=args.jobs)
    elapsed = time.perf_counter() - start

    rows = []
    it = iter(summary.outcomes)
    for users in spec.fig11_loads:
        row = [f"{users:g}"]
        for _name in names:
            outcome = next(it)
            if outcome.ok:
                result = outcome.result
                row.append(f"{result.mean_total_cpu:.0f}/{result.qos_fraction:.2f}")
            else:
                row.append("ERR")
        rows.append(row)
    print(format_table(
        ["Users"] + names, rows,
        title=f"{args.app}: mean CPU / P(meet QoS) per manager",
    ))
    print(f"{len(tasks)} episodes in {elapsed:.1f}s "
          f"(jobs={summary.jobs}, {len(summary.failures)} failed)")
    return 1 if len(summary.failures) == len(tasks) else 0


def cmd_multitenant(args) -> int:
    from repro.harness.multitenant import (
        ARMS,
        default_tenant_specs,
        format_multitenant_report,
        run_multitenant_episode,
        sweep_multitenant,
    )
    from repro.harness.pipeline import get_trained_predictor

    specs = default_tenant_specs(manager=args.manager)
    predictors = {}
    if args.manager == "sinan":
        predictors = {
            spec.app: get_trained_predictor(
                spec.app, args.budget, jobs=args.jobs
            )
            for spec in specs
        }
    seeds = [args.seed + 1009 * k for k in range(max(args.seeds, 1))]
    recorder = _make_cli_recorder(args)
    if recorder is not None:
        # Obs artifacts need in-process episodes (the recorder cannot
        # cross worker boundaries); only the credit arm is instrumented
        # so the metrics/audit export is not a two-arm mixture.
        results = []
        for s in seeds:
            for arm in ARMS:
                results.append(run_multitenant_episode(
                    specs, args.cluster_cpu, args.duration, seed=s,
                    arbiter=arm, predictors=predictors,
                    pipeline_budget=args.budget,
                    recorder=recorder if arm == "credit" else None,
                ))
    else:
        results = sweep_multitenant(
            specs, args.cluster_cpu, args.duration, seeds=seeds,
            predictors=predictors, pipeline_budget=args.budget,
            jobs=args.jobs,
        )
    print(format_multitenant_report(results))

    credit = [r for r in results if r.arbiter == "credit"]
    static = [r for r in results if r.arbiter == "static"]
    credit_qos = float(np.mean([r.aggregate_qos_fraction for r in credit]))
    static_qos = float(np.mean([r.aggregate_qos_fraction for r in static]))
    credit_cpu = float(np.mean([r.mean_cluster_cpu for r in credit]))
    static_cpu = float(np.mean([r.mean_cluster_cpu for r in static]))
    contended = float(np.mean([r.contended_fraction for r in credit]))
    ok = credit_qos + 1e-9 >= static_qos and credit_cpu <= static_cpu + 1e-6
    print(f"credit vs static: P(QoS) {credit_qos:.3f} vs {static_qos:.3f}, "
          f"mean cluster CPU {credit_cpu:.1f} vs {static_cpu:.1f} cores "
          f"(budget {args.cluster_cpu:g}, contended "
          f"{contended:.0%} of intervals) -> "
          f"{'OK' if ok else 'REGRESSION'}")
    _write_obs_artifacts(args, recorder)
    return 0 if ok else 1


def cmd_explain(args) -> int:
    from repro.core.interpret import LimeExplainer
    from repro.harness.pipeline import (
        collect_training_data, app_spec, get_trained_predictor,
    )
    from repro.harness.reporting import format_table

    spec = app_spec(args.app)
    predictor = get_trained_predictor(args.app, args.budget, seed=args.seed)
    dataset = collect_training_data(
        spec.graph_factory(), "small", seed=args.seed + 7
    )
    explainer = LimeExplainer(predictor, seed=args.seed)
    tiers = explainer.explain_tiers(dataset, top_k=5)
    print(format_table(
        ["Rank", "Tier", "Weight"],
        [[i + 1, a.name, f"{a.weight:+.1f}"] for i, a in enumerate(tiers)],
        title="Top-5 latency-critical tiers",
    ))
    if args.tier:
        resources = explainer.explain_resources(dataset, tier=args.tier, top_k=3)
        print(format_table(
            ["Rank", "Resource", "Weight"],
            [[i + 1, a.name, f"{a.weight:+.1f}"]
             for i, a in enumerate(resources)],
            title=f"Critical resources of {args.tier}",
        ))
    return 0


def cmd_audit(args) -> int:
    from repro.obs import AuditLog, explain, format_audit_table

    log = AuditLog.read_jsonl(args.file)
    records = log.records()
    if not records:
        print(f"{args.file}: empty audit log")
        return 1
    if args.interval is not None:
        record = log.find(args.interval)
        if record is None:
            intervals = f"{records[0].interval}..{records[-1].interval}"
            print(f"{args.file}: no decision recorded for interval "
                  f"{args.interval} (log covers {intervals})")
            return 1
        print(explain(record, qos_ms=args.qos))
        return 0
    if args.last is not None and args.last > 0:
        records = records[-args.last:]
    print(format_audit_table(records))
    from repro.obs import AuditRecord

    decisions = [r for r in records if isinstance(r, AuditRecord)]
    fallbacks = sum(1 for r in decisions if r.fallback_reason is not None)
    markers = len(records) - len(decisions)
    extra = f", {markers} model/shadow markers" if markers else ""
    print(f"{len(decisions)} decisions ({fallbacks} on safety/fallback "
          f"paths{extra}); 'repro audit {args.file} --interval N' "
          f"explains one")
    return 0


def cmd_bench(args) -> int:
    from repro.harness.bench import BenchConfig, format_bench, run_bench
    from repro.harness.pipeline import resolve_budget

    small = resolve_budget(args.budget).name == "small"
    if args.training:
        return _cmd_bench_training(args, small)
    if args.sim:
        return _cmd_bench_sim(args, small)
    if args.episode:
        return _cmd_bench_episode(args, small)
    if args.sweep:
        return _cmd_bench_sweep(args, small)

    counts = tuple(int(c) for c in args.candidates.split(",") if c.strip())
    repeats = args.repeats if args.repeats is not None else 30
    trees = args.trees if args.trees is not None else 300
    intervals = args.intervals if args.intervals is not None else 25
    if small:
        # CI smoke: keep the run to a few seconds; equivalence checks
        # still run at full strength, only the timing repeats shrink.
        repeats = min(repeats, 8)
        trees = min(trees, 150)
        intervals = min(intervals, 10)
    output = args.output if args.output is not None else "BENCH_decision.json"
    results = run_bench(BenchConfig(
        app=args.app,
        candidate_counts=counts,
        n_timesteps=args.window,
        repeats=repeats,
        seed=args.seed,
        n_trees=trees,
        decision_intervals=intervals,
        output=output,
    ))
    print(format_bench(results))
    if output:
        from repro.harness.bench import resolve_output

        print(f"wrote {resolve_output(output)}")
    ok = all(r["bitwise_equal"] for r in results["components"])
    ok = ok and results["scheduler"]["identical_traces"]
    return 0 if ok else 1


def _cmd_bench_sim(args, small: bool) -> int:
    from repro.harness.bench import (
        SimBenchConfig,
        format_sim_bench,
        run_sim_bench,
    )

    repeats = args.repeats if args.repeats is not None else 3
    intervals = args.intervals if args.intervals is not None else 300
    if small:
        # CI smoke: fewer timed intervals/repeats; the bitwise
        # equivalence scenarios still run at full strength.
        intervals = min(intervals, 120)
        repeats = min(repeats, 2)
    output = args.output if args.output is not None else "BENCH_sim.json"
    results = run_sim_bench(SimBenchConfig(
        app=args.app,
        intervals=intervals,
        repeats=repeats,
        seed=args.seed,
        output=output,
    ))
    print(format_sim_bench(results))
    if output:
        from repro.harness.bench import resolve_output

        print(f"wrote {resolve_output(output)}")
    return 0 if results["equivalence"]["all"] else 1


def _cmd_bench_episode(args, small: bool) -> int:
    from repro.harness.bench import (
        EpisodeBenchConfig,
        format_episode_bench,
        run_episode_bench,
    )

    repeats = args.repeats if args.repeats is not None else 3
    intervals = args.intervals if args.intervals is not None else 25
    component_repeats = 30
    decide_repeats = 30
    equivalence_intervals = 12
    event_repeats = 4
    if small:
        # CI smoke: fewer timed repeats/intervals.  The equivalence
        # episodes and event-engine runs are full-strength — their cost
        # is seconds and they are the actual gate.
        repeats = min(repeats, 2)
        intervals = min(intervals, 12)
        component_repeats = 8
        decide_repeats = 10
        event_repeats = 3
        equivalence_intervals = 8
    output = args.output if args.output is not None else "BENCH_episode.json"
    results = run_episode_bench(EpisodeBenchConfig(
        app=args.app,
        decision_intervals=intervals,
        repeats=repeats,
        seed=args.seed,
        n_timesteps=args.window,
        component_repeats=component_repeats,
        decide_repeats=decide_repeats,
        equivalence_intervals=equivalence_intervals,
        event_repeats=event_repeats,
        output=output,
    ))
    print(format_episode_bench(results))
    if output:
        from repro.harness.bench import resolve_output

        print(f"wrote {resolve_output(output)}")
    return 0 if results["equivalent"] else 1


def _cmd_bench_sweep(args, small: bool) -> int:
    from repro.harness.bench import (
        SweepBenchConfig,
        format_sweep_bench,
        run_sweep_bench,
    )

    episodes = args.episodes if args.episodes is not None else 32
    jobs = args.jobs if args.jobs is not None else 0
    seconds = 12
    trees = args.trees if args.trees is not None else 300
    equivalence_episodes = 3
    if small:
        # CI smoke: fewer/shorter timed episodes.  The payload
        # measurement and bitwise equivalence gates are full-strength —
        # they are cheap and they are the actual contract.
        episodes = min(episodes, 12)
        seconds = 8
        trees = min(trees, 150)
        equivalence_episodes = 2
    output = args.output if args.output is not None else "BENCH_sweep.json"
    results = run_sweep_bench(SweepBenchConfig(
        app=args.app,
        episodes=episodes,
        seconds=seconds,
        jobs=jobs,
        seed=args.seed,
        n_trees=trees,
        n_timesteps=args.window,
        equivalence_episodes=equivalence_episodes,
        output=output,
    ))
    print(format_sweep_bench(results))
    if output:
        from repro.harness.bench import resolve_output

        print(f"wrote {resolve_output(output)}")
    return 0 if results["equivalent"] else 1


def _cmd_bench_training(args, small: bool) -> int:
    from repro.harness.bench import (
        TrainingBenchConfig,
        format_training_bench,
        run_training_bench,
    )

    samples = args.samples
    trees = args.trees if args.trees is not None else 400
    repeats = args.repeats if args.repeats is not None else 2
    if small:
        # CI smoke: shrink the dataset and ensemble so the three timed
        # fits finish in well under a minute; the fast-vs-reference
        # equivalence checks are unaffected by the sizes.
        samples = min(samples, 768)
        trees = min(trees, 200)
        repeats = 1
    output = args.output if args.output is not None else "BENCH_training.json"
    results = run_training_bench(TrainingBenchConfig(
        app=args.app,
        n_samples=samples,
        n_timesteps=args.window,
        n_trees=trees,
        cnn_epochs=args.epochs,
        seed=args.seed,
        repeats=repeats,
        output=output,
    ))
    print(format_training_bench(results))
    if output:
        from repro.harness.bench import resolve_output

        print(f"wrote {resolve_output(output)}")
    return 0 if results["equivalent"] else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)
    # Surface the harness's per-episode progress/timing lines on stderr.
    logging.basicConfig(
        stream=sys.stderr, level=logging.INFO, format="%(message)s"
    )
    handlers = {
        "train": cmd_train,
        "run": cmd_run,
        "retrain": cmd_retrain,
        "sweep": cmd_sweep,
        "resilience": cmd_resilience,
        "multitenant": cmd_multitenant,
        "explain": cmd_explain,
        "bench": cmd_bench,
        "audit": cmd_audit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
