"""Loss functions, including the paper's latency scaling function (Eq. 2).

Interactive microservices spike to very high latencies; a plain squared
loss overfits those spikes and overestimates latency in deployment
(paper Section 3.1).  Since the predictor's job is to find allocations
*within* the QoS target, both the prediction and the ground truth are
passed through the saturating scale function

    phi(x) = x                          for x <= t
    phi(x) = t + (x - t)/(1 + a*(x-t))  for x >  t

before the squared loss, compressing the above-QoS range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencyScaler:
    """The paper's Eq. 2 scaling function and its derivative/inverse.

    Parameters
    ----------
    t:
        Knee of the curve — latencies up to ``t`` pass through unscaled.
        The paper sets this near the QoS target.
    alpha:
        Decay of sensitivity above the knee (Figure 7 shows
        ``alpha`` in {0.005, 0.01, 0.02}).
    """

    t: float = 100.0
    alpha: float = 0.01

    def __post_init__(self) -> None:
        if self.t <= 0:
            raise ValueError("t must be positive")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def scale(self, x: np.ndarray) -> np.ndarray:
        """phi(x), elementwise."""
        x = np.asarray(x, dtype=float)
        excess = np.maximum(x - self.t, 0.0)
        scaled = self.t + excess / (1.0 + self.alpha * excess)
        return np.where(x <= self.t, x, scaled)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        """phi'(x), elementwise (1 below the knee, decaying above)."""
        x = np.asarray(x, dtype=float)
        excess = np.maximum(x - self.t, 0.0)
        denom = (1.0 + self.alpha * excess) ** 2
        return np.where(x <= self.t, 1.0, 1.0 / denom)

    def inverse(self, y: np.ndarray) -> np.ndarray:
        """phi^{-1}(y); defined for y < t + 1/alpha (the asymptote)."""
        y = np.asarray(y, dtype=float)
        excess = y - self.t
        limit = 1.0 / self.alpha
        excess = np.clip(excess, None, limit * 0.999)
        inverted = self.t + excess / (1.0 - self.alpha * excess)
        return np.where(y <= self.t, y, inverted)

    @property
    def ceiling(self) -> float:
        """Supremum of phi: t + 1/alpha."""
        return self.t + 1.0 / self.alpha


class MSELoss:
    """Mean squared error; returns (loss, dloss/dpred)."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        loss = float(np.mean(diff * diff))
        grad = 2.0 * diff / diff.size
        return loss, grad


class ScaledMSELoss:
    """Squared loss on phi-scaled latencies (paper Eq. 1 + Eq. 2).

    Both the prediction and the target are scaled, so gradients from
    above-QoS spikes are damped by ``phi'(pred)``.
    """

    def __init__(self, scaler: LatencyScaler) -> None:
        self.scaler = scaler

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        sp = self.scaler.scale(pred)
        st = self.scaler.scale(target)
        diff = sp - st
        loss = float(np.mean(diff * diff))
        grad = 2.0 * diff * self.scaler.derivative(pred) / diff.size
        return loss, grad


class BCEWithLogitsLoss:
    """Binary cross-entropy on logits; numerically stable."""

    def __call__(self, logits: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        z = np.clip(logits, -60.0, 60.0)
        prob = 1.0 / (1.0 + np.exp(-z))
        loss = float(
            np.mean(np.maximum(z, 0) - z * target + np.log1p(np.exp(-np.abs(z))))
        )
        grad = (prob - target) / target.size
        return loss, grad


__all__ = ["LatencyScaler", "MSELoss", "ScaledMSELoss", "BCEWithLogitsLoss"]
