"""The rejected joint model of paper Figure 4.

Before settling on the two-stage CNN + Boosted-Trees design, the paper
tried a multi-task network predicting both the next-interval latency and
the probability of a QoS violation over the next few intervals.  The
joint model *considerably overpredicts* tail latency: the QoS-violation
probability lives in [0, 1] while latency is unbounded, and the shared
representation lets the classification objective interfere with the
regression one (the "semantic gap").

This module implements that model faithfully — shared branches, one
latency head (plain squared loss, as in the original attempt) and one
violation head (binary cross-entropy) — so the Figure 4 experiment can
be regenerated and the two-stage design justified quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.ml.cnn import CNNConfig, LatencyCNN
from repro.ml.layers import Dense
from repro.ml.losses import BCEWithLogitsLoss, MSELoss


class MultiTaskLoss:
    """Joint loss over concatenated (latency, violation-logit) outputs.

    ``pred`` and ``target`` have shape (B, M + 1): the first M columns
    are latencies, the last column is the violation label/logit.
    """

    def __init__(self, n_percentiles: int, violation_weight: float = 1.0) -> None:
        self.n_percentiles = n_percentiles
        self.violation_weight = violation_weight
        self._mse = MSELoss()
        self._bce = BCEWithLogitsLoss()

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        m = self.n_percentiles
        lat_loss, lat_grad = self._mse(pred[:, :m], target[:, :m])
        # Normalize latency gradient scale to the QoS range so the BCE
        # term is not vanishingly small next to squared milliseconds.
        viol_loss, viol_grad = self._bce(pred[:, m:], target[:, m:])
        loss = lat_loss + self.violation_weight * viol_loss
        grad = np.concatenate([lat_grad, self.violation_weight * viol_grad], axis=1)
        return loss, grad


class MultiTaskNN(LatencyCNN):
    """Shared trunk with latency and violation heads (paper Figure 4)."""

    def __init__(
        self,
        n_tiers: int,
        n_timesteps: int = 5,
        n_channels: int = 6,
        n_percentiles: int = 5,
        config: CNNConfig | None = None,
        violation_weight: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(
            n_tiers, n_timesteps, n_channels, n_percentiles, config, seed
        )
        rng = np.random.default_rng(seed + 1)
        self.violation_head = Dense(self.config.latent_dim, 1, rng)
        self.violation_weight = violation_weight

    def params(self) -> list[np.ndarray]:
        return super().params() + self.violation_head.params()

    def grads(self) -> list[np.ndarray]:
        return super().grads() + self.violation_head.grads()

    def forward_batch(self, inputs: tuple[np.ndarray, ...], training: bool = False) -> np.ndarray:
        latency = super().forward_batch(inputs, training)
        logit = self.violation_head.forward(self._latent, training)
        return np.concatenate([latency, logit], axis=1)

    def backward_batch(self, dout: np.ndarray) -> None:
        m = self.n_percentiles
        dlatent_extra = self.violation_head.backward(dout[:, m:])
        dlatency = dout[:, :m]
        # Both heads feed the shared latent: accumulate their gradients.
        dlatent = self.output_head.backward(dlatency) + dlatent_extra
        dconcat = self.latent_head.backward(dlatent)
        a, b, _ = self._split
        self.rh_branch.backward(dconcat[:, :a])
        self.lh_branch.backward(dconcat[:, a : a + b])
        self.rc_branch.backward(dconcat[:, a + b :])

    def loss(self) -> MultiTaskLoss:
        """The joint training loss matching this model's output layout."""
        return MultiTaskLoss(self.n_percentiles, self.violation_weight)

    @staticmethod
    def pack_targets(y_lat: np.ndarray, y_viol: np.ndarray) -> np.ndarray:
        """Concatenate targets into the (B, M + 1) layout ``fit`` expects."""
        return np.concatenate([y_lat, y_viol.reshape(-1, 1)], axis=1)

    def predict_latency(self, inputs: tuple[np.ndarray, ...]) -> np.ndarray:
        return self.predict(inputs)[:, : self.n_percentiles]

    def predict_violation_prob(self, inputs: tuple[np.ndarray, ...]) -> np.ndarray:
        logits = self.predict(inputs)[:, self.n_percentiles]
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))


__all__ = ["MultiTaskNN", "MultiTaskLoss"]
