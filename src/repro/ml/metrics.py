"""Evaluation metrics used throughout the paper's tables.

Table 2 reports latency-model RMSE in milliseconds; Table 3 reports
Boosted-Trees classification accuracy and validation false
positives/negatives (the scheduler tunes its thresholds so validation
false negatives stay under 1%, Section 4.3).
"""

from __future__ import annotations

import numpy as np


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error over all elements."""
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return float(np.sqrt(np.mean((pred - target) ** 2)))


def accuracy(pred_labels: np.ndarray, target: np.ndarray) -> float:
    """Fraction of correct binary predictions."""
    pred_labels = np.asarray(pred_labels)
    target = np.asarray(target)
    if pred_labels.shape != target.shape:
        raise ValueError("shape mismatch")
    if len(target) == 0:
        return 1.0
    return float(np.mean(pred_labels == target))


def error_rate(pred_labels: np.ndarray, target: np.ndarray) -> float:
    """1 - accuracy."""
    return 1.0 - accuracy(pred_labels, target)


def false_positive_rate(pred_labels: np.ndarray, target: np.ndarray) -> float:
    """Fraction of all samples falsely predicted as violations."""
    pred_labels = np.asarray(pred_labels).astype(bool)
    target = np.asarray(target).astype(bool)
    if len(target) == 0:
        return 0.0
    return float(np.mean(pred_labels & ~target))


def false_negative_rate(pred_labels: np.ndarray, target: np.ndarray) -> float:
    """Fraction of all samples whose violation was missed.

    The paper sizes the scheduler's upscale threshold so this stays
    under 1% on the validation set.
    """
    pred_labels = np.asarray(pred_labels).astype(bool)
    target = np.asarray(target).astype(bool)
    if len(target) == 0:
        return 0.0
    return float(np.mean(~pred_labels & target))


def model_size_kb(params: list[np.ndarray]) -> float:
    """Serialized parameter size in kilobytes (float32, as deployed)."""
    return sum(p.size for p in params) * 4 / 1024.0


__all__ = [
    "rmse",
    "accuracy",
    "error_rate",
    "false_positive_rate",
    "false_negative_rate",
    "model_size_kb",
]
