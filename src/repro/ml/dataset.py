"""Dataset containers for the Sinan models.

A sample is one decision interval: the resource-usage history tensor
``X_RH`` (channels x tiers x timestamps), the latency history ``X_LH``
(timestamps x percentiles), the candidate allocation ``X_RC`` (tiers),
the next-interval tail latencies ``y_lat`` (percentiles, ms), and the
binary label ``y_viol`` — whether QoS is violated within the next ``k``
intervals (paper Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SinanDataset:
    """Aligned sample arrays for training/validating the predictors."""

    X_RH: np.ndarray
    """Resource history, shape (B, F, N, T)."""

    X_LH: np.ndarray
    """Latency history, shape (B, T, M)."""

    X_RC: np.ndarray
    """Candidate next-interval allocation, shape (B, N)."""

    y_lat: np.ndarray
    """Next-interval tail latencies (ms), shape (B, M)."""

    y_viol: np.ndarray
    """QoS violation within the next k intervals, shape (B,), in {0, 1}."""

    meta: dict = field(default_factory=dict)
    """Free-form provenance (app name, QoS, collection policy, ...)."""

    def __post_init__(self) -> None:
        n = len(self.X_RH)
        for name in ("X_LH", "X_RC", "y_lat", "y_viol"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch: expected {n}")

    def __len__(self) -> int:
        return len(self.X_RH)

    @property
    def n_tiers(self) -> int:
        return self.X_RH.shape[2]

    @property
    def n_channels(self) -> int:
        return self.X_RH.shape[1]

    @property
    def n_timesteps(self) -> int:
        return self.X_RH.shape[3]

    @property
    def n_percentiles(self) -> int:
        return self.y_lat.shape[1]

    def subset(self, idx: np.ndarray) -> "SinanDataset":
        """Row-indexed view (copy) of the dataset."""
        return SinanDataset(
            X_RH=self.X_RH[idx],
            X_LH=self.X_LH[idx],
            X_RC=self.X_RC[idx],
            y_lat=self.y_lat[idx],
            y_viol=self.y_viol[idx],
            meta=dict(self.meta),
        )

    def filter_latency_below(self, threshold_ms: float) -> "SinanDataset":
        """Keep samples whose next-interval p99 is below ``threshold_ms``.

        Used by the Figure 9 study: truncating the training set below the
        QoS boundary makes both models overfit badly.
        """
        keep = self.y_lat[:, -1] < threshold_ms
        return self.subset(np.flatnonzero(keep))

    def split(self, train_frac: float = 0.9, rng: np.random.Generator | None = None) -> "TrainValSplit":
        """Random shuffle + split (paper uses a 9:1 ratio)."""
        if not (0.0 < train_frac < 1.0):
            raise ValueError("train_frac must be in (0, 1)")
        rng = rng or np.random.default_rng(0)
        order = rng.permutation(len(self))
        cut = int(len(self) * train_frac)
        return TrainValSplit(
            train=self.subset(order[:cut]), val=self.subset(order[cut:])
        )

    @staticmethod
    def concatenate(parts: list["SinanDataset"]) -> "SinanDataset":
        """Concatenate datasets (incremental retraining accumulates data)."""
        if not parts:
            raise ValueError("need at least one dataset")
        return SinanDataset(
            X_RH=np.concatenate([p.X_RH for p in parts]),
            X_LH=np.concatenate([p.X_LH for p in parts]),
            X_RC=np.concatenate([p.X_RC for p in parts]),
            y_lat=np.concatenate([p.y_lat for p in parts]),
            y_viol=np.concatenate([p.y_viol for p in parts]),
            meta=dict(parts[0].meta),
        )

    def violation_fraction(self) -> float:
        """Fraction of samples labelled as upcoming QoS violations."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.y_viol))


@dataclass
class TrainValSplit:
    train: SinanDataset
    val: SinanDataset


class FeatureNormalizer:
    """Per-channel standardization shared by training and deployment.

    Fit on the training split; applied to every model input online so
    the CNN sees the distribution it was trained on.  Latency channels
    are scaled by the QoS target rather than standardized, keeping the
    QoS boundary at a fixed position in feature space (this is what lets
    the fine-tuned models transfer across platforms with the same
    architecture, paper Section 5.4).
    """

    def __init__(self, qos_ms: float) -> None:
        if qos_ms <= 0:
            raise ValueError("qos_ms must be positive")
        self.qos_ms = qos_ms
        self._rh_mean: np.ndarray | None = None
        self._rh_std: np.ndarray | None = None
        self._rc_scale: float | None = None

    @property
    def fitted(self) -> bool:
        return self._rh_mean is not None

    @property
    def rc_scale(self) -> float:
        """Scale applied to allocation features (95th pct of training)."""
        if self._rc_scale is None:
            raise RuntimeError("normalizer not fitted")
        return self._rc_scale

    def fit(self, dataset: SinanDataset) -> "FeatureNormalizer":
        rh = dataset.X_RH
        self._rh_mean = rh.mean(axis=(0, 2, 3), keepdims=True)
        self._rh_std = rh.std(axis=(0, 2, 3), keepdims=True) + 1e-6
        self._rc_scale = float(np.percentile(dataset.X_RC, 95)) or 1.0
        return self

    def transform(
        self, X_RH: np.ndarray, X_LH: np.ndarray, X_RC: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not self.fitted:
            raise RuntimeError("normalizer not fitted")
        rh = (X_RH - self._rh_mean) / self._rh_std
        lh = X_LH / self.qos_ms
        rc = X_RC / self._rc_scale
        return rh, lh, rc

    def transform_dataset(self, dataset: SinanDataset) -> SinanDataset:
        rh, lh, rc = self.transform(dataset.X_RH, dataset.X_LH, dataset.X_RC)
        return SinanDataset(
            X_RH=rh,
            X_LH=lh,
            X_RC=rc,
            y_lat=dataset.y_lat,
            y_viol=dataset.y_viol,
            meta=dict(dataset.meta),
        )


__all__ = ["SinanDataset", "TrainValSplit", "FeatureNormalizer"]
