"""From-scratch numpy ML substrate.

The paper implements its models in MXNet (CNN) and XGBoost (Boosted
Trees); neither is available here, so this package provides equivalent
implementations built on numpy only:

* :mod:`repro.ml.layers` / :mod:`repro.ml.network` — dense, convolution,
  LSTM building blocks with manual backprop, plus a ``Sequential``
  composition and training loop,
* :mod:`repro.ml.losses` — squared loss and the paper's latency-scaling
  function (Eq. 2) that biases learning toward the QoS-relevant range,
* :mod:`repro.ml.cnn` — the short-term latency predictor (paper Fig. 5),
* :mod:`repro.ml.mlp`, :mod:`repro.ml.lstm` — the Table 2 comparison
  models,
* :mod:`repro.ml.multitask` — the rejected joint model of Figure 4,
* :mod:`repro.ml.boosted_trees` — the long-term violation predictor,
  a gradient-boosted-trees classifier with Newton leaf weights,
* :mod:`repro.ml.dataset`, :mod:`repro.ml.metrics` — containers and
  evaluation metrics.
"""

from repro.ml.dataset import SinanDataset, TrainValSplit
from repro.ml.losses import LatencyScaler, MSELoss, ScaledMSELoss
from repro.ml.metrics import (
    rmse,
    error_rate,
    accuracy,
    false_positive_rate,
    false_negative_rate,
)
from repro.ml.cnn import LatencyCNN, CNNConfig
from repro.ml.mlp import LatencyMLP
from repro.ml.lstm import LatencyLSTM
from repro.ml.multitask import MultiTaskNN
from repro.ml.boosted_trees import BoostedTrees, BoostedTreesConfig

__all__ = [
    "SinanDataset",
    "TrainValSplit",
    "LatencyScaler",
    "MSELoss",
    "ScaledMSELoss",
    "rmse",
    "error_rate",
    "accuracy",
    "false_positive_rate",
    "false_negative_rate",
    "LatencyCNN",
    "CNNConfig",
    "LatencyMLP",
    "LatencyLSTM",
    "MultiTaskNN",
    "BoostedTrees",
    "BoostedTreesConfig",
]
