"""The short-term latency predictor: Sinan's CNN (paper Figure 5).

Three input branches are processed independently and concatenated:

* ``X_RH`` — the resource-usage "image" (channels = resource metrics,
  rows = tiers with consecutive tiers adjacent, columns = timestamps)
  goes through stacked 3x3 convolutions, so early layers fuse adjacent
  tiers over short windows and later layers see the whole graph;
* ``X_LH`` — the latency-percentile history through a dense layer;
* ``X_RC`` — the candidate allocation through a dense layer.

The concatenation is distilled by a fully-connected layer into the
compact latent variable ``L_f``, from which a final dense layer predicts
the next interval's tail latencies (p95-p99).  ``L_f`` is reused as the
input of the Boosted-Trees violation predictor, which keeps that model
small and overfit-resistant (paper Section 3.2).

Online, the scheduler scores B candidate allocations that all share one
telemetry history, so the RH/LH inputs of the batch are B identical
copies.  :meth:`LatencyCNN.predict_candidates` exploits this: the conv
trunk runs once on the single shared history and its activations are
broadcast (zero-copy) across the candidate batch before the dense
stack.  The split point is deliberate — convolution via ``einsum`` is
batch-invariant down to the bit, while BLAS GEMM results depend on the
batch dimension, so the dense layers run at the full batch size in both
paths and the fast path reproduces :meth:`predict_with_latent` on the
equivalent broadcast batch *exactly*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.layers import Conv2D, Dense, Flatten, ReLU
from repro.ml.network import NeuralRegressor, Sequential


@dataclass(frozen=True)
class CNNConfig:
    """Architecture hyper-parameters (selected on validation accuracy)."""

    conv_channels: tuple[int, ...] = (12, 12)
    kernel: int = 3
    rh_embed: int = 48
    lh_embed: int = 16
    rc_embed: int = 24
    latent_dim: int = 48


class LatencyCNN(NeuralRegressor):
    """CNN latency predictor with an exposed latent variable.

    Parameters
    ----------
    n_tiers, n_timesteps, n_channels, n_percentiles:
        Input tensor dimensions N, T, F, M (paper Figure 6).
    config:
        Layer sizing; defaults match a ~70 KB model, the paper's scale.
    seed:
        Weight initialization seed.
    """

    def __init__(
        self,
        n_tiers: int,
        n_timesteps: int = 5,
        n_channels: int = 6,
        n_percentiles: int = 5,
        config: CNNConfig | None = None,
        seed: int = 0,
        n_rc_features: int | None = None,
    ) -> None:
        cfg = config or CNNConfig()
        rng = np.random.default_rng(seed)
        self.config = cfg
        self.n_tiers = n_tiers
        self.n_timesteps = n_timesteps
        self.n_channels = n_channels
        self.n_percentiles = n_percentiles
        self.n_rc_features = n_rc_features or n_tiers

        conv_layers: list = []
        in_ch = n_channels
        for out_ch in cfg.conv_channels:
            conv_layers += [Conv2D(in_ch, out_ch, cfg.kernel, rng), ReLU()]
            in_ch = out_ch
        # Layers before this index form the conv trunk shared across
        # candidates by predict_candidates; from Flatten on, computation
        # is per-candidate (see module docstring).
        self._rh_trunk_len = len(conv_layers)
        conv_layers += [
            Flatten(),
            Dense(in_ch * n_tiers * n_timesteps, cfg.rh_embed, rng),
            ReLU(),
        ]
        self.rh_branch = Sequential(*conv_layers)
        self.lh_branch = Sequential(
            Flatten(), Dense(n_timesteps * n_percentiles, cfg.lh_embed, rng), ReLU()
        )
        self.rc_branch = Sequential(
            Dense(self.n_rc_features, cfg.rc_embed, rng), ReLU()
        )
        concat_dim = cfg.rh_embed + cfg.lh_embed + cfg.rc_embed
        self.latent_head = Sequential(Dense(concat_dim, cfg.latent_dim, rng), ReLU())
        self.output_head = Dense(cfg.latent_dim, n_percentiles, rng)
        self._latent: np.ndarray | None = None

    # ------------------------------------------------------------------

    def params(self) -> list[np.ndarray]:
        return (
            self.rh_branch.params()
            + self.lh_branch.params()
            + self.rc_branch.params()
            + self.latent_head.params()
            + self.output_head.params()
        )

    def grads(self) -> list[np.ndarray]:
        return (
            self.rh_branch.grads()
            + self.lh_branch.grads()
            + self.rc_branch.grads()
            + self.latent_head.grads()
            + self.output_head.grads()
        )

    def forward_batch(self, inputs: tuple[np.ndarray, ...], training: bool = False) -> np.ndarray:
        x_rh, x_lh, x_rc = inputs
        h_rh = self.rh_branch.forward(x_rh, training)
        h_lh = self.lh_branch.forward(x_lh, training)
        h_rc = self.rc_branch.forward(x_rc, training)
        self._split = (h_rh.shape[1], h_lh.shape[1], h_rc.shape[1])
        concat = np.concatenate([h_rh, h_lh, h_rc], axis=1)
        self._latent = self.latent_head.forward(concat, training)
        return self.output_head.forward(self._latent, training)

    def backward_batch(self, dout: np.ndarray) -> None:
        dlatent = self.output_head.backward(dout)
        dconcat = self.latent_head.backward(dlatent)
        a, b, _ = self._split
        self.rh_branch.backward(dconcat[:, :a])
        self.lh_branch.backward(dconcat[:, a : a + b])
        self.rc_branch.backward(dconcat[:, a + b :])

    # ------------------------------------------------------------------

    def latent(self, inputs: tuple[np.ndarray, ...], batch_size: int = 4096) -> np.ndarray:
        """The latent variable ``L_f`` for each sample, shape (B, latent_dim).

        This is the Boosted-Trees input (paper Section 3.2): compact, so
        the tree model stays small and resistant to overfitting.
        """
        n = len(inputs[0])
        chunks = []
        for start in range(0, n, batch_size):
            batch = tuple(x[start : start + batch_size] for x in inputs)
            self.forward_batch(batch, training=False)
            chunks.append(self._latent.copy())
        return np.concatenate(chunks)

    def predict_with_latent(
        self, inputs: tuple[np.ndarray, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """One forward pass returning (latency prediction, latent L_f)."""
        pred = self.forward_batch(inputs, training=False)
        return pred, self._latent.copy()

    def predict_candidates(
        self, inputs: tuple[np.ndarray, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared-trunk inference for one history x B candidates.

        ``inputs`` is ``(x_rh, x_lh, x_rc)`` where the history tensors
        have a leading batch dimension of 1 (the shared telemetry
        window) and ``x_rc`` holds the B candidate-branch feature rows.
        The conv trunk runs once; its activations are broadcast across
        the batch as a zero-copy view before the dense layers, which run
        at the full batch size so the result is bit-identical to
        :meth:`predict_with_latent` on B broadcast copies of the
        history.  Returns ``(latency (B, M), latent L_f (B, latent))``.
        """
        x_rh, x_lh, x_rc = inputs
        if len(x_rh) != 1 or len(x_lh) != 1:
            raise ValueError("shared history tensors must have batch size 1")
        b = len(x_rc)
        trunk_len = self.__dict__.get("_rh_trunk_len", 0)
        h_rh = x_rh
        for layer in self.rh_branch.layers[:trunk_len]:
            h_rh = layer.forward(h_rh, training=False)
        h_rh = np.broadcast_to(h_rh, (b, *h_rh.shape[1:]))
        for layer in self.rh_branch.layers[trunk_len:]:
            h_rh = layer.forward(h_rh, training=False)
        h_lh = self.lh_branch.forward(
            np.broadcast_to(x_lh, (b, *x_lh.shape[1:])), training=False
        )
        h_rc = self.rc_branch.forward(x_rc, training=False)
        self._split = (h_rh.shape[1], h_lh.shape[1], h_rc.shape[1])
        concat = np.concatenate([h_rh, h_lh, h_rc], axis=1)
        self._latent = self.latent_head.forward(concat, training=False)
        pred = self.output_head.forward(self._latent, training=False)
        return pred, self._latent.copy()


__all__ = ["LatencyCNN", "CNNConfig"]
