"""Gradient-boosted trees: the long-term violation predictor.

The paper uses XGBoost for the binary task "will this allocation cause a
QoS violation within the next k intervals?", fed with the CNN's compact
latent variable ``L_f`` plus the candidate allocation (Section 3.2).
This is a from-scratch equivalent: histogram-based greedy split finding
with second-order (Newton) leaf weights and logistic loss, i.e. the core
of XGBoost's exact/approximate tree learner.

As in the paper, the model sums per-tree scores; the violation
probability is the logistic of the accumulated margin
(``p_V = e^{s_V} / (e^{s_V} + e^{s_{NV}})`` in the paper's two-score
formulation, equivalent to a sigmoid over the margin difference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import accuracy


@dataclass(frozen=True)
class BoostedTreesConfig:
    """Learner hyper-parameters (paper tunes max depth and tree count)."""

    n_trees: int = 400
    max_depth: int = 6
    learning_rate: float = 0.1
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_child_weight: float = 1.0
    n_bins: int = 64
    early_stopping_rounds: int = 25


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class BoostedTrees:
    """Binary classifier: boosted regression trees on logistic loss."""

    def __init__(self, config: BoostedTreesConfig | None = None, seed: int = 0) -> None:
        self.config = config or BoostedTreesConfig()
        self._rng = np.random.default_rng(seed)
        self.trees: list[_Node] = []
        self.base_margin = 0.0
        self._bin_edges: list[np.ndarray] | None = None
        self.train_accuracy = float("nan")
        self.val_accuracy = float("nan")

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "BoostedTrees":
        """Fit with optional early stopping on validation error."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (B, D) aligned with y")
        if len(np.unique(y)) < 2:
            # Degenerate training set: constant prediction.
            self.base_margin = _logit(np.clip(y.mean(), 1e-6, 1 - 1e-6))
            self.trees = []
            self.train_accuracy = accuracy(self.predict(X), y)
            if X_val is not None and y_val is not None:
                self.val_accuracy = accuracy(self.predict(X_val), y_val)
            return self

        cfg = self.config
        self._bin_edges = self._make_bins(X)
        bins = self._binize(X)

        pos = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self.base_margin = _logit(pos)
        margin = np.full(len(y), self.base_margin)
        self.trees = []

        best_val = float("inf")
        best_n = 0
        stale = 0
        val_margin = None
        if X_val is not None and y_val is not None:
            y_val = np.asarray(y_val, dtype=float).ravel()
            val_margin = np.full(len(y_val), self.base_margin)

        for _ in range(cfg.n_trees):
            prob = _sigmoid(margin)
            grad = prob - y
            hess = np.maximum(prob * (1.0 - prob), 1e-12)
            tree = self._build_tree(bins, grad, hess)
            self.trees.append(tree)
            margin += self._predict_tree(tree, X)

            if val_margin is not None:
                val_margin += self._predict_tree(tree, X_val)
                val_loss = _logloss(val_margin, y_val)
                if val_loss < best_val - 1e-7:
                    best_val = val_loss
                    best_n = len(self.trees)
                    stale = 0
                else:
                    stale += 1
                    if stale >= cfg.early_stopping_rounds:
                        break

        if val_margin is not None and best_n:
            self.trees = self.trees[:best_n]
        self.train_accuracy = accuracy(self.predict(X), y)
        if X_val is not None and y_val is not None:
            self.val_accuracy = accuracy(self.predict(X_val), y_val)
        return self

    def _make_bins(self, X: np.ndarray) -> list[np.ndarray]:
        edges = []
        qs = np.linspace(0, 100, self.config.n_bins + 1)[1:-1]
        for f in range(X.shape[1]):
            cuts = np.unique(np.percentile(X[:, f], qs))
            edges.append(cuts)
        return edges

    def _binize(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape, dtype=np.int32)
        for f, cuts in enumerate(self._bin_edges):
            out[:, f] = np.searchsorted(cuts, X[:, f], side="right")
        return out

    def _build_tree(self, bins: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> _Node:
        cfg = self.config
        root_rows = np.arange(len(grad))

        def grow(rows: np.ndarray, depth: int) -> _Node:
            g_sum = grad[rows].sum()
            h_sum = hess[rows].sum()
            leaf_value = -cfg.learning_rate * g_sum / (h_sum + cfg.reg_lambda)
            if depth >= cfg.max_depth or len(rows) < 2:
                return _Node(value=leaf_value)
            best_gain = cfg.gamma
            best = None
            parent_score = g_sum * g_sum / (h_sum + cfg.reg_lambda)
            sub_bins = bins[rows]
            sub_g = grad[rows]
            sub_h = hess[rows]
            for f in range(bins.shape[1]):
                n_bins = len(self._bin_edges[f]) + 1
                if n_bins < 2:
                    continue
                fb = sub_bins[:, f]
                g_hist = np.bincount(fb, weights=sub_g, minlength=n_bins)
                h_hist = np.bincount(fb, weights=sub_h, minlength=n_bins)
                g_left = np.cumsum(g_hist)[:-1]
                h_left = np.cumsum(h_hist)[:-1]
                g_right = g_sum - g_left
                h_right = h_sum - h_left
                valid = (h_left >= cfg.min_child_weight) & (
                    h_right >= cfg.min_child_weight
                )
                if not valid.any():
                    continue
                gain = (
                    g_left * g_left / (h_left + cfg.reg_lambda)
                    + g_right * g_right / (h_right + cfg.reg_lambda)
                    - parent_score
                )
                gain = np.where(valid, gain, -np.inf)
                b = int(np.argmax(gain))
                if gain[b] > best_gain:
                    best_gain = float(gain[b])
                    best = (f, b)
            if best is None:
                return _Node(value=leaf_value)
            f, b = best
            threshold = self._bin_edges[f][b]
            go_left = sub_bins[:, f] <= b
            left_rows = rows[go_left]
            right_rows = rows[~go_left]
            if len(left_rows) == 0 or len(right_rows) == 0:
                return _Node(value=leaf_value)
            node = _Node(feature=f, threshold=float(threshold))
            node.left = grow(left_rows, depth + 1)
            node.right = grow(right_rows, depth + 1)
            return node

        return grow(root_rows, 0)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _predict_tree(self, tree: _Node, X: np.ndarray) -> np.ndarray:
        out = np.empty(len(X))

        def walk(node: _Node, rows: np.ndarray) -> None:
            if node.is_leaf:
                out[rows] = node.value
                return
            go_left = X[rows, node.feature] <= node.threshold
            walk(node.left, rows[go_left])
            walk(node.right, rows[~go_left])

        walk(tree, np.arange(len(X)))
        return out

    def predict_margin(self, X: np.ndarray) -> np.ndarray:
        """Accumulated score (the paper's s_V - s_NV margin)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        margin = np.full(len(X), self.base_margin)
        for tree in self.trees:
            margin += self._predict_tree(tree, X)
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of a QoS violation within the horizon, p_V."""
        return _sigmoid(self.predict_margin(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(float)

    @property
    def n_trees_used(self) -> int:
        """Number of trees kept after early stopping (Table 3 column)."""
        return len(self.trees)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _logit(p: float) -> float:
    return float(np.log(p / (1.0 - p)))


def _logloss(margin: np.ndarray, y: np.ndarray) -> float:
    z = np.clip(margin, -60.0, 60.0)
    return float(np.mean(np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))))


__all__ = ["BoostedTrees", "BoostedTreesConfig"]
