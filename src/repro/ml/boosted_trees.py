"""Gradient-boosted trees: the long-term violation predictor.

The paper uses XGBoost for the binary task "will this allocation cause a
QoS violation within the next k intervals?", fed with the CNN's compact
latent variable ``L_f`` plus the candidate allocation (Section 3.2).
This is a from-scratch equivalent: histogram-based greedy split finding
with second-order (Newton) leaf weights and logistic loss, i.e. the core
of XGBoost's exact/approximate tree learner.

As in the paper, the model sums per-tree scores; the violation
probability is the logistic of the accumulated margin
(``p_V = e^{s_V} / (e^{s_V} + e^{s_{NV}})`` in the paper's two-score
formulation, equivalent to a sigmoid over the margin difference).

Inference is *compiled*: after ``fit`` the recursive node objects are
flattened into feature / threshold / child-index / leaf-value arrays and
``predict_margin`` walks all rows through all trees with vectorized
numpy gathers — no Python recursion on the predict path, which sits
inside every scheduler decision.  The flattened traversal performs the
same comparisons and accumulates leaf values tree-by-tree in the same
order, so its output is bit-identical to the recursive reference
(:meth:`BoostedTrees.predict_margin_reference`, kept for the
equivalence suite and ``repro bench``).

Training is *level-wise over histograms*: the default grower
(:meth:`BoostedTrees._build_tree_hist`) replaces the reference grower's
per-(node, feature) Python re-scan with one fused ``np.bincount`` per
tree level over the key ``(node_slot * n_features + feature) * n_bins +
bin``, plus the classic histogram-subtraction trick (only the smaller
child of a split is scanned; its sibling's histogram is the parent's
minus the child's).  Node gradient/hessian totals — and therefore every
leaf weight — are still computed with the reference's exact
``grad[rows].sum()`` arithmetic, and the split argmax replicates the
reference's first-strict-maximum tie-breaking, so the grown trees match
:meth:`BoostedTrees._build_tree_reference` split for split (the
histogram subtraction perturbs *gains* by float epsilon, which can only
matter on exact ties between structurally different splits).  Set
``fast_train = False`` to fit with the reference grower.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import accuracy


@dataclass(frozen=True)
class BoostedTreesConfig:
    """Learner hyper-parameters (paper tunes max depth and tree count)."""

    n_trees: int = 400
    max_depth: int = 6
    learning_rate: float = 0.1
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_child_weight: float = 1.0
    n_bins: int = 64
    early_stopping_rounds: int = 25


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


@dataclass(frozen=True)
class _CompiledEnsemble:
    """Fitted trees flattened into arrays for vectorized traversal.

    Node ``i`` is internal iff ``feature[i] >= 0``; its children are
    ``left[i]`` / ``right[i]`` (indices into the same arrays).  Leaves
    carry their weight in ``value[i]``.  ``roots[t]`` is tree *t*'s root
    node and ``max_depth`` bounds the traversal loop.
    """

    feature: np.ndarray  # (n_nodes,) int32, -1 for leaves
    threshold: np.ndarray  # (n_nodes,) float64
    left: np.ndarray  # (n_nodes,) int32
    right: np.ndarray  # (n_nodes,) int32
    value: np.ndarray  # (n_nodes,) float64
    roots: np.ndarray  # (n_trees,) int32
    max_depth: int


def _compile_trees(trees: list[_Node]) -> _CompiledEnsemble | None:
    """Flatten recursive ``_Node`` trees into a :class:`_CompiledEnsemble`."""
    if not trees:
        return None
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[float] = []
    roots: list[int] = []
    max_depth = 0

    def emit(node: _Node, depth: int) -> int:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        idx = len(feature)
        feature.append(node.feature)
        threshold.append(node.threshold)
        left.append(-1)
        right.append(-1)
        value.append(node.value)
        if not node.is_leaf:
            left[idx] = emit(node.left, depth + 1)
            right[idx] = emit(node.right, depth + 1)
        return idx

    for tree in trees:
        roots.append(emit(tree, 0))
    return _CompiledEnsemble(
        feature=np.asarray(feature, dtype=np.int32),
        threshold=np.asarray(threshold, dtype=np.float64),
        left=np.asarray(left, dtype=np.int32),
        right=np.asarray(right, dtype=np.int32),
        value=np.asarray(value, dtype=np.float64),
        roots=np.asarray(roots, dtype=np.int32),
        max_depth=max_depth,
    )


class BoostedTrees:
    """Binary classifier: boosted regression trees on logistic loss."""

    def __init__(self, config: BoostedTreesConfig | None = None, seed: int = 0) -> None:
        self.config = config or BoostedTreesConfig()
        self._rng = np.random.default_rng(seed)
        self.trees: list[_Node] = []
        self.base_margin = 0.0
        self._compiled: _CompiledEnsemble | None = None
        self._bin_edges: list[np.ndarray] | None = None
        self.train_accuracy = float("nan")
        self.val_accuracy = float("nan")
        # Training path: True grows trees level-wise over fused
        # histograms (see module docstring); False uses the recursive
        # reference grower.  Both produce the same ensemble.
        self.fast_train = True

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "BoostedTrees":
        """Fit with optional early stopping on validation error."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (B, D) aligned with y")
        if len(np.unique(y)) < 2:
            # Degenerate training set: constant prediction.
            self.base_margin = _logit(np.clip(y.mean(), 1e-6, 1 - 1e-6))
            self.trees = []
            self._compiled = None
            self.train_accuracy = accuracy(self.predict(X), y)
            if X_val is not None and y_val is not None:
                self.val_accuracy = accuracy(self.predict(X_val), y_val)
            return self

        cfg = self.config
        self._compiled = None
        self._bin_edges = self._make_bins(X)
        bins = self._binize(X)
        # Per-row scan keys are identical for every tree: fold the
        # feature offsets into the bin codes once, so each histogram
        # scan only adds the per-level node-slot offset.
        if X.shape[1]:
            nb_fit = max(len(e) + 1 for e in self._bin_edges)
            self._keybase = (
                np.arange(X.shape[1], dtype=np.int64) * nb_fit + bins
            )
        else:
            self._keybase = None

        pos = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self.base_margin = _logit(pos)
        margin = np.full(len(y), self.base_margin)
        self.trees = []

        best_val = float("inf")
        best_n = 0
        stale = 0
        val_margin = None
        if X_val is not None and y_val is not None:
            y_val = np.asarray(y_val, dtype=float).ravel()
            val_margin = np.full(len(y_val), self.base_margin)

        for _ in range(cfg.n_trees):
            prob = _sigmoid(margin)
            grad = prob - y
            hess = np.maximum(prob * (1.0 - prob), 1e-12)
            tree = self._build_tree(bins, grad, hess)
            self.trees.append(tree)
            margin += self._predict_tree(tree, X)

            if val_margin is not None:
                val_margin += self._predict_tree(tree, X_val)
                val_loss = _logloss(val_margin, y_val)
                if val_loss < best_val - 1e-7:
                    best_val = val_loss
                    best_n = len(self.trees)
                    stale = 0
                else:
                    stale += 1
                    if stale >= cfg.early_stopping_rounds:
                        break

        if val_margin is not None and best_n:
            self.trees = self.trees[:best_n]
        self._keybase = None
        self._hist_scratch = None
        self._compiled = _compile_trees(self.trees)
        self.train_accuracy = accuracy(self.predict(X), y)
        if X_val is not None and y_val is not None:
            self.val_accuracy = accuracy(self.predict(X_val), y_val)
        return self

    def _make_bins(self, X: np.ndarray) -> list[np.ndarray]:
        qs = np.linspace(0, 100, self.config.n_bins + 1)[1:-1]
        # One percentile pass over the whole matrix; only the (cheap,
        # ragged) dedup still loops over features.
        cuts = np.percentile(X, qs, axis=0)  # (Q, D)
        return [np.unique(cuts[:, f]) for f in range(X.shape[1])]

    def _binize(self, X: np.ndarray, chunk_rows: int | None = None) -> np.ndarray:
        """Bin indices per element, matching ``searchsorted(side='right')``.

        One broadcast comparison pass per (row-chunked) matrix instead of
        a Python loop over features: bin = #edges <= x, evaluated as a
        (rows, features, edges) boolean reduction against the edge table
        padded with ``+inf``.  Both the boolean intermediate and the
        int32 result are preallocated once and reused across chunks —
        every chunk reduces straight into its slice of the output, so
        the chunked result is identical to an unchunked pass regardless
        of ragged per-feature bin counts.
        """
        n, d = X.shape
        k = max((len(cuts) for cuts in self._bin_edges), default=0)
        out = np.zeros(X.shape, dtype=np.int32)
        if k == 0:
            return out
        edges = np.full((d, k), np.inf)
        for f, cuts in enumerate(self._bin_edges):
            edges[f, : len(cuts)] = cuts
        counts = np.array([len(cuts) for cuts in self._bin_edges], dtype=np.int32)
        if chunk_rows is None:
            # Chunk rows so the boolean intermediate stays ~32 MB.
            chunk_rows = max(1, (1 << 25) // max(d * k, 1))
        cmp = np.empty((min(chunk_rows, n), d, k), dtype=bool)
        for start in range(0, n, chunk_rows):
            block = X[start : start + chunk_rows]
            m = len(block)
            np.less_equal(edges[None, :, :], block[:, :, None], out=cmp[:m])
            dest = out[start : start + m]
            cmp[:m].sum(axis=2, dtype=np.int32, out=dest)
            nan = np.isnan(block)
            if nan.any():  # searchsorted sorts NaN above every edge
                dest[nan] = np.broadcast_to(counts, block.shape)[nan]
        return out

    def _build_tree(self, bins: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> _Node:
        """Grow one tree, dispatching on the ``fast_train`` toggle.

        The histogram grower needs ``min_child_weight > 0`` or
        ``reg_lambda > 0`` to guarantee NaN-free gains (the reference's
        NaN-argmax behaviour under the degenerate 0/0 config is not
        worth replicating); that corner falls back to the reference.
        """
        cfg = self.config
        if self.__dict__.get("fast_train", True) and (
            cfg.min_child_weight > 0 or cfg.reg_lambda > 0
        ):
            return self._build_tree_hist(bins, grad, hess)
        return self._build_tree_reference(bins, grad, hess)

    #: Ambiguity margin of the histogram grower: a subtracted node whose
    #: split decision is within this tolerance of flipping (tied gains
    #: with unequal histogram values, best gain near ``gamma``, child
    #: weight near ``min_child_weight``) is rescanned exactly.  Vastly
    #: larger than the ~1e-10 float noise subtraction can introduce.
    _HIST_TOL = 1e-6

    def _build_tree_hist(
        self, bins: np.ndarray, grad: np.ndarray, hess: np.ndarray
    ) -> _Node:
        """Level-wise growth over fused gradient/hessian histograms.

        Per level, one pair of ``np.bincount`` calls over the key
        ``(node_slot * D + feature) * n_bins + bin`` builds every
        scanned node's (D, n_bins) histograms at once; a split's larger
        child is never scanned — its histogram is the parent's minus its
        (scanned) smaller sibling's.  ``np.bincount`` accumulates in
        element order and node row sets stay sorted, so scanned
        histograms are bit-identical to the reference grower's
        per-feature bincounts.  Gains replicate the reference's exact
        expressions and its first-strict-maximum tie-breaking (row-major
        argmax == first feature, then first bin, attaining the maximum);
        leaf values use the reference's own ``grad[rows].sum()``
        arithmetic rather than histogram totals.

        Histogram subtraction perturbs a subtracted node's gains by
        float epsilon, which matters exactly when the split decision is
        a near-tie (common in early trees, where every row carries one
        of two gradient values and structurally different splits score
        identically).  Such nodes are detected (:attr:`_HIST_TOL`) and
        rescanned exactly — the same work the reference grower spends on
        *every* node — so the grown tree still matches the reference
        split for split.
        """
        cfg = self.config
        n, d = bins.shape
        edges = self._bin_edges
        lam, mcw, lr = cfg.reg_lambda, cfg.min_child_weight, cfg.learning_rate
        tol = self._HIST_TOL
        n_bins = np.array([len(e) + 1 for e in edges], dtype=np.int64)
        nb = int(n_bins.max()) if d else 1

        root = _Node()
        rows0 = np.arange(n)
        g0 = grad[rows0].sum()
        h0 = hess[rows0].sum()
        if cfg.max_depth <= 0 or n < 2 or nb < 2:
            root.value = -lr * g0 / (h0 + lam)
            return root

        feat_ids = np.arange(d, dtype=np.int64)
        # Split position b is real only while b indexes an edge of f.
        pos_valid = np.arange(nb - 1)[None, :] < (n_bins[:, None] - 1)
        keybase = self.__dict__.get("_keybase")
        if keybase is None or keybase.shape != bins.shape:
            keybase = feat_ids * nb + bins

        def scan(rows_list: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
            """Fused histograms (len(rows_list), D, nb) for grad and hess."""
            m = len(rows_list)
            rows_cat = rows_list[0] if m == 1 else np.concatenate(rows_list)
            offset = np.repeat(
                np.arange(m, dtype=np.int64) * (d * nb),
                [len(r) for r in rows_list],
            )
            key = (keybase[rows_cat] + offset[:, None]).ravel()
            size = m * d * nb
            g_hist = np.bincount(
                key, weights=np.repeat(grad[rows_cat], d), minlength=size
            )
            h_hist = np.bincount(
                key, weights=np.repeat(hess[rows_cat], d), minlength=size
            )
            return g_hist.reshape(m, d, nb), h_hist.reshape(m, d, nb)

        # Scratch buffers for split_scores, grown to the widest level
        # seen and reused across levels and trees (they survive on the
        # instance between _build_tree_hist calls within one fit).
        scratch = self.__dict__.get("_hist_scratch")
        if not isinstance(scratch, dict) or scratch.get("shape") != (d, nb):
            scratch = {"shape": (d, nb), "cap": 0}
            self._hist_scratch = scratch

        def buffers(m: int):
            if scratch["cap"] < m:
                for name in ("cg", "ch"):
                    scratch[name] = np.empty((m, d, nb))
                for name in ("t1", "t2", "t3", "r2"):
                    scratch[name] = np.empty((m, d, nb - 1))
                for name in ("vb", "vb2"):
                    scratch[name] = np.empty((m, d, nb - 1), dtype=bool)
                scratch["cap"] = m
            return scratch

        def split_scores(Gb, Hb, gs, hs):
            """(gain, g_left, h_left, h_right) for a histogram block.

            In-place arithmetic over reusable scratch; every operand
            sequence matches the reference expressions, so results are
            bit-identical to the naive formulation.  Returned arrays
            are views into scratch: consumed before the next call.
            """
            m = len(Gb)
            s = buffers(m)
            cg = s["cg"][:m]
            ch = s["ch"][:m]
            np.cumsum(Gb, axis=2, out=cg)
            np.cumsum(Hb, axis=2, out=ch)
            g_left = cg[:, :, :-1]
            h_left = ch[:, :, :-1]
            t1 = s["t1"][:m]
            t2 = s["t2"][:m]
            t3 = s["t3"][:m]
            h_right = s["r2"][:m]
            np.subtract(hs[:, None, None], h_left, out=h_right)
            parent_score = (gs * gs / (hs + lam))[:, None, None]
            # gain = gl²/(hl+λ) + gr²/(hr+λ) − parent, built in place.
            np.multiply(g_left, g_left, out=t1)
            np.add(h_left, lam, out=t2)
            t1 /= t2
            np.subtract(gs[:, None, None], g_left, out=t3)  # g_right
            t3 *= t3
            np.add(h_right, lam, out=t2)
            t3 /= t2
            t1 += t3
            t1 -= parent_score
            vb = s["vb"][:m]
            vb2 = s["vb2"][:m]
            np.greater_equal(h_left, mcw, out=vb)
            np.greater_equal(h_right, mcw, out=vb2)
            np.logical_and(vb, vb2, out=vb)
            np.logical_and(vb, pos_valid[None], out=vb)
            np.logical_not(vb, out=vb2)
            np.copyto(t1, -np.inf, where=vb2)
            return t1, g_left, h_left, h_right

        def ambiguous(i) -> bool:
            """Could float noise flip node i's split decision?"""
            hl, hr = h_left[i], h_right[i]
            if (np.abs(hl - mcw) <= tol).any() or (np.abs(hr - mcw) <= tol).any():
                return True  # a child weight sits on the validity edge
            bg = best_gain[i]
            if not np.isfinite(bg):
                return False  # every split invalid, by a clear margin
            if abs(bg - cfg.gamma) <= tol:
                return True  # leaf-vs-split decision is a coin toss
            near = gain[i] >= bg - tol * (1.0 + abs(bg))
            if np.count_nonzero(near) == 1:
                return False
            # Tied candidates with identical histogram values carry
            # identical noise — first-occurrence argmax resolves them
            # the same way the reference does.  Unequal values mean the
            # noise decides the winner: rescan.
            f, b = divmod(int(best[i]), nb - 1)
            return not (
                (g_left[i][near] == g_left[i][f, b]).all()
                and (h_left[i][near] == h_left[i][f, b]).all()
            )

        G, H = scan([rows0])
        # One frontier entry per still-growing node: [node, rows, g_sum,
        # h_sum, exact]; G[i]/H[i] are entry i's histograms, and exact
        # records whether they were scanned (vs derived by subtraction).
        frontier: list[list] = [[root, rows0, g0, h0, True]]
        depth = 0
        while frontier:
            m = len(frontier)
            g_sums = np.array([e[2] for e in frontier])
            h_sums = np.array([e[3] for e in frontier])
            gain, g_left, h_left, h_right = split_scores(G, H, g_sums, h_sums)
            flat = gain.reshape(m, -1)
            best = np.argmax(flat, axis=1)
            best_gain = flat[np.arange(m), best]

            redo = [i for i in range(m) if not frontier[i][4] and ambiguous(i)]
            if redo:
                Rg, Rh = scan([frontier[i][1] for i in redo])
                for slot, i in enumerate(redo):
                    G[i], H[i] = Rg[slot], Rh[slot]
                    frontier[i][4] = True
                sub = np.array(redo)
                gain_r, gl_r, hl_r, hr_r = split_scores(
                    Rg, Rh, g_sums[sub], h_sums[sub]
                )
                flat_r = gain_r.reshape(len(sub), -1)
                best_r = np.argmax(flat_r, axis=1)
                best[sub] = best_r
                best_gain[sub] = flat_r[np.arange(len(sub)), best_r]

            child_depth = depth + 1
            next_frontier: list[list] = []
            scan_rows: list[np.ndarray] = []
            # (next_frontier index, 'scan' slot) or
            # (next_frontier index, parent frontier index, sibling slot)
            fills: list[tuple] = []
            for i, (node, rows, g_sum, h_sum, _exact) in enumerate(frontier):
                if not best_gain[i] > cfg.gamma:
                    node.value = -lr * g_sum / (h_sum + lam)
                    continue
                f, b = divmod(int(best[i]), nb - 1)
                go_left = bins[rows, f] <= b
                left_rows = rows[go_left]
                right_rows = rows[~go_left]
                if len(left_rows) == 0 or len(right_rows) == 0:
                    node.value = -lr * g_sum / (h_sum + lam)
                    continue
                node.feature = f
                node.threshold = float(edges[f][b])
                node.left = _Node()
                node.right = _Node()

                live = []
                for child, child_rows in (
                    (node.left, left_rows),
                    (node.right, right_rows),
                ):
                    cg = grad[child_rows].sum()
                    ch = hess[child_rows].sum()
                    if child_depth >= cfg.max_depth or len(child_rows) < 2:
                        child.value = -lr * cg / (ch + lam)
                    else:
                        live.append([child, child_rows, cg, ch, True])
                if len(live) == 2:
                    # Histogram subtraction: scan the smaller child, the
                    # sibling's histogram is parent minus child.
                    small, big = (
                        (live[0], live[1])
                        if len(live[0][1]) <= len(live[1][1])
                        else (live[1], live[0])
                    )
                    slot = len(scan_rows)
                    scan_rows.append(small[1])
                    fills.append((len(next_frontier), slot))
                    next_frontier.append(small)
                    fills.append((len(next_frontier), i, slot))
                    next_frontier.append(big)
                elif live:
                    slot = len(scan_rows)
                    scan_rows.append(live[0][1])
                    fills.append((len(next_frontier), slot))
                    next_frontier.append(live[0])

            if not next_frontier:
                break
            Sg, Sh = scan(scan_rows)
            G2 = np.empty((len(next_frontier), d, nb))
            H2 = np.empty_like(G2)
            for fill in fills:
                if len(fill) == 2:
                    j, slot = fill
                    G2[j] = Sg[slot]
                    H2[j] = Sh[slot]
                else:
                    j, parent_i, slot = fill
                    np.subtract(G[parent_i], Sg[slot], out=G2[j])
                    np.subtract(H[parent_i], Sh[slot], out=H2[j])
                    next_frontier[j][4] = False
            frontier, G, H, depth = next_frontier, G2, H2, child_depth
        return root

    def _build_tree_reference(
        self, bins: np.ndarray, grad: np.ndarray, hess: np.ndarray
    ) -> _Node:
        """The pre-optimization grower (equivalence oracle): recursive
        depth-first growth re-scanning every (node, feature) pair."""
        cfg = self.config
        root_rows = np.arange(len(grad))

        def grow(rows: np.ndarray, depth: int) -> _Node:
            g_sum = grad[rows].sum()
            h_sum = hess[rows].sum()
            leaf_value = -cfg.learning_rate * g_sum / (h_sum + cfg.reg_lambda)
            if depth >= cfg.max_depth or len(rows) < 2:
                return _Node(value=leaf_value)
            best_gain = cfg.gamma
            best = None
            parent_score = g_sum * g_sum / (h_sum + cfg.reg_lambda)
            sub_bins = bins[rows]
            sub_g = grad[rows]
            sub_h = hess[rows]
            for f in range(bins.shape[1]):
                n_bins = len(self._bin_edges[f]) + 1
                if n_bins < 2:
                    continue
                fb = sub_bins[:, f]
                g_hist = np.bincount(fb, weights=sub_g, minlength=n_bins)
                h_hist = np.bincount(fb, weights=sub_h, minlength=n_bins)
                g_left = np.cumsum(g_hist)[:-1]
                h_left = np.cumsum(h_hist)[:-1]
                g_right = g_sum - g_left
                h_right = h_sum - h_left
                valid = (h_left >= cfg.min_child_weight) & (
                    h_right >= cfg.min_child_weight
                )
                if not valid.any():
                    continue
                gain = (
                    g_left * g_left / (h_left + cfg.reg_lambda)
                    + g_right * g_right / (h_right + cfg.reg_lambda)
                    - parent_score
                )
                gain = np.where(valid, gain, -np.inf)
                b = int(np.argmax(gain))
                if gain[b] > best_gain:
                    best_gain = float(gain[b])
                    best = (f, b)
            if best is None:
                return _Node(value=leaf_value)
            f, b = best
            threshold = self._bin_edges[f][b]
            go_left = sub_bins[:, f] <= b
            left_rows = rows[go_left]
            right_rows = rows[~go_left]
            if len(left_rows) == 0 or len(right_rows) == 0:
                return _Node(value=leaf_value)
            node = _Node(feature=f, threshold=float(threshold))
            node.left = grow(left_rows, depth + 1)
            node.right = grow(right_rows, depth + 1)
            return node

        return grow(root_rows, 0)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _predict_tree(self, tree: _Node, X: np.ndarray) -> np.ndarray:
        out = np.empty(len(X))

        def walk(node: _Node, rows: np.ndarray) -> None:
            if node.is_leaf:
                out[rows] = node.value
                return
            go_left = X[rows, node.feature] <= node.threshold
            walk(node.left, rows[go_left])
            walk(node.right, rows[~go_left])

        walk(tree, np.arange(len(X)))
        return out

    def _ensure_compiled(self) -> _CompiledEnsemble | None:
        """The flattened ensemble, built lazily for unpickled models."""
        compiled = self.__dict__.get("_compiled")
        if compiled is None and self.trees:
            compiled = _compile_trees(self.trees)
            self._compiled = compiled
        return compiled

    def predict_margin(self, X: np.ndarray) -> np.ndarray:
        """Accumulated score (the paper's s_V - s_NV margin).

        Runs on the compiled array representation: every row descends
        all trees simultaneously via index gathers, one loop iteration
        per tree level.  Bit-identical to
        :meth:`predict_margin_reference` (same comparisons; leaf values
        accumulated tree-by-tree in the same order).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        compiled = self._ensure_compiled()
        if compiled is None:
            return np.full(len(X), self.base_margin)
        n = len(X)
        idx = np.broadcast_to(compiled.roots, (n, len(compiled.roots))).copy()
        rows = np.arange(n)[:, None]
        for _ in range(compiled.max_depth):
            feat = compiled.feature[idx]
            internal = feat >= 0
            if not internal.any():
                break
            xv = X[rows, np.where(internal, feat, 0)]
            go_left = xv <= compiled.threshold[idx]
            step = np.where(go_left, compiled.left[idx], compiled.right[idx])
            idx = np.where(internal, step, idx)
        leaf_values = compiled.value[idx]  # (n, n_trees)
        margin = np.full(n, self.base_margin)
        for t in range(leaf_values.shape[1]):  # per-tree order, see docstring
            margin += leaf_values[:, t]
        return margin

    def predict_margin_reference(self, X: np.ndarray) -> np.ndarray:
        """The slow path: per-tree recursive walks (equivalence oracle)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        margin = np.full(len(X), self.base_margin)
        for tree in self.trees:
            margin += self._predict_tree(tree, X)
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of a QoS violation within the horizon, p_V."""
        return _sigmoid(self.predict_margin(X))

    def predict_proba_reference(self, X: np.ndarray) -> np.ndarray:
        """p_V via the recursive per-tree walk (equivalence oracle)."""
        return _sigmoid(self.predict_margin_reference(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(float)

    @property
    def n_trees_used(self) -> int:
        """Number of trees kept after early stopping (Table 3 column)."""
        return len(self.trees)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _logit(p: float) -> float:
    return float(np.log(p / (1.0 - p)))


def _logloss(margin: np.ndarray, y: np.ndarray) -> float:
    z = np.clip(margin, -60.0, 60.0)
    return float(np.mean(np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))))


__all__ = ["BoostedTrees", "BoostedTreesConfig"]
