"""Gradient-boosted trees: the long-term violation predictor.

The paper uses XGBoost for the binary task "will this allocation cause a
QoS violation within the next k intervals?", fed with the CNN's compact
latent variable ``L_f`` plus the candidate allocation (Section 3.2).
This is a from-scratch equivalent: histogram-based greedy split finding
with second-order (Newton) leaf weights and logistic loss, i.e. the core
of XGBoost's exact/approximate tree learner.

As in the paper, the model sums per-tree scores; the violation
probability is the logistic of the accumulated margin
(``p_V = e^{s_V} / (e^{s_V} + e^{s_{NV}})`` in the paper's two-score
formulation, equivalent to a sigmoid over the margin difference).

Inference is *compiled*: after ``fit`` the recursive node objects are
flattened into feature / threshold / child-index / leaf-value arrays and
``predict_margin`` walks all rows through all trees with vectorized
numpy gathers — no Python recursion on the predict path, which sits
inside every scheduler decision.  The flattened traversal performs the
same comparisons and accumulates leaf values tree-by-tree in the same
order, so its output is bit-identical to the recursive reference
(:meth:`BoostedTrees.predict_margin_reference`, kept for the
equivalence suite and ``repro bench``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import accuracy


@dataclass(frozen=True)
class BoostedTreesConfig:
    """Learner hyper-parameters (paper tunes max depth and tree count)."""

    n_trees: int = 400
    max_depth: int = 6
    learning_rate: float = 0.1
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_child_weight: float = 1.0
    n_bins: int = 64
    early_stopping_rounds: int = 25


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


@dataclass(frozen=True)
class _CompiledEnsemble:
    """Fitted trees flattened into arrays for vectorized traversal.

    Node ``i`` is internal iff ``feature[i] >= 0``; its children are
    ``left[i]`` / ``right[i]`` (indices into the same arrays).  Leaves
    carry their weight in ``value[i]``.  ``roots[t]`` is tree *t*'s root
    node and ``max_depth`` bounds the traversal loop.
    """

    feature: np.ndarray  # (n_nodes,) int32, -1 for leaves
    threshold: np.ndarray  # (n_nodes,) float64
    left: np.ndarray  # (n_nodes,) int32
    right: np.ndarray  # (n_nodes,) int32
    value: np.ndarray  # (n_nodes,) float64
    roots: np.ndarray  # (n_trees,) int32
    max_depth: int


def _compile_trees(trees: list[_Node]) -> _CompiledEnsemble | None:
    """Flatten recursive ``_Node`` trees into a :class:`_CompiledEnsemble`."""
    if not trees:
        return None
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[float] = []
    roots: list[int] = []
    max_depth = 0

    def emit(node: _Node, depth: int) -> int:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        idx = len(feature)
        feature.append(node.feature)
        threshold.append(node.threshold)
        left.append(-1)
        right.append(-1)
        value.append(node.value)
        if not node.is_leaf:
            left[idx] = emit(node.left, depth + 1)
            right[idx] = emit(node.right, depth + 1)
        return idx

    for tree in trees:
        roots.append(emit(tree, 0))
    return _CompiledEnsemble(
        feature=np.asarray(feature, dtype=np.int32),
        threshold=np.asarray(threshold, dtype=np.float64),
        left=np.asarray(left, dtype=np.int32),
        right=np.asarray(right, dtype=np.int32),
        value=np.asarray(value, dtype=np.float64),
        roots=np.asarray(roots, dtype=np.int32),
        max_depth=max_depth,
    )


class BoostedTrees:
    """Binary classifier: boosted regression trees on logistic loss."""

    def __init__(self, config: BoostedTreesConfig | None = None, seed: int = 0) -> None:
        self.config = config or BoostedTreesConfig()
        self._rng = np.random.default_rng(seed)
        self.trees: list[_Node] = []
        self.base_margin = 0.0
        self._compiled: _CompiledEnsemble | None = None
        self._bin_edges: list[np.ndarray] | None = None
        self.train_accuracy = float("nan")
        self.val_accuracy = float("nan")

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "BoostedTrees":
        """Fit with optional early stopping on validation error."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (B, D) aligned with y")
        if len(np.unique(y)) < 2:
            # Degenerate training set: constant prediction.
            self.base_margin = _logit(np.clip(y.mean(), 1e-6, 1 - 1e-6))
            self.trees = []
            self._compiled = None
            self.train_accuracy = accuracy(self.predict(X), y)
            if X_val is not None and y_val is not None:
                self.val_accuracy = accuracy(self.predict(X_val), y_val)
            return self

        cfg = self.config
        self._compiled = None
        self._bin_edges = self._make_bins(X)
        bins = self._binize(X)

        pos = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self.base_margin = _logit(pos)
        margin = np.full(len(y), self.base_margin)
        self.trees = []

        best_val = float("inf")
        best_n = 0
        stale = 0
        val_margin = None
        if X_val is not None and y_val is not None:
            y_val = np.asarray(y_val, dtype=float).ravel()
            val_margin = np.full(len(y_val), self.base_margin)

        for _ in range(cfg.n_trees):
            prob = _sigmoid(margin)
            grad = prob - y
            hess = np.maximum(prob * (1.0 - prob), 1e-12)
            tree = self._build_tree(bins, grad, hess)
            self.trees.append(tree)
            margin += self._predict_tree(tree, X)

            if val_margin is not None:
                val_margin += self._predict_tree(tree, X_val)
                val_loss = _logloss(val_margin, y_val)
                if val_loss < best_val - 1e-7:
                    best_val = val_loss
                    best_n = len(self.trees)
                    stale = 0
                else:
                    stale += 1
                    if stale >= cfg.early_stopping_rounds:
                        break

        if val_margin is not None and best_n:
            self.trees = self.trees[:best_n]
        self._compiled = _compile_trees(self.trees)
        self.train_accuracy = accuracy(self.predict(X), y)
        if X_val is not None and y_val is not None:
            self.val_accuracy = accuracy(self.predict(X_val), y_val)
        return self

    def _make_bins(self, X: np.ndarray) -> list[np.ndarray]:
        qs = np.linspace(0, 100, self.config.n_bins + 1)[1:-1]
        # One percentile pass over the whole matrix; only the (cheap,
        # ragged) dedup still loops over features.
        cuts = np.percentile(X, qs, axis=0)  # (Q, D)
        return [np.unique(cuts[:, f]) for f in range(X.shape[1])]

    def _binize(self, X: np.ndarray) -> np.ndarray:
        """Bin indices per element, matching ``searchsorted(side='right')``.

        One broadcast comparison pass per (row-chunked) matrix instead of
        a Python loop over features: bin = #edges <= x, evaluated as a
        (rows, features, edges) boolean reduction against the edge table
        padded with ``+inf``.
        """
        n, d = X.shape
        k = max((len(cuts) for cuts in self._bin_edges), default=0)
        if k == 0:
            return np.zeros(X.shape, dtype=np.int32)
        edges = np.full((d, k), np.inf)
        for f, cuts in enumerate(self._bin_edges):
            edges[f, : len(cuts)] = cuts
        counts = np.array([len(cuts) for cuts in self._bin_edges], dtype=np.int32)
        out = np.empty(X.shape, dtype=np.int32)
        # Chunk rows so the boolean intermediate stays ~32 MB.
        chunk = max(1, (1 << 25) // max(d * k, 1))
        for start in range(0, n, chunk):
            block = X[start : start + chunk]
            binned = (edges[None, :, :] <= block[:, :, None]).sum(
                axis=2, dtype=np.int32
            )
            nan = np.isnan(block)
            if nan.any():  # searchsorted sorts NaN above every edge
                binned[nan] = np.broadcast_to(counts, block.shape)[nan]
            out[start : start + chunk] = binned
        return out

    def _build_tree(self, bins: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> _Node:
        cfg = self.config
        root_rows = np.arange(len(grad))

        def grow(rows: np.ndarray, depth: int) -> _Node:
            g_sum = grad[rows].sum()
            h_sum = hess[rows].sum()
            leaf_value = -cfg.learning_rate * g_sum / (h_sum + cfg.reg_lambda)
            if depth >= cfg.max_depth or len(rows) < 2:
                return _Node(value=leaf_value)
            best_gain = cfg.gamma
            best = None
            parent_score = g_sum * g_sum / (h_sum + cfg.reg_lambda)
            sub_bins = bins[rows]
            sub_g = grad[rows]
            sub_h = hess[rows]
            for f in range(bins.shape[1]):
                n_bins = len(self._bin_edges[f]) + 1
                if n_bins < 2:
                    continue
                fb = sub_bins[:, f]
                g_hist = np.bincount(fb, weights=sub_g, minlength=n_bins)
                h_hist = np.bincount(fb, weights=sub_h, minlength=n_bins)
                g_left = np.cumsum(g_hist)[:-1]
                h_left = np.cumsum(h_hist)[:-1]
                g_right = g_sum - g_left
                h_right = h_sum - h_left
                valid = (h_left >= cfg.min_child_weight) & (
                    h_right >= cfg.min_child_weight
                )
                if not valid.any():
                    continue
                gain = (
                    g_left * g_left / (h_left + cfg.reg_lambda)
                    + g_right * g_right / (h_right + cfg.reg_lambda)
                    - parent_score
                )
                gain = np.where(valid, gain, -np.inf)
                b = int(np.argmax(gain))
                if gain[b] > best_gain:
                    best_gain = float(gain[b])
                    best = (f, b)
            if best is None:
                return _Node(value=leaf_value)
            f, b = best
            threshold = self._bin_edges[f][b]
            go_left = sub_bins[:, f] <= b
            left_rows = rows[go_left]
            right_rows = rows[~go_left]
            if len(left_rows) == 0 or len(right_rows) == 0:
                return _Node(value=leaf_value)
            node = _Node(feature=f, threshold=float(threshold))
            node.left = grow(left_rows, depth + 1)
            node.right = grow(right_rows, depth + 1)
            return node

        return grow(root_rows, 0)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _predict_tree(self, tree: _Node, X: np.ndarray) -> np.ndarray:
        out = np.empty(len(X))

        def walk(node: _Node, rows: np.ndarray) -> None:
            if node.is_leaf:
                out[rows] = node.value
                return
            go_left = X[rows, node.feature] <= node.threshold
            walk(node.left, rows[go_left])
            walk(node.right, rows[~go_left])

        walk(tree, np.arange(len(X)))
        return out

    def _ensure_compiled(self) -> _CompiledEnsemble | None:
        """The flattened ensemble, built lazily for unpickled models."""
        compiled = self.__dict__.get("_compiled")
        if compiled is None and self.trees:
            compiled = _compile_trees(self.trees)
            self._compiled = compiled
        return compiled

    def predict_margin(self, X: np.ndarray) -> np.ndarray:
        """Accumulated score (the paper's s_V - s_NV margin).

        Runs on the compiled array representation: every row descends
        all trees simultaneously via index gathers, one loop iteration
        per tree level.  Bit-identical to
        :meth:`predict_margin_reference` (same comparisons; leaf values
        accumulated tree-by-tree in the same order).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        compiled = self._ensure_compiled()
        if compiled is None:
            return np.full(len(X), self.base_margin)
        n = len(X)
        idx = np.broadcast_to(compiled.roots, (n, len(compiled.roots))).copy()
        rows = np.arange(n)[:, None]
        for _ in range(compiled.max_depth):
            feat = compiled.feature[idx]
            internal = feat >= 0
            if not internal.any():
                break
            xv = X[rows, np.where(internal, feat, 0)]
            go_left = xv <= compiled.threshold[idx]
            step = np.where(go_left, compiled.left[idx], compiled.right[idx])
            idx = np.where(internal, step, idx)
        leaf_values = compiled.value[idx]  # (n, n_trees)
        margin = np.full(n, self.base_margin)
        for t in range(leaf_values.shape[1]):  # per-tree order, see docstring
            margin += leaf_values[:, t]
        return margin

    def predict_margin_reference(self, X: np.ndarray) -> np.ndarray:
        """The slow path: per-tree recursive walks (equivalence oracle)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        margin = np.full(len(X), self.base_margin)
        for tree in self.trees:
            margin += self._predict_tree(tree, X)
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of a QoS violation within the horizon, p_V."""
        return _sigmoid(self.predict_margin(X))

    def predict_proba_reference(self, X: np.ndarray) -> np.ndarray:
        """p_V via the recursive per-tree walk (equivalence oracle)."""
        return _sigmoid(self.predict_margin_reference(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(float)

    @property
    def n_trees_used(self) -> int:
        """Number of trees kept after early stopping (Table 3 column)."""
        return len(self.trees)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _logit(p: float) -> float:
    return float(np.log(p / (1.0 - p)))


def _logloss(margin: np.ndarray, y: np.ndarray) -> float:
    z = np.clip(margin, -60.0, 60.0)
    return float(np.mean(np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))))


__all__ = ["BoostedTrees", "BoostedTreesConfig"]
