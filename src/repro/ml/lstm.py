"""LSTM latency model — the second Table 2 comparison point.

The paper rearranges the system history ``X_RH`` into a 2D tensor of
shape ``T x (F * N)`` for the LSTM; here the latency history ``X_LH``
(also per-timestep) is concatenated onto each timestep's feature vector,
and the candidate allocation joins after the recurrence.  LSTMs capture
the timeseries dimension well (the paper finds them close to the CNN,
and the fastest to run) but, like the MLP, they flatten away the
tier-adjacency structure.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Dense, LSTMCell, ReLU
from repro.ml.network import NeuralRegressor, Sequential


class LatencyLSTM(NeuralRegressor):
    """Recurrent latency predictor over per-timestep feature vectors."""

    def __init__(
        self,
        n_tiers: int,
        n_timesteps: int = 5,
        n_channels: int = 6,
        n_percentiles: int = 5,
        hidden: int = 48,
        rc_embed: int = 16,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.n_timesteps = n_timesteps
        step_dim = n_channels * n_tiers + n_percentiles
        self.lstm = LSTMCell(step_dim, hidden, rng)
        self.rc_branch = Sequential(Dense(n_tiers, rc_embed, rng), ReLU())
        self.head = Sequential(
            Dense(hidden + rc_embed, 32, rng), ReLU(), Dense(32, n_percentiles, rng)
        )

    def params(self) -> list[np.ndarray]:
        return self.lstm.params() + self.rc_branch.params() + self.head.params()

    def grads(self) -> list[np.ndarray]:
        return self.lstm.grads() + self.rc_branch.grads() + self.head.grads()

    def _sequence(self, inputs: tuple[np.ndarray, ...]) -> np.ndarray:
        """Build the (B, T, F*N + M) sequence from (X_RH, X_LH, X_RC)."""
        x_rh, x_lh, _ = inputs
        b, f, n, t = x_rh.shape
        # (B, F, N, T) -> (B, T, F*N): one feature vector per timestep.
        rh_seq = x_rh.transpose(0, 3, 1, 2).reshape(b, t, f * n)
        return np.concatenate([rh_seq, x_lh], axis=2)

    def forward_batch(self, inputs: tuple[np.ndarray, ...], training: bool = False) -> np.ndarray:
        seq = self._sequence(inputs)
        h = self.lstm.forward(seq, training)
        h_rc = self.rc_branch.forward(inputs[2], training)
        self._split = (h.shape[1], h_rc.shape[1])
        return self.head.forward(np.concatenate([h, h_rc], axis=1), training)

    def backward_batch(self, dout: np.ndarray) -> None:
        dconcat = self.head.backward(dout)
        a, _ = self._split
        self.lstm.backward(dconcat[:, :a])
        self.rc_branch.backward(dconcat[:, a:])


__all__ = ["LatencyLSTM"]
