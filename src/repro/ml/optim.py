"""Optimizers for the numpy networks.

The paper trains all neural models with stochastic gradient descent
(Section 3.1); SGD with momentum and weight decay is the default here,
with Adam available for the boosted experiments.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer over a flat list of (param, grad) arrays."""

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        self.params = params
        self.grads = grads

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled weight decay."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 1e-5,
        clip: float = 5.0,
    ) -> None:
        super().__init__(params, grads)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip = clip
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        for p, g, v in zip(self.params, self.grads, self._velocity):
            update = g
            if self.clip > 0:
                norm = np.linalg.norm(update)
                if norm > self.clip:
                    update = update * (self.clip / norm)
            v *= self.momentum
            v -= self.lr * update
            if self.weight_decay > 0:
                v -= self.lr * self.weight_decay * p
            p += v


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, grads)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, self.grads, self._m, self._v):
            grad = g + self.weight_decay * p if self.weight_decay > 0 else g
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


__all__ = ["Optimizer", "SGD", "Adam"]
