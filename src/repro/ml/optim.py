"""Optimizers for the numpy networks.

The paper trains all neural models with stochastic gradient descent
(Section 3.1); SGD with momentum and weight decay is the default here,
with Adam available for the boosted experiments.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer over a flat list of (param, grad) arrays."""

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        self.params = params
        self.grads = grads

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled weight decay."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 1e-5,
        clip: float = 5.0,
    ) -> None:
        super().__init__(params, grads)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip = clip
        self._velocity = [np.zeros_like(p) for p in params]
        self._scratch = [np.empty_like(p) for p in params]

    def step(self) -> None:
        # Every array op writes into v / p / a preallocated scratch
        # buffer — no per-step allocations, and the parameter objects
        # handed in at construction keep their identity.  Scalar factors
        # are folded first so the float rounding matches the previous
        # allocating formulation exactly.
        for p, g, v, buf in zip(self.params, self.grads, self._velocity, self._scratch):
            update = g
            if self.clip > 0:
                norm = np.linalg.norm(g)
                if norm > self.clip:
                    update = np.multiply(g, self.clip / norm, out=buf)
            v *= self.momentum
            np.multiply(update, self.lr, out=buf)
            v -= buf
            if self.weight_decay > 0:
                np.multiply(p, self.lr * self.weight_decay, out=buf)
                v -= buf
            p += v


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, grads)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._scratch = [(np.empty_like(p), np.empty_like(p)) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        # In-place throughout (two scratch buffers per parameter), with
        # operations ordered to reproduce the rounding of the previous
        # allocating expressions bit for bit.
        for p, g, m, v, (ba, bb) in zip(
            self.params, self.grads, self._m, self._v, self._scratch
        ):
            if self.weight_decay > 0:
                np.multiply(p, self.weight_decay, out=ba)
                grad = np.add(g, ba, out=ba)
            else:
                grad = g
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=bb)
            m += bb
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=bb)
            bb *= grad
            v += bb
            np.divide(v, bc2, out=bb)
            np.sqrt(bb, out=bb)
            bb += self.eps
            np.divide(m, bc1, out=ba)
            ba *= self.lr
            ba /= bb
            p -= ba


__all__ = ["Optimizer", "SGD", "Adam"]
