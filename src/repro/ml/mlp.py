"""MLP latency model — the first Table 2 comparison point.

The paper flattens the system history ``X_RH`` into a 1D vector of shape
``T * F * N`` for the MLP; the latency history and candidate allocation
are concatenated onto the same flat vector.  Width/depth were grown
until accuracy levelled off, which leaves the MLP with by far the
largest parameter count of the three models (1.4 MB in the paper)
and the worst RMSE — the flat encoding discards the tier-adjacency
structure the CNN exploits.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Dense, ReLU
from repro.ml.network import NeuralRegressor, Sequential


class LatencyMLP(NeuralRegressor):
    """Fully-connected latency predictor over flattened inputs."""

    def __init__(
        self,
        n_tiers: int,
        n_timesteps: int = 5,
        n_channels: int = 6,
        n_percentiles: int = 5,
        hidden: tuple[int, ...] = (256, 128, 64),
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.n_percentiles = n_percentiles
        in_dim = n_timesteps * n_channels * n_tiers + n_timesteps * n_percentiles + n_tiers
        layers: list = []
        prev = in_dim
        for width in hidden:
            layers += [Dense(prev, width, rng), ReLU()]
            prev = width
        layers.append(Dense(prev, n_percentiles, rng))
        self.net = Sequential(*layers)

    def params(self) -> list[np.ndarray]:
        return self.net.params()

    def grads(self) -> list[np.ndarray]:
        return self.net.grads()

    @staticmethod
    def flatten_inputs(inputs: tuple[np.ndarray, ...]) -> np.ndarray:
        """Concatenate (X_RH, X_LH, X_RC) into the MLP's flat vector."""
        x_rh, x_lh, x_rc = inputs
        b = x_rh.shape[0]
        return np.concatenate(
            [x_rh.reshape(b, -1), x_lh.reshape(b, -1), x_rc.reshape(b, -1)], axis=1
        )

    def forward_batch(self, inputs: tuple[np.ndarray, ...], training: bool = False) -> np.ndarray:
        return self.net.forward(self.flatten_inputs(inputs), training)

    def backward_batch(self, dout: np.ndarray) -> None:
        self.net.backward(dout)


__all__ = ["LatencyMLP"]
