"""Network composition and the shared mini-batch training loop.

``Sequential`` chains layers; ``NeuralRegressor`` is the base class for
all neural latency models (CNN / MLP / LSTM / multi-task), providing the
SGD mini-batch loop with validation tracking that the paper uses for all
its networks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ml.layers import Layer
from repro.ml.losses import MSELoss
from repro.ml.metrics import model_size_kb, rmse
from repro.ml.optim import SGD


class Sequential(Layer):
    """Chain of layers applied in order."""

    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads()]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout


@dataclass
class FitResult:
    """Training summary for one ``fit`` call."""

    train_loss: list[float] = field(default_factory=list)
    val_rmse: list[float] = field(default_factory=list)
    epoch_time_s: list[float] = field(default_factory=list)
    train_rmse_final: float = float("nan")
    val_rmse_final: float = float("nan")
    epochs_run: int = 0


class NeuralRegressor:
    """Base class: multi-input regression network trained with SGD.

    Subclasses implement ``forward_batch`` / ``backward_batch`` over a
    tuple of input arrays and expose ``params()``/``grads()``.
    """

    def params(self) -> list[np.ndarray]:
        raise NotImplementedError

    def grads(self) -> list[np.ndarray]:
        raise NotImplementedError

    def forward_batch(self, inputs: tuple[np.ndarray, ...], training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward_batch(self, dout: np.ndarray) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------

    @property
    def n_params(self) -> int:
        return int(sum(p.size for p in self.params()))

    def set_fast_train(self, flag: bool) -> None:
        """Toggle the fast training paths (im2col Conv2D, fused LSTM)
        on every layer of the model.

        ``False`` selects the reference implementations that serve as
        the training-path oracles; ``True`` (the layer default) the
        GEMM-based fast paths.  Only layers that define a ``fast_train``
        class attribute are touched.
        """
        for attr in vars(self).values():
            layers = attr.layers if isinstance(attr, Sequential) else [attr]
            for layer in layers:
                if isinstance(layer, Layer) and hasattr(type(layer), "fast_train"):
                    layer.fast_train = bool(flag)

    @property
    def size_kb(self) -> float:
        """Serialized model size (float32 KB), the Table 2 column."""
        return model_size_kb(self.params())

    def predict(self, inputs: tuple[np.ndarray, ...], batch_size: int = 4096) -> np.ndarray:
        """Forward pass in inference mode, batched to bound memory."""
        n = len(inputs[0])
        chunks = []
        for start in range(0, n, batch_size):
            batch = tuple(x[start : start + batch_size] for x in inputs)
            chunks.append(self.forward_batch(batch, training=False))
        return np.concatenate(chunks)

    def fit(
        self,
        inputs: tuple[np.ndarray, ...],
        targets: np.ndarray,
        val_inputs: tuple[np.ndarray, ...] | None = None,
        val_targets: np.ndarray | None = None,
        loss=None,
        epochs: int = 30,
        batch_size: int = 512,
        lr: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 1e-5,
        seed: int = 0,
        patience: int = 8,
        verbose: bool = False,
    ) -> FitResult:
        """Mini-batch SGD with optional early stopping on validation RMSE.

        ``lr`` can be lowered by two orders of magnitude for fine-tuning,
        which is exactly how the paper performs incremental retraining
        (Section 5.4: initial learning rate 1e-5 = lambda/100).
        """
        loss = loss or MSELoss()
        rng = np.random.default_rng(seed)
        optimizer = SGD(
            self.params(), self.grads(), lr=lr, momentum=momentum, weight_decay=weight_decay
        )
        n = len(targets)
        result = FitResult()
        best_val = float("inf")
        best_params: list[np.ndarray] | None = None
        have_best = False
        stale = 0

        # Preallocate the shuffle permutation and the batch gather
        # buffers once; epochs refill them in place.  Resetting
        # ``order`` to arange before each shuffle keeps the RNG stream
        # (and therefore batch composition) identical to the previous
        # per-epoch ``rng.permutation(n)``.
        base_order = np.arange(n)
        order = np.empty_like(base_order)
        max_b = min(batch_size, n) if n else 0
        in_bufs = tuple(
            np.empty((max_b,) + x.shape[1:], dtype=x.dtype) for x in inputs
        )
        target_buf = np.empty((max_b,) + targets.shape[1:], dtype=targets.dtype)

        for epoch in range(epochs):
            tick = time.perf_counter()
            order[...] = base_order
            rng.shuffle(order)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                m = len(idx)
                # Gather into the reusable buffers: backward runs
                # before the next batch overwrites them.
                batch_in = tuple(
                    np.take(x, idx, axis=0, out=buf[:m])
                    for x, buf in zip(inputs, in_bufs)
                )
                pred = self.forward_batch(batch_in, training=True)
                batch_loss, grad = loss(
                    pred, np.take(targets, idx, axis=0, out=target_buf[:m])
                )
                self.backward_batch(grad)
                optimizer.step()
                epoch_loss += batch_loss
                batches += 1
            result.train_loss.append(epoch_loss / max(batches, 1))
            result.epoch_time_s.append(time.perf_counter() - tick)
            result.epochs_run = epoch + 1

            if val_inputs is not None and val_targets is not None:
                val_pred = self.predict(val_inputs)
                val_score = rmse(val_pred, val_targets)
                result.val_rmse.append(val_score)
                if verbose:
                    print(
                        f"epoch {epoch + 1}: loss={result.train_loss[-1]:.4f} "
                        f"val_rmse={val_score:.2f}"
                    )
                if val_score < best_val - 1e-6:
                    best_val = val_score
                    if best_params is None:
                        best_params = [np.empty_like(p) for p in self.params()]
                    for dst, p in zip(best_params, self.params()):
                        np.copyto(dst, p)
                    have_best = True
                    stale = 0
                else:
                    stale += 1
                    if patience and stale >= patience:
                        break

        if have_best and best_params is not None:
            for p, best in zip(self.params(), best_params):
                p[...] = best
        result.train_rmse_final = rmse(self.predict(inputs), targets)
        if val_inputs is not None and val_targets is not None:
            result.val_rmse_final = rmse(self.predict(val_inputs), val_targets)
        return result


__all__ = ["Sequential", "NeuralRegressor", "FitResult"]
