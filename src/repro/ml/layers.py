"""Neural-network layers with manual backpropagation.

Minimal but complete: every layer implements ``forward``/``backward``
and exposes parameter/gradient pairs for the optimizers in
:mod:`repro.ml.optim`.  Convolution uses im2col so the heavy lifting is
a single matrix multiply.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base class: stateless by default (no parameters)."""

    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (mutated in place by optimizers)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradient arrays, aligned with :meth:`params`."""
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def n_params(self) -> int:
        return int(sum(p.size for p in self.params()))


class Dense(Layer):
    """Fully-connected layer ``y = x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        scale = np.sqrt(2.0 / in_dim)
        self.W = rng.normal(0.0, scale, size=(in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, dout: np.ndarray) -> np.ndarray:
        self.dW[...] = self._x.T @ dout
        self.db[...] = dout.sum(axis=0)
        return dout @ self.W.T


class ReLU(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout * self._mask


class Sigmoid(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout * self._y * (1.0 - self._y)


class Tanh(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout * (1.0 - self._y * self._y)


class Flatten(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout.reshape(self._shape)


class Conv2D(Layer):
    """Stride-1 "same" 2D convolution over (B, C, H, W) tensors.

    In the latency predictor, H indexes tiers and W indexes timestamps,
    so a k x k kernel fuses k adjacent tiers over k adjacent intervals —
    how the paper's CNN learns inter-tier dependencies (Section 3.1).

    Two implementations coexist, selected per call:

    * **Inference** always uses sliding-window views and ``einsum``.
      The einsum contraction is batch-invariant down to the bit, which
      the shared-trunk decision fast path depends on (see
      :meth:`repro.ml.cnn.LatencyCNN.predict_candidates`) — it must not
      be swapped for a GEMM, whose rounding depends on the batch size.
    * **Training** (``forward(..., training=True)`` with ``fast_train``
      on, the default) materializes the im2col matrix once and runs a
      single GEMM forward; backward is one GEMM for ``dW`` (against the
      saved im2col matrix) and one GEMM back to column space followed
      by a col2im fold for ``dx`` — no einsum materialization of the
      (B, C, H, W, k, k) gradient tensor.  The einsum forward plus
      tap-loop backward is kept as the gradient oracle (``fast_train =
      False``); outputs and gradients agree to float rounding (~1e-10
      tolerance in the tests).
    """

    #: Training-path toggle (class default; instances may override).
    fast_train = True

    def __init__(
        self, in_ch: int, out_ch: int, kernel: int, rng: np.random.Generator
    ) -> None:
        if kernel % 2 == 0:
            raise ValueError("kernel must be odd for 'same' padding")
        scale = np.sqrt(2.0 / (in_ch * kernel * kernel))
        self.W = rng.normal(0.0, scale, size=(in_ch, kernel, kernel, out_ch))
        self.b = np.zeros(out_ch)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.kernel = kernel
        self.in_ch = in_ch
        self.out_ch = out_ch
        self._fwd_path: tuple[tuple, list] | None = None
        self._mode = "einsum"

    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        B, C, H, W = x.shape
        if C != self.in_ch:
            raise ValueError(f"expected {self.in_ch} channels, got {C}")
        if training and self.fast_train:
            return self._forward_im2col(x)
        return self._forward_einsum(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self.__dict__.get("_mode", "einsum") == "im2col":
            return self._backward_im2col(dout)
        return self._backward_einsum(dout)

    # -- im2col fast training path -------------------------------------

    def _forward_im2col(self, x: np.ndarray) -> np.ndarray:
        B, C, H, W = x.shape
        k = self.kernel
        pad = k // 2
        self._x_shape = x.shape
        self._mode = "im2col"
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        # im2col matrix (C*k*k, B*H*W), filled one kernel tap at a time:
        # each tap is a (C, B, H, W) slice copy with a contiguous
        # destination, which on these small feature maps is much faster
        # than one big transpose of the 6D sliding-window view.  Rows
        # follow the (c, i, j) order of W.reshape(C*k*k, O); BLAS
        # handles the transposed GEMM operand without a copy.
        cols = np.empty((C, k, k, B, H, W))
        for i in range(k):
            for j in range(k):
                np.copyto(
                    cols[:, i, j],
                    xp[:, :, i : i + H, j : j + W].transpose(1, 0, 2, 3),
                )
        self._cols = cols.reshape(C * k * k, B * H * W)
        out = self._cols.T @ self.W.reshape(C * k * k, self.out_ch)
        out += self.b
        return out.reshape(B, H, W, self.out_ch).transpose(0, 3, 1, 2)

    def _backward_im2col(self, dout: np.ndarray) -> np.ndarray:
        B, C, H, W = self._x_shape
        k = self.kernel
        pad = k // 2
        O = self.out_ch
        dout_mat = dout.transpose(0, 2, 3, 1).reshape(B * H * W, O)
        self.dW[...] = (self._cols @ dout_mat).reshape(C, k, k, O)
        self.db[...] = dout_mat.sum(axis=0)
        # dx: one GEMM back to column space, then fold the k*k taps
        # onto the padded input (col2im).
        dcols = (self.W.reshape(C * k * k, O) @ dout_mat.T).reshape(
            C, k, k, B, H, W
        )
        dxp = np.zeros((B, C, H + 2 * pad, W + 2 * pad), dtype=dout.dtype)
        dst = dxp.transpose(1, 0, 2, 3)
        for i in range(k):
            for j in range(k):
                dst[:, :, i : i + H, j : j + W] += dcols[:, i, j]
        if pad:
            return dxp[:, :, pad:-pad, pad:-pad]
        return dxp

    # -- einsum inference path / training oracle -----------------------

    def _forward_einsum(self, x: np.ndarray) -> np.ndarray:
        pad = self.kernel // 2
        self._x_shape = x.shape
        self._mode = "einsum"
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        # (B, C, H, W, k, k) zero-copy view of all kernel positions.
        self._windows = np.lib.stride_tricks.sliding_window_view(
            xp, (self.kernel, self.kernel), axis=(2, 3)
        )
        # The greedy contraction-path search is a per-call cost worth
        # skipping on the decision hot path: memoize it per input shape.
        cached = self.__dict__.get("_fwd_path")
        if cached is None or cached[0] != self._windows.shape:
            path = np.einsum_path(
                "bchwij,cijo->bhwo", self._windows, self.W, optimize=True
            )[0]
            self._fwd_path = cached = (self._windows.shape, path)
        out = np.einsum(
            "bchwij,cijo->bhwo", self._windows, self.W, optimize=cached[1]
        )
        out += self.b
        return out.transpose(0, 3, 1, 2)

    def _backward_einsum(self, dout: np.ndarray) -> np.ndarray:
        B, C, H, W = self._x_shape
        k = self.kernel
        pad = k // 2
        dout_hw = dout.transpose(0, 2, 3, 1)
        self.dW[...] = np.einsum(
            "bchwij,bhwo->cijo", self._windows, dout_hw, optimize=True
        )
        self.db[...] = dout_hw.sum(axis=(0, 1, 2))
        # dx: scatter each kernel tap's contribution back onto the input.
        dwin = np.einsum("bhwo,cijo->bchwij", dout_hw, self.W, optimize=True)
        dxp = np.zeros((B, C, H + 2 * pad, W + 2 * pad), dtype=dout.dtype)
        for i in range(k):
            for j in range(k):
                dxp[:, :, i : i + H, j : j + W] += dwin[..., i, j]
        if pad:
            return dxp[:, :, pad:-pad, pad:-pad]
        return dxp


class LSTMCell(Layer):
    """Single-layer LSTM over (B, T, D) sequences, returning (B, H).

    Standard gates with fused weight matrix; full backpropagation
    through time.  Used by the Table 2 LSTM comparison model.

    The default (``fast_train = True``) path hoists the input half of
    the gate projection out of the timestep loop — one ``(B*T, D) @
    (D, 4H)`` GEMM for the whole sequence — and leaves only the ``h @
    W_h`` recurrence per step; backward writes the four gate gradients
    into one preallocated ``(B, T, 4H)`` buffer (no per-step
    ``concatenate``), accumulates ``dW_h`` per step, and recovers
    ``dW_x`` / ``dx`` / ``db`` with single whole-sequence GEMMs.  The
    original per-step concatenated formulation is kept as the gradient
    oracle (``fast_train = False``); the two agree to float rounding
    (~1e-10 in the tests) since a split GEMM sums products in a
    different order than the fused one.
    """

    #: Training-path toggle (class default; instances may override).
    fast_train = True

    def __init__(self, in_dim: int, hidden: int, rng: np.random.Generator) -> None:
        scale = np.sqrt(1.0 / (in_dim + hidden))
        self.W = rng.normal(0.0, scale, size=(in_dim + hidden, 4 * hidden))
        self.b = np.zeros(4 * hidden)
        # Forget-gate bias starts positive: remember by default.
        self.b[hidden : 2 * hidden] = 1.0
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.hidden = hidden
        self.in_dim = in_dim

    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.fast_train:
            return self._forward_fused(x)
        return self._forward_reference(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self.__dict__.get("_mode", "reference") == "fused":
            return self._backward_fused(dout)
        return self._backward_reference(dout)

    # -- fused fast path -----------------------------------------------

    def _buffers(self, B: int, T: int) -> None:
        """(Re)allocate the per-sequence caches only on a shape change."""
        H = self.hidden
        cached = self.__dict__.get("_buf_shape")
        if cached == (B, T):
            return
        self._buf_shape = (B, T)
        self._gate_acts = np.empty((4, B, T, H))  # i, f, o, g
        self._c_prev = np.empty((B, T, H))
        self._tanh_c = np.empty((B, T, H))
        self._h_prev = np.empty((B, T, H))
        self._dgates = np.empty((B, T, 4 * H))

    def _forward_fused(self, x: np.ndarray) -> np.ndarray:
        B, T, D = x.shape
        H = self.hidden
        self._x = x
        self._mode = "fused"
        self._buffers(B, T)
        # All timestep input projections in one GEMM; the recurrence
        # keeps only the (B, H) @ (H, 4H) product per step.
        x_proj = (x.reshape(B * T, D) @ self.W[:D]).reshape(B, T, 4 * H)
        W_h = self.W[D:]
        h = np.zeros((B, H))
        c = np.zeros((B, H))
        ig, fg, og, gg = self._gate_acts
        for t in range(T):
            self._h_prev[:, t] = h
            self._c_prev[:, t] = c
            gates = h @ W_h
            gates += x_proj[:, t]
            gates += self.b
            i = _sigmoid(gates[:, :H])
            f = _sigmoid(gates[:, H : 2 * H])
            o = _sigmoid(gates[:, 2 * H : 3 * H])
            g = np.tanh(gates[:, 3 * H :])
            ig[:, t], fg[:, t], og[:, t], gg[:, t] = i, f, o, g
            c = f * c + i * g
            tanh_c = np.tanh(c)
            self._tanh_c[:, t] = tanh_c
            h = o * tanh_c
        return h

    def _backward_fused(self, dout: np.ndarray) -> np.ndarray:
        x = self._x
        B, T, D = x.shape
        H = self.hidden
        W_h = self.W[D:]
        ig, fg, og, gg = self._gate_acts
        dgates = self._dgates
        dWh = np.zeros((H, 4 * H))
        dh = dout
        dc = np.zeros((B, H))
        for t in reversed(range(T)):
            i, f, o, g = ig[:, t], fg[:, t], og[:, t], gg[:, t]
            tanh_c = self._tanh_c[:, t]
            do = dh * tanh_c
            dc = dc + dh * o * (1.0 - tanh_c * tanh_c)
            dg_t = dgates[:, t]
            np.multiply((dc * g) * i, 1.0 - i, out=dg_t[:, :H])
            np.multiply((dc * self._c_prev[:, t]) * f, 1.0 - f, out=dg_t[:, H : 2 * H])
            np.multiply(do * o, 1.0 - o, out=dg_t[:, 2 * H : 3 * H])
            np.multiply(dc * i, 1.0 - g * g, out=dg_t[:, 3 * H :])
            dWh += self._h_prev[:, t].T @ dg_t
            dh = dg_t @ W_h.T
            dc = dc * f
        flat = dgates.reshape(B * T, 4 * H)
        self.dW[:D] = x.reshape(B * T, D).T @ flat
        self.dW[D:] = dWh
        self.db[...] = flat.sum(axis=0)
        return (flat @ self.W[:D].T).reshape(B, T, D)

    # -- per-step reference (gradient oracle) --------------------------

    def _forward_reference(self, x: np.ndarray) -> np.ndarray:
        B, T, D = x.shape
        H = self.hidden
        h = np.zeros((B, H))
        c = np.zeros((B, H))
        self._cache = []
        self._x = x
        self._mode = "reference"
        for t in range(T):
            z = np.concatenate([x[:, t], h], axis=1)
            gates = z @ self.W + self.b
            i = _sigmoid(gates[:, :H])
            f = _sigmoid(gates[:, H : 2 * H])
            o = _sigmoid(gates[:, 2 * H : 3 * H])
            g = np.tanh(gates[:, 3 * H :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            self._cache.append((z, i, f, o, g, c, tanh_c))
            h, c = h_new, c_new
        return h

    def _backward_reference(self, dout: np.ndarray) -> np.ndarray:
        B, T, D = self._x.shape
        H = self.hidden
        self.dW[...] = 0.0
        self.db[...] = 0.0
        dx = np.zeros_like(self._x)
        dh = dout
        dc = np.zeros((B, H))
        for t in reversed(range(T)):
            z, i, f, o, g, c_prev, tanh_c = self._cache[t]
            do = dh * tanh_c
            dc = dc + dh * o * (1.0 - tanh_c * tanh_c)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dgates = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    do * o * (1.0 - o),
                    dg * (1.0 - g * g),
                ],
                axis=1,
            )
            self.dW += z.T @ dgates
            self.db += dgates.sum(axis=0)
            dz = dgates @ self.W.T
            dx[:, t] = dz[:, :D]
            dh = dz[:, D:]
            dc = dc * f
        return dx


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Conv2D",
    "LSTMCell",
]
