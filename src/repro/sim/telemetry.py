"""Interval telemetry: the cgroup-style metrics Sinan consumes.

The paper's per-node agents read Docker's cgroup interface once per 1 s
decision interval: CPU usage, memory usage (resident set size and cache
memory), and network usage (received/sent packets).  End-to-end latency
percentiles (95th-99th) come from the API gateway.  No per-request
tracing is required (paper Section 3.1); the same holds here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Latency percentiles reported per interval (paper: 95th to 99th).
LATENCY_PERCENTILES: tuple[int, ...] = (95, 96, 97, 98, 99)

#: Per-tier resource channels, the ``F`` axis of the CNN input tensor.
RESOURCE_CHANNELS: tuple[str, ...] = (
    "cpu_util",
    "cpu_alloc",
    "rss_mb",
    "cache_mb",
    "rx_pps",
    "tx_pps",
)

#: Channel indices used by the feature pipeline.
CPU_UTIL_CHANNEL = 0
CPU_ALLOC_CHANNEL = 1


@dataclass
class IntervalStats:
    """Telemetry for one 1 s decision interval.

    All per-tier arrays are indexed consistently with
    :attr:`repro.sim.graph.AppGraph.tier_names`.
    """

    time: float
    """End time of the interval (seconds since episode start)."""

    rps: float
    """Total offered requests per second during the interval."""

    rps_by_type: dict[str, float]
    """Offered load decomposed per request type."""

    cpu_alloc: np.ndarray
    """Per-tier CPU limit in cores (the knob managers turn)."""

    cpu_util: np.ndarray
    """Per-tier CPU utilization in [0, 1] relative to the limit."""

    rss_mb: np.ndarray
    """Per-tier resident set size (MB)."""

    cache_mb: np.ndarray
    """Per-tier page-cache memory (MB)."""

    rx_pps: np.ndarray
    """Per-tier received packets per second."""

    tx_pps: np.ndarray
    """Per-tier transmitted packets per second."""

    queue: np.ndarray
    """Per-tier queue length at interval end (simulator ground truth;
    exposed for PowerChief's queueing analysis and for diagnostics, not
    used by Sinan's models)."""

    latency_ms: np.ndarray
    """End-to-end tail latencies at :data:`LATENCY_PERCENTILES` (ms)."""

    drops: float = 0.0
    """Requests dropped this interval due to queue overflow."""

    latency_samples_ms: np.ndarray | None = None
    """Raw sampled end-to-end latencies (ms), when retained."""

    @property
    def p99_ms(self) -> float:
        """99th-percentile end-to-end latency, the paper's QoS metric."""
        return float(self.latency_ms[LATENCY_PERCENTILES.index(99)])

    @property
    def total_cpu(self) -> float:
        """Aggregate CPU allocation across tiers (paper Figure 11 metric)."""
        return float(self.cpu_alloc.sum())

    def resource_matrix(self) -> np.ndarray:
        """Stack the resource channels into an ``(F, N)`` matrix."""
        return np.stack(
            [
                self.cpu_util,
                self.cpu_alloc,
                self.rss_mb,
                self.cache_mb,
                self.rx_pps,
                self.tx_pps,
            ]
        )


class TelemetryLog:
    """Append-only history of :class:`IntervalStats` for one episode.

    Provides the windowed views the feature encoder needs (the CNN looks
    at the last ``T`` intervals) and summary series for reporting.
    """

    def __init__(self) -> None:
        self._stats: list[IntervalStats] = []

    def append(self, stats: IntervalStats) -> None:
        self._stats.append(stats)

    def __len__(self) -> int:
        return len(self._stats)

    def __getitem__(self, idx):
        return self._stats[idx]

    def __iter__(self):
        return iter(self._stats)

    @property
    def latest(self) -> IntervalStats:
        if not self._stats:
            raise IndexError("telemetry log is empty")
        return self._stats[-1]

    def window(self, length: int) -> list[IntervalStats]:
        """Last ``length`` intervals, left-padded by repeating the oldest.

        Padding keeps the encoder shape-stable during the first seconds of
        an episode, matching how the paper's agent warms up its history
        buffer.
        """
        if length <= 0:
            raise ValueError(f"window length must be >= 1, got {length}")
        if not self._stats:
            raise IndexError("telemetry log is empty")
        tail = self._stats[-length:]
        if len(tail) < length:
            tail = [tail[0]] * (length - len(tail)) + tail
        return tail

    def p99_series(self) -> np.ndarray:
        """End-to-end p99 latency per interval (ms)."""
        return np.array([s.p99_ms for s in self._stats])

    def latency_matrix(self) -> np.ndarray:
        """``(intervals, percentiles)`` latency history (ms)."""
        return np.stack([s.latency_ms for s in self._stats])

    def total_cpu_series(self) -> np.ndarray:
        """Aggregate CPU allocation per interval."""
        return np.array([s.total_cpu for s in self._stats])

    def alloc_matrix(self) -> np.ndarray:
        """``(intervals, tiers)`` CPU allocation history."""
        return np.stack([s.cpu_alloc for s in self._stats])

    def rps_series(self) -> np.ndarray:
        """Total offered RPS per interval."""
        return np.array([s.rps for s in self._stats])

    def qos_meet_fraction(self, qos_ms: float) -> float:
        """Fraction of intervals whose p99 met the QoS target."""
        if not self._stats:
            return 1.0
        p99 = self.p99_series()
        return float(np.mean(p99 <= qos_ms))


__all__ = [
    "IntervalStats",
    "TelemetryLog",
    "LATENCY_PERCENTILES",
    "RESOURCE_CHANNELS",
]
