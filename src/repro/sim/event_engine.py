"""Per-request discrete-event simulator (validation substrate).

The main engine (:mod:`repro.sim.engine`) is a fluid queueing model —
fast enough to generate tens of thousands of training intervals on one
core.  This module provides an independent, per-request discrete-event
simulation of the same tier specifications: every request is an object
that traverses its stage DAG, queues FCFS at each tier, and occupies a
server for its sampled service time.

It exists to *validate* the fluid engine: under matched scenarios the
two must agree on the qualitative physics (who violates, how queues
grow, how latency scales with allocation), which
``benchmarks/test_validation_event_engine.py`` checks.  It is 1-2
orders of magnitude slower, so the training pipeline never uses it.

Model per tier:

* ``servers = ceil(alloc)`` FCFS servers, each running at
  ``alloc / ceil(alloc)`` cores (a sub-core limit slows the single
  server; 2.5 cores are three servers at 0.83 speed),
* service time per visit = ``cpu_per_req * work / speed`` with
  lognormal noise, plus the tier's base latency,
* a finite queue; arrivals beyond it are dropped and booked at the
  client-timeout latency.

Stages of a request run sequentially; tiers within a stage in parallel
(the request advances when the slowest parallel visit finishes), the
same composition rule the fluid engine uses.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.sim.graph import AppGraph
from repro.sim.telemetry import LATENCY_PERCENTILES


@dataclass(frozen=True)
class EventEngineConfig:
    """Physics knobs; mirrors the fluid engine's defaults."""

    noise_sigma: float = 0.22
    max_queue: int = 4000
    drop_latency: float = 5.0
    service_mult: float = 1.0
    base_lat_mult: float = 1.0


@dataclass
class _Request:
    rtype: int
    arrival: float
    stage: int = 0
    pending: int = 0
    dropped: bool = False
    sampled: bool = False
    """Deterministically chosen for tracing (every tier visit of a
    sampled request becomes a span)."""


@dataclass
class _Visit:
    request: _Request
    work: float


class _TierServer:
    """FCFS multi-server station for one tier."""

    def __init__(self, spec, config: EventEngineConfig) -> None:
        self.spec = spec
        self.config = config
        self.queue: deque[_Visit] = deque()
        self.busy = 0
        self.set_alloc(spec.min_cpu)
        self.completed_work = 0.0

    def set_alloc(self, alloc: float) -> None:
        self.alloc = float(alloc)
        self.servers = max(int(math.ceil(alloc)), 1)
        self.speed = alloc / self.servers

    def service_time(self, work: float, rng: np.random.Generator) -> float:
        cfg = self.config
        mean = self.spec.cpu_per_req * cfg.service_mult * work / self.speed
        sigma = cfg.noise_sigma
        noise = rng.lognormal(-0.5 * sigma * sigma, sigma)
        return mean * noise + self.spec.base_latency * cfg.base_lat_mult


class EventDrivenEngine:
    """Discrete-event simulation of one application deployment.

    Parameters mirror :class:`~repro.sim.engine.QueueingEngine`; the
    entry point is :meth:`run`, which simulates a constant offered load
    for a duration and returns per-interval latency percentiles.
    """

    def __init__(
        self,
        graph: AppGraph,
        config: EventEngineConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.config = config or EventEngineConfig()
        self._rng = np.random.default_rng(seed)
        self.tiers = [_TierServer(spec, self.config) for spec in graph.tiers]
        self._events: list[tuple[float, int, str, object]] = []
        self._seq = 0
        self.time = 0.0
        self.latencies: list[tuple[float, float]] = []
        self.dropped = 0
        self._arrivals = 0
        self.recorder = None
        """Observability handle; ``None``/no-op means off (see
        :func:`repro.obs.recorder.attach_recorder`)."""

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _push(self, when: float, kind: str, payload) -> None:
        self._seq += 1
        heapq.heappush(self._events, (when, self._seq, kind, payload))

    def _start_or_queue(self, tier_idx: int, visit: _Visit) -> None:
        tier = self.tiers[tier_idx]
        if tier.busy < tier.servers:
            tier.busy += 1
            svc = tier.service_time(visit.work, self._rng)
            if visit.request.sampled:
                self._visit_span(tier_idx, self.time, svc)
            self._push(self.time + svc, "done", (tier_idx, visit))
        elif len(tier.queue) < self.config.max_queue:
            tier.queue.append(visit)
        else:
            visit.request.dropped = True
            self.dropped += 1
            self._finish(visit.request, timeout=True)

    def _dispatch_stage(self, request: _Request) -> None:
        stages = self.graph.stage_indices[request.rtype]
        if request.stage >= len(stages):
            self._finish(request)
            return
        rtype = self.graph.request_types[request.rtype]
        tier_ids = stages[request.stage]
        request.pending = len(tier_ids)
        for tier_idx in tier_ids:
            work = rtype.work.get(self.graph.tier_names[tier_idx], 1.0)
            self._start_or_queue(tier_idx, _Visit(request, work))

    def _finish(self, request: _Request, timeout: bool = False) -> None:
        if getattr(request, "_finished", False):
            return
        request._finished = True
        latency = (
            self.config.drop_latency if timeout else self.time - request.arrival
        )
        self.latencies.append((self.time, min(latency, self.config.drop_latency)))
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.counter("des_requests_total")
            if timeout:
                recorder.counter("des_drops_total")
            if request.sampled:
                recorder.span(
                    self.graph.type_names[request.rtype],
                    request.arrival,
                    self.time - request.arrival,
                    track="requests",
                    cat="request",
                    args={"dropped": timeout},
                )

    def _visit_span(self, tier_idx: int, start: float, duration: float) -> None:
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            name = self.graph.tier_names[tier_idx]
            recorder.span(name, start, duration, track=f"tier:{name}", cat="visit")

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(
        self,
        allocs: np.ndarray,
        type_rates: np.ndarray,
        duration: float,
    ) -> dict:
        """Simulate ``duration`` seconds at a constant offered load.

        Returns a summary with the pooled latency percentiles, the
        per-1s-interval p99 series, drop count, and per-tier mean
        utilization.
        """
        allocs = np.asarray(allocs, dtype=float)
        if allocs.shape != (self.graph.n_tiers,):
            raise ValueError("allocs shape mismatch")
        type_rates = np.asarray(type_rates, dtype=float)
        if type_rates.shape != (self.graph.n_types,):
            raise ValueError("type_rates shape mismatch")
        for tier, alloc in zip(self.tiers, allocs):
            tier.set_alloc(alloc)
        # Window this run's summary: queues and in-flight requests carry
        # over between runs, but completions and drops booked by earlier
        # runs must not pollute this run's percentiles.
        lat_start = len(self.latencies)
        dropped_start = self.dropped

        # Pre-generate Poisson arrivals per type.
        horizon = self.time + duration
        for rtype in range(self.graph.n_types):
            rate = type_rates[rtype]
            if rate <= 0:
                continue
            t = self.time
            while True:
                t += self._rng.exponential(1.0 / rate)
                if t >= horizon:
                    break
                self._push(t, "arrive", rtype)

        busy_integral = np.zeros(self.graph.n_tiers)
        last_t = self.time
        while self._events and self._events[0][0] < horizon:
            when, _, kind, payload = heapq.heappop(self._events)
            busy_integral += (when - last_t) * np.array(
                [t.busy * t.speed for t in self.tiers]
            )
            last_t = when
            self.time = when
            if kind == "arrive":
                request = _Request(rtype=payload, arrival=when)
                recorder = self.recorder
                if recorder is not None and recorder.enabled:
                    request.sampled = recorder.sampled(self._arrivals)
                    self._arrivals += 1
                self._dispatch_stage(request)
            else:  # service completion
                tier_idx, visit = payload
                tier = self.tiers[tier_idx]
                tier.completed_work += visit.work
                if tier.queue:
                    nxt = tier.queue.popleft()
                    svc = tier.service_time(nxt.work, self._rng)
                    if nxt.request.sampled:
                        self._visit_span(tier_idx, when, svc)
                    self._push(when + svc, "done", (tier_idx, nxt))
                else:
                    tier.busy -= 1
                request = visit.request
                if request.dropped:
                    continue
                request.pending -= 1
                if request.pending == 0:
                    request.stage += 1
                    self._dispatch_stage(request)
        # Tail segment: servers busy between the last in-horizon event and
        # the horizon itself still accrue busy time.  Dropping it
        # under-counts utilization for every run whose servers are busy at
        # the boundary (most loaded runs).
        busy_integral += (horizon - last_t) * np.array(
            [t.busy * t.speed for t in self.tiers]
        )
        self.time = horizon

        return self._summary(
            duration, busy_integral, allocs, lat_start, dropped_start
        )

    def _summary(
        self, duration, busy_integral, allocs, lat_start=0, dropped_start=0
    ) -> dict:
        lat = self.latencies[lat_start:]
        if lat:
            times = np.array([t for t, _ in lat])
            values = np.array([v for _, v in lat]) * 1000.0
            percentiles = np.percentile(values, LATENCY_PERCENTILES)
        else:
            times = np.empty(0)
            values = np.empty(0)
            percentiles = np.zeros(len(LATENCY_PERCENTILES))
        start = self.time - duration
        p99_series = []
        for second in range(int(duration)):
            mask = (times >= start + second) & (times < start + second + 1)
            if mask.any():
                p99_series.append(float(np.percentile(values[mask], 99)))
            else:
                # No completions this second: unknown, not "0 ms" — a
                # literal zero would drag any series aggregate toward an
                # impossibly good tail latency.
                p99_series.append(float("nan"))
        utilization = busy_integral / np.maximum(allocs * duration, 1e-9)
        return {
            "latency_ms": percentiles,
            "p99_ms": float(percentiles[LATENCY_PERCENTILES.index(99)]),
            "p99_series_ms": np.array(p99_series),
            "n_requests": len(lat),
            "dropped": self.dropped - dropped_start,
            "cpu_util": np.clip(utilization, 0.0, 1.0),
            "queued": np.array([len(t.queue) for t in self.tiers]),
        }


__all__ = ["EventDrivenEngine", "EventEngineConfig"]
