"""Per-request discrete-event simulator (validation substrate).

The main engine (:mod:`repro.sim.engine`) is a fluid queueing model —
fast enough to generate tens of thousands of training intervals on one
core.  This module provides an independent, per-request discrete-event
simulation of the same tier specifications: every request is an object
that traverses its stage DAG, queues FCFS at each tier, and occupies a
server for its sampled service time.

It exists to *validate* the fluid engine: under matched scenarios the
two must agree on the qualitative physics (who violates, how queues
grow, how latency scales with allocation), which
``benchmarks/test_validation_event_engine.py`` checks.  It is 1-2
orders of magnitude slower, so the training pipeline never uses it.

Model per tier:

* ``servers = ceil(alloc)`` FCFS servers, each running at
  ``alloc / ceil(alloc)`` cores (a sub-core limit slows the single
  server; 2.5 cores are three servers at 0.83 speed),
* service time per visit = ``cpu_per_req * work / speed`` with
  lognormal noise, plus the tier's base latency,
* a finite queue; arrivals beyond it are dropped and booked at the
  client-timeout latency.

Stages of a request run sequentially; tiers within a stage in parallel
(the request advances when the slowest parallel visit finishes), the
same composition rule the fluid engine uses.

Two implementations share that physics:

* :meth:`EventDrivenEngine.run_reference` — the original per-event
  object loop (``_Request`` / ``_Visit`` dataclasses, a tuple heap),
  retained as the equivalence oracle;
* the default fast path — a struct-of-arrays loop (request state held
  in preallocated arrays, heap entries index-encoded into one integer,
  the per-tier ``busy * speed`` vector maintained incrementally on
  state change instead of being rebuilt from objects at every event,
  and arrival streams pre-drawn in bulk) that consumes the RNG in the
  reference order and produces bitwise-identical summaries and final
  ``bit_generator`` state (held by ``tests/sim/test_fast_events.py``).

An engine must stick to one path across its lifetime once work is in
flight (queued or in-service visits carry over between runs and the two
paths store them differently); :meth:`EventDrivenEngine.run` dispatches
automatically and refuses ambiguous mixes.  Attaching an *enabled*
recorder routes :meth:`~EventDrivenEngine.run` to the reference loop,
whose results are identical — sampling draws no randomness.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.sim.graph import AppGraph
from repro.sim.telemetry import LATENCY_PERCENTILES


@dataclass(frozen=True)
class EventEngineConfig:
    """Physics knobs; mirrors the fluid engine's defaults."""

    noise_sigma: float = 0.22
    max_queue: int = 4000
    drop_latency: float = 5.0
    service_mult: float = 1.0
    base_lat_mult: float = 1.0
    fast_events: bool = True
    """Use the struct-of-arrays event loop (bitwise-identical to
    :meth:`EventDrivenEngine.run_reference`); ``False`` forces the
    object-based reference loop."""


#: Heap-entry encoding for the fast path: one integer packs
#: ``(seq, tier, request)`` with the monotonically increasing push
#: sequence in the top bits, so ``(when, code)`` tuples order exactly
#: like the reference heap's ``(when, seq, ...)`` entries.
_REQ_BITS = 32
_TIER_BITS = 8
_SEQ_SHIFT = _REQ_BITS + _TIER_BITS
_REQ_MASK = (1 << _REQ_BITS) - 1
_TIER_MASK = (1 << _TIER_BITS) - 1


@dataclass
class _Request:
    rtype: int
    arrival: float
    stage: int = 0
    pending: int = 0
    dropped: bool = False
    sampled: bool = False
    """Deterministically chosen for tracing (every tier visit of a
    sampled request becomes a span)."""


@dataclass
class _Visit:
    request: _Request
    work: float


class _TierServer:
    """FCFS multi-server station for one tier."""

    def __init__(self, spec, config: EventEngineConfig) -> None:
        self.spec = spec
        self.config = config
        self.queue: deque[_Visit] = deque()
        self.busy = 0
        self.set_alloc(spec.min_cpu)
        self.completed_work = 0.0

    def set_alloc(self, alloc: float) -> None:
        self.alloc = float(alloc)
        self.servers = max(int(math.ceil(alloc)), 1)
        self.speed = alloc / self.servers

    def service_time(self, work: float, rng: np.random.Generator) -> float:
        cfg = self.config
        mean = self.spec.cpu_per_req * cfg.service_mult * work / self.speed
        sigma = cfg.noise_sigma
        noise = rng.lognormal(-0.5 * sigma * sigma, sigma)
        return mean * noise + self.spec.base_latency * cfg.base_lat_mult


class _SoAState:
    """Struct-of-arrays state of the fast event loop.

    Persists across :meth:`EventDrivenEngine.run` calls — queued and
    in-service visits carry over, exactly like the reference loop's
    object state.  The request table is a set of preallocated parallel
    arrays (grown by doubling before each run, never mid-loop); a heap
    entry is ``(when, code)`` with the payload index-encoded in
    ``code``; queues hold plain request indices (a visit's work factor
    is a pure function of request type and tier, so it is looked up,
    not stored).
    """

    __slots__ = (
        "capacity", "n_requests", "rtype", "arrival", "stage", "pending",
        "dropped", "finished", "heap", "queues", "busy", "servers",
        "speed", "completed_work", "stage_plan", "work",
        "svc_coef", "svc_base",
    )

    def __init__(self, engine: EventDrivenEngine) -> None:
        graph = engine.graph
        cfg = engine.config
        n = graph.n_tiers
        self.capacity = 1024
        self.n_requests = 0
        self.rtype = np.zeros(self.capacity, dtype=np.int32)
        self.arrival = np.zeros(self.capacity, dtype=np.float64)
        self.stage = np.zeros(self.capacity, dtype=np.int32)
        self.pending = np.zeros(self.capacity, dtype=np.int32)
        self.dropped = np.zeros(self.capacity, dtype=np.bool_)
        self.finished = np.zeros(self.capacity, dtype=np.bool_)
        self.heap: list[tuple[float, int]] = []
        self.queues: list[deque[int]] = [deque() for _ in range(n)]
        # Tier state mirrors, adopted from the object tiers so manual
        # pre-run adjustments (tests poke ``tiers[i].busy``) carry over.
        self.busy = [t.busy for t in engine.tiers]
        self.servers = [t.servers for t in engine.tiers]
        self.speed = [t.speed for t in engine.tiers]
        self.completed_work = [t.completed_work for t in engine.tiers]
        # Static plans: per (type, stage) the (tier, work) visits, and
        # per (type, tier) the work factor for dequeued visits.
        self.stage_plan = [
            [
                [
                    (int(t), float(rt.work.get(graph.tier_names[int(t)], 1.0)))
                    for t in tier_ids
                ]
                for tier_ids in graph.stage_indices[r]
            ]
            for r, rt in enumerate(graph.request_types)
        ]
        self.work = [
            [float(rt.work.get(name, 1.0)) for name in graph.tier_names]
            for rt in graph.request_types
        ]
        self.svc_coef = [
            spec.cpu_per_req * cfg.service_mult for spec in graph.tiers
        ]
        self.svc_base = [
            spec.base_latency * cfg.base_lat_mult for spec in graph.tiers
        ]

    @property
    def in_flight(self) -> bool:
        return bool(self.heap) or any(self.queues)

    def ensure_capacity(self, need: int) -> None:
        if need <= self.capacity:
            return
        new_cap = max(self.capacity * 2, need)
        used = self.n_requests
        for name in (
            "rtype", "arrival", "stage", "pending", "dropped", "finished"
        ):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[:used] = old[:used]
            setattr(self, name, grown)
        self.capacity = new_cap


class EventDrivenEngine:
    """Discrete-event simulation of one application deployment.

    Parameters mirror :class:`~repro.sim.engine.QueueingEngine`; the
    entry point is :meth:`run`, which simulates a constant offered load
    for a duration and returns per-interval latency percentiles.
    """

    def __init__(
        self,
        graph: AppGraph,
        config: EventEngineConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.config = config or EventEngineConfig()
        self._rng = np.random.default_rng(seed)
        self.tiers = [_TierServer(spec, self.config) for spec in graph.tiers]
        self._events: list[tuple[float, int, str, object]] = []
        self._seq = 0
        self._soa: _SoAState | None = None
        self.time = 0.0
        self.latencies: list[tuple[float, float]] = []
        self.dropped = 0
        self._arrivals = 0
        self.recorder = None
        """Observability handle; ``None``/no-op means off (see
        :func:`repro.obs.recorder.attach_recorder`)."""

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _push(self, when: float, kind: str, payload) -> None:
        self._seq += 1
        heapq.heappush(self._events, (when, self._seq, kind, payload))

    def _start_or_queue(self, tier_idx: int, visit: _Visit) -> None:
        tier = self.tiers[tier_idx]
        if tier.busy < tier.servers:
            tier.busy += 1
            svc = tier.service_time(visit.work, self._rng)
            if visit.request.sampled:
                self._visit_span(tier_idx, self.time, svc)
            self._push(self.time + svc, "done", (tier_idx, visit))
        elif len(tier.queue) < self.config.max_queue:
            tier.queue.append(visit)
        else:
            visit.request.dropped = True
            self.dropped += 1
            self._finish(visit.request, timeout=True)

    def _dispatch_stage(self, request: _Request) -> None:
        stages = self.graph.stage_indices[request.rtype]
        if request.stage >= len(stages):
            self._finish(request)
            return
        rtype = self.graph.request_types[request.rtype]
        tier_ids = stages[request.stage]
        request.pending = len(tier_ids)
        for tier_idx in tier_ids:
            work = rtype.work.get(self.graph.tier_names[tier_idx], 1.0)
            self._start_or_queue(tier_idx, _Visit(request, work))

    def _finish(self, request: _Request, timeout: bool = False) -> None:
        if getattr(request, "_finished", False):
            return
        request._finished = True
        latency = (
            self.config.drop_latency if timeout else self.time - request.arrival
        )
        self.latencies.append((self.time, min(latency, self.config.drop_latency)))
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.counter("des_requests_total")
            if timeout:
                recorder.counter("des_drops_total")
            if request.sampled:
                recorder.span(
                    self.graph.type_names[request.rtype],
                    request.arrival,
                    self.time - request.arrival,
                    track="requests",
                    cat="request",
                    args={"dropped": timeout},
                )

    def _visit_span(self, tier_idx: int, start: float, duration: float) -> None:
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            name = self.graph.tier_names[tier_idx]
            recorder.span(name, start, duration, track=f"tier:{name}", cat="visit")

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(
        self,
        allocs: np.ndarray,
        type_rates: np.ndarray,
        duration: float,
    ) -> dict:
        """Simulate ``duration`` seconds at a constant offered load.

        Returns a summary with the pooled latency percentiles, the
        per-1s-interval p99 series, drop count, and per-tier mean
        utilization.

        Dispatches to the struct-of-arrays fast loop unless the config
        disables it, an enabled recorder is attached (span bookkeeping
        needs the object loop; results are identical either way), or
        object-path state is already in flight from earlier
        :meth:`run_reference` calls.
        """
        recorder = self.recorder
        use_fast = (
            self.config.fast_events
            and self.graph.n_tiers <= _TIER_MASK
            and not self._events
            and not any(t.queue for t in self.tiers)
            and (recorder is None or not recorder.enabled)
        )
        if use_fast:
            return self._run_fast(allocs, type_rates, duration)
        if self._soa is not None and self._soa.in_flight:
            raise RuntimeError(
                "cannot switch to the reference event loop with fast-path "
                "work in flight; use a fresh engine per path"
            )
        return self.run_reference(allocs, type_rates, duration)

    def run_reference(
        self,
        allocs: np.ndarray,
        type_rates: np.ndarray,
        duration: float,
    ) -> dict:
        """The original per-event object loop (equivalence oracle).

        Same physics, RNG consumption, and summary as the fast path;
        kept as the behavioral specification the struct-of-arrays loop
        is tested against.
        """
        if self._soa is not None and self._soa.in_flight:
            raise RuntimeError(
                "cannot run the reference event loop with fast-path work "
                "in flight; use a fresh engine per path"
            )
        allocs = np.asarray(allocs, dtype=float)
        if allocs.shape != (self.graph.n_tiers,):
            raise ValueError("allocs shape mismatch")
        type_rates = np.asarray(type_rates, dtype=float)
        if type_rates.shape != (self.graph.n_types,):
            raise ValueError("type_rates shape mismatch")
        for tier, alloc in zip(self.tiers, allocs):
            tier.set_alloc(alloc)
        # Window this run's summary: queues and in-flight requests carry
        # over between runs, but completions and drops booked by earlier
        # runs must not pollute this run's percentiles.
        lat_start = len(self.latencies)
        dropped_start = self.dropped

        # Pre-generate Poisson arrivals per type.
        horizon = self.time + duration
        for rtype in range(self.graph.n_types):
            rate = type_rates[rtype]
            if rate <= 0:
                continue
            t = self.time
            while True:
                t += self._rng.exponential(1.0 / rate)
                if t >= horizon:
                    break
                self._push(t, "arrive", rtype)

        busy_integral = np.zeros(self.graph.n_tiers)
        last_t = self.time
        while self._events and self._events[0][0] < horizon:
            when, _, kind, payload = heapq.heappop(self._events)
            busy_integral += (when - last_t) * np.array(
                [t.busy * t.speed for t in self.tiers]
            )
            last_t = when
            self.time = when
            if kind == "arrive":
                request = _Request(rtype=payload, arrival=when)
                recorder = self.recorder
                if recorder is not None and recorder.enabled:
                    request.sampled = recorder.sampled(self._arrivals)
                    self._arrivals += 1
                self._dispatch_stage(request)
            else:  # service completion
                tier_idx, visit = payload
                tier = self.tiers[tier_idx]
                tier.completed_work += visit.work
                if tier.queue:
                    nxt = tier.queue.popleft()
                    svc = tier.service_time(nxt.work, self._rng)
                    if nxt.request.sampled:
                        self._visit_span(tier_idx, when, svc)
                    self._push(when + svc, "done", (tier_idx, nxt))
                else:
                    tier.busy -= 1
                request = visit.request
                if request.dropped:
                    continue
                request.pending -= 1
                if request.pending == 0:
                    request.stage += 1
                    self._dispatch_stage(request)
        # Tail segment: servers busy between the last in-horizon event and
        # the horizon itself still accrue busy time.  Dropping it
        # under-counts utilization for every run whose servers are busy at
        # the boundary (most loaded runs).
        busy_integral += (horizon - last_t) * np.array(
            [t.busy * t.speed for t in self.tiers]
        )
        self.time = horizon

        return self._summary(
            duration, busy_integral, allocs, lat_start, dropped_start
        )

    # ------------------------------------------------------------------
    # Struct-of-arrays fast path
    # ------------------------------------------------------------------

    def _predraw_arrivals(self, rate: float, horizon: float) -> np.ndarray:
        """Arrival times for one request type, pre-drawn in bulk.

        The reference loop draws exponentials one by one until the
        accumulated time crosses the horizon — consuming the draw that
        crosses.  The draw count is unknown upfront, so this probes in
        chunks, rewinds the bit generator, and re-draws exactly the
        consumed count: identical values, identical final RNG state.
        """
        rng = self._rng
        bit_gen = rng.bit_generator
        scale = 1.0 / rate
        state0 = bit_gen.state
        total = 0
        carry = self.time
        while True:
            expected = (horizon - carry) * rate
            chunk = min(max(int(expected * 1.25) + 16, 16), 1 << 20)
            draws = rng.exponential(scale, size=chunk)
            cum = np.cumsum(np.concatenate(([carry], draws)))[1:]
            hit = int(np.searchsorted(cum, horizon, side="left"))
            if hit < chunk:
                total += hit + 1
                break
            total += chunk
            carry = float(cum[-1])
        bit_gen.state = state0
        draws = rng.exponential(scale, size=total)
        times = np.cumsum(np.concatenate(([self.time], draws)))[1:]
        return times[:-1]  # the crossing draw lands past the horizon

    def _run_fast(
        self,
        allocs: np.ndarray,
        type_rates: np.ndarray,
        duration: float,
    ) -> dict:
        """Struct-of-arrays event loop; bitwise-equal to the reference.

        Each popped event advances the busy-time integral with one
        fused multiply-add over the incrementally maintained
        ``busy * speed`` vector; service-noise lognormals stream from
        bulk draws with a final rewind so the RNG ends in exactly the
        reference state.
        """
        allocs = np.asarray(allocs, dtype=float)
        if allocs.shape != (self.graph.n_tiers,):
            raise ValueError("allocs shape mismatch")
        type_rates = np.asarray(type_rates, dtype=float)
        if type_rates.shape != (self.graph.n_types,):
            raise ValueError("type_rates shape mismatch")
        if self._events or any(t.queue for t in self.tiers):
            raise RuntimeError(
                "cannot run the fast event loop with reference-path work "
                "in flight; use a fresh engine per path"
            )
        st = self._soa
        if st is None:
            st = self._soa = _SoAState(self)
        busy = st.busy
        servers = st.servers
        speed = st.speed
        for i, (tier, alloc) in enumerate(zip(self.tiers, allocs)):
            tier.set_alloc(alloc)
            servers[i] = tier.servers
            speed[i] = tier.speed
        # Incrementally maintained busy * speed vector — the reference
        # rebuilds this array from the tier objects at every event.  A
        # wide vector integrates through numpy ufuncs (two `out=` calls
        # per event); a narrow one through a plain-Python loop, which
        # beats ufunc dispatch overhead below ~10 tiers.  Both produce
        # the same IEEE double sequence as the reference's vector ops.
        n_tiers = self.graph.n_tiers
        np_madd = n_tiers >= 10
        bs = [b * s for b, s in zip(busy, speed)]
        if np_madd:
            bs = np.array(bs, dtype=np.float64)
        lat_start = len(self.latencies)
        dropped_start = self.dropped
        horizon = self.time + duration

        # Pre-drawn arrival streams, one per type in reference RNG
        # order; merged by (time, push-sequence) so ties break exactly
        # like the reference heap.
        times_parts: list[np.ndarray] = []
        rtype_parts: list[np.ndarray] = []
        seq_parts: list[np.ndarray] = []
        for rtype in range(self.graph.n_types):
            rate = type_rates[rtype]
            if rate <= 0:
                continue
            times = self._predraw_arrivals(float(rate), horizon)
            if times.size:
                times_parts.append(times)
                rtype_parts.append(np.full(times.size, rtype, dtype=np.int64))
                seq_parts.append(
                    self._seq + 1 + np.arange(times.size, dtype=np.int64)
                )
                self._seq += times.size
        if times_parts:
            times_cat = np.concatenate(times_parts)
            rtype_cat = np.concatenate(rtype_parts)
            seq_cat = np.concatenate(seq_parts)
            order = np.lexsort((seq_cat, times_cat))
            arr_times = times_cat[order]
            arr_rtypes = rtype_cat[order]
            arr_times_l = arr_times.tolist()
            arr_seqs_l = seq_cat[order].tolist()
            arr_rtypes_l = arr_rtypes.tolist()
        else:
            arr_times = np.empty(0)
            arr_rtypes = np.empty(0, dtype=np.int64)
            arr_times_l = []
            arr_seqs_l = []
            arr_rtypes_l = []
        n_arr = len(arr_times_l)
        base = st.n_requests
        st.ensure_capacity(base + n_arr)
        st.rtype[base:base + n_arr] = arr_rtypes
        st.arrival[base:base + n_arr] = arr_times
        st.n_requests = base + n_arr
        n_req = st.n_requests
        # Hot-loop working views of the request table: numpy scalar
        # indexing costs ~100 ns per access, so the columns run as
        # plain lists and the mutated ones are written back at the end.
        req_rtype = st.rtype[:n_req].tolist()
        req_arrival = st.arrival[:n_req].tolist()
        req_stage = st.stage[:n_req].tolist()
        req_pending = st.pending[:n_req].tolist()
        req_dropped = st.dropped[:n_req].tolist()
        req_finished = st.finished[:n_req].tolist()

        # Service-noise stream: lognormals are consumed strictly
        # sequentially during the loop (nothing else draws), so bulk
        # blocks + a final rewind reproduce the reference consumption.
        rng = self._rng
        bit_gen = rng.bit_generator
        sigma = self.config.noise_sigma
        mu = -0.5 * sigma * sigma
        noise_state = bit_gen.state
        noise_buf: list[float] = []
        noise_pos = 0
        noise_end = 0
        noise_drawn = 0

        heap = st.heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        queues = st.queues
        completed_work = st.completed_work
        stage_plan = st.stage_plan
        work_of = st.work
        svc_coef = st.svc_coef
        svc_base = st.svc_base
        lat_append = self.latencies.append
        max_queue = self.config.max_queue
        drop_latency = self.config.drop_latency
        seq = self._seq
        dropped_total = self.dropped
        tier_range = range(n_tiers)
        if np_madd:
            busy_integral = np.zeros(n_tiers)
            tmp = np.empty(n_tiers)
            multiply = np.multiply
            add = np.add
        else:
            busy_integral = [0.0] * n_tiers
        last_t = self.time
        ai = 0

        def finish(req: int, now: float, timeout: bool) -> None:
            if req_finished[req]:
                return
            req_finished[req] = True
            if timeout:
                lat = drop_latency
            else:
                lat = now - req_arrival[req]
                if lat > drop_latency:
                    lat = drop_latency
            lat_append((now, lat))

        def dispatch(req: int, rtype: int, stage_idx: int, now: float) -> None:
            # Start-or-queue is inlined per visit: the dispatch →
            # start call pair is the hottest edge in the loop.
            nonlocal noise_buf, noise_pos, noise_end, noise_drawn
            nonlocal seq, dropped_total
            stages = stage_plan[rtype]
            if stage_idx >= len(stages):
                finish(req, now, False)
                return
            stage = stages[stage_idx]
            req_pending[req] = len(stage)
            for tier, work in stage:
                b = busy[tier]
                if b < servers[tier]:
                    busy[tier] = b + 1
                    sp = speed[tier]
                    bs[tier] = (b + 1) * sp
                    if noise_pos == noise_end:
                        noise_buf = rng.lognormal(mu, sigma, size=512).tolist()
                        noise_drawn += 512
                        noise_pos = 0
                        noise_end = 512
                    noise = noise_buf[noise_pos]
                    noise_pos += 1
                    svc = svc_coef[tier] * work / sp * noise + svc_base[tier]
                    seq += 1
                    heappush(
                        heap,
                        (
                            now + svc,
                            (seq << _SEQ_SHIFT) | (tier << _REQ_BITS) | req,
                        ),
                    )
                elif len(queues[tier]) < max_queue:
                    queues[tier].append(req)
                else:
                    req_dropped[req] = True
                    dropped_total += 1
                    finish(req, now, True)

        while True:
            if heap:
                head = heap[0]
                when = head[0]
                if ai < n_arr:
                    a_when = arr_times_l[ai]
                    take_heap = when < a_when or (
                        when == a_when
                        and (head[1] >> _SEQ_SHIFT) < arr_seqs_l[ai]
                    )
                elif when >= horizon:
                    break
                else:
                    take_heap = True
            elif ai < n_arr:
                take_heap = False
                when = None
            else:
                break

            if take_heap:
                heappop(heap)
                code = head[1]
                dt = when - last_t
                if dt != 0.0:
                    if np_madd:
                        multiply(bs, dt, out=tmp)
                        add(busy_integral, tmp, out=busy_integral)
                    else:
                        for i in tier_range:
                            busy_integral[i] += dt * bs[i]
                    last_t = when
                tier = (code >> _REQ_BITS) & _TIER_MASK
                req = code & _REQ_MASK
                rtype = req_rtype[req]
                completed_work[tier] += work_of[rtype][tier]
                queue = queues[tier]
                if queue:
                    nxt = queue.popleft()
                    nxt_work = work_of[req_rtype[nxt]][tier]
                    sp = speed[tier]
                    if noise_pos == noise_end:
                        noise_buf = rng.lognormal(mu, sigma, size=512).tolist()
                        noise_drawn += 512
                        noise_pos = 0
                        noise_end = 512
                    noise = noise_buf[noise_pos]
                    noise_pos += 1
                    svc = svc_coef[tier] * nxt_work / sp * noise + svc_base[tier]
                    seq += 1
                    heappush(
                        heap,
                        (
                            when + svc,
                            (seq << _SEQ_SHIFT) | (tier << _REQ_BITS) | nxt,
                        ),
                    )
                else:
                    b = busy[tier] - 1
                    busy[tier] = b
                    bs[tier] = b * speed[tier]
                if req_dropped[req]:
                    continue
                pending = req_pending[req] - 1
                req_pending[req] = pending
                if pending == 0:
                    stage_idx = req_stage[req] + 1
                    req_stage[req] = stage_idx
                    dispatch(req, rtype, stage_idx, when)
            else:
                when = arr_times_l[ai]
                dt = when - last_t
                if dt != 0.0:
                    if np_madd:
                        multiply(bs, dt, out=tmp)
                        add(busy_integral, tmp, out=busy_integral)
                    else:
                        for i in tier_range:
                            busy_integral[i] += dt * bs[i]
                    last_t = when
                req = base + ai
                rtype = arr_rtypes_l[ai]
                ai += 1
                dispatch(req, rtype, 0, when)

        # Tail segment to the horizon (same correction as the reference).
        dt = horizon - last_t
        if np_madd:
            multiply(bs, dt, out=tmp)
            add(busy_integral, tmp, out=busy_integral)
        else:
            for i in tier_range:
                busy_integral[i] += dt * bs[i]
        self.time = horizon
        self._seq = seq
        self.dropped = dropped_total
        st.stage[:n_req] = req_stage
        st.pending[:n_req] = req_pending
        st.dropped[:n_req] = req_dropped
        st.finished[:n_req] = req_finished
        for i, tier in enumerate(self.tiers):
            tier.busy = busy[i]
            tier.completed_work = completed_work[i]
        if noise_drawn:
            consumed = noise_drawn - (noise_end - noise_pos)
            bit_gen.state = noise_state
            rng.lognormal(mu, sigma, size=consumed)
        return self._summary(
            duration, np.array(busy_integral), allocs, lat_start,
            dropped_start, queued=np.array([len(q) for q in queues]),
        )

    def _summary(
        self, duration, busy_integral, allocs, lat_start=0, dropped_start=0,
        queued=None,
    ) -> dict:
        lat = self.latencies[lat_start:]
        if lat:
            times = np.array([t for t, _ in lat])
            values = np.array([v for _, v in lat]) * 1000.0
            percentiles = np.percentile(values, LATENCY_PERCENTILES)
        else:
            times = np.empty(0)
            values = np.empty(0)
            percentiles = np.zeros(len(LATENCY_PERCENTILES))
        start = self.time - duration
        # Completions are appended in event order, so ``times`` is
        # sorted: each 1 s bucket is a contiguous slice found with two
        # binary searches instead of an O(completions) mask per second.
        n_sec = int(duration)
        lows = start + np.arange(n_sec)
        highs = lows + 1.0
        lo = np.searchsorted(times, lows, side="left")
        hi = np.searchsorted(times, highs, side="left")
        p99_series = []
        for second in range(n_sec):
            chunk = values[lo[second]:hi[second]]
            if chunk.size:
                p99_series.append(float(np.percentile(chunk, 99)))
            else:
                # No completions this second: unknown, not "0 ms" — a
                # literal zero would drag any series aggregate toward an
                # impossibly good tail latency.
                p99_series.append(float("nan"))
        utilization = busy_integral / np.maximum(allocs * duration, 1e-9)
        return {
            "latency_ms": percentiles,
            "p99_ms": float(percentiles[LATENCY_PERCENTILES.index(99)]),
            "p99_series_ms": np.array(p99_series),
            "n_requests": len(lat),
            "dropped": self.dropped - dropped_start,
            "cpu_util": np.clip(utilization, 0.0, 1.0),
            "queued": (
                np.array([len(t.queue) for t in self.tiers])
                if queued is None
                else queued
            ),
        }


__all__ = ["EventDrivenEngine", "EventEngineConfig"]
