"""Optional compiled tick kernel for the fast simulation path.

The batched interval path spends its residual time in the sequential
tick recurrence (queue, busy EWMA, the sojourn level sweep): ~50 numpy
calls per tick over vectors of a few dozen tiers, where per-call
dispatch costs more than the arithmetic it performs.  This module
compiles that recurrence into a tiny C kernel at first use (cffi ABI
mode plus the system C compiler) and caches the shared object under the
user's temp directory, keyed by a digest of the source.  Everything is
best-effort: any failure — no ``cffi``, no compiler, an unwritable temp
directory — degrades silently to the pure-numpy loop in
:meth:`repro.sim.engine.QueueingEngine._run_interval_fast`, which
computes the identical bitstream.

Bitwise equality with the numpy recurrence relies on two things:

* the kernel mirrors the reference expression trees operation for
  operation (same association order; comparison-based min/max, exact
  for the finite non-NaN values the engine produces), and
* compilation uses ``-ffp-contract=off`` so no multiply-add pair is
  contracted into an FMA.

Set ``REPRO_SIM_PURE_NUMPY=1`` to skip the kernel and force the numpy
recurrence (the equivalence suite exercises both).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile

_CDEF = """
void sinan_demand_ewma(
    int n_ticks, int n, double tick,
    const double *arrival_rows,
    double *demand, double *demand_rows);
void sinan_sample_stages(
    long k, int n, int n_segs,
    const double *soj,
    const long long *ticks,
    const long long *cols,
    const double *base,
    const double *flat,
    const int *seg_off, const int *seg_size,
    double *latency);
void sinan_run_ticks(
    int n_ticks, int n,
    const double *infl, const double *cap,
    const double *conc, const double *conc_const,
    const double *arr,
    const double *cpu, const double *base,
    const double *fsm1, const double *mu_cpu, const double *alloc_tick,
    const int *child_off, const int *child_idx,
    int backpressure,
    double tick, double max_queue, double eps, double max_sojourn,
    double *queue, double *be, double *bf,
    double *cpu_used, double *comp_total, double *drops_total,
    double *sojourn_rows);
"""

# Tiers arrive permuted into dependency-level order, so iterating
# i = 0..n-1 *is* the level sweep: every child index is < i.  The queue
# phase is fused into the same per-tier pass — it only touches tier-local
# state, and the reference's "any tier overflowed" drop branch reduces to
# per-tier ``max(q - max_queue, 0)`` arithmetic whose no-drop case is the
# IEEE identity ``q - 0.0 == q``.
_SOURCE = r"""
/* demand_t = (demand_{t-1} * 0.8) + ((arrivals_t / tick) * 0.2), the
 * same expression tree as the numpy in-place EWMA. */
void sinan_demand_ewma(
    int n_ticks, int n, double tick,
    const double *arrival_rows,
    double *demand, double *demand_rows)
{
    for (int t = 0; t < n_ticks; t++) {
        const double *arr_t = arrival_rows + (long)t * n;
        double *out_t = demand_rows + (long)t * n;
        for (int i = 0; i < n; i++) {
            double d = demand[i] * 0.8 + (arr_t[i] / tick) * 0.2;
            demand[i] = d;
            out_t[i] = d;
        }
    }
}

/* Latency synthesis inner loop: per sample, per stage, the maximum of
 * base + (sojourn - base) * noise over the stage's tiers, summed across
 * stages.  ``flat`` holds the per-stage lognormal blocks row-major —
 * sample i, stage s (offset o, size sz) lives at flat[o*k + i*sz .. +sz].
 * Left-to-right comparisons mirror np.maximum.reduce, and the stage sums
 * accumulate in stage order like the numpy adds. */
void sinan_sample_stages(
    long k, int n, int n_segs,
    const double *soj,
    const long long *ticks,
    const long long *cols,
    const double *base,
    const double *flat,
    const int *seg_off, const int *seg_size,
    double *latency)
{
    for (long i = 0; i < k; i++) {
        const double *row = soj + ticks[i] * (long)n;
        double lat = 0.0;
        for (int s = 0; s < n_segs; s++) {
            int o = seg_off[s];
            int sz = seg_size[s];
            const double *noise = flat + (long)o * k + i * sz;
            double m = 0.0;
            for (int j = 0; j < sz; j++) {
                double b = base[o + j];
                double v = (row[cols[o + j]] - b) * noise[j] + b;
                if (j == 0 || v > m) m = v;
            }
            lat += m;
        }
        latency[i] = lat;
    }
}

void sinan_run_ticks(
    int n_ticks, int n,
    const double *infl, const double *cap,
    const double *conc, const double *conc_const,
    const double *arr,
    const double *cpu, const double *base,
    const double *fsm1, const double *mu_cpu, const double *alloc_tick,
    const int *child_off, const int *child_idx,
    int backpressure,
    double tick, double max_queue, double eps, double max_sojourn,
    double *queue, double *be, double *bf,
    double *cpu_used, double *comp_total, double *drops_total,
    double *sojourn_rows)
{
    for (int t = 0; t < n_ticks; t++) {
        const double *infl_t = infl + (long)t * n;
        const double *cap_t = cap ? cap + (long)t * n : 0;
        const double *conc_t = conc ? conc + (long)t * n : conc_const;
        const double *arr_t = arr + (long)t * n;
        double *soj_t = sojourn_rows + (long)t * n;
        for (int i = 0; i < n; i++) {
            double bei = be[i];
            double stretch = fsm1[i] * bei + 1.0;
            double st = cpu[i] * stretch * infl_t[i];
            double sb = st + base[i];
            double rho = bei < 0.9 ? bei : 0.9;
            double stoch = (st * rho) / (1.0 - rho);
            double hold = 0.0;
            if (backpressure) {
                for (int c = child_off[i]; c < child_off[i + 1]; c++) {
                    double v = soj_t[child_idx[c]];
                    if (v > hold) hold = v;
                }
            }
            double h = sb + hold;
            if (!(h > eps)) h = eps;
            double m = conc_t[i] / h;
            if (mu_cpu[i] < m) m = mu_cpu[i];
            if (cap_t) m = m * cap_t[i];
            if (!(m > eps)) m = eps;
            double x = sb + queue[i] / m + stoch;
            if (x > max_sojourn) x = max_sojourn;
            soj_t[i] = x;

            double backlog = queue[i] + arr_t[i];
            double capb = m * tick;
            double comp = backlog < capb ? backlog : capb;
            double q2 = backlog - comp;
            double drop = q2 - max_queue;
            if (drop < 0.0) drop = 0.0;
            drops_total[i] += drop;
            queue[i] = q2 - drop;
            double tu = comp * cpu[i];
            if (alloc_tick[i] < tu) tu = alloc_tick[i];
            double bfi = tu / alloc_tick[i];
            be[i] = bei * 0.85 + bfi * 0.15;
            bf[i] = bfi;
            cpu_used[i] += tu;
            comp_total[i] += comp;
        }
    }
}
"""

_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]

_cached: tuple | None = None
_failed = False


def load_kernel() -> tuple | None:
    """Return ``(ffi, lib)`` for the compiled kernel, or ``None``.

    The first failure is remembered: later calls return ``None``
    immediately instead of re-running the compiler.
    """
    global _cached, _failed
    if _cached is not None or _failed:
        return _cached
    try:
        _cached = _build()
    except Exception:
        _cached = None
    if _cached is None:
        _failed = True
    return _cached


def _build() -> tuple | None:
    import cffi  # gated: absent in minimal environments

    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    uid = getattr(os, "getuid", lambda: 0)()
    cache = os.path.join(tempfile.gettempdir(), f"repro-fastsim-{uid}")
    os.makedirs(cache, exist_ok=True)
    so_path = os.path.join(cache, f"fastsim-{digest}.so")
    if not os.path.exists(so_path):
        # Unique scratch names plus an atomic rename keep concurrent
        # builders (e.g. forked --jobs workers) from trampling each other.
        tag = f".{os.getpid()}"
        c_path = so_path + tag + ".c"
        tmp_path = so_path + tag + ".tmp"
        with open(c_path, "w") as fh:
            fh.write(_SOURCE)
        try:
            subprocess.run(
                [cc, *_CFLAGS, c_path, "-o", tmp_path],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, so_path)
        finally:
            for path in (c_path, tmp_path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    lib = ffi.dlopen(so_path)
    return ffi, lib


__all__ = ["load_kernel"]
