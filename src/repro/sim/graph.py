"""Application graph: tiers, RPC edges, and per-request-type paths.

A request type (e.g. ``ComposePost``) traverses the graph as a sequence
of *stages*; tiers within one stage are invoked in parallel (fan-out) and
consecutive stages are sequential, so the end-to-end latency of a request
is the sum over stages of the maximum tier sojourn within each stage.
This mirrors how the paper's applications compose synchronous RPCs
(Thrift / gRPC) with parallel fan-out to caches and databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.sim.tier import TierSpec


@dataclass(frozen=True)
class RequestType:
    """One end-to-end request class of an application.

    Parameters
    ----------
    name:
        Request type name, e.g. ``"ComposePost"``.
    stages:
        Sequential stages; each stage is a list of tier names invoked in
        parallel.  A tier may appear in multiple stages (revisits).
    work:
        Optional per-tier work multiplier (units of work per request);
        tiers not listed default to 1.0 per appearance in ``stages``.
    """

    name: str
    stages: tuple[tuple[str, ...], ...]
    work: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"request type {self.name}: needs at least one stage")
        for stage in self.stages:
            if not stage:
                raise ValueError(f"request type {self.name}: empty stage")

    @property
    def tiers(self) -> tuple[str, ...]:
        """All tier names visited, in stage order, without duplicates."""
        seen: dict[str, None] = {}
        for stage in self.stages:
            for name in stage:
                seen.setdefault(name)
        return tuple(seen)

    def visits(self, tier: str) -> float:
        """Units of work this request places on ``tier`` end to end."""
        appearances = sum(stage.count(tier) for stage in self.stages)
        return appearances * self.work.get(tier, 1.0)


class AppGraph:
    """A microservice application: tiers, call edges, and request types.

    Parameters
    ----------
    name:
        Application name (``"social_network"`` / ``"hotel_reservation"``).
    tiers:
        Tier specifications; order defines the row order of the "image"
        input to the CNN (paper Section 3.1 places consecutive tiers in
        adjacent rows, which the convolution kernels exploit).
    edges:
        Synchronous RPC edges ``(caller, callee)``.  Used for the
        backpressure model: a caller's concurrency slots are held while
        its callees work.
    request_types:
        End-to-end request classes with their stage paths.
    """

    def __init__(
        self,
        name: str,
        tiers: list[TierSpec],
        edges: list[tuple[str, str]],
        request_types: list[RequestType],
    ) -> None:
        if not tiers:
            raise ValueError("application needs at least one tier")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValueError("duplicate tier names")
        self.name = name
        self.tiers = list(tiers)
        self.tier_names = names
        self.index = {n: i for i, n in enumerate(names)}
        self.request_types = list(request_types)
        self.type_names = [r.name for r in request_types]
        if len(set(self.type_names)) != len(self.type_names):
            raise ValueError("duplicate request type names")

        for caller, callee in edges:
            for endpoint in (caller, callee):
                if endpoint not in self.index:
                    raise ValueError(f"edge endpoint {endpoint!r} is not a tier")
        for rtype in request_types:
            for tier in rtype.tiers:
                if tier not in self.index:
                    raise ValueError(
                        f"request type {rtype.name} visits unknown tier {tier!r}"
                    )

        self.digraph = nx.DiGraph()
        self.digraph.add_nodes_from(names)
        self.digraph.add_edges_from(edges)
        if not nx.is_directed_acyclic_graph(self.digraph):
            raise ValueError("RPC call graph must be acyclic")

        # Children lists (callees) per tier index, and a reverse topological
        # order so the engine can compute downstream sojourns before the
        # tiers that wait on them.
        self.children: list[np.ndarray] = [
            np.array([self.index[c] for c in self.digraph.successors(n)], dtype=int)
            for n in names
        ]
        topo = list(nx.topological_sort(self.digraph))
        self.reverse_topo_order = np.array(
            [self.index[n] for n in reversed(topo)], dtype=int
        )

        # Work matrix V[r, t]: units of work request type r places on tier t.
        self.visit_matrix = np.zeros((len(request_types), len(tiers)))
        for r, rtype in enumerate(request_types):
            for tier in rtype.tiers:
                self.visit_matrix[r, self.index[tier]] = rtype.visits(tier)

        # Stage structure as index arrays for fast latency sampling.
        self.stage_indices: list[list[np.ndarray]] = [
            [np.array([self.index[t] for t in stage], dtype=int) for stage in r.stages]
            for r in request_types
        ]

    @property
    def n_tiers(self) -> int:
        return len(self.tiers)

    @property
    def n_types(self) -> int:
        return len(self.request_types)

    def min_alloc(self) -> np.ndarray:
        """Per-tier minimum CPU allocation vector."""
        return np.array([t.min_cpu for t in self.tiers])

    def max_alloc(self) -> np.ndarray:
        """Per-tier maximum CPU allocation vector (across replicas)."""
        return np.array([t.total_max_cpu for t in self.tiers])

    def request_type(self, name: str) -> RequestType:
        for rtype in self.request_types:
            if rtype.name == name:
                return rtype
        raise KeyError(name)

    def with_tiers(self, tiers: list[TierSpec]) -> "AppGraph":
        """Rebuild the graph with substituted tier specs (same topology)."""
        if [t.name for t in tiers] != self.tier_names:
            raise ValueError("substituted tiers must keep names and order")
        return AppGraph(
            self.name,
            tiers,
            list(self.digraph.edges),
            self.request_types,
        )

    def map_tiers(self, fn) -> "AppGraph":
        """Apply ``fn(TierSpec) -> TierSpec`` to every tier."""
        return self.with_tiers([fn(t) for t in self.tiers])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AppGraph({self.name!r}, tiers={self.n_tiers}, "
            f"types={self.type_names})"
        )


__all__ = ["AppGraph", "RequestType"]
