"""Discrete-time queueing engine for the microservice cluster.

The engine advances in fixed ticks (default 100 ms, ten per 1 s decision
interval).  Per tick and per tier it models:

* **CPU-derived capacity**: a tier with allocation ``a`` cores and CPU
  demand ``c`` CPU-seconds per unit of work serves at most ``a / c``
  units per second; a single request runs on at most one core, so its
  service time is ``c / min(a, 1)`` (sub-core limits stretch service).
* **Synchronous-RPC backpressure**: a caller's concurrency slots
  (``conc_per_core * a``) are held for its own service time *plus* the
  sojourn of its slowest callee, so a slow downstream tier throttles the
  upstream tier's effective throughput and inflates *its* queue.  This is
  what makes "tier with the longest queue" a symptom rather than the
  culprit (paper Section 5.3), defeating queue-driven managers.
* **Queue persistence** across intervals: under-allocation builds queues
  that take many intervals to drain, the paper's delayed queueing effect
  (Figure 3).

End-to-end latency is synthesized per interval by sampling request paths:
a request's latency is the sum over its stages of the maximum sampled
tier sojourn within each stage, with lognormal service-time noise.
Requests that hit an overflowing queue are dropped and recorded at a
timeout latency, which is how sustained overload blows up the p99.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.sim import _ckernel
from repro.sim.behaviors import Behavior
from repro.sim.graph import AppGraph
from repro.sim.telemetry import LATENCY_PERCENTILES, IntervalStats

_EPS = 1e-9
#: Upper bound on a single tier's sojourn estimate (seconds); keeps the
#: fluid model finite when a tier is fully stalled.
_MAX_SOJOURN = 30.0

#: Interval p99 buckets (milliseconds) for the metrics pillar.
_P99_MS_BUCKETS: tuple[float, ...] = (
    5.0, 10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 400.0,
    500.0, 1000.0, 2500.0, 5000.0,
)


@dataclass(frozen=True)
class EngineConfig:
    """Tunable physics of the simulated platform."""

    tick: float = 0.1
    """Tick length in seconds (an interval is 1 s = ``1/tick`` ticks)."""

    service_mult: float = 1.0
    """Multiplier on every tier's CPU demand (platform speed)."""

    base_lat_mult: float = 1.0
    """Multiplier on every tier's non-CPU base latency."""

    noise_sigma: float = 0.22
    """Lognormal sigma for sampled per-request sojourn noise."""

    capacity_jitter: float = 0.05
    """Std-dev of per-tick multiplicative capacity jitter."""

    max_queue: float = 4000.0
    """Per-tier queue cap (requests); overflow is dropped."""

    drop_latency: float = 5.0
    """Latency (seconds) booked for a dropped request (client timeout)."""

    max_latency_samples: int = 480
    """Per-interval cap on synthesized end-to-end latency samples."""

    backpressure: bool = True
    """Disable to ablate the synchronous-RPC backpressure coupling."""

    rate_cv: float = 0.18
    """Std-dev of the slow AR(1) lognormal modulation on offered load
    (real user traffic is burstier than a constant-rate Poisson)."""

    spike_prob: float = 0.03
    """Per-second probability that a short traffic burst begins."""

    spike_mult_range: tuple[float, float] = (1.25, 1.6)
    """Multiplier range for traffic bursts."""

    spike_duration_range: tuple[float, float] = (8.0, 16.0)
    """Burst duration range (seconds).  Bursts rise and fall smoothly
    (sin^2 envelope), so their onset is visible in the traffic counters
    one to two intervals ahead — a *predictable* overload, exactly the
    delayed-queueing dynamics Sinan's violation predictor exploits and
    reactive utilization scaling reacts to only after queues are built."""

    fast_sim: bool = True
    """Use the batched-tick fast interval path.  Bitwise-identical to
    :meth:`QueueingEngine.run_interval_reference`; disable to run the
    per-tick reference loop instead."""


class QueueingEngine:
    """Simulates one application deployment at tick granularity.

    Parameters
    ----------
    graph:
        The application (tiers, edges, request types).
    config:
        Platform physics; see :class:`EngineConfig`.
    seed:
        Seed for the engine's private random generator.
    behaviors:
        Injectable pathologies (see :mod:`repro.sim.behaviors`).
    """

    def __init__(
        self,
        graph: AppGraph,
        config: EngineConfig | None = None,
        seed: int = 0,
        behaviors: tuple[Behavior, ...] = (),
    ) -> None:
        self.graph = graph
        self.config = config or EngineConfig()
        self.behaviors = tuple(behaviors)
        n = graph.n_tiers

        self._cpu_per_req = np.array(
            [t.cpu_per_req for t in graph.tiers]
        ) * self.config.service_mult
        self._base_lat = np.array(
            [t.base_latency for t in graph.tiers]
        ) * self.config.base_lat_mult
        self._conc_per_core = np.array([t.conc_per_core for t in graph.tiers])
        self._soft_thr = np.array(
            [t.soft_throughput * t.replicas for t in graph.tiers]
        )
        self._replicas = np.array([float(t.replicas) for t in graph.tiers])
        self._rss_base = np.array([t.rss_base_mb for t in graph.tiers])
        self._rss_per_q = np.array([t.rss_per_queued_mb for t in graph.tiers])
        self._cache_base = np.array([t.cache_mb for t in graph.tiers])
        self._pkts = np.array([t.pkts_per_req for t in graph.tiers])

        self._levels = self._build_levels()
        self._visit_T = graph.visit_matrix.T.copy()  # (N, R)
        # Tier-index list per request type for drop probability.
        self._type_tiers = [
            np.flatnonzero(graph.visit_matrix[r] > 0) for r in range(graph.n_types)
        ]

        # AR(1) modulation constants (see _rate_modulation): hoisting the
        # sqrt/power out of the per-tick call keeps the same doubles.
        self._mod_sigma = self.config.rate_cv * float(np.sqrt(2 * 0.004))
        self._mod_bias = 0.5 * self.config.rate_cv**2

        self._rng = np.random.default_rng(seed)
        self.time = 0.0
        self.queue = np.zeros(n)
        self._sojourn = self._base_lat.copy()
        self._busy_frac = np.zeros(n)
        self._busy_ewma = np.zeros(n)
        self._demand = np.zeros(n)
        self._log_mod = 0.0
        self._burst_start = -1.0
        self._burst_until = -1.0
        self._burst_mult = 1.0
        self._intervals = 0
        self._fast_plan: _FastPlan | None = None
        self.recorder = None
        """Observability handle; ``None``/no-op means off (see
        :func:`repro.obs.recorder.attach_recorder`)."""

    def _build_levels(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Group tiers into dependency levels for vectorized sojourn math.

        Level 0 holds leaves (no callees); a tier's level is one more than
        its deepest callee.  Returns, per level > 0, the tier indices, a
        padded child-index matrix, and its validity mask; level 0 entries
        carry empty child structures.
        """
        graph = self.graph
        n = graph.n_tiers
        level = np.zeros(n, dtype=int)
        for idx in graph.reverse_topo_order:
            children = graph.children[idx]
            if children.size:
                level[idx] = 1 + level[children].max()
        levels = []
        for lvl in range(level.max() + 1):
            members = np.flatnonzero(level == lvl)
            if members.size == 0:
                continue
            kmax = max((graph.children[i].size for i in members), default=0)
            child_matrix = np.zeros((members.size, max(kmax, 1)), dtype=int)
            mask = np.zeros((members.size, max(kmax, 1)), dtype=bool)
            for row, idx in enumerate(members):
                children = graph.children[idx]
                child_matrix[row, : children.size] = children
                mask[row, : children.size] = True
            levels.append((members, child_matrix, mask))
        return levels

    def reset(self, seed: int | None = None) -> None:
        """Drain all queues and restart the clock (fresh episode)."""
        self.time = 0.0
        self.queue = np.zeros(self.graph.n_tiers)
        self._sojourn = self._base_lat.copy()
        self._busy_frac = np.zeros(self.graph.n_tiers)
        self._busy_ewma = np.zeros(self.graph.n_tiers)
        self._demand = np.zeros(self.graph.n_tiers)
        self._log_mod = 0.0
        self._burst_start = -1.0
        self._burst_until = -1.0
        self._burst_mult = 1.0
        self._intervals = 0
        if seed is not None:
            self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Tick physics
    # ------------------------------------------------------------------

    def _rate_modulation(self) -> float:
        """Per-tick multiplicative load modulation: slow AR(1) drift plus
        occasional short bursts."""
        cfg = self.config
        if cfg.rate_cv > 0:
            # Slow mean reversion (~25 s timescale): the load level drifts
            # visibly rather than flickering, so it is observable in the
            # telemetry history rather than pure per-interval noise.
            theta = 0.004
            noise = self._rng.normal(0.0, self._mod_sigma)
            self._log_mod += -theta * self._log_mod + noise
        burst = 1.0
        if cfg.spike_prob > 0:
            if self.time >= self._burst_until:
                if self._rng.random() < cfg.spike_prob * cfg.tick:
                    lo, hi = cfg.spike_mult_range
                    self._burst_mult = self._rng.uniform(lo, hi)
                    dlo, dhi = cfg.spike_duration_range
                    self._burst_start = self.time
                    self._burst_until = self.time + self._rng.uniform(dlo, dhi)
            if self.time < self._burst_until:
                # Smooth sin^2 envelope: ramps up and back down, so the
                # onset shows in traffic counters before the peak hits.
                phase = (self.time - self._burst_start) / (
                    self._burst_until - self._burst_start
                )
                envelope = np.sin(np.pi * phase) ** 2
                burst = 1.0 + (self._burst_mult - 1.0) * envelope
        return float(np.exp(self._log_mod - self._mod_bias) * burst)

    def _behavior_capacity(self, n: int) -> np.ndarray:
        mult = np.ones(n)
        for behavior in self.behaviors:
            factor = behavior.capacity_multiplier(self.time, n)
            if factor is not None:
                mult = mult * factor
        return mult

    def _behavior_replicas(self, n: int) -> np.ndarray:
        """Effective replica fraction per tier (crashed replicas gone).

        Floored away from zero: even a fully crashed tier retains a
        sliver of capacity (the restarting replica), keeping the fluid
        model finite.
        """
        mult = np.ones(n)
        for behavior in self.behaviors:
            factor = behavior.replica_multiplier(self.time, n)
            if factor is not None:
                mult = mult * factor
        return np.clip(mult, 0.02, None)

    def _compute_sojourn(
        self, allocs: np.ndarray, cap_mult: np.ndarray, rep_mult: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-tier sojourn W and effective service rate mu for this tick.

        Processes levels bottom-up so each caller sees its callees' fresh
        sojourns (synchronous RPC backpressure).
        """
        cfg = self.config
        # Sub-core CFS quotas stretch service time only to the extent the
        # quota is actually contended: an idle tier at 0.2 cores still
        # serves a lone request at full speed (the burst fits the quota),
        # but near saturation every request waits for quota refresh.
        full_stretch = 1.0 / np.minimum(allocs, 1.0)
        stretch = 1.0 + (full_stretch - 1.0) * self._busy_ewma
        # Software-scalability contention: service time inflates as the
        # per-replica throughput approaches the tier's soft limit (locks,
        # GC, coordination) — no CPU limit increase fixes this.  Crashed
        # replicas shrink the surviving soft limit proportionally.
        saturation = np.clip(self._demand / (self._soft_thr * rep_mult), 0.0, 1.0)
        # Quartic curve: negligible below ~60% of the soft limit, then a
        # sharp contention knee approaching it (up to 12x service time).
        inflation = 1.0 / np.clip(1.0 - saturation**4, 1.0 / 12.0, 1.0)
        service_time = self._cpu_per_req * stretch * inflation
        mu_cpu = allocs / self._cpu_per_req
        sojourn = np.empty_like(allocs)
        mu = np.empty_like(allocs)
        downstream = np.zeros_like(allocs)

        for members, child_matrix, mask in self._levels:
            if cfg.backpressure and mask.any():
                child_w = sojourn[child_matrix]
                child_w = np.where(mask, child_w, 0.0)
                downstream[members] = child_w.max(axis=1)
            hold = service_time[members] + self._base_lat[members] + downstream[members]
            conc = (
                self._conc_per_core[members]
                * allocs[members]
                * self._replicas[members]
                * rep_mult[members]
            )
            mu_conc = conc / np.maximum(hold, _EPS)
            mu_lvl = np.minimum(mu_cpu[members], mu_conc) * cap_mult[members]
            mu_lvl = np.maximum(mu_lvl, _EPS)
            wait = self.queue[members] / mu_lvl
            # Stochastic steady-state queueing (M/M/1-like): even without
            # an explicit backlog, waiting time grows with utilization —
            # the smooth part of the latency knee.
            rho = np.minimum(self._busy_ewma[members], 0.9)
            stoch_wait = service_time[members] * rho / (1.0 - rho)
            sojourn[members] = np.minimum(
                self._base_lat[members] + service_time[members] + wait + stoch_wait,
                _MAX_SOJOURN,
            )
            mu[members] = mu_lvl
        return sojourn, mu

    def _validate_interval_args(
        self, allocs: np.ndarray, type_rates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        graph = self.graph
        n = graph.n_tiers
        allocs = np.asarray(allocs, dtype=float)
        if allocs.shape != (n,):
            raise ValueError(f"allocs must have shape ({n},)")
        if np.any(allocs <= 0):
            raise ValueError("all CPU allocations must be positive")
        type_rates = np.asarray(type_rates, dtype=float)
        if type_rates.shape != (graph.n_types,):
            raise ValueError(f"type_rates must have shape ({graph.n_types},)")
        return allocs, type_rates

    def run_interval(
        self, allocs: np.ndarray, type_rates: np.ndarray
    ) -> IntervalStats:
        """Advance one 1 s decision interval under the given allocation.

        Parameters
        ----------
        allocs:
            Per-tier CPU limits (cores), shape ``(n_tiers,)``.
        type_rates:
            Offered load per request type (requests/second), shape
            ``(n_types,)``.

        Returns
        -------
        IntervalStats
            The telemetry a per-node agent plus the API gateway would
            report for this interval.
        """
        allocs, type_rates = self._validate_interval_args(allocs, type_rates)
        if getattr(self.config, "fast_sim", True):
            return self._run_interval_fast(allocs, type_rates)
        return self._run_interval_loop(allocs, type_rates)

    def run_interval_reference(
        self, allocs: np.ndarray, type_rates: np.ndarray
    ) -> IntervalStats:
        """Reference per-tick loop: the bit-exactness oracle for the
        fast path (same pattern as ``predict_candidates_reference``)."""
        allocs, type_rates = self._validate_interval_args(allocs, type_rates)
        return self._run_interval_loop(allocs, type_rates)

    def _run_interval_loop(
        self, allocs: np.ndarray, type_rates: np.ndarray
    ) -> IntervalStats:
        graph = self.graph
        cfg = self.config
        n = graph.n_tiers

        n_ticks = max(int(round(1.0 / cfg.tick)), 1)
        sojourn_ticks = np.empty((n_ticks, n))
        cpu_used = np.zeros(n)
        arrivals_total = np.zeros(n)
        completions_total = np.zeros(n)
        drops_total = np.zeros(n)
        type_counts = np.zeros(graph.n_types)

        for tick in range(n_ticks):
            counts = self._rng.poisson(type_rates * self._rate_modulation() * cfg.tick)
            type_counts += counts
            arrivals = self._visit_T @ counts
            self._demand = 0.8 * self._demand + 0.2 * (arrivals / cfg.tick)

            cap_mult = self._behavior_capacity(n)
            rep_mult = self._behavior_replicas(n)
            if cfg.capacity_jitter > 0:
                # Service capacity is noisier near the software saturation
                # point (GC pauses, lock convoys, scheduler interference):
                # this is what makes thin-headroom operation increasingly
                # fragile at high absolute load.
                saturation = np.clip(self._demand / (self._soft_thr * rep_mult), 0.0, 1.0)
                sigma = cfg.capacity_jitter * (1.0 + 3.0 * saturation)
                jitter = 1.0 + self._rng.normal(0.0, 1.0, size=n) * sigma
                cap_mult = cap_mult * np.clip(jitter, 0.3, 1.7)

            sojourn, mu = self._compute_sojourn(allocs, cap_mult, rep_mult)
            sojourn_ticks[tick] = sojourn

            capacity = mu * cfg.tick
            backlog = self.queue + arrivals
            completions = np.minimum(backlog, capacity)
            queue = backlog - completions
            drops = np.maximum(queue - cfg.max_queue, 0.0)
            self.queue = queue - drops

            tick_used = np.minimum(completions * self._cpu_per_req, allocs * cfg.tick)
            self._busy_frac = np.clip(tick_used / (allocs * cfg.tick), 0.0, 1.0)
            # Smoothed utilization drives the stochastic-wait and CFS
            # stretch terms: single-tick 0/1 spikes at low request rates
            # should not read as saturation.
            self._busy_ewma = 0.85 * self._busy_ewma + 0.15 * self._busy_frac
            cpu_used += tick_used
            arrivals_total += arrivals
            completions_total += completions
            drops_total += drops
            self.time += cfg.tick

        self._sojourn = sojourn_ticks[-1]
        latency_samples = self._sample_latencies(
            sojourn_ticks, type_counts, arrivals_total, drops_total
        )
        percentiles = np.percentile(latency_samples, LATENCY_PERCENTILES) * 1000.0
        return self._finish_interval(
            allocs, type_counts, arrivals_total, completions_total,
            drops_total, cpu_used, latency_samples, percentiles,
        )

    def _finish_interval(
        self,
        allocs: np.ndarray,
        type_counts: np.ndarray,
        arrivals_total: np.ndarray,
        completions_total: np.ndarray,
        drops_total: np.ndarray,
        cpu_used: np.ndarray,
        latency_samples: np.ndarray,
        percentiles: np.ndarray,
    ) -> IntervalStats:
        """Shared interval tail: behavior memory extras, telemetry noise,
        and :class:`IntervalStats` assembly.  Used by both interval paths,
        so the trailing RNG draws and arithmetic are identical by
        construction."""
        graph = self.graph
        n = graph.n_tiers

        rss_extra = np.zeros(n)
        cache_extra = np.zeros(n)
        for behavior in self.behaviors:
            extra = behavior.rss_extra_mb(self.time, n)
            if extra is not None:
                rss_extra += extra
            extra = behavior.cache_extra_mb(self.time, n)
            if extra is not None:
                cache_extra += extra

        util = cpu_used / np.maximum(allocs, _EPS)
        util = np.clip(util + self._rng.normal(0.0, 0.005, size=n), 0.0, 1.0)
        rss = self._rss_base + self._rss_per_q * self.queue + rss_extra
        cache = self._cache_base + 0.02 * completions_total + cache_extra

        total_rps = float(type_counts.sum())
        rps_by_type = {
            name: float(count)
            for name, count in zip(graph.type_names, type_counts)
        }
        stats = IntervalStats(
            time=self.time,
            rps=total_rps,
            rps_by_type=rps_by_type,
            cpu_alloc=allocs.copy(),
            cpu_util=util,
            rss_mb=rss,
            cache_mb=cache,
            rx_pps=arrivals_total * self._pkts,
            tx_pps=completions_total * self._pkts,
            queue=self.queue.copy(),
            latency_ms=percentiles,
            drops=float(drops_total.sum()),
            latency_samples_ms=latency_samples * 1000.0,
        )
        self._intervals = self.__dict__.get("_intervals", 0) + 1
        recorder = self.__dict__.get("recorder")
        if recorder is not None and recorder.enabled:
            self._report_interval(recorder, stats)
        return stats

    # ------------------------------------------------------------------
    # Fast interval path
    # ------------------------------------------------------------------

    def _run_interval_fast(
        self, allocs: np.ndarray, type_rates: np.ndarray
    ) -> IntervalStats:
        """Batched-tick interval: bitwise-identical to the reference loop.

        The interval's full RNG plan (AR(1)/burst modulation, Poisson
        counts, capacity-jitter normals) is drawn in a prepass that
        replicates the reference tick loop's exact consumption order;
        behavior multipliers are hoisted alongside (they are functions of
        simulated time only and never touch the engine RNG).  Everything
        without a tick-to-tick dependency is then computed as
        ``(n_ticks, n)`` arrays, and the sequential recurrences (queue,
        demand and busy EWMAs, the sojourn level sweep) run as a thin
        loop over level-sorted contiguous views with preallocated
        scratch.  The bitwise-equality argument relies only on IEEE-754
        identities (commutativity of +/*, ``x*1.0 == x``, ``x+0.0 == x``
        for the non-negative values here, elementwise ops equal their
        sliced counterparts) plus the engine producing finite values,
        which allocation validation guarantees.
        """
        graph = self.graph
        cfg = self.config
        n = graph.n_tiers
        rng = self._rng
        tick = cfg.tick
        n_ticks = max(int(round(1.0 / tick)), 1)
        plan = getattr(self, "_fast_plan", None)
        if plan is None or plan.n_ticks != n_ticks:
            plan = self._fast_plan = _FastPlan(self, n_ticks)

        # --- prepass: RNG plan + behaviors, reference consumption order.
        visit_T = self._visit_T
        counts_rows = plan.counts_rows
        demand_rows = plan.demand_rows
        arrival_rows = plan.arrival_rows
        draw_jitter = cfg.capacity_jitter > 0
        z_rows = plan.z_rows if draw_jitter else None
        has_behaviors = bool(self.behaviors)
        cap_beh_rows = plan.cap_beh_rows if has_behaviors else None
        rep_rows = plan.rep_rows if has_behaviors else None
        for t in range(n_ticks):
            # The reference tick's own vector Poisson call, verbatim.
            counts_rows[t] = rng.poisson(
                (type_rates * self._rate_modulation()) * tick
            )
            if has_behaviors:
                cap_beh_rows[t] = self._behavior_capacity(n)
                rep_rows[t] = self._behavior_replicas(n)
            if draw_jitter:
                z_rows[t] = rng.normal(0.0, 1.0, size=n)
            self.time += tick
        # Axis-0 add.reduce accumulates row by row, bitwise the same as
        # the reference's per-tick ``+=``.
        type_counts = np.add.reduce(counts_rows, 0)
        for t in range(n_ticks):
            np.matmul(visit_T, counts_rows[t], out=arrival_rows[t])
        arrivals_total = np.add.reduce(arrival_rows, 0)
        # demand = 0.8*demand + 0.2*(arrivals/tick), in place
        # (scalar multiplication commutes bitwise).
        demand = plan.demand_buf
        demand[:] = self._demand
        if plan.clib is not None:
            plan.clib.sinan_demand_ewma(
                n_ticks, n, tick, plan.ptr_arrival_rows,
                plan.ptr_demand_buf, plan.ptr_demand_rows,
            )
        else:
            dtmp = plan.demand_tmp
            for t in range(n_ticks):
                np.multiply(demand, 0.8, out=demand)
                np.divide(arrival_rows[t], tick, out=dtmp)
                np.multiply(dtmp, 0.2, out=dtmp)
                np.add(demand, dtmp, out=demand)
                demand_rows[t] = demand
        self._demand = demand.copy()

        # --- batched (n_ticks, n) precompute of tick-independent terms,
        # through plan scratch with direct ``out=`` ufuncs; np.clip with
        # both bounds is bitwise maximum-then-minimum.
        den = self._soft_thr * rep_rows if has_behaviors else self._soft_thr
        sat = plan.sat_rows
        np.divide(demand_rows, den, out=sat)
        np.maximum(sat, 0.0, out=sat)
        np.minimum(sat, 1.0, out=sat)
        infl = plan.infl_rows
        np.power(sat, 4, out=infl)
        np.subtract(1.0, infl, out=infl)
        np.maximum(infl, 1.0 / 12.0, out=infl)
        np.minimum(infl, 1.0, out=infl)
        np.divide(1.0, infl, out=infl)
        if draw_jitter:
            # sigma = capacity_jitter * (1 + 3*sat), then
            # jc = clip(1 + z*sigma, 0.3, 1.7); sat is dead after this.
            jc = sat
            np.multiply(sat, 3.0, out=jc)
            np.add(jc, 1.0, out=jc)
            np.multiply(jc, cfg.capacity_jitter, out=jc)
            np.multiply(z_rows, jc, out=jc)
            np.add(jc, 1.0, out=jc)
            np.maximum(jc, 0.3, out=jc)
            np.minimum(jc, 1.7, out=jc)
            cap_rows = cap_beh_rows * jc if has_behaviors else jc
        else:
            # Without jitter the reference multiplies by exactly 1.0 when
            # no behavior is installed — an IEEE identity, so skip it.
            cap_rows = cap_beh_rows
        unit_cap = cap_rows is None

        # Gather the permuted per-tick arrays into C-ordered plan buffers:
        # ``rows[:, perm]`` would return a Fortran-ordered array, which the
        # C kernel's row-major pointer walk must not see.
        perm = plan.perm
        infl_p = plan.infl_rows_p
        np.take(infl, perm, 1, infl_p)
        if unit_cap:
            cap_p = None
        else:
            cap_p = plan.cap_rows_p
            np.take(cap_rows, perm, 1, cap_p)
        arr_p = plan.arr_rows_p
        np.take(arrival_rows, perm, 1, arr_p)
        conc_const = (self._conc_per_core * allocs) * self._replicas
        if has_behaviors:
            conc_p = plan.conc_rows_p
            np.take(conc_const * rep_rows, perm, 1, conc_p)
        elif plan.clib is None:
            conc_p = np.broadcast_to(conc_const[perm], (n_ticks, n))
        else:
            conc_p = None  # kernel reads the permuted constant instead

        cpu_p = plan.cpu_p
        base_p = plan.base_p
        allocs_p = plan.allocs_p
        allocs.take(perm, None, allocs_p)
        mu_cpu_p = plan.mu_cpu_p
        np.divide(allocs_p, cpu_p, mu_cpu_p)
        fsm1_p = plan.fsm1_p
        np.minimum(allocs_p, 1.0, out=fsm1_p)
        np.divide(1.0, fsm1_p, fsm1_p)
        np.subtract(fsm1_p, 1.0, fsm1_p)
        alloc_tick_p = plan.alloc_tick_p
        np.multiply(allocs_p, tick, alloc_tick_p)
        backpressure = cfg.backpressure

        queue_p = plan.queue_p
        self.queue.take(perm, None, queue_p)
        be = plan.be
        self._busy_ewma.take(perm, None, be)
        cpu_used_p = plan.cpu_used
        cpu_used_p.fill(0.0)
        comp_total_p = plan.comp_total
        comp_total_p.fill(0.0)
        drops_total_p = plan.drops_total
        drops_total_p.fill(0.0)
        bf = plan.busy_frac
        sojourn_p = plan.sojourn_rows

        if plan.clib is not None:
            self._run_ticks_c(
                plan, n_ticks, unit_cap, conc_const, has_behaviors,
                backpressure,
            )
        else:
            self._run_ticks_numpy(
                plan, n_ticks, infl_p, cap_p, conc_p, unit_cap,
                backpressure, arr_p,
            )

        inv = plan.inv
        self.queue = queue_p.take(inv)
        self._busy_ewma = be.take(inv)
        self._busy_frac = bf.take(inv)
        drops_total = drops_total_p.take(inv)
        if plan.clib is not None:
            # The compiled sampler reads the permuted sojourn rows in
            # place; only the final tick's tier-ordered sojourn is needed
            # afterwards, so the full (n_ticks, n) un-permute is skipped.
            sojourn_ticks = None
            self._sojourn = sojourn_p[-1].take(inv)
        else:
            sojourn_ticks = sojourn_p[:, inv]
            self._sojourn = sojourn_ticks[-1]
        latency_samples = self._sample_latencies_fast(
            sojourn_ticks, type_counts, arrivals_total, drops_total, plan
        )
        percentiles = _fast_percentiles(latency_samples) * 1000.0
        return self._finish_interval(
            allocs, type_counts, arrivals_total, comp_total_p.take(inv),
            drops_total, cpu_used_p.take(inv), latency_samples, percentiles,
        )

    def _run_ticks_c(
        self,
        plan: _FastPlan,
        n_ticks: int,
        unit_cap: bool,
        conc_const: np.ndarray,
        has_behaviors: bool,
        backpressure: bool,
    ) -> None:
        """Run the tick recurrence through the compiled kernel.

        Reads the permuted per-tick inputs straight from the plan's
        persistent buffers (pointers cached at plan build) and mutates
        the same plan state as :meth:`_run_ticks_numpy` (queue, busy
        EWMA/fraction, accumulators, sojourn rows) with bitwise-identical
        values; see :mod:`repro.sim._ckernel` for the equality argument.
        """
        cfg = self.config
        null = plan.ffi.NULL
        if has_behaviors:
            conc_ptr = plan.ptr_conc_p
            conc_const_ptr = null
        else:
            conc_const.take(plan.perm, None, plan.conc_const_p)
            conc_ptr = null
            conc_const_ptr = plan.ptr_conc_const
        plan.clib.sinan_run_ticks(
            n_ticks,
            self.graph.n_tiers,
            plan.ptr_infl_p,
            null if unit_cap else plan.ptr_cap_p,
            conc_ptr,
            conc_const_ptr,
            plan.ptr_arr_p,
            plan.ptr_cpu,
            plan.ptr_base,
            plan.ptr_fsm1,
            plan.ptr_mu_cpu,
            plan.ptr_alloc_tick,
            plan.ptr_child_off,
            plan.ptr_child_idx,
            1 if backpressure else 0,
            cfg.tick,
            cfg.max_queue,
            _EPS,
            _MAX_SOJOURN,
            plan.ptr_queue,
            plan.ptr_be,
            plan.ptr_bf,
            plan.ptr_cpu_used,
            plan.ptr_comp_total,
            plan.ptr_drops,
            plan.ptr_sojourn,
        )

    def _run_ticks_numpy(
        self,
        plan: _FastPlan,
        n_ticks: int,
        infl_p: np.ndarray,
        cap_p: np.ndarray | None,
        conc_p: np.ndarray,
        unit_cap: bool,
        backpressure: bool,
        arr_p: np.ndarray,
    ) -> None:
        """Vectorized tick recurrence (fallback when no C kernel).

        Direct ufunc/method calls (``np.maximum.reduce``,
        ``ndarray.take``) with preallocated outputs throughout: they
        skip numpy's fromnumeric dispatch layer, which dominates
        runtime at a few dozen tiers.
        """
        cfg = self.config
        tick = cfg.tick
        max_queue = cfg.max_queue
        eps = _EPS
        maxr = np.maximum.reduce
        cpu_p = plan.cpu_p
        base_p = plan.base_p
        fsm1_p = plan.fsm1_p
        mu_cpu_p = plan.mu_cpu_p
        alloc_tick_p = plan.alloc_tick_p
        queue_p = plan.queue_p
        be = plan.be
        cpu_used_p = plan.cpu_used
        comp_total_p = plan.comp_total
        drops_total_p = plan.drops_total
        soj = plan.soj
        soj_n = plan.soj_n
        mu = plan.mu
        stretch, st, sb = plan.stretch, plan.st, plan.sb
        rho, stoch, tmp = plan.rho, plan.stoch, plan.tmp
        capb, comp = plan.capacity, plan.completions
        tu, bf = plan.tick_used, plan.busy_frac
        sojourn_p = plan.sojourn_rows

        for t in range(n_ticks):
            infl_t = infl_p[t]
            conc_t = conc_p[t]
            cap_t = None if unit_cap else cap_p[t]
            # stretch = 1 + (full_stretch-1)*ewma; service = cpu*stretch*infl
            np.multiply(fsm1_p, be, stretch)
            np.add(stretch, 1.0, stretch)
            np.multiply(cpu_p, stretch, st)
            np.multiply(st, infl_t, st)
            np.add(st, base_p, sb)
            np.minimum(be, 0.9, out=rho)
            np.multiply(st, rho, stoch)
            np.subtract(1.0, rho, tmp)
            np.divide(stoch, tmp, stoch)

            for lv in plan.levels:
                if lv[0] == "v":
                    # Vector levels compute directly into their slices of
                    # ``mu`` and ``soj`` (pre-built views): the same
                    # values as staging through scratch, minus the copy.
                    (_, sl, child_idx, cw, vsb, vstoch, vmucpu, vqueue,
                     vmu, vsoj) = lv
                    if child_idx is not None and backpressure:
                        soj.take(child_idx, None, cw)
                        maxr(cw, 1, None, vmu)
                        np.add(vsb, vmu, vmu)
                        np.maximum(vmu, eps, out=vmu)
                    else:
                        np.maximum(vsb, eps, out=vmu)
                    np.divide(conc_t[sl], vmu, vmu)
                    np.minimum(vmucpu, vmu, out=vmu)
                    if cap_t is not None:
                        np.multiply(vmu, cap_t[sl], vmu)
                    np.maximum(vmu, eps, out=vmu)
                    np.divide(vqueue, vmu, vsoj)
                    np.add(vsb, vsoj, vsoj)
                    np.add(vsoj, vstoch, vsoj)
                    np.minimum(vsoj, _MAX_SOJOURN, out=vsoj)
                else:
                    # Single-member level: scalar float64 arithmetic, IEEE-
                    # identical to the size-1 numpy ops of the reference
                    # for the finite, non-NaN values the engine produces.
                    _, p, children = lv
                    d = 0.0
                    if backpressure:
                        for c in children:
                            v = soj[c]
                            if v > d:
                                d = v
                    h = sb[p] + d
                    if not h > eps:
                        h = eps
                    m_l = conc_t[p] / h
                    mc = mu_cpu_p[p]
                    if mc < m_l:
                        m_l = mc
                    if cap_t is not None:
                        m_l = m_l * cap_t[p]
                    if not m_l > eps:
                        m_l = eps
                    mu[p] = m_l
                    x = sb[p] + queue_p[p] / m_l + stoch[p]
                    if x > _MAX_SOJOURN:
                        x = _MAX_SOJOURN
                    soj[p] = x

            np.multiply(mu, tick, capb)
            np.add(queue_p, arr_p[t], tmp)
            np.minimum(tmp, capb, out=comp)
            np.subtract(tmp, comp, queue_p)
            if maxr(queue_p) > max_queue:
                np.subtract(queue_p, max_queue, capb)
                np.maximum(capb, 0.0, out=capb)
                np.add(drops_total_p, capb, drops_total_p)
                np.subtract(queue_p, capb, queue_p)
            np.multiply(comp, cpu_p, tu)
            np.minimum(tu, alloc_tick_p, out=tu)
            np.divide(tu, alloc_tick_p, bf)
            # min(tu, alloc_tick)/alloc_tick lands in [0, 1] exactly (IEEE
            # division is monotone and x/x == 1.0), so the reference's
            # clip of the busy fraction is an identity; skipped.
            np.multiply(be, 0.85, be)
            np.multiply(bf, 0.15, tmp)
            np.add(be, tmp, be)
            np.add(cpu_used_p, tu, cpu_used_p)
            np.add(comp_total_p, comp, comp_total_p)
            sojourn_p[t] = soj_n

    def _report_interval(self, recorder, stats: IntervalStats) -> None:
        """Metrics (and sampled per-tier spans) for one interval."""
        index = self._intervals - 1  # 0-based index of the interval above
        recorder.counter("engine_intervals_total")
        recorder.counter("engine_requests_total", stats.rps)
        if stats.drops:
            recorder.counter("engine_drops_total", stats.drops)
        recorder.observe(
            "engine_interval_p99_ms", stats.p99_ms, buckets=_P99_MS_BUCKETS
        )
        for i, name in enumerate(self.graph.tier_names):
            recorder.gauge("engine_queue_depth", float(stats.queue[i]), tier=name)
            recorder.gauge("engine_cpu_util", float(stats.cpu_util[i]), tier=name)
            recorder.gauge(
                "engine_cpu_alloc_cores", float(stats.cpu_alloc[i]), tier=name
            )
        if recorder.sampled(index):
            start = max(stats.time - 1.0, 0.0)
            for i, name in enumerate(self.graph.tier_names):
                recorder.span(
                    name,
                    start,
                    float(self._sojourn[i]),
                    track=f"tier:{name}",
                    cat="tier",
                    args={
                        "interval": index,
                        "queue": float(stats.queue[i]),
                        "util": round(float(stats.cpu_util[i]), 4),
                    },
                )

    # ------------------------------------------------------------------
    # Latency synthesis
    # ------------------------------------------------------------------

    def _sample_latencies(
        self,
        sojourn_ticks: np.ndarray,
        type_counts: np.ndarray,
        arrivals_total: np.ndarray,
        drops_total: np.ndarray,
    ) -> np.ndarray:
        """Synthesize end-to-end latency samples for this interval."""
        cfg = self.config
        graph = self.graph
        rng = self._rng
        n_ticks = sojourn_ticks.shape[0]

        total = type_counts.sum()
        if total <= 0:
            return np.array([self._base_lat.max()])

        drop_frac = drops_total / np.maximum(arrivals_total, _EPS)
        budget = cfg.max_latency_samples
        weights = type_counts / total
        samples_per_type = np.maximum(
            (weights * budget).astype(int), (type_counts > 0).astype(int) * 3
        )
        # The lognormal noise keeps mean sojourn unchanged: E[LN] = 1.
        sigma = cfg.noise_sigma
        mu_ln = -0.5 * sigma * sigma

        out: list[np.ndarray] = []
        for r, k in enumerate(samples_per_type):
            if k <= 0:
                continue
            ticks = rng.integers(0, n_ticks, size=k)
            latency = np.zeros(k)
            for stage in graph.stage_indices[r]:
                # Single advanced-index gather: same elements as the
                # two-step ``[ticks][:, stage]`` without materializing a
                # (k, n_tiers) intermediate per stage.
                soj = sojourn_ticks[ticks[:, None], stage[None, :]]
                base = self._base_lat[stage]
                noise = rng.lognormal(mu_ln, sigma, size=(k, stage.size))
                sampled = base[None, :] + (soj - base[None, :]) * noise
                latency += sampled.max(axis=1)
            p_drop = 1.0 - np.prod(1.0 - np.clip(drop_frac[self._type_tiers[r]], 0, 1))
            if p_drop > 0:
                dropped = rng.random(k) < p_drop
                latency[dropped] = cfg.drop_latency
            # Clients time out: no observed latency exceeds the drop latency.
            out.append(np.minimum(latency, cfg.drop_latency))
        return np.concatenate(out)

    def _sample_latencies_fast(
        self,
        sojourn_ticks: np.ndarray,
        type_counts: np.ndarray,
        arrivals_total: np.ndarray,
        drops_total: np.ndarray,
        plan: _FastPlan,
    ) -> np.ndarray:
        """:meth:`_sample_latencies`, batched per request type.

        Consumes the identical RNG sequence (per-type tick draws, one
        flat lognormal draw whose stage blocks match the reference's
        successive per-stage draws, the conditional drop coin-flips) and
        computes the same per-stage maxima over the same elements, so the
        samples are bitwise equal to the reference sampler's.  The stage
        pass runs in the compiled kernel when available and otherwise in
        :meth:`_sample_type_numpy`.
        """
        cfg = self.config
        rng = self._rng
        n_ticks = plan.n_ticks

        total = type_counts.sum()
        if total <= 0:
            return np.array([self._base_lat.max()])

        budget = cfg.max_latency_samples
        weights = type_counts / total
        samples_per_type = np.maximum(
            (weights * budget).astype(int), (type_counts > 0).astype(int) * 3
        )
        sigma = cfg.noise_sigma
        mu_ln = -0.5 * sigma * sigma
        drop_latency = cfg.drop_latency
        # With zero drops every per-type p_drop is exactly 0.0 and the
        # reference draws no drop coin-flips, so the whole block can be
        # skipped without touching the bitstream.
        any_drops = bool(np.maximum.reduce(drops_total) > 0.0)
        if any_drops:
            drop_frac = drops_total / np.maximum(arrivals_total, _EPS)

        use_c = plan.clib is not None
        n = self.graph.n_tiers
        out = np.empty(int(samples_per_type.sum()))
        pos = 0
        for r, k in enumerate(samples_per_type):
            if k <= 0:
                continue
            k = int(k)
            ticks = rng.integers(0, n_ticks, size=k)
            cols = plan.type_cols[r]
            # One lognormal draw covers every stage: successive size-m
            # draws and one size-sum draw consume the bitstream element
            # for element identically, so the reference's per-stage
            # (k, s) blocks are contiguous row-major runs of ``flat``.
            flat = rng.lognormal(mu_ln, sigma, size=k * cols.size)
            if use_c:
                # Stage gathers, noise application, and stage maxima in
                # one compiled pass over the permuted sojourn rows,
                # writing straight into the output slice.
                ffi = plan.ffi
                cols_ptr, base_ptr, off_ptr, size_ptr, n_segs = (
                    plan.type_cptrs[r]
                )
                plan.clib.sinan_sample_stages(
                    k, n, n_segs,
                    plan.ptr_sojourn,
                    ffi.cast("long long *", ticks.ctypes.data),
                    cols_ptr, base_ptr,
                    ffi.cast("double *", flat.ctypes.data),
                    off_ptr, size_ptr,
                    ffi.cast("double *", out.ctypes.data + pos * 8),
                )
                latency = out[pos:pos + k]
            else:
                latency = self._sample_type_numpy(
                    sojourn_ticks, ticks, flat, plan, r, k
                )
            if any_drops:
                # multiply.reduce/minimum/maximum are the reference's
                # np.prod/np.clip minus the dispatch wrappers.
                frac = drop_frac[self._type_tiers[r]]
                p_drop = 1.0 - np.multiply.reduce(
                    1.0 - np.minimum(np.maximum(frac, 0), 1)
                )
                if p_drop > 0:
                    dropped = rng.random(k) < p_drop
                    latency[dropped] = drop_latency
            np.minimum(latency, drop_latency, out=out[pos:pos + k])
            pos += k
        return out

    def _sample_type_numpy(
        self,
        sojourn_ticks: np.ndarray,
        ticks: np.ndarray,
        flat: np.ndarray,
        plan: _FastPlan,
        r: int,
        k: int,
    ) -> np.ndarray:
        """Numpy stage pass of the fast sampler (no compiled kernel).

        One advanced-index gather covers all of the type's stage columns;
        the per-stage lognormal blocks are unpacked from ``flat`` and the
        stage maxima reduced in stage order — the same reductions over
        the same elements as the reference's per-stage loop.
        """
        cols = plan.type_cols[r]
        base = plan.type_base[r]
        segs = plan.type_segs[r]
        g = sojourn_ticks[ticks[:, None], cols[None, :]]
        noise = np.empty_like(g)
        off = 0
        for o, s in segs:
            noise[:, o:o + s] = flat[off:off + k * s].reshape(k, s)
            off += k * s
        # base + (soj - base)*noise, elementwise over the concatenated
        # stage columns (addition commutes bitwise).
        np.subtract(g, base, g)
        np.multiply(g, noise, g)
        np.add(g, base, g)
        # Stage maxima in stage order; single-tier stages are their
        # own maximum and skip the reduction entirely.
        o, s = segs[0]
        if s == 1:
            latency = g[:, 0].copy()
        else:
            latency = np.maximum.reduce(g[:, :s], axis=1)
        for o, s in segs[1:]:
            if s == 1:
                np.add(latency, g[:, o], out=latency)
            else:
                np.add(
                    latency,
                    np.maximum.reduce(g[:, o:o + s], axis=1),
                    out=latency,
                )
        return latency


class _FastPlan:
    """Level-sorted tier layout and scratch buffers for the fast path.

    Tiers are permuted so each dependency level occupies one contiguous
    slice (cheap views instead of per-level fancy indexing in the hot
    loop).  Child matrices are rewritten into permuted indices, with
    padding slots pointing at a trailing sentinel element of the sojourn
    buffer that is pinned to 0.0 — reproducing the reference's
    ``np.where(mask, child_w, 0.0)`` without a mask.  Single-member
    levels are lowered to scalar arithmetic.  All interval-shaped
    scratch is allocated once per engine and reused.
    """

    def __init__(self, engine: QueueingEngine, n_ticks: int) -> None:
        n = engine.graph.n_tiers
        self.n_ticks = n_ticks
        order: list[int] = []
        for members, _, _ in engine._levels:
            order.extend(int(i) for i in members)
        self.perm = np.asarray(order, dtype=np.intp)
        self.inv = np.empty(n, dtype=np.intp)
        self.inv[self.perm] = np.arange(n, dtype=np.intp)

        self.cpu_p = engine._cpu_per_req[self.perm]
        self.base_p = engine._base_lat[self.perm]

        self.demand_rows = np.empty((n_ticks, n))
        self.arrival_rows = np.empty((n_ticks, n))
        self.z_rows = np.empty((n_ticks, n))
        self.cap_beh_rows = np.empty((n_ticks, n))
        self.rep_rows = np.empty((n_ticks, n))
        self.sojourn_rows = np.empty((n_ticks, n))
        (self.infl_rows_p, self.cap_rows_p, self.arr_rows_p,
         self.conc_rows_p, self.sat_rows, self.infl_rows) = (
            np.empty((n_ticks, n)) for _ in range(6))
        self.counts_rows = np.empty((n_ticks, engine.graph.n_types))
        self.soj = np.zeros(n + 1)
        self.soj_n = self.soj[:n]
        self.mu = np.empty(n)
        (self.stretch, self.st, self.sb, self.rho, self.stoch, self.tmp,
         self.capacity, self.completions, self.tick_used,
         self.busy_frac) = (np.empty(n) for _ in range(10))
        (self.allocs_p, self.mu_cpu_p, self.fsm1_p, self.alloc_tick_p,
         self.queue_p, self.be, self.cpu_used, self.comp_total,
         self.drops_total, self.conc_const_p, self.demand_buf,
         self.demand_tmp) = (np.empty(n) for _ in range(12))

        self.levels: list[tuple] = []
        start = 0
        for members, child_matrix, mask in engine._levels:
            m = int(members.size)
            if mask.any():
                child_idx = np.where(mask, self.inv[child_matrix], n)
            else:
                child_idx = None
            if m == 1:
                children = ()
                if child_idx is not None:
                    children = tuple(int(c) for c in child_idx[0] if c < n)
                self.levels.append(("s", start, children))
            else:
                sl = slice(start, start + m)
                cw = None if child_idx is None else np.empty(child_idx.shape)
                # Pre-built views into the persistent buffers: the hot
                # loop then never slices per level.
                self.levels.append(
                    ("v", sl, child_idx, cw, self.sb[sl], self.stoch[sl],
                     self.mu_cpu_p[sl], self.queue_p[sl], self.mu[sl],
                     self.soj[sl])
                )
            start += m

        # Per-type sampler plan: each type's stage index arrays are
        # concatenated so one gather (and one flat lognormal draw) covers
        # every stage; ``type_segs`` records each stage's (offset, size)
        # within the concatenation for the per-stage maxima.
        base_lat = engine._base_lat
        self.type_cols: list[np.ndarray] = []
        self.type_base: list[np.ndarray] = []
        self.type_segs: list[list[tuple[int, int]]] = []
        self.type_cols_p: list[np.ndarray] = []
        self.type_seg_off: list[np.ndarray] = []
        self.type_seg_size: list[np.ndarray] = []
        for stages in engine.graph.stage_indices:
            cols = np.concatenate(
                [np.asarray(s, dtype=np.intp) for s in stages]
            )
            segs: list[tuple[int, int]] = []
            off = 0
            for s in stages:
                segs.append((off, int(s.size)))
                off += int(s.size)
            self.type_cols.append(cols)
            self.type_base.append(base_lat[cols])
            self.type_segs.append(segs)
            self.type_cols_p.append(self.inv[cols].astype(np.int64))
            self.type_seg_off.append(
                np.asarray([o for o, _ in segs], dtype=np.int32)
            )
            self.type_seg_size.append(
                np.asarray([s for _, s in segs], dtype=np.int32)
            )

        # CSR child lists in permuted index space for the C kernel: row i
        # (permuted order) holds children at child_idx[child_off[i] :
        # child_off[i + 1]].  Permuted order makes i = 0..n-1 a valid
        # level sweep (children always at lower indices).
        child_off = np.zeros(n + 1, dtype=np.int32)
        kids: list[int] = []
        row = 0
        for members, child_matrix, mask in engine._levels:
            for j in range(int(members.size)):
                if mask[j].any():
                    kids.extend(
                        int(self.inv[c]) for c in child_matrix[j][mask[j]]
                    )
                row += 1
                child_off[row] = len(kids)
        self.child_off = child_off
        self.child_idx = (
            np.asarray(kids, dtype=np.int32)
            if kids
            else np.zeros(1, dtype=np.int32)
        )

        kern = None
        if not os.environ.get("REPRO_SIM_PURE_NUMPY"):
            kern = _ckernel.load_kernel()
        if kern is None:
            self.ffi = None
            self.clib = None
        else:
            self.ffi, self.clib = kern

            def dptr(a: np.ndarray):
                return self.ffi.cast("double *", a.ctypes.data)

            self.ptr_cpu = dptr(self.cpu_p)
            self.ptr_base = dptr(self.base_p)
            self.ptr_fsm1 = dptr(self.fsm1_p)
            self.ptr_mu_cpu = dptr(self.mu_cpu_p)
            self.ptr_alloc_tick = dptr(self.alloc_tick_p)
            self.ptr_queue = dptr(self.queue_p)
            self.ptr_be = dptr(self.be)
            self.ptr_bf = dptr(self.busy_frac)
            self.ptr_cpu_used = dptr(self.cpu_used)
            self.ptr_comp_total = dptr(self.comp_total)
            self.ptr_drops = dptr(self.drops_total)
            self.ptr_sojourn = dptr(self.sojourn_rows)
            self.ptr_arrival_rows = dptr(self.arrival_rows)
            self.ptr_demand_buf = dptr(self.demand_buf)
            self.ptr_demand_rows = dptr(self.demand_rows)
            self.ptr_infl_p = dptr(self.infl_rows_p)
            self.ptr_cap_p = dptr(self.cap_rows_p)
            self.ptr_arr_p = dptr(self.arr_rows_p)
            self.ptr_conc_p = dptr(self.conc_rows_p)
            self.ptr_conc_const = dptr(self.conc_const_p)
            self.ptr_child_off = self.ffi.cast(
                "int *", self.child_off.ctypes.data
            )
            self.ptr_child_idx = self.ffi.cast(
                "int *", self.child_idx.ctypes.data
            )
            self.type_cptrs = [
                (
                    self.ffi.cast("long long *", cp.ctypes.data),
                    dptr(b),
                    self.ffi.cast("int *", so.ctypes.data),
                    self.ffi.cast("int *", ss.ctypes.data),
                    len(ss),
                )
                for cp, b, so, ss in zip(
                    self.type_cols_p, self.type_base,
                    self.type_seg_off, self.type_seg_size,
                )
            ]


def _fast_percentiles(values: np.ndarray) -> np.ndarray:
    """``np.percentile(values, LATENCY_PERCENTILES)``, bitwise.

    One explicit sort plus numpy's linear-interpolation formula,
    including its ``gamma >= 0.5`` rewrite (``b - diff*(1-gamma)``) —
    several times faster than ``np.percentile`` at the engine's sample
    sizes because the quantile machinery (axis handling, per-quantile
    partitions) is skipped.
    """
    a = np.sort(values)
    last = a.size - 1
    out = np.empty(len(LATENCY_PERCENTILES))
    for j, q in enumerate(LATENCY_PERCENTILES):
        vi = q / 100 * last
        lo = int(vi)
        hi = lo + 1 if lo < last else last
        t = vi - lo
        x = a[lo]
        diff = a[hi] - x
        r = x + diff * t
        if t >= 0.5:
            r = a[hi] - diff * (1.0 - t)
        out[j] = r
    return out


__all__ = ["QueueingEngine", "EngineConfig"]
