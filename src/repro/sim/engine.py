"""Discrete-time queueing engine for the microservice cluster.

The engine advances in fixed ticks (default 100 ms, ten per 1 s decision
interval).  Per tick and per tier it models:

* **CPU-derived capacity**: a tier with allocation ``a`` cores and CPU
  demand ``c`` CPU-seconds per unit of work serves at most ``a / c``
  units per second; a single request runs on at most one core, so its
  service time is ``c / min(a, 1)`` (sub-core limits stretch service).
* **Synchronous-RPC backpressure**: a caller's concurrency slots
  (``conc_per_core * a``) are held for its own service time *plus* the
  sojourn of its slowest callee, so a slow downstream tier throttles the
  upstream tier's effective throughput and inflates *its* queue.  This is
  what makes "tier with the longest queue" a symptom rather than the
  culprit (paper Section 5.3), defeating queue-driven managers.
* **Queue persistence** across intervals: under-allocation builds queues
  that take many intervals to drain, the paper's delayed queueing effect
  (Figure 3).

End-to-end latency is synthesized per interval by sampling request paths:
a request's latency is the sum over its stages of the maximum sampled
tier sojourn within each stage, with lognormal service-time noise.
Requests that hit an overflowing queue are dropped and recorded at a
timeout latency, which is how sustained overload blows up the p99.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.behaviors import Behavior
from repro.sim.graph import AppGraph
from repro.sim.telemetry import LATENCY_PERCENTILES, IntervalStats

_EPS = 1e-9
#: Upper bound on a single tier's sojourn estimate (seconds); keeps the
#: fluid model finite when a tier is fully stalled.
_MAX_SOJOURN = 30.0

#: Interval p99 buckets (milliseconds) for the metrics pillar.
_P99_MS_BUCKETS: tuple[float, ...] = (
    5.0, 10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 400.0,
    500.0, 1000.0, 2500.0, 5000.0,
)


@dataclass(frozen=True)
class EngineConfig:
    """Tunable physics of the simulated platform."""

    tick: float = 0.1
    """Tick length in seconds (an interval is 1 s = ``1/tick`` ticks)."""

    service_mult: float = 1.0
    """Multiplier on every tier's CPU demand (platform speed)."""

    base_lat_mult: float = 1.0
    """Multiplier on every tier's non-CPU base latency."""

    noise_sigma: float = 0.22
    """Lognormal sigma for sampled per-request sojourn noise."""

    capacity_jitter: float = 0.05
    """Std-dev of per-tick multiplicative capacity jitter."""

    max_queue: float = 4000.0
    """Per-tier queue cap (requests); overflow is dropped."""

    drop_latency: float = 5.0
    """Latency (seconds) booked for a dropped request (client timeout)."""

    max_latency_samples: int = 480
    """Per-interval cap on synthesized end-to-end latency samples."""

    backpressure: bool = True
    """Disable to ablate the synchronous-RPC backpressure coupling."""

    rate_cv: float = 0.18
    """Std-dev of the slow AR(1) lognormal modulation on offered load
    (real user traffic is burstier than a constant-rate Poisson)."""

    spike_prob: float = 0.03
    """Per-second probability that a short traffic burst begins."""

    spike_mult_range: tuple[float, float] = (1.25, 1.6)
    """Multiplier range for traffic bursts."""

    spike_duration_range: tuple[float, float] = (8.0, 16.0)
    """Burst duration range (seconds).  Bursts rise and fall smoothly
    (sin^2 envelope), so their onset is visible in the traffic counters
    one to two intervals ahead — a *predictable* overload, exactly the
    delayed-queueing dynamics Sinan's violation predictor exploits and
    reactive utilization scaling reacts to only after queues are built."""


class QueueingEngine:
    """Simulates one application deployment at tick granularity.

    Parameters
    ----------
    graph:
        The application (tiers, edges, request types).
    config:
        Platform physics; see :class:`EngineConfig`.
    seed:
        Seed for the engine's private random generator.
    behaviors:
        Injectable pathologies (see :mod:`repro.sim.behaviors`).
    """

    def __init__(
        self,
        graph: AppGraph,
        config: EngineConfig | None = None,
        seed: int = 0,
        behaviors: tuple[Behavior, ...] = (),
    ) -> None:
        self.graph = graph
        self.config = config or EngineConfig()
        self.behaviors = tuple(behaviors)
        n = graph.n_tiers

        self._cpu_per_req = np.array(
            [t.cpu_per_req for t in graph.tiers]
        ) * self.config.service_mult
        self._base_lat = np.array(
            [t.base_latency for t in graph.tiers]
        ) * self.config.base_lat_mult
        self._conc_per_core = np.array([t.conc_per_core for t in graph.tiers])
        self._soft_thr = np.array(
            [t.soft_throughput * t.replicas for t in graph.tiers]
        )
        self._replicas = np.array([float(t.replicas) for t in graph.tiers])
        self._rss_base = np.array([t.rss_base_mb for t in graph.tiers])
        self._rss_per_q = np.array([t.rss_per_queued_mb for t in graph.tiers])
        self._cache_base = np.array([t.cache_mb for t in graph.tiers])
        self._pkts = np.array([t.pkts_per_req for t in graph.tiers])

        self._levels = self._build_levels()
        self._visit_T = graph.visit_matrix.T.copy()  # (N, R)
        # Tier-index list per request type for drop probability.
        self._type_tiers = [
            np.flatnonzero(graph.visit_matrix[r] > 0) for r in range(graph.n_types)
        ]

        self._rng = np.random.default_rng(seed)
        self.time = 0.0
        self.queue = np.zeros(n)
        self._sojourn = self._base_lat.copy()
        self._busy_frac = np.zeros(n)
        self._busy_ewma = np.zeros(n)
        self._demand = np.zeros(n)
        self._log_mod = 0.0
        self._burst_start = -1.0
        self._burst_until = -1.0
        self._burst_mult = 1.0
        self._intervals = 0
        self.recorder = None
        """Observability handle; ``None``/no-op means off (see
        :func:`repro.obs.recorder.attach_recorder`)."""

    def _build_levels(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Group tiers into dependency levels for vectorized sojourn math.

        Level 0 holds leaves (no callees); a tier's level is one more than
        its deepest callee.  Returns, per level > 0, the tier indices, a
        padded child-index matrix, and its validity mask; level 0 entries
        carry empty child structures.
        """
        graph = self.graph
        n = graph.n_tiers
        level = np.zeros(n, dtype=int)
        for idx in graph.reverse_topo_order:
            children = graph.children[idx]
            if children.size:
                level[idx] = 1 + level[children].max()
        levels = []
        for lvl in range(level.max() + 1):
            members = np.flatnonzero(level == lvl)
            if members.size == 0:
                continue
            kmax = max((graph.children[i].size for i in members), default=0)
            child_matrix = np.zeros((members.size, max(kmax, 1)), dtype=int)
            mask = np.zeros((members.size, max(kmax, 1)), dtype=bool)
            for row, idx in enumerate(members):
                children = graph.children[idx]
                child_matrix[row, : children.size] = children
                mask[row, : children.size] = True
            levels.append((members, child_matrix, mask))
        return levels

    def reset(self, seed: int | None = None) -> None:
        """Drain all queues and restart the clock (fresh episode)."""
        self.time = 0.0
        self.queue = np.zeros(self.graph.n_tiers)
        self._sojourn = self._base_lat.copy()
        self._busy_frac = np.zeros(self.graph.n_tiers)
        self._busy_ewma = np.zeros(self.graph.n_tiers)
        self._demand = np.zeros(self.graph.n_tiers)
        self._log_mod = 0.0
        self._burst_start = -1.0
        self._burst_until = -1.0
        self._burst_mult = 1.0
        self._intervals = 0
        if seed is not None:
            self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Tick physics
    # ------------------------------------------------------------------

    def _rate_modulation(self) -> float:
        """Per-tick multiplicative load modulation: slow AR(1) drift plus
        occasional short bursts."""
        cfg = self.config
        if cfg.rate_cv > 0:
            # Slow mean reversion (~25 s timescale): the load level drifts
            # visibly rather than flickering, so it is observable in the
            # telemetry history rather than pure per-interval noise.
            theta = 0.004
            noise = self._rng.normal(0.0, cfg.rate_cv * np.sqrt(2 * theta))
            self._log_mod += -theta * self._log_mod + noise
        burst = 1.0
        if cfg.spike_prob > 0:
            if self.time >= self._burst_until:
                if self._rng.random() < cfg.spike_prob * cfg.tick:
                    lo, hi = cfg.spike_mult_range
                    self._burst_mult = self._rng.uniform(lo, hi)
                    dlo, dhi = cfg.spike_duration_range
                    self._burst_start = self.time
                    self._burst_until = self.time + self._rng.uniform(dlo, dhi)
            if self.time < self._burst_until:
                # Smooth sin^2 envelope: ramps up and back down, so the
                # onset shows in traffic counters before the peak hits.
                phase = (self.time - self._burst_start) / (
                    self._burst_until - self._burst_start
                )
                envelope = np.sin(np.pi * phase) ** 2
                burst = 1.0 + (self._burst_mult - 1.0) * envelope
        return float(np.exp(self._log_mod - 0.5 * cfg.rate_cv**2) * burst)

    def _behavior_capacity(self, n: int) -> np.ndarray:
        mult = np.ones(n)
        for behavior in self.behaviors:
            factor = behavior.capacity_multiplier(self.time, n)
            if factor is not None:
                mult = mult * factor
        return mult

    def _behavior_replicas(self, n: int) -> np.ndarray:
        """Effective replica fraction per tier (crashed replicas gone).

        Floored away from zero: even a fully crashed tier retains a
        sliver of capacity (the restarting replica), keeping the fluid
        model finite.
        """
        mult = np.ones(n)
        for behavior in self.behaviors:
            factor = behavior.replica_multiplier(self.time, n)
            if factor is not None:
                mult = mult * factor
        return np.clip(mult, 0.02, None)

    def _compute_sojourn(
        self, allocs: np.ndarray, cap_mult: np.ndarray, rep_mult: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-tier sojourn W and effective service rate mu for this tick.

        Processes levels bottom-up so each caller sees its callees' fresh
        sojourns (synchronous RPC backpressure).
        """
        cfg = self.config
        # Sub-core CFS quotas stretch service time only to the extent the
        # quota is actually contended: an idle tier at 0.2 cores still
        # serves a lone request at full speed (the burst fits the quota),
        # but near saturation every request waits for quota refresh.
        full_stretch = 1.0 / np.minimum(allocs, 1.0)
        stretch = 1.0 + (full_stretch - 1.0) * self._busy_ewma
        # Software-scalability contention: service time inflates as the
        # per-replica throughput approaches the tier's soft limit (locks,
        # GC, coordination) — no CPU limit increase fixes this.  Crashed
        # replicas shrink the surviving soft limit proportionally.
        saturation = np.clip(self._demand / (self._soft_thr * rep_mult), 0.0, 1.0)
        # Quartic curve: negligible below ~60% of the soft limit, then a
        # sharp contention knee approaching it (up to 12x service time).
        inflation = 1.0 / np.clip(1.0 - saturation**4, 1.0 / 12.0, 1.0)
        service_time = self._cpu_per_req * stretch * inflation
        mu_cpu = allocs / self._cpu_per_req
        sojourn = np.empty_like(allocs)
        mu = np.empty_like(allocs)
        downstream = np.zeros_like(allocs)

        for members, child_matrix, mask in self._levels:
            if cfg.backpressure and mask.any():
                child_w = sojourn[child_matrix]
                child_w = np.where(mask, child_w, 0.0)
                downstream[members] = child_w.max(axis=1)
            hold = service_time[members] + self._base_lat[members] + downstream[members]
            conc = (
                self._conc_per_core[members]
                * allocs[members]
                * self._replicas[members]
                * rep_mult[members]
            )
            mu_conc = conc / np.maximum(hold, _EPS)
            mu_lvl = np.minimum(mu_cpu[members], mu_conc) * cap_mult[members]
            mu_lvl = np.maximum(mu_lvl, _EPS)
            wait = self.queue[members] / mu_lvl
            # Stochastic steady-state queueing (M/M/1-like): even without
            # an explicit backlog, waiting time grows with utilization —
            # the smooth part of the latency knee.
            rho = np.minimum(self._busy_ewma[members], 0.9)
            stoch_wait = service_time[members] * rho / (1.0 - rho)
            sojourn[members] = np.minimum(
                self._base_lat[members] + service_time[members] + wait + stoch_wait,
                _MAX_SOJOURN,
            )
            mu[members] = mu_lvl
        return sojourn, mu

    def run_interval(
        self, allocs: np.ndarray, type_rates: np.ndarray
    ) -> IntervalStats:
        """Advance one 1 s decision interval under the given allocation.

        Parameters
        ----------
        allocs:
            Per-tier CPU limits (cores), shape ``(n_tiers,)``.
        type_rates:
            Offered load per request type (requests/second), shape
            ``(n_types,)``.

        Returns
        -------
        IntervalStats
            The telemetry a per-node agent plus the API gateway would
            report for this interval.
        """
        graph = self.graph
        cfg = self.config
        n = graph.n_tiers
        allocs = np.asarray(allocs, dtype=float)
        if allocs.shape != (n,):
            raise ValueError(f"allocs must have shape ({n},)")
        if np.any(allocs <= 0):
            raise ValueError("all CPU allocations must be positive")
        type_rates = np.asarray(type_rates, dtype=float)
        if type_rates.shape != (graph.n_types,):
            raise ValueError(f"type_rates must have shape ({graph.n_types},)")

        n_ticks = max(int(round(1.0 / cfg.tick)), 1)
        sojourn_ticks = np.empty((n_ticks, n))
        cpu_used = np.zeros(n)
        arrivals_total = np.zeros(n)
        completions_total = np.zeros(n)
        drops_total = np.zeros(n)
        type_counts = np.zeros(graph.n_types)

        for tick in range(n_ticks):
            counts = self._rng.poisson(type_rates * self._rate_modulation() * cfg.tick)
            type_counts += counts
            arrivals = self._visit_T @ counts
            self._demand = 0.8 * self._demand + 0.2 * (arrivals / cfg.tick)

            cap_mult = self._behavior_capacity(n)
            rep_mult = self._behavior_replicas(n)
            if cfg.capacity_jitter > 0:
                # Service capacity is noisier near the software saturation
                # point (GC pauses, lock convoys, scheduler interference):
                # this is what makes thin-headroom operation increasingly
                # fragile at high absolute load.
                saturation = np.clip(self._demand / (self._soft_thr * rep_mult), 0.0, 1.0)
                sigma = cfg.capacity_jitter * (1.0 + 3.0 * saturation)
                jitter = 1.0 + self._rng.normal(0.0, 1.0, size=n) * sigma
                cap_mult = cap_mult * np.clip(jitter, 0.3, 1.7)

            sojourn, mu = self._compute_sojourn(allocs, cap_mult, rep_mult)
            sojourn_ticks[tick] = sojourn

            capacity = mu * cfg.tick
            backlog = self.queue + arrivals
            completions = np.minimum(backlog, capacity)
            queue = backlog - completions
            drops = np.maximum(queue - cfg.max_queue, 0.0)
            self.queue = queue - drops

            tick_used = np.minimum(completions * self._cpu_per_req, allocs * cfg.tick)
            self._busy_frac = np.clip(tick_used / (allocs * cfg.tick), 0.0, 1.0)
            # Smoothed utilization drives the stochastic-wait and CFS
            # stretch terms: single-tick 0/1 spikes at low request rates
            # should not read as saturation.
            self._busy_ewma = 0.85 * self._busy_ewma + 0.15 * self._busy_frac
            cpu_used += tick_used
            arrivals_total += arrivals
            completions_total += completions
            drops_total += drops
            self.time += cfg.tick

        self._sojourn = sojourn_ticks[-1]
        latency_samples = self._sample_latencies(
            sojourn_ticks, type_counts, arrivals_total, drops_total
        )
        percentiles = np.percentile(latency_samples, LATENCY_PERCENTILES) * 1000.0

        rss_extra = np.zeros(n)
        cache_extra = np.zeros(n)
        for behavior in self.behaviors:
            extra = behavior.rss_extra_mb(self.time, n)
            if extra is not None:
                rss_extra += extra
            extra = behavior.cache_extra_mb(self.time, n)
            if extra is not None:
                cache_extra += extra

        util = cpu_used / np.maximum(allocs, _EPS)
        util = np.clip(util + self._rng.normal(0.0, 0.005, size=n), 0.0, 1.0)
        rss = self._rss_base + self._rss_per_q * self.queue + rss_extra
        cache = self._cache_base + 0.02 * completions_total + cache_extra

        total_rps = float(type_counts.sum())
        rps_by_type = {
            name: float(count)
            for name, count in zip(graph.type_names, type_counts)
        }
        stats = IntervalStats(
            time=self.time,
            rps=total_rps,
            rps_by_type=rps_by_type,
            cpu_alloc=allocs.copy(),
            cpu_util=util,
            rss_mb=rss,
            cache_mb=cache,
            rx_pps=arrivals_total * self._pkts,
            tx_pps=completions_total * self._pkts,
            queue=self.queue.copy(),
            latency_ms=percentiles,
            drops=float(drops_total.sum()),
            latency_samples_ms=latency_samples * 1000.0,
        )
        self._intervals = self.__dict__.get("_intervals", 0) + 1
        recorder = self.__dict__.get("recorder")
        if recorder is not None and recorder.enabled:
            self._report_interval(recorder, stats)
        return stats

    def _report_interval(self, recorder, stats: IntervalStats) -> None:
        """Metrics (and sampled per-tier spans) for one interval."""
        index = self._intervals - 1  # 0-based index of the interval above
        recorder.counter("engine_intervals_total")
        recorder.counter("engine_requests_total", stats.rps)
        if stats.drops:
            recorder.counter("engine_drops_total", stats.drops)
        recorder.observe(
            "engine_interval_p99_ms", stats.p99_ms, buckets=_P99_MS_BUCKETS
        )
        for i, name in enumerate(self.graph.tier_names):
            recorder.gauge("engine_queue_depth", float(stats.queue[i]), tier=name)
            recorder.gauge("engine_cpu_util", float(stats.cpu_util[i]), tier=name)
            recorder.gauge(
                "engine_cpu_alloc_cores", float(stats.cpu_alloc[i]), tier=name
            )
        if recorder.sampled(index):
            start = max(stats.time - 1.0, 0.0)
            for i, name in enumerate(self.graph.tier_names):
                recorder.span(
                    name,
                    start,
                    float(self._sojourn[i]),
                    track=f"tier:{name}",
                    cat="tier",
                    args={
                        "interval": index,
                        "queue": float(stats.queue[i]),
                        "util": round(float(stats.cpu_util[i]), 4),
                    },
                )

    # ------------------------------------------------------------------
    # Latency synthesis
    # ------------------------------------------------------------------

    def _sample_latencies(
        self,
        sojourn_ticks: np.ndarray,
        type_counts: np.ndarray,
        arrivals_total: np.ndarray,
        drops_total: np.ndarray,
    ) -> np.ndarray:
        """Synthesize end-to-end latency samples for this interval."""
        cfg = self.config
        graph = self.graph
        rng = self._rng
        n_ticks = sojourn_ticks.shape[0]

        total = type_counts.sum()
        if total <= 0:
            return np.array([self._base_lat.max()])

        drop_frac = drops_total / np.maximum(arrivals_total, _EPS)
        budget = cfg.max_latency_samples
        weights = type_counts / total
        samples_per_type = np.maximum(
            (weights * budget).astype(int), (type_counts > 0).astype(int) * 3
        )
        # The lognormal noise keeps mean sojourn unchanged: E[LN] = 1.
        sigma = cfg.noise_sigma
        mu_ln = -0.5 * sigma * sigma

        out: list[np.ndarray] = []
        for r, k in enumerate(samples_per_type):
            if k <= 0:
                continue
            ticks = rng.integers(0, n_ticks, size=k)
            latency = np.zeros(k)
            for stage in graph.stage_indices[r]:
                soj = sojourn_ticks[ticks][:, stage]
                base = self._base_lat[stage]
                noise = rng.lognormal(mu_ln, sigma, size=(k, stage.size))
                sampled = base[None, :] + (soj - base[None, :]) * noise
                latency += sampled.max(axis=1)
            p_drop = 1.0 - np.prod(1.0 - np.clip(drop_frac[self._type_tiers[r]], 0, 1))
            if p_drop > 0:
                dropped = rng.random(k) < p_drop
                latency[dropped] = cfg.drop_latency
            # Clients time out: no observed latency exceeds the drop latency.
            out.append(np.minimum(latency, cfg.drop_latency))
        return np.concatenate(out)


__all__ = ["QueueingEngine", "EngineConfig"]
