"""Injectable tier behaviours (faults, pathologies, platform quirks).

The paper's explainability case study (Section 5.6) hinges on a real
pathology: Redis forks and copies its written memory to persist logs
every minute, stalling request service and causing periodic tail-latency
spikes.  Behaviours let the simulator inject exactly this class of
effect; the concrete Redis log-sync behaviour lives in
:mod:`repro.apps.behaviors`.
"""

from __future__ import annotations

import numpy as np


class Behavior:
    """Hook interface invoked by the engine every tick.

    Subclasses override any subset of the methods; defaults are no-ops.
    """

    def capacity_multiplier(self, time: float, n_tiers: int) -> np.ndarray | None:
        """Per-tier multiplicative factor on service capacity at ``time``.

        Return ``None`` (the default) for "no effect", otherwise an array
        of shape ``(n_tiers,)`` with values in ``(0, 1]`` (or above 1 for
        boosts).
        """
        return None

    def replica_multiplier(self, time: float, n_tiers: int) -> np.ndarray | None:
        """Per-tier multiplicative factor on the live replica count.

        A crashed replica takes its share of the tier's concurrency slots
        and soft (software-scalability) throughput with it until it
        restarts; values are in ``(0, 1]``.
        """
        return None

    def rss_extra_mb(self, time: float, n_tiers: int) -> np.ndarray | None:
        """Per-tier additive resident-set-size delta (MB) at ``time``."""
        return None

    def cache_extra_mb(self, time: float, n_tiers: int) -> np.ndarray | None:
        """Per-tier additive page-cache delta (MB) at ``time``."""
        return None


class CapacityFault(Behavior):
    """Periodic capacity stall on one tier.

    Generic building block: every ``period`` seconds, the tier's service
    capacity drops to ``residual_capacity`` of nominal for ``duration``
    seconds, optionally with an RSS spike (memory being copied).
    """

    def __init__(
        self,
        tier_index: int,
        period: float,
        duration: float,
        residual_capacity: float = 0.05,
        rss_spike_mb: float = 0.0,
        start_offset: float = 0.0,
    ) -> None:
        if period <= 0 or duration <= 0:
            raise ValueError("period and duration must be positive")
        if not (0.0 < residual_capacity <= 1.0):
            raise ValueError("residual_capacity must be in (0, 1]")
        self.tier_index = tier_index
        self.period = period
        self.duration = duration
        self.residual_capacity = residual_capacity
        self.rss_spike_mb = rss_spike_mb
        self.start_offset = start_offset

    def _stalled(self, time: float) -> bool:
        phase = (time - self.start_offset) % self.period
        return 0.0 <= phase < self.duration

    def capacity_multiplier(self, time: float, n_tiers: int) -> np.ndarray | None:
        if not self._stalled(time):
            return None
        mult = np.ones(n_tiers)
        mult[self.tier_index] = self.residual_capacity
        return mult

    def rss_extra_mb(self, time: float, n_tiers: int) -> np.ndarray | None:
        if self.rss_spike_mb <= 0 or not self._stalled(time):
            return None
        extra = np.zeros(n_tiers)
        extra[self.tier_index] = self.rss_spike_mb
        return extra


class CapacityDrift(Behavior):
    """Permanent, gradual capacity regression on selected tiers.

    Unlike :class:`CapacityFault` (a periodic stall the incumbent model
    can ride out), this models the slow deployment drift of paper
    Section 5.4 — a platform change, a software update that makes
    requests more expensive — that invalidates the training
    distribution: starting at ``start``, capacity ramps linearly down
    over ``ramp`` seconds to ``final_capacity`` of nominal and stays
    there.
    """

    def __init__(
        self,
        start: float,
        ramp: float,
        final_capacity: float,
        tiers: list[int] | None = None,
    ) -> None:
        if ramp < 0:
            raise ValueError("ramp must be >= 0")
        if not (0.0 < final_capacity <= 1.0):
            raise ValueError("final_capacity must be in (0, 1]")
        self.start = start
        self.ramp = ramp
        self.final_capacity = final_capacity
        self.tiers = tiers
        """Affected tier indices (``None`` = every tier)."""

    def capacity_multiplier(self, time: float, n_tiers: int) -> np.ndarray | None:
        if time < self.start:
            return None
        if self.ramp > 0:
            progress = min((time - self.start) / self.ramp, 1.0)
        else:
            progress = 1.0
        factor = 1.0 + progress * (self.final_capacity - 1.0)
        mult = np.ones(n_tiers)
        if self.tiers is None:
            mult[:] = factor
        else:
            mult[self.tiers] = factor
        return mult


__all__ = ["Behavior", "CapacityFault", "CapacityDrift"]
