"""Seeded, composable fault injection for the cluster simulator.

The paper's scheduler ships a safety mechanism — unpredicted-violation
recovery, a trust counter, conservative reclamation — but its
deployments never actually stressed it ("the trust never had to drop").
This module makes those paths exercisable: a :class:`FaultInjector`
perturbs a :class:`~repro.sim.cluster.ClusterSimulator` episode with

* **replica crashes** — a tier loses a fraction of its replicas for a
  recovery window (concurrency slots and soft throughput go with them),
* **stragglers** — a tier's service capacity degrades for a while
  (noisy neighbor, failing disk), via the engine's existing
  ``capacity_multiplier`` behavior hook,
* **telemetry corruption** — the manager's *observed* telemetry drops
  intervals, reads NaN or stale channels, or sees cgroup-counter resets,
  while the ground-truth log stays intact for scoring,
* **load-spike storms** — multiplicative surges on the offered load.

Faults are declared as :class:`FaultProfile`\\ s (see
:data:`FAULT_PROFILES`), selectable from the CLI via
``repro run --fault-profile crash-storm`` and swept by
:mod:`repro.harness.resilience`.  All schedules and corruption draws
come from generators seeded only by the injector's own seed, so a fault
run is bit-identical for a fixed seed regardless of worker parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.sim.behaviors import Behavior
from repro.sim.telemetry import IntervalStats

#: Resource channels eligible for NaN / stale / reset corruption.  The
#: CPU limit is exempt: it is the manager's own knob (the scheduler
#: knows what it last wrote), not an agent-sampled counter.
CORRUPTIBLE_CHANNELS: tuple[str, ...] = (
    "cpu_util",
    "rss_mb",
    "cache_mb",
    "rx_pps",
    "tx_pps",
    "latency_ms",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault occurrence (for injection and reporting)."""

    kind: str
    """``replica_crash`` / ``straggler`` / ``load_storm`` / telemetry
    kinds (``telemetry_drop`` / ``telemetry_nan`` / ...)."""

    start: float
    """Onset time (seconds since episode start)."""

    duration: float
    """Fault window length (seconds)."""

    tier: int = -1
    """Affected tier index, or ``-1`` for application-wide faults."""

    magnitude: float = 1.0
    """Kind-specific severity: fraction of replicas lost, residual
    capacity fraction, or load multiplier."""

    def active(self, time: float) -> bool:
        return self.start <= time < self.start + self.duration

    @property
    def affects_physics(self) -> bool:
        """Whether the fault perturbs the cluster itself (latency can
        degrade), as opposed to only the manager's view of it."""
        return self.kind in ("replica_crash", "straggler", "load_storm")


# ----------------------------------------------------------------------
# Fault specifications (the declarative layer profiles are built from)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicaCrashSpec:
    """Poisson-scheduled replica crashes with a recovery window."""

    kind: str = field(default="replica_crash", init=False)
    rate_per_min: float = 1.0
    """Expected crashes per minute across the application."""

    recovery_s: tuple[float, float] = (8.0, 20.0)
    """Min/max seconds until the crashed replicas are back."""

    dead_frac: tuple[float, float] = (0.3, 0.7)
    """Min/max fraction of the tier's replicas lost per crash."""

    def schedule(
        self, rng: np.random.Generator, n_tiers: int, horizon_s: float
    ) -> list[FaultEvent]:
        n_events = rng.poisson(self.rate_per_min * horizon_s / 60.0)
        starts = np.sort(rng.uniform(0.0, horizon_s, size=n_events))
        return [
            FaultEvent(
                kind=self.kind,
                start=float(start),
                duration=float(rng.uniform(*self.recovery_s)),
                tier=int(rng.integers(n_tiers)),
                magnitude=float(rng.uniform(*self.dead_frac)),
            )
            for start in starts
        ]


@dataclass(frozen=True)
class StragglerSpec:
    """Poisson-scheduled per-tier capacity degradation windows."""

    kind: str = field(default="straggler", init=False)
    rate_per_min: float = 1.0
    duration_s: tuple[float, float] = (10.0, 30.0)
    residual_capacity: tuple[float, float] = (0.25, 0.6)
    """Min/max surviving fraction of the tier's service capacity."""

    def schedule(
        self, rng: np.random.Generator, n_tiers: int, horizon_s: float
    ) -> list[FaultEvent]:
        n_events = rng.poisson(self.rate_per_min * horizon_s / 60.0)
        starts = np.sort(rng.uniform(0.0, horizon_s, size=n_events))
        return [
            FaultEvent(
                kind=self.kind,
                start=float(start),
                duration=float(rng.uniform(*self.duration_s)),
                tier=int(rng.integers(n_tiers)),
                magnitude=float(rng.uniform(*self.residual_capacity)),
            )
            for start in starts
        ]


@dataclass(frozen=True)
class LoadStormSpec:
    """Poisson-scheduled multiplicative surges on the offered load."""

    kind: str = field(default="load_storm", init=False)
    rate_per_min: float = 0.6
    duration_s: tuple[float, float] = (10.0, 25.0)
    multiplier: tuple[float, float] = (1.6, 2.4)

    def schedule(
        self, rng: np.random.Generator, n_tiers: int, horizon_s: float
    ) -> list[FaultEvent]:
        n_events = rng.poisson(self.rate_per_min * horizon_s / 60.0)
        starts = np.sort(rng.uniform(0.0, horizon_s, size=n_events))
        return [
            FaultEvent(
                kind=self.kind,
                start=float(start),
                duration=float(rng.uniform(*self.duration_s)),
                magnitude=float(rng.uniform(*self.multiplier)),
            )
            for start in starts
        ]


@dataclass(frozen=True)
class TelemetryFaultSpec:
    """Per-interval corruption of the manager's observed telemetry.

    Each decision interval independently suffers at most one of: the
    interval is dropped entirely (the agent missed its reporting
    window), some channels read NaN, the whole sample is stale (a
    repeat of the previous observation), or the cgroup counters reset
    to zero.  Ground truth is untouched — only the manager's view.
    """

    kind: str = field(default="telemetry", init=False)
    drop_prob: float = 0.0
    nan_prob: float = 0.0
    stale_prob: float = 0.0
    reset_prob: float = 0.0
    channel_frac: float = 0.5
    """Fraction of corruptible channels a NaN event hits."""

    def __post_init__(self) -> None:
        total = self.drop_prob + self.nan_prob + self.stale_prob + self.reset_prob
        if total > 1.0 + 1e-9:
            raise ValueError("telemetry fault probabilities must sum to <= 1")


@dataclass(frozen=True)
class FaultProfile:
    """A named, declarative bundle of fault specifications."""

    name: str
    description: str
    specs: tuple = ()

    @property
    def telemetry_spec(self) -> TelemetryFaultSpec | None:
        for spec in self.specs:
            if isinstance(spec, TelemetryFaultSpec):
                return spec
        return None

    @property
    def scheduled_specs(self) -> tuple:
        return tuple(
            s for s in self.specs if not isinstance(s, TelemetryFaultSpec)
        )


#: Built-in profiles, selectable by name from the CLI and the harness.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "crash-storm": FaultProfile(
        name="crash-storm",
        description="frequent replica crashes with multi-interval recovery",
        specs=(
            ReplicaCrashSpec(rate_per_min=2.5, recovery_s=(8.0, 18.0),
                             dead_frac=(0.4, 0.8)),
        ),
    ),
    "telemetry-dropout": FaultProfile(
        name="telemetry-dropout",
        description="dropped intervals, NaN/stale channels, counter resets",
        specs=(
            TelemetryFaultSpec(drop_prob=0.10, nan_prob=0.12,
                               stale_prob=0.08, reset_prob=0.05),
        ),
    ),
    "stragglers": FaultProfile(
        name="stragglers",
        description="per-tier capacity degradation windows (noisy neighbors)",
        specs=(
            StragglerSpec(rate_per_min=1.5, duration_s=(10.0, 30.0),
                          residual_capacity=(0.25, 0.55)),
        ),
    ),
    "load-storm": FaultProfile(
        name="load-storm",
        description="unforecast multiplicative load surges",
        specs=(
            LoadStormSpec(rate_per_min=0.8, duration_s=(10.0, 25.0),
                          multiplier=(1.6, 2.4)),
        ),
    ),
    "chaos": FaultProfile(
        name="chaos",
        description="crashes + stragglers + load storms + telemetry corruption",
        specs=(
            ReplicaCrashSpec(rate_per_min=1.0, dead_frac=(0.3, 0.6)),
            StragglerSpec(rate_per_min=0.8),
            LoadStormSpec(rate_per_min=0.5),
            TelemetryFaultSpec(drop_prob=0.05, nan_prob=0.06,
                               stale_prob=0.04, reset_prob=0.03),
        ),
    ),
}


def resolve_profile(profile: str | FaultProfile) -> FaultProfile:
    """Look up a profile by name (pass-through for instances)."""
    if isinstance(profile, FaultProfile):
        return profile
    try:
        return FAULT_PROFILES[profile]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {profile!r}; choose from "
            f"{sorted(FAULT_PROFILES)}"
        ) from None


class _FaultBehavior(Behavior):
    """Adapter exposing an injector's physics faults as an engine
    :class:`~repro.sim.behaviors.Behavior`."""

    def __init__(self, injector: "FaultInjector") -> None:
        self._injector = injector

    def capacity_multiplier(self, time: float, n_tiers: int) -> np.ndarray | None:
        return self._injector.capacity_multiplier(time, n_tiers)

    def replica_multiplier(self, time: float, n_tiers: int) -> np.ndarray | None:
        return self._injector.replica_multiplier(time, n_tiers)


class FaultInjector:
    """Executes one profile's faults against one episode.

    The injector owns every random draw it needs (schedules at
    construction, telemetry corruption per observed interval), all
    derived from ``seed`` alone — never from the engine's generator —
    so fault runs are reproducible and composable with the parallel
    harness.

    Parameters
    ----------
    profile:
        A :class:`FaultProfile` or the name of a built-in one.
    n_tiers:
        Tier count of the target application graph.
    seed:
        Seed for schedules and corruption draws.
    horizon_s:
        Length of the pre-generated fault schedule; episodes longer
        than this simply see no *new* scheduled faults afterwards.
    """

    def __init__(
        self,
        profile: str | FaultProfile,
        n_tiers: int,
        seed: int = 0,
        horizon_s: float = 3600.0,
    ) -> None:
        if n_tiers < 1:
            raise ValueError("n_tiers must be >= 1")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        self.profile = resolve_profile(profile)
        self.n_tiers = n_tiers
        self.seed = seed
        self.horizon_s = horizon_s
        self.reset()

    def reset(self) -> None:
        """Regenerate schedules and counters for a fresh episode."""
        self.events: list[FaultEvent] = []
        for k, spec in enumerate(self.profile.scheduled_specs):
            rng = np.random.default_rng([self.seed, k])
            self.events.extend(
                spec.schedule(rng, self.n_tiers, self.horizon_s)
            )
        self.events.sort(key=lambda e: e.start)
        self._telem_rng = np.random.default_rng([self.seed, 10_007])
        self._last_observed: IntervalStats | None = None
        self.telemetry_events: list[FaultEvent] = []
        self.dropped_intervals = 0
        self.corrupted_intervals = 0

    # ------------------------------------------------------------------
    # Physics-side hooks (engine behaviors + workload)
    # ------------------------------------------------------------------

    def behaviors(self) -> tuple[Behavior, ...]:
        """Engine behaviors implementing the physics faults."""
        return (_FaultBehavior(self),)

    def capacity_multiplier(self, time: float, n_tiers: int) -> np.ndarray | None:
        mult = None
        for event in self.events:
            if event.kind == "straggler" and event.active(time):
                if mult is None:
                    mult = np.ones(n_tiers)
                mult[event.tier] *= event.magnitude
        return mult

    def replica_multiplier(self, time: float, n_tiers: int) -> np.ndarray | None:
        mult = None
        for event in self.events:
            if event.kind == "replica_crash" and event.active(time):
                if mult is None:
                    mult = np.ones(n_tiers)
                mult[event.tier] *= 1.0 - event.magnitude
        return mult

    def load_multiplier(self, time: float) -> float:
        mult = 1.0
        for event in self.events:
            if event.kind == "load_storm" and event.active(time):
                mult *= event.magnitude
        return mult

    # ------------------------------------------------------------------
    # Telemetry-side hook (what the manager observes)
    # ------------------------------------------------------------------

    def observe(self, stats: IntervalStats) -> IntervalStats | None:
        """The manager-visible version of one true interval.

        Returns ``None`` when the interval is dropped (the observed log
        simply never receives it); otherwise a (possibly corrupted)
        copy.  Ground truth is never mutated.
        """
        spec = self.profile.telemetry_spec
        if spec is None:
            self._last_observed = stats
            return stats
        draw = float(self._telem_rng.random())
        edge = spec.drop_prob
        if draw < edge:
            self._record_telemetry(stats.time, "telemetry_drop")
            self.dropped_intervals += 1
            return None
        edge += spec.nan_prob
        if draw < edge:
            observed = self._corrupt_nan(stats, spec)
            self._record_telemetry(stats.time, "telemetry_nan")
        else:
            edge += spec.stale_prob
            if draw < edge and self._last_observed is not None:
                observed = self._corrupt_stale(stats)
                self._record_telemetry(stats.time, "telemetry_stale")
            else:
                edge += spec.reset_prob
                if draw < edge:
                    observed = self._corrupt_reset(stats)
                    self._record_telemetry(stats.time, "telemetry_reset")
                else:
                    self._last_observed = stats
                    return stats
        self.corrupted_intervals += 1
        self._last_observed = observed
        return observed

    def _record_telemetry(self, time: float, kind: str) -> None:
        self.telemetry_events.append(
            FaultEvent(kind=kind, start=time, duration=1.0)
        )

    def _copy(self, stats: IntervalStats) -> IntervalStats:
        return replace(
            stats,
            **{
                name: getattr(stats, name).copy()
                for name in CORRUPTIBLE_CHANNELS
            },
        )

    def _corrupt_nan(
        self, stats: IntervalStats, spec: TelemetryFaultSpec
    ) -> IntervalStats:
        observed = self._copy(stats)
        rng = self._telem_rng
        hit = rng.random(len(CORRUPTIBLE_CHANNELS)) < spec.channel_frac
        if not hit.any():
            hit[rng.integers(len(CORRUPTIBLE_CHANNELS))] = True
        for name, corrupt in zip(CORRUPTIBLE_CHANNELS, hit):
            if corrupt:
                getattr(observed, name)[:] = np.nan
        return observed

    def _corrupt_stale(self, stats: IntervalStats) -> IntervalStats:
        assert self._last_observed is not None
        observed = self._copy(stats)
        for name in CORRUPTIBLE_CHANNELS:
            getattr(observed, name)[:] = getattr(self._last_observed, name)
        return observed

    def _corrupt_reset(self, stats: IntervalStats) -> IntervalStats:
        observed = self._copy(stats)
        for name in ("cpu_util", "rx_pps", "tx_pps"):
            getattr(observed, name)[:] = 0.0
        return observed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def physics_events(self, until: float | None = None) -> list[FaultEvent]:
        """Scheduled physics faults, optionally only those starting
        before ``until`` seconds."""
        events = [e for e in self.events if e.affects_physics]
        if until is not None:
            events = [e for e in events if e.start < until]
        return events


__all__ = [
    "CORRUPTIBLE_CHANNELS",
    "FaultEvent",
    "ReplicaCrashSpec",
    "StragglerSpec",
    "LoadStormSpec",
    "TelemetryFaultSpec",
    "FaultProfile",
    "FAULT_PROFILES",
    "resolve_profile",
    "FaultInjector",
]
