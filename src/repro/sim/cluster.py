"""Cluster-level simulation: engine + workload + telemetry, per platform.

:class:`ClusterSimulator` is the substrate every resource manager runs
against.  It owns one application deployment (the queueing engine), an
open-loop workload, and a telemetry log, and exposes the paper's control
interface: once per 1 s decision interval the manager reads the latest
telemetry and writes per-tier CPU limits.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.sim.behaviors import Behavior
from repro.sim.engine import EngineConfig, QueueingEngine
from repro.sim.faults import FaultInjector
from repro.sim.graph import AppGraph
from repro.sim.telemetry import IntervalStats, TelemetryLog
from repro.workload.generator import Workload


@dataclass(frozen=True)
class PlatformSpec:
    """Deployment platform characteristics.

    The paper deploys on a dedicated local cluster and on ~100 container
    instances on Google Compute Engine; GCE is modelled as somewhat
    slower per request and noticeably noisier (shared-tenancy jitter),
    which is what forces the fine-tuning step of paper Section 5.4.
    """

    name: str
    service_mult: float = 1.0
    base_lat_mult: float = 1.0
    noise_sigma: float = 0.22
    capacity_jitter: float = 0.05
    replica_factor: int = 1
    total_cpu: float = 320.0
    """Cluster-wide CPU capacity (cores); the local testbed in the paper
    has four 80-core servers."""


LOCAL_PLATFORM = PlatformSpec(name="local")
GCE_PLATFORM = PlatformSpec(
    name="gce",
    service_mult=1.18,
    base_lat_mult=1.25,
    noise_sigma=0.33,
    capacity_jitter=0.09,
    replica_factor=3,
    total_cpu=400.0,
)


class ClusterSimulator:
    """One application deployment under open-loop load.

    Parameters
    ----------
    graph:
        The application to deploy.
    workload:
        Offered load over time (see :mod:`repro.workload`).
    platform:
        Platform physics (local cluster vs. GCE).
    seed:
        Random seed for this episode.
    behaviors:
        Optional injected pathologies.
    initial_alloc:
        Starting per-tier CPU limits; defaults to a generous half of each
        tier's ceiling, as an operator would over-provision at deploy time.
    faults:
        Optional :class:`~repro.sim.faults.FaultInjector`; adds the
        profile's physics faults to the engine and splits the telemetry
        into ground truth (:attr:`telemetry`) and the manager's possibly
        corrupted view (:attr:`observed`).
    fast_sim:
        Override the engine's batched-tick fast path (bitwise-identical
        to the reference tick loop; see
        :attr:`~repro.sim.engine.EngineConfig.fast_sim`).  ``None``
        keeps the engine config's setting.
    """

    def __init__(
        self,
        graph: AppGraph,
        workload: Workload,
        platform: PlatformSpec = LOCAL_PLATFORM,
        seed: int = 0,
        behaviors: tuple[Behavior, ...] = (),
        initial_alloc: np.ndarray | None = None,
        engine_config: EngineConfig | None = None,
        faults: FaultInjector | None = None,
        fast_sim: bool | None = None,
    ) -> None:
        if workload.graph is not graph and workload.graph.name != graph.name:
            raise ValueError("workload was built for a different application")
        if platform.replica_factor > 1:
            graph = graph.map_tiers(
                lambda t: t.with_replicas(t.replicas * platform.replica_factor)
            )
        if faults is not None and faults.n_tiers != graph.n_tiers:
            raise ValueError(
                f"fault injector was built for {faults.n_tiers} tiers, "
                f"application has {graph.n_tiers}"
            )
        self.graph = graph
        self.platform = platform
        self.faults = faults
        self.workload = (
            workload if workload.graph is graph else workload_rebind(workload, graph)
        )
        config = engine_config or EngineConfig(
            service_mult=platform.service_mult,
            base_lat_mult=platform.base_lat_mult,
            noise_sigma=platform.noise_sigma,
            capacity_jitter=platform.capacity_jitter,
        )
        if fast_sim is not None:
            config = dataclasses.replace(config, fast_sim=fast_sim)
        if faults is not None:
            behaviors = tuple(behaviors) + faults.behaviors()
        self.engine = QueueingEngine(graph, config, seed=seed, behaviors=behaviors)
        self.telemetry = TelemetryLog()
        self.observed = self.telemetry if faults is None else TelemetryLog()
        self._min_alloc = graph.min_alloc()
        self._max_alloc = graph.max_alloc()
        if initial_alloc is None:
            # Operators deploy over-provisioned and let the manager
            # reclaim; starting near the ceiling avoids a cold-start
            # collapse at high load before the manager has reacted.
            initial_alloc = self._max_alloc * 0.6
        self.current_alloc = self.clip_alloc(np.asarray(initial_alloc, dtype=float))
        self._initial_alloc = self.current_alloc.copy()

    def _replica_vec(self) -> np.ndarray:
        return np.array([float(t.replicas) for t in self.graph.tiers])

    # ------------------------------------------------------------------
    # Control interface
    # ------------------------------------------------------------------

    @property
    def time(self) -> float:
        return self.engine.time

    @property
    def tier_names(self) -> list[str]:
        return self.graph.tier_names

    @property
    def n_tiers(self) -> int:
        return self.graph.n_tiers

    @property
    def min_alloc(self) -> np.ndarray:
        return self._min_alloc.copy()

    @property
    def max_alloc(self) -> np.ndarray:
        return self._max_alloc.copy()

    def clip_alloc(self, allocs: np.ndarray) -> np.ndarray:
        """Clamp an allocation vector to per-tier and cluster limits."""
        allocs = np.clip(allocs, self._min_alloc, self._max_alloc)
        total = allocs.sum()
        if total > self.platform.total_cpu:
            # Scale back proportionally above each tier's floor: the
            # cluster cannot hand out more cores than it has.
            slack = allocs - self._min_alloc
            budget = self.platform.total_cpu - self._min_alloc.sum()
            if budget <= 0:
                return self._min_alloc.copy()
            allocs = self._min_alloc + slack * (budget / slack.sum())
        return allocs

    def step(self, allocs: np.ndarray | dict[str, float] | None = None) -> IntervalStats:
        """Advance one 1 s decision interval.

        Parameters
        ----------
        allocs:
            New per-tier CPU limits, as a vector aligned with
            :attr:`tier_names` or a (possibly partial) name->cores dict;
            ``None`` keeps the current allocation.
        """
        if allocs is not None:
            if isinstance(allocs, dict):
                vector = self.current_alloc.copy()
                for name, cores in allocs.items():
                    vector[self.graph.index[name]] = cores
                allocs = vector
            self.current_alloc = self.clip_alloc(np.asarray(allocs, dtype=float))
        rates = self.workload.rates(self.time)
        if self.faults is not None:
            rates = rates * self.faults.load_multiplier(self.time)
        stats = self.engine.run_interval(self.current_alloc, rates)
        self.telemetry.append(stats)
        if self.faults is not None:
            observed = self.faults.observe(stats)
            if observed is not None:
                self.observed.append(observed)
            recorder = self.__dict__.get("recorder")
            if recorder is not None and recorder.enabled:
                recorder.counter("faults_observed_intervals_total")
                if observed is None:
                    recorder.counter("faults_telemetry_blackouts_total")
                elif not (
                    np.all(np.isfinite(np.asarray(observed.latency_ms, dtype=float)))
                    and np.all(np.isfinite(np.asarray(observed.cpu_util, dtype=float)))
                ):
                    recorder.counter("faults_corrupted_intervals_total")
        return stats

    def run(self, duration: int, allocs: np.ndarray | None = None) -> TelemetryLog:
        """Run ``duration`` intervals under a fixed allocation."""
        for _ in range(duration):
            self.step(allocs)
            allocs = None
        return self.telemetry

    def reset(self, seed: int | None = None) -> None:
        """Start a fresh episode (drained queues, empty telemetry, and
        the deploy-time allocation — not whatever the previous episode's
        manager last set)."""
        self.engine.reset(seed)
        self.telemetry = TelemetryLog()
        if self.faults is not None:
            self.faults.reset()
            self.observed = TelemetryLog()
        else:
            self.observed = self.telemetry
        self.current_alloc = self._initial_alloc.copy()


def workload_rebind(workload: Workload, graph: AppGraph) -> Workload:
    """Re-target a workload at an equivalent graph (e.g. after adding
    replicas for a platform), preserving pattern and mix."""
    return Workload(graph, workload.pattern, workload.mix, workload.rps_per_user)


__all__ = [
    "ClusterSimulator",
    "PlatformSpec",
    "LOCAL_PLATFORM",
    "GCE_PLATFORM",
    "workload_rebind",
]
