"""Tier (microservice) specifications.

A *tier* is one microservice in the application graph (e.g. ``nginx``,
``composePost``, ``socialGraph-redis``).  The paper deploys one
microservice per Docker container and manages its CPU limit through
cgroups; here each tier is described by a :class:`TierSpec` whose
parameters drive the queueing model in :mod:`repro.sim.engine`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TierKind(enum.Enum):
    """Functional role of a tier, used for calibration defaults.

    The paper's applications mix lightweight frontends, moderate business
    logic, expensive ML inference tiers (image/text filters), cheap
    in-memory caches, persistent databases, and message queues.  The kind
    determines sensible defaults for CPU cost and base latency so that,
    e.g., ComposePost-heavy mixes are the most compute hungry (paper
    Figure 14).
    """

    FRONTEND = "frontend"
    LOGIC = "logic"
    ML = "ml"
    CACHE = "cache"
    DB = "db"
    QUEUE = "queue"


#: Default per-kind calibration:
#: (cpu_per_req, base_latency, conc_per_core, soft_throughput).
#: ``cpu_per_req`` is CPU-seconds consumed per unit of work, ``base_latency``
#: is non-CPU latency per visit (I/O, lock waits), ``conc_per_core`` is how
#: many in-flight requests one allocated core can hold (thread-pool size),
#: and ``soft_throughput`` is the per-replica software scalability limit
#: (work units/second) past which service time inflates from lock/GC/
#: coordination contention regardless of the CPU limit.
_KIND_DEFAULTS: dict[TierKind, tuple[float, float, float, float]] = {
    TierKind.FRONTEND: (0.0015, 0.0010, 48.0, 20000.0),
    TierKind.LOGIC: (0.0040, 0.0015, 24.0, 5000.0),
    TierKind.ML: (0.0600, 0.0030, 4.0, 60.0),
    TierKind.CACHE: (0.0008, 0.0005, 64.0, 50000.0),
    TierKind.DB: (0.0050, 0.0040, 16.0, 5000.0),
    TierKind.QUEUE: (0.0012, 0.0010, 48.0, 15000.0),
}


@dataclass(frozen=True)
class TierSpec:
    """Static description of one microservice tier.

    Parameters
    ----------
    name:
        Unique tier name within the application graph.
    kind:
        Functional role; supplies calibration defaults.
    cpu_per_req:
        CPU-seconds consumed per unit of work.  ``None`` uses the kind
        default.
    base_latency:
        Non-CPU latency (seconds) added to every visit, e.g. disk or
        network time for a database tier.
    conc_per_core:
        Concurrency slots provided per allocated core.  Together with the
        downstream sojourn time this bounds throughput under synchronous
        RPC backpressure.
    soft_throughput:
        Per-replica software scalability limit (work units/second):
        approaching it inflates service time through lock, GC, and
        coordination contention that no CPU limit increase can fix —
        only replication helps.  This is what sharpens the latency knee
        at high absolute load.
    min_cpu / max_cpu:
        Allocation bounds (cores).  Sinan and the baselines never move a
        tier outside these; ``min_cpu`` defaults to the paper's smallest
        step (0.2 of a core).
    replicas:
        Number of container replicas.  Resource usage is averaged across
        replicas before entering the ML models (paper Section 4.1); in the
        simulator replicas scale the concurrency and allocation ceiling.
    rss_base_mb / rss_per_queued_mb:
        Resident-set-size model: a base footprint plus growth with queued
        requests (buffered request state).
    cache_mb:
        Page-cache footprint (data cached from disk); roughly constant
        for stateless tiers, large for databases.
    pkts_per_req:
        Network packets sent/received per unit of work.
    """

    name: str
    kind: TierKind = TierKind.LOGIC
    cpu_per_req: float | None = None
    base_latency: float | None = None
    conc_per_core: float | None = None
    soft_throughput: float | None = None
    min_cpu: float = 0.2
    max_cpu: float = 16.0
    replicas: int = 1
    rss_base_mb: float = 80.0
    rss_per_queued_mb: float = 0.05
    cache_mb: float = 50.0
    pkts_per_req: float = 4.0

    def __post_init__(self) -> None:
        cpu, base, conc, soft = _KIND_DEFAULTS[self.kind]
        if self.cpu_per_req is None:
            object.__setattr__(self, "cpu_per_req", cpu)
        if self.base_latency is None:
            object.__setattr__(self, "base_latency", base)
        if self.conc_per_core is None:
            object.__setattr__(self, "conc_per_core", conc)
        if self.soft_throughput is None:
            object.__setattr__(self, "soft_throughput", soft)
        if self.soft_throughput <= 0:
            raise ValueError(f"tier {self.name}: soft_throughput must be positive")
        if self.cpu_per_req <= 0:
            raise ValueError(f"tier {self.name}: cpu_per_req must be positive")
        if self.base_latency < 0:
            raise ValueError(f"tier {self.name}: base_latency must be >= 0")
        if not (0 < self.min_cpu <= self.max_cpu):
            raise ValueError(
                f"tier {self.name}: need 0 < min_cpu <= max_cpu, "
                f"got [{self.min_cpu}, {self.max_cpu}]"
            )
        if self.replicas < 1:
            raise ValueError(f"tier {self.name}: replicas must be >= 1")

    @property
    def total_max_cpu(self) -> float:
        """Allocation ceiling across all replicas of this tier."""
        return self.max_cpu * self.replicas

    def with_replicas(self, replicas: int) -> "TierSpec":
        """Return a copy of this spec with a different replica count."""
        return TierSpec(
            name=self.name,
            kind=self.kind,
            cpu_per_req=self.cpu_per_req,
            base_latency=self.base_latency,
            conc_per_core=self.conc_per_core,
            soft_throughput=self.soft_throughput,
            min_cpu=self.min_cpu,
            max_cpu=self.max_cpu,
            replicas=replicas,
            rss_base_mb=self.rss_base_mb,
            rss_per_queued_mb=self.rss_per_queued_mb,
            cache_mb=self.cache_mb,
            pkts_per_req=self.pkts_per_req,
        )

    def scaled(self, cpu_scale: float = 1.0, base_scale: float = 1.0) -> "TierSpec":
        """Return a copy with scaled service demand (application variants).

        Used by the incremental-retraining scenarios of paper Section 5.4,
        e.g. adding AES encryption to post messages increases the CPU cost
        of the tiers that touch post bodies.
        """
        return TierSpec(
            name=self.name,
            kind=self.kind,
            cpu_per_req=self.cpu_per_req * cpu_scale,
            base_latency=self.base_latency * base_scale,
            conc_per_core=self.conc_per_core,
            soft_throughput=self.soft_throughput,
            min_cpu=self.min_cpu,
            max_cpu=self.max_cpu,
            replicas=self.replicas,
            rss_base_mb=self.rss_base_mb,
            rss_per_queued_mb=self.rss_per_queued_mb,
            cache_mb=self.cache_mb,
            pkts_per_req=self.pkts_per_req,
        )


__all__ = ["TierKind", "TierSpec"]
