"""Discrete-time queueing-network simulator of a microservice cluster.

This package replaces the paper's physical substrate (a dedicated Docker
Swarm cluster and a GCE deployment) with a layered queueing simulation
that preserves the phenomena Sinan exploits and that defeat simpler
managers:

* per-tier CPU limits at sub-core granularity (cgroup ``cpu.cfs_quota``),
* queue build-up and drain across 1 s decision intervals (the *delayed
  queueing effect* of the paper's Figure 3),
* synchronous-RPC backpressure, so a slow downstream tier inflates
  upstream queues (the "longest queue is a symptom, not the culprit"
  failure mode that misleads PowerChief),
* cgroup-style telemetry: CPU utilization, resident set size, cache
  memory, and received/transmitted packets per tier, plus end-to-end
  latency percentiles (p95-p99) per interval.

The main entry point is :class:`~repro.sim.cluster.ClusterSimulator`.
"""

from repro.sim.tier import TierKind, TierSpec
from repro.sim.graph import AppGraph, RequestType
from repro.sim.telemetry import (
    IntervalStats,
    TelemetryLog,
    LATENCY_PERCENTILES,
    RESOURCE_CHANNELS,
)
from repro.sim.behaviors import Behavior, CapacityFault
from repro.sim.engine import QueueingEngine
from repro.sim.faults import (
    FAULT_PROFILES,
    FaultEvent,
    FaultInjector,
    FaultProfile,
    resolve_profile,
)
from repro.sim.cluster import ClusterSimulator, PlatformSpec, LOCAL_PLATFORM, GCE_PLATFORM

__all__ = [
    "TierKind",
    "TierSpec",
    "AppGraph",
    "RequestType",
    "IntervalStats",
    "TelemetryLog",
    "LATENCY_PERCENTILES",
    "RESOURCE_CHANNELS",
    "Behavior",
    "CapacityFault",
    "FAULT_PROFILES",
    "FaultEvent",
    "FaultInjector",
    "FaultProfile",
    "resolve_profile",
    "QueueingEngine",
    "ClusterSimulator",
    "PlatformSpec",
    "LOCAL_PLATFORM",
    "GCE_PLATFORM",
]
