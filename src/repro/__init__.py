"""repro — reproduction of *Sinan: ML-Based and QoS-Aware Resource
Management for Cloud Microservices* (ASPLOS 2021).

The package provides:

* :mod:`repro.sim` — a queueing-network simulator of a microservice
  cluster (the substrate standing in for the paper's Docker/GCE testbed),
* :mod:`repro.apps` — the two DeathStarBench applications the paper
  evaluates (Social Network, Hotel Reservation),
* :mod:`repro.workload` — open-loop Poisson workload generation,
* :mod:`repro.ml` — from-scratch numpy ML: the CNN latency predictor,
  the Boosted-Trees violation predictor, and the MLP/LSTM/multi-task
  comparison models,
* :mod:`repro.core` — Sinan itself: feature encoding, bandit data
  collection, the hybrid predictor, the online scheduler, incremental
  retraining, and LIME-style explainability,
* :mod:`repro.baselines` — AutoScaleOpt, AutoScaleCons, and PowerChief,
* :mod:`repro.harness` — experiment episodes and report formatting used
  by the benchmark suite.

Quickstart::

    from repro import quick_sinan
    from repro.apps import social_network, SOCIAL_QOS_MS

    sinan, cluster = quick_sinan(social_network(), users=150, seed=1)
    for _ in range(60):
        cluster.step(sinan.decide(cluster.telemetry))
    print(cluster.telemetry.qos_meet_fraction(SOCIAL_QOS_MS))
"""

from repro._version import __version__


def quick_sinan(graph, users=100, seed=0, budget="small"):
    """Train a Sinan manager for ``graph`` and return ``(manager, cluster)``.

    Convenience wrapper over the full pipeline (data collection, model
    training, scheduler construction); see :mod:`repro.harness.pipeline`
    for the individually controllable steps.
    """
    from repro.harness.pipeline import build_sinan_pipeline

    return build_sinan_pipeline(graph, users=users, seed=seed, budget=budget)


__all__ = ["__version__", "quick_sinan"]
