"""Media Service application (DeathStarBench-style movie-review site).

A movie reviewing and browsing service in the style of DeathStarBench's
Media Service: users compose movie reviews (text, rating, movie lookup,
de-duplication) that are persisted through a review-storage service and
indexed per user and per movie, and browse movie pages that aggregate
info, cast, plot, and recent reviews.  Backends are memcached/Redis
caches over MongoDB, mirroring the original's composition.

The topology is distinct from the paper's two applications: a
compose/read split like Social Network but without ML filters or
queueing tiers, and a wide read fan-out (the movie page aggregates four
services) unlike Hotel Reservation's search chain.  It exists so
multi-tenant experiments exercise three heterogeneous tenants; the
27-tier DAG is a third point between the heavyweight Social Network
(peaks around 450 users) and the lean Go hotel app (thousands of users).

QoS is 300 ms on the end-to-end 99th percentile latency — between the
two paper applications' targets, so the credit arbiter sees three
different SLO tightnesses.
"""

from __future__ import annotations

from repro.sim.graph import AppGraph, RequestType
from repro.sim.tier import TierKind, TierSpec

#: End-to-end p99 QoS target for Media Service (ms).
MEDIA_QOS_MS = 300.0


def _tiers() -> list[TierSpec]:
    # Mid-weight services: heavier per request than the Go hotel tiers,
    # lighter than the Thrift Social Network ones, so the interesting
    # load range sits at a few hundred users.
    front = dict(kind=TierKind.FRONTEND, cpu_per_req=0.0020, rss_base_mb=110.0,
                 cache_mb=40.0, max_cpu=24.0)
    logic = dict(kind=TierKind.LOGIC, cpu_per_req=0.0040, rss_base_mb=130.0,
                 cache_mb=50.0, max_cpu=12.0)
    cache = dict(kind=TierKind.CACHE, cpu_per_req=0.0010, rss_base_mb=650.0,
                 cache_mb=70.0, max_cpu=10.0)
    db = dict(kind=TierKind.DB, cpu_per_req=0.0060, rss_base_mb=420.0,
              cache_mb=1600.0, min_cpu=0.4, max_cpu=12.0)
    return [
        TierSpec("nginx", **front),
        TierSpec("composeReview", **logic),
        TierSpec("uniqueId", **logic),
        TierSpec("text", **logic),
        TierSpec("user", **logic),
        TierSpec("movieId", **logic),
        TierSpec("rating", **logic),
        TierSpec("reviewStorage", **{**logic, "max_cpu": 16.0}),
        TierSpec("userReview", **logic),
        TierSpec("movieReview", **logic),
        TierSpec("page", **logic),
        TierSpec("movieInfo", **logic),
        TierSpec("castInfo", **logic),
        TierSpec("plot", **logic),
        TierSpec("movieId-mem$", **cache),
        TierSpec("movieId-mongodb", **db),
        TierSpec("rating-redis", **cache),
        TierSpec("user-mongodb", **db),
        TierSpec("reviewStorage-mem$", **{**cache, "max_cpu": 12.0}),
        TierSpec("reviewStorage-mongodb", **db),
        TierSpec("userReview-redis", **cache),
        TierSpec("userReview-mongodb", **db),
        TierSpec("movieReview-redis", **cache),
        TierSpec("movieReview-mongodb", **db),
        TierSpec("movieInfo-mongodb", **db),
        TierSpec("castInfo-mongodb", **db),
        TierSpec("plot-mongodb", **db),
    ]


def _edges() -> list[tuple[str, str]]:
    return [
        ("nginx", "composeReview"),
        ("nginx", "page"),
        ("nginx", "userReview"),
        ("composeReview", "uniqueId"),
        ("composeReview", "text"),
        ("composeReview", "user"),
        ("composeReview", "movieId"),
        ("composeReview", "rating"),
        ("composeReview", "reviewStorage"),
        ("composeReview", "userReview"),
        ("composeReview", "movieReview"),
        ("movieId", "movieId-mem$"),
        ("movieId", "movieId-mongodb"),
        ("rating", "rating-redis"),
        ("user", "user-mongodb"),
        ("reviewStorage", "reviewStorage-mem$"),
        ("reviewStorage", "reviewStorage-mongodb"),
        ("userReview", "userReview-redis"),
        ("userReview", "userReview-mongodb"),
        ("userReview", "reviewStorage"),
        ("movieReview", "movieReview-redis"),
        ("movieReview", "movieReview-mongodb"),
        ("movieReview", "reviewStorage"),
        ("page", "movieInfo"),
        ("page", "movieReview"),
        ("page", "castInfo"),
        ("page", "plot"),
        ("movieInfo", "movieInfo-mongodb"),
        ("castInfo", "castInfo-mongodb"),
        ("plot", "plot-mongodb"),
    ]


def _request_types() -> list[RequestType]:
    compose = RequestType(
        name="ComposeReview",
        stages=(
            ("nginx",),
            ("composeReview",),
            ("uniqueId", "text", "user", "movieId", "rating"),
            ("movieId-mem$", "movieId-mongodb", "rating-redis", "user-mongodb"),
            ("reviewStorage",),
            ("reviewStorage-mem$", "reviewStorage-mongodb"),
            ("userReview", "movieReview"),
            (
                "userReview-redis",
                "userReview-mongodb",
                "movieReview-redis",
                "movieReview-mongodb",
            ),
        ),
        # Caches absorb most lookups; MongoDB tiers see only misses.
        work={
            "movieId-mongodb": 0.3,
            "user-mongodb": 0.3,
            "reviewStorage-mongodb": 0.8,
            "userReview-mongodb": 0.4,
            "movieReview-mongodb": 0.4,
        },
    )
    read_page = RequestType(
        name="ReadMoviePage",
        stages=(
            ("nginx",),
            ("page",),
            ("movieInfo", "movieReview", "castInfo", "plot"),
            (
                "movieInfo-mongodb",
                "movieReview-redis",
                "castInfo-mongodb",
                "plot-mongodb",
            ),
            ("reviewStorage",),
            ("reviewStorage-mem$", "reviewStorage-mongodb"),
        ),
        # A movie page fetches a page of recent reviews: several units
        # of review-storage work, mostly served from memcached.
        work={
            "movieReview": 2.0,
            "reviewStorage": 3.0,
            "reviewStorage-mem$": 3.0,
            "reviewStorage-mongodb": 0.5,
            "movieInfo-mongodb": 0.4,
            "castInfo-mongodb": 0.4,
            "plot-mongodb": 0.4,
        },
    )
    read_user = RequestType(
        name="ReadUserReviews",
        stages=(
            ("nginx",),
            ("userReview",),
            ("userReview-redis", "userReview-mongodb"),
            ("reviewStorage",),
            ("reviewStorage-mem$", "reviewStorage-mongodb"),
        ),
        work={
            "userReview": 2.0,
            "userReview-mongodb": 0.4,
            "reviewStorage": 3.0,
            "reviewStorage-mem$": 3.0,
            "reviewStorage-mongodb": 0.5,
        },
    )
    return [compose, read_page, read_user]


def media_service() -> AppGraph:
    """Build the Media Service application graph (27 tiers)."""
    return AppGraph(
        name="media_service",
        tiers=_tiers(),
        edges=_edges(),
        request_types=_request_types(),
    )


__all__ = ["media_service", "MEDIA_QOS_MS"]
