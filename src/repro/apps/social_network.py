"""Social Network application (paper Figure 2).

A broadcast-style social network with uni-directional follow
relationships.  Users compose posts (text, media, links, user tags)
which pass through ML content filters (an image CNN and a text SVM)
before being fanned out via RabbitMQ to follower timelines, and read
their home/user timelines.  Backends are memcached/Redis caches over
MongoDB.

The 28 tiers and their call edges follow the paper's Figure 2 and the
per-tier legend of Figure 12.  QoS is 500 ms on the end-to-end 99th
percentile latency (paper Section 5.1).
"""

from __future__ import annotations

from repro.sim.graph import AppGraph, RequestType
from repro.sim.tier import TierKind, TierSpec

#: End-to-end p99 QoS target for Social Network (ms), per the paper.
SOCIAL_QOS_MS = 500.0


def _tiers() -> list[TierSpec]:
    # The Thrift/Python Social Network tiers are markedly heavier per
    # request than the Go hotel app (the paper's social network needs
    # comparable total CPU at ~10x fewer users).
    front = dict(kind=TierKind.FRONTEND, cpu_per_req=0.0030, rss_base_mb=120.0,
                 cache_mb=40.0, max_cpu=24.0)
    logic = dict(kind=TierKind.LOGIC, cpu_per_req=0.0060, rss_base_mb=150.0,
                 cache_mb=60.0, max_cpu=10.0)
    # ML inference tiers are never squeezed below one core: sub-core
    # limits stretch a 15-35 ms inference into hundreds of milliseconds.
    ml = dict(kind=TierKind.ML, rss_base_mb=900.0, cache_mb=120.0, min_cpu=1.0, max_cpu=24.0)
    cache = dict(kind=TierKind.CACHE, cpu_per_req=0.0015, rss_base_mb=700.0,
                 cache_mb=80.0, max_cpu=10.0)
    db = dict(kind=TierKind.DB, cpu_per_req=0.0080, rss_base_mb=450.0,
              cache_mb=1800.0, min_cpu=0.4, max_cpu=10.0)
    queue = dict(kind=TierKind.QUEUE, cpu_per_req=0.0020, rss_base_mb=220.0,
                 cache_mb=60.0, max_cpu=10.0)
    return [
        TierSpec("nginx", **front),
        TierSpec("composePost", **logic),
        TierSpec("uniqueID", **logic),
        TierSpec("urlShorten", **logic),
        TierSpec("userMention", **logic),
        TierSpec("text", **logic),
        TierSpec("media", **logic),
        TierSpec("textFilter", cpu_per_req=0.0150, **ml),
        TierSpec("mediaFilter", cpu_per_req=0.0350, **ml),
        TierSpec("user", **logic),
        TierSpec("user-mem$", **cache),
        TierSpec("user-mongodb", **db),
        TierSpec("compPost-redis", **cache),
        TierSpec("postStore", **{**logic, "max_cpu": 16.0}),
        TierSpec("postStore-mem$", **{**cache, "max_cpu": 16.0}),
        TierSpec("postStore-mongodb", **db),
        TierSpec("userTimeline", **logic),
        TierSpec("userTl-redis", **cache),
        TierSpec("userTl-mongodb", **db),
        TierSpec("homeTimeline", **logic),
        TierSpec("homeTl-redis", **cache),
        TierSpec("writeHomeTl-rabbitmq", **queue),
        TierSpec("writeHomeTimeline", **logic),
        TierSpec("writeUserTl-rabbitmq", **queue),
        TierSpec("writeUserTimeline", **logic),
        TierSpec("graph", **logic),
        TierSpec("graph-redis", **cache),
        TierSpec("graph-mongodb", **db),
    ]


def _edges() -> list[tuple[str, str]]:
    return [
        ("nginx", "composePost"),
        ("nginx", "homeTimeline"),
        ("nginx", "userTimeline"),
        ("nginx", "user"),
        ("composePost", "uniqueID"),
        ("composePost", "text"),
        ("composePost", "media"),
        ("composePost", "user"),
        ("composePost", "compPost-redis"),
        ("composePost", "postStore"),
        ("composePost", "writeHomeTl-rabbitmq"),
        ("composePost", "writeUserTl-rabbitmq"),
        ("text", "textFilter"),
        ("text", "urlShorten"),
        ("text", "userMention"),
        ("media", "mediaFilter"),
        ("userMention", "user-mem$"),
        ("userMention", "user-mongodb"),
        ("user", "user-mem$"),
        ("user", "user-mongodb"),
        ("postStore", "postStore-mem$"),
        ("postStore", "postStore-mongodb"),
        ("writeHomeTl-rabbitmq", "writeHomeTimeline"),
        ("writeHomeTimeline", "homeTl-redis"),
        ("writeHomeTimeline", "graph"),
        ("writeUserTl-rabbitmq", "writeUserTimeline"),
        ("writeUserTimeline", "userTl-redis"),
        ("writeUserTimeline", "userTl-mongodb"),
        ("homeTimeline", "homeTl-redis"),
        ("homeTimeline", "postStore"),
        ("userTimeline", "userTl-redis"),
        ("userTimeline", "userTl-mongodb"),
        ("userTimeline", "postStore"),
        ("graph", "graph-redis"),
        ("graph", "graph-mongodb"),
    ]


def _request_types() -> list[RequestType]:
    compose = RequestType(
        name="ComposePost",
        stages=(
            ("nginx",),
            ("composePost",),
            ("uniqueID", "text", "media", "user"),
            ("textFilter", "mediaFilter", "urlShorten", "userMention"),
            ("user-mem$", "user-mongodb"),
            ("compPost-redis", "postStore"),
            ("postStore-mem$", "postStore-mongodb"),
            ("writeHomeTl-rabbitmq", "writeUserTl-rabbitmq"),
            ("writeHomeTimeline", "writeUserTimeline"),
            ("graph",),
            (
                "graph-redis",
                "graph-mongodb",
                "homeTl-redis",
                "userTl-redis",
                "userTl-mongodb",
            ),
        ),
        # Fan-out to follower timelines multiplies the timeline-cache
        # work; MongoDB tiers only see cache misses.
        work={
            "homeTl-redis": 3.0,
            "user-mongodb": 0.3,
            "postStore-mongodb": 0.8,
            "graph-mongodb": 0.3,
        },
    )
    read_home = RequestType(
        name="ReadHomeTimeline",
        stages=(
            ("nginx",),
            ("homeTimeline",),
            ("homeTl-redis",),
            ("postStore",),
            ("postStore-mem$", "postStore-mongodb"),
        ),
        # A timeline read fetches a page of posts: several units of
        # post-storage work, mostly served from memcached.
        work={
            "homeTimeline": 2.0,
            "postStore": 3.0,
            "postStore-mem$": 3.0,
            "postStore-mongodb": 0.5,
        },
    )
    read_user = RequestType(
        name="ReadUserTimeline",
        stages=(
            ("nginx",),
            ("userTimeline",),
            ("userTl-redis", "userTl-mongodb"),
            ("postStore",),
            ("postStore-mem$", "postStore-mongodb"),
        ),
        work={
            "userTimeline": 2.0,
            "userTl-mongodb": 0.4,
            "postStore": 3.0,
            "postStore-mem$": 3.0,
            "postStore-mongodb": 0.5,
        },
    )
    return [compose, read_home, read_user]


def social_network() -> AppGraph:
    """Build the Social Network application graph (28 tiers)."""
    return AppGraph(
        name="social_network",
        tiers=_tiers(),
        edges=_edges(),
        request_types=_request_types(),
    )


__all__ = ["social_network", "SOCIAL_QOS_MS"]
