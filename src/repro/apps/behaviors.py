"""Application-level pathologies and deployment variants.

These drive the paper's explainability case study (Section 5.6: Redis
log synchronization) and the incremental-retraining scenarios (Section
5.4: platform change, replica change, encrypted posts).
"""

from __future__ import annotations

from repro.sim.behaviors import CapacityFault
from repro.sim.graph import AppGraph


class RedisLogSync(CapacityFault):
    """Redis persistent-log synchronization stall (paper Section 5.6).

    Redis was configured to persist logs every minute; for each sync it
    forks a child process and copies all written memory to disk, during
    which it stops serving requests.  Sinan's explainable-ML pass traced
    the Social Network's unpredictable tail latency to exactly this tier
    and to its memory counters (cache + resident set size).

    Modelled as: every ``period`` seconds the ``graph-redis`` tier's
    capacity collapses to a small residue for ``duration`` seconds, with
    a resident-set-size spike from the copied pages.
    """

    TIER = "graph-redis"

    def __init__(
        self,
        graph: AppGraph,
        period: float = 60.0,
        duration: float = 2.5,
        residual_capacity: float = 0.0005,
        rss_spike_mb: float = 450.0,
        start_offset: float = 12.0,
    ) -> None:
        if self.TIER not in graph.index:
            raise ValueError(
                f"RedisLogSync targets {self.TIER!r}, absent from {graph.name}"
            )
        super().__init__(
            tier_index=graph.index[self.TIER],
            period=period,
            duration=duration,
            residual_capacity=residual_capacity,
            rss_spike_mb=rss_spike_mb,
            start_offset=start_offset,
        )


#: Tiers that touch post bodies, hence pay for AES encryption in the
#: "modified application" retraining scenario (paper Section 5.4).
_ENCRYPTION_TIERS = ("composePost", "text", "postStore", "postStore-mongodb")


def encrypted_posts_variant(graph: AppGraph, cpu_scale: float = 1.6) -> AppGraph:
    """Social Network variant where posts are AES-encrypted before storage.

    Encryption/decryption raises the CPU demand of every tier that
    serializes or persists post bodies; the paper reports the original
    model's RMSE rising to ~40 ms on this variant until fine-tuned.
    """
    missing = [t for t in _ENCRYPTION_TIERS if t not in graph.index]
    if missing:
        raise ValueError(f"graph {graph.name} lacks encryption tiers: {missing}")

    def scale(tier):
        if tier.name in _ENCRYPTION_TIERS:
            return tier.scaled(cpu_scale=cpu_scale)
        return tier

    return graph.map_tiers(scale)


def scaled_replicas_variant(graph: AppGraph, replicas: int = 2) -> AppGraph:
    """Variant with a different scale-out factor for stateless tiers.

    The paper's second retraining scenario changes the replica count of
    every microservice except the backend databases (to avoid data
    migration overheads).
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")

    def scale(tier):
        if tier.kind.value == "db":
            return tier
        return tier.with_replicas(replicas)

    return graph.map_tiers(scale)


__all__ = ["RedisLogSync", "encrypted_posts_variant", "scaled_replicas_variant"]
