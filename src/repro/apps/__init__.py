"""Motivating applications: DeathStarBench substitutes.

The paper evaluates on two end-to-end interactive applications from
DeathStarBench: a **Social Network** (28 tiers, Apache Thrift RPCs,
memcached/Redis caching, MongoDB storage, RabbitMQ fan-out, and two ML
content filters) and a **Hotel Reservation** site (Go/gRPC with
memcached and MongoDB backends).  Both topologies are transcribed from
the paper's Figures 1 and 2 and run on the queueing simulator.

A third DeathStarBench-style **Media Service** (movie reviews and movie
pages) goes beyond the paper so multi-tenant experiments can run three
heterogeneous applications against one shared cluster.
"""

from repro.apps.social_network import social_network, SOCIAL_QOS_MS
from repro.apps.hotel_reservation import hotel_reservation, HOTEL_QOS_MS
from repro.apps.media_service import media_service, MEDIA_QOS_MS
from repro.apps.behaviors import RedisLogSync, encrypted_posts_variant, scaled_replicas_variant

__all__ = [
    "social_network",
    "hotel_reservation",
    "media_service",
    "SOCIAL_QOS_MS",
    "HOTEL_QOS_MS",
    "MEDIA_QOS_MS",
    "RedisLogSync",
    "encrypted_posts_variant",
    "scaled_replicas_variant",
]
