"""Hotel Reservation application (paper Figure 1).

An online hotel reservation site supporting geolocation search, hotel
recommendations, user login, and placing reservations.  Implemented in
the original as Go services over gRPC with memcached caches and MongoDB
persistent storage; here the 17-tier topology is transcribed from the
paper's Figure 1.

QoS is 200 ms on the end-to-end 99th percentile latency; this is the
simpler of the two applications (paper: Sinan saves 25.9% CPU on average
versus the cheapest QoS-meeting baseline here, versus 59% on Social
Network where abstracting complexity matters more).
"""

from __future__ import annotations

from repro.sim.graph import AppGraph, RequestType
from repro.sim.tier import TierKind, TierSpec

#: End-to-end p99 QoS target for Hotel Reservation (ms), per the paper.
HOTEL_QOS_MS = 200.0


def _tiers() -> list[TierSpec]:
    # Hotel Reservation serves thousands of RPS (paper sweeps 1000-3700
    # users), so the busy tiers need higher per-tier ceilings than the
    # Social Network's (whose load peaks at 450 users).
    # Go microservices are lean: per-request CPU is lower than the
    # Python/Thrift Social Network tiers (and the paper's hotel app is
    # the "simpler" one, peaking around 260 total CPUs at 3700 users).
    front = dict(kind=TierKind.FRONTEND, cpu_per_req=0.0010, rss_base_mb=100.0,
                 cache_mb=40.0, max_cpu=32.0)
    logic = dict(kind=TierKind.LOGIC, rss_base_mb=120.0, cache_mb=50.0, max_cpu=32.0)
    cache = dict(kind=TierKind.CACHE, cpu_per_req=0.0006, rss_base_mb=600.0,
                 cache_mb=60.0, max_cpu=24.0)
    db = dict(kind=TierKind.DB, cpu_per_req=0.0035, rss_base_mb=400.0,
              cache_mb=1500.0, min_cpu=0.4, max_cpu=24.0)
    return [
        TierSpec("frontend", **front),
        TierSpec("search", cpu_per_req=0.0025, **logic),
        TierSpec("geo", cpu_per_req=0.0020, **logic),
        TierSpec("rate", cpu_per_req=0.0020, **logic),
        TierSpec("profile", cpu_per_req=0.0020, **logic),
        TierSpec("recommend", cpu_per_req=0.0025, **logic),
        TierSpec("reserve", cpu_per_req=0.0025, **logic),
        TierSpec("user", cpu_per_req=0.0015, **logic),
        TierSpec("profile-memc", **cache),
        TierSpec("profile-mongo", **db),
        TierSpec("rate-memc", **cache),
        TierSpec("rate-mongo", **db),
        TierSpec("geo-mongo", **db),
        TierSpec("recommend-mongo", **db),
        TierSpec("reserve-memc", **cache),
        TierSpec("reserve-mongo", **db),
        TierSpec("user-mongo", **db),
    ]


def _edges() -> list[tuple[str, str]]:
    return [
        ("frontend", "search"),
        ("frontend", "recommend"),
        ("frontend", "reserve"),
        ("frontend", "user"),
        ("frontend", "profile"),
        ("search", "geo"),
        ("search", "rate"),
        ("geo", "geo-mongo"),
        ("rate", "rate-memc"),
        ("rate", "rate-mongo"),
        ("profile", "profile-memc"),
        ("profile", "profile-mongo"),
        ("recommend", "recommend-mongo"),
        ("reserve", "reserve-memc"),
        ("reserve", "reserve-mongo"),
        ("reserve", "user"),
        ("user", "user-mongo"),
    ]


def _request_types() -> list[RequestType]:
    search = RequestType(
        name="Search",
        stages=(
            ("frontend",),
            ("search",),
            ("geo", "rate"),
            ("geo-mongo", "rate-memc", "rate-mongo"),
            ("profile",),
            ("profile-memc", "profile-mongo"),
        ),
        # Caches absorb most lookups; MongoDB sees only misses.
        work={"rate-mongo": 0.3, "profile-mongo": 0.3, "profile": 2.0,
              "profile-memc": 2.0},
    )
    recommend = RequestType(
        name="Recommend",
        stages=(
            ("frontend",),
            ("recommend",),
            ("recommend-mongo",),
            ("profile",),
            ("profile-memc", "profile-mongo"),
        ),
        work={"profile-mongo": 0.3},
    )
    reserve = RequestType(
        name="Reserve",
        stages=(
            ("frontend",),
            ("reserve", "user"),
            ("reserve-memc", "reserve-mongo", "user-mongo"),
        ),
    )
    login = RequestType(
        name="Login",
        stages=(
            ("frontend",),
            ("user",),
            ("user-mongo",),
        ),
    )
    return [search, recommend, reserve, login]


def hotel_reservation() -> AppGraph:
    """Build the Hotel Reservation application graph (17 tiers)."""
    return AppGraph(
        name="hotel_reservation",
        tiers=_tiers(),
        edges=_edges(),
        request_types=_request_types(),
    )


__all__ = ["hotel_reservation", "HOTEL_QOS_MS"]
