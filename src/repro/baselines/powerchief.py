"""PowerChief-style queueing-analysis manager (paper Section 5.3).

PowerChief (Yang et al., ISCA'17) manages multi-stage applications by
estimating the queue length and queueing time ahead of each stage (in
the paper's reimplementation, from network traces obtained through
Docker) and boosting the bottleneck stage.  The paper identifies three
reasons this breaks down on microservices, all of which this simulator
reproduces:

1. with complex topologies and synchronous-RPC backpressure, the tier
   with the longest ingress queue is often a *symptom*, not the culprit
   — boosting it starves the real bottleneck;
2. queueing happens across the whole stack, so queue-time estimates
   from traffic counters are noisy;
3. microservices' tight latency targets amplify small queueing
   fluctuations into QoS violations.
"""

from __future__ import annotations

import numpy as np

from repro.core.manager import Manager
from repro.sim.telemetry import TelemetryLog


class PowerChief(Manager):
    """Demand-proportional base provisioning + bottleneck boosting.

    Each interval, PowerChief (re)provisions every tier proportionally to
    its observed CPU demand at a fixed target utilization (its queueing
    model's operating point), then *boosts* the tiers with the longest
    estimated queueing time — the stage its analysis blames for the
    end-to-end slowdown.

    Parameters
    ----------
    min_alloc / max_alloc:
        Per-tier bounds.
    target_util:
        Base operating utilization; lower = more headroom everywhere.
    boost_factor:
        Multiplicative boost applied to identified bottleneck tiers.
    top_k:
        Number of bottleneck tiers boosted per interval.
    """

    name = "PowerChief"

    def __init__(
        self,
        min_alloc: np.ndarray,
        max_alloc: np.ndarray,
        target_util: float = 0.6,
        boost_factor: float = 1.5,
        top_k: int = 2,
    ) -> None:
        if not (0.0 < target_util < 1.0):
            raise ValueError("target_util must be in (0, 1)")
        self.min_alloc = np.asarray(min_alloc, dtype=float)
        self.max_alloc = np.asarray(max_alloc, dtype=float)
        self.target_util = target_util
        self.boost_factor = boost_factor
        self.top_k = top_k
        self.reset()

    def reset(self) -> None:
        self._backlog = None
        self._boost = None

    def _estimate_backlog(self, log: TelemetryLog) -> np.ndarray:
        """Per-tier queue estimate from traffic counters.

        Integrates received-minus-transmitted packets (the network-trace
        method), which tracks the ingress queue up to per-request packet
        counts and sampling noise.  Under synchronous-RPC backpressure
        the longest ingress queue frequently sits on an upstream *victim*
        tier, not the culprit — the misattribution the paper highlights.
        """
        latest = log.latest
        if self._backlog is None:
            self._backlog = np.zeros(len(latest.cpu_alloc))
        delta = latest.rx_pps - latest.tx_pps
        self._backlog = np.maximum(self._backlog + delta, 0.0)
        # Counters drift; decay old estimates as the windowed sampling would.
        self._backlog *= 0.65
        return self._backlog

    def decide(self, log: TelemetryLog) -> np.ndarray | None:
        if len(log) == 0:
            return None
        latest = log.latest
        n = len(latest.cpu_alloc)
        if self._boost is None:
            self._boost = np.ones(n)
        backlog = self._estimate_backlog(log)

        # Base provisioning: observed demand at the target utilization.
        busy = latest.cpu_util * latest.cpu_alloc
        base = np.maximum(busy / self.target_util, self.min_alloc)

        # Queueing-time estimate: backlog over observed egress throughput.
        throughput = np.maximum(latest.tx_pps, 1.0)
        queue_time = backlog / throughput

        # Boosts build up while a tier keeps being blamed, and decay once
        # its queue estimate clears.  Sub-50ms queueing-time estimates
        # are measurement noise, not a bottleneck.
        self._boost = np.maximum(self._boost * 0.9, 1.0)
        if queue_time.max() > 0.05:
            order = np.argsort(-queue_time)
            for bottleneck in order[: self.top_k]:
                if queue_time[bottleneck] <= 0.05:
                    break
                self._boost[bottleneck] = min(
                    self._boost[bottleneck] * self.boost_factor, 8.0
                )
        alloc = base * self._boost
        return np.clip(alloc, self.min_alloc, self.max_alloc)


__all__ = ["PowerChief"]
