"""Utilization-based step autoscaling (paper Section 5.3).

The industry-standard empirical baseline, configured per the AWS step
scaling tutorial the paper cites:

* **AutoScaleOpt** increases a tier's CPU by 10% when its utilization is
  in [60%, 70%) and by 30% in [70%, 100%], and reduces it by 10% in
  [30%, 40%) and by 30% in [0%, 30%).  Resource-efficient, but reactive:
  at high load the delayed queueing effect turns every late reaction
  into a tail-latency spike.
* **AutoScaleCons** is the conservative variant tuned for the studied
  applications: up 10% in [30%, 50%), up 30% in [50%, 100%], down 10%
  only below 10% utilization.  It always meets QoS — at the price of
  heavy overprovisioning (the paper's main efficiency comparison point
  for Sinan).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.manager import Manager
from repro.sim.telemetry import TelemetryLog


@dataclass(frozen=True)
class StepRule:
    """One utilization band -> multiplicative allocation step."""

    low: float
    high: float
    factor: float

    def applies(self, util: np.ndarray) -> np.ndarray:
        return (util >= self.low) & (util < self.high)


#: Paper/AWS configuration: aggressive reclamation, reactive growth.
AUTOSCALE_OPT_RULES: tuple[StepRule, ...] = (
    StepRule(0.70, 1.01, 1.30),
    StepRule(0.60, 0.70, 1.10),
    StepRule(0.30, 0.40, 0.90),
    StepRule(0.00, 0.30, 0.70),
)

#: Conservative configuration tuned for QoS (paper Section 5.3).
AUTOSCALE_CONS_RULES: tuple[StepRule, ...] = (
    StepRule(0.50, 1.01, 1.30),
    StepRule(0.30, 0.50, 1.10),
    StepRule(0.00, 0.10, 0.90),
)


class AutoScale(Manager):
    """Per-tier utilization step scaler.

    Parameters
    ----------
    min_alloc / max_alloc:
        Per-tier allocation bounds.
    rules:
        Ordered step rules; the first matching band applies.  Bands not
        covered by any rule leave the tier unchanged (the stable region).
    name:
        Display name, e.g. ``"AutoScaleOpt"``.
    cooldown:
        Decision intervals to wait between consecutive adjustments of
        the same tier (AWS-style cooldown; 1 = react every interval).
    """

    def __init__(
        self,
        min_alloc: np.ndarray,
        max_alloc: np.ndarray,
        rules: tuple[StepRule, ...] = AUTOSCALE_OPT_RULES,
        name: str = "AutoScaleOpt",
        cooldown: int = 1,
    ) -> None:
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.min_alloc = np.asarray(min_alloc, dtype=float)
        self.max_alloc = np.asarray(max_alloc, dtype=float)
        self.rules = rules
        self.name = name
        self.cooldown = cooldown
        self.reset()

    def reset(self) -> None:
        self._since_change = np.full(len(self.min_alloc), np.inf)

    #: AWS step scaling enforces a cooldown between adjustments of the
    #: same target (the tutorial's default is 60-300 s); reacting every
    #: second with compounding 30% steps is not something utilization
    #: autoscaling does in production.  Sinan's 1 s ML-driven loop is
    #: exactly the agility advantage the paper claims.
    DEFAULT_COOLDOWN = 15

    @classmethod
    def opt(
        cls, min_alloc: np.ndarray, max_alloc: np.ndarray, cooldown: int | None = None
    ) -> "AutoScale":
        """The paper's AutoScaleOpt configuration."""
        return cls(
            min_alloc, max_alloc, AUTOSCALE_OPT_RULES, "AutoScaleOpt",
            cooldown=cooldown if cooldown is not None else cls.DEFAULT_COOLDOWN,
        )

    @classmethod
    def conservative(
        cls, min_alloc: np.ndarray, max_alloc: np.ndarray, cooldown: int | None = None
    ) -> "AutoScale":
        """The paper's AutoScaleCons configuration."""
        return cls(
            min_alloc, max_alloc, AUTOSCALE_CONS_RULES, "AutoScaleCons",
            cooldown=cooldown if cooldown is not None else cls.DEFAULT_COOLDOWN,
        )

    def decide(self, log: TelemetryLog) -> np.ndarray | None:
        if len(log) == 0:
            return None
        latest = log.latest
        util = latest.cpu_util
        alloc = latest.cpu_alloc.copy()
        self._since_change += 1

        factor = np.ones_like(alloc)
        matched = np.zeros(len(alloc), dtype=bool)
        for rule in self.rules:
            hits = rule.applies(util) & ~matched
            factor[hits] = rule.factor
            matched |= hits
        ready = self._since_change >= self.cooldown
        apply = matched & ready & ~np.isclose(factor, 1.0)
        alloc[apply] = alloc[apply] * factor[apply]
        self._since_change[apply] = 0
        return np.clip(alloc, self.min_alloc, self.max_alloc)


__all__ = ["AutoScale", "StepRule", "AUTOSCALE_OPT_RULES", "AUTOSCALE_CONS_RULES"]
