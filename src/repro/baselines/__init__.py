"""Baseline resource managers the paper compares against.

* :class:`~repro.baselines.autoscale.AutoScale` — utilization step
  scaling per the AWS tutorial the paper cites, in the ``Opt``
  (resource-efficient) and ``Cons`` (conservative, QoS-optimized)
  configurations of Section 5.3;
* :class:`~repro.baselines.powerchief.PowerChief` — queueing-analysis
  boosting for multi-stage applications, which identifies the tier with
  the longest estimated ingress queue and shifts resources toward it.
"""

from repro.baselines.autoscale import AutoScale, AUTOSCALE_OPT_RULES, AUTOSCALE_CONS_RULES
from repro.baselines.powerchief import PowerChief

__all__ = [
    "AutoScale",
    "AUTOSCALE_OPT_RULES",
    "AUTOSCALE_CONS_RULES",
    "PowerChief",
]
