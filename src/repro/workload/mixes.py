"""Canonical request mixes from the paper.

Section 5.5 evaluates Sinan's robustness on four Social Network mixes,
varying ComposePost : ReadHomeTimeline : ReadUserTimeline —
W0 = 5:80:15 (the training mix), W1 = 10:80:10, W2 = 1:90:9,
W3 = 5:70:25, representative of different social-media engagement
scenarios.  Hotel Reservation follows the DeathStarBench default mix
(search-dominated).
"""

from __future__ import annotations

from repro.workload.generator import RequestMix

#: Social Network mixes, keyed as in the paper.
SOCIAL_MIXES: dict[str, RequestMix] = {
    "W0": RequestMix.from_ratios(
        {"ComposePost": 5, "ReadHomeTimeline": 80, "ReadUserTimeline": 15}
    ),
    "W1": RequestMix.from_ratios(
        {"ComposePost": 10, "ReadHomeTimeline": 80, "ReadUserTimeline": 10}
    ),
    "W2": RequestMix.from_ratios(
        {"ComposePost": 1, "ReadHomeTimeline": 90, "ReadUserTimeline": 9}
    ),
    "W3": RequestMix.from_ratios(
        {"ComposePost": 5, "ReadHomeTimeline": 70, "ReadUserTimeline": 25}
    ),
}


def social_mix(name: str = "W0") -> RequestMix:
    """Return one of the paper's Social Network mixes (default: training mix)."""
    try:
        return SOCIAL_MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown social mix {name!r}; choose from {sorted(SOCIAL_MIXES)}"
        ) from None


def hotel_mix() -> RequestMix:
    """DeathStarBench Hotel Reservation default mix (search-dominated)."""
    return RequestMix.from_ratios(
        {"Search": 60.0, "Recommend": 38.0, "Reserve": 1.0, "Login": 1.0}
    )


def media_mix() -> RequestMix:
    """Media Service default mix (browse-dominated, like the
    DeathStarBench movie-review workload)."""
    return RequestMix.from_ratios(
        {"ComposeReview": 10.0, "ReadMoviePage": 65.0, "ReadUserReviews": 25.0}
    )


__all__ = ["SOCIAL_MIXES", "social_mix", "hotel_mix", "media_mix"]
