"""Workload generation: the Locust substitute.

The paper drives each experiment with emulated users sending requests
under a Poisson process with a 1 RPS mean arrival rate per user (Section
5.3), over constant, diurnal, and request-mix-varying scenarios.  This
package provides open-loop load patterns with per-request-type mixes.
"""

from repro.workload.patterns import (
    LoadPattern,
    ConstantLoad,
    StepLoad,
    DiurnalLoad,
    RampLoad,
    TraceLoad,
)
from repro.workload.generator import Workload, RequestMix
from repro.workload.mixes import SOCIAL_MIXES, social_mix, hotel_mix, media_mix

__all__ = [
    "LoadPattern",
    "ConstantLoad",
    "StepLoad",
    "DiurnalLoad",
    "RampLoad",
    "TraceLoad",
    "Workload",
    "RequestMix",
    "SOCIAL_MIXES",
    "social_mix",
    "hotel_mix",
    "media_mix",
]
