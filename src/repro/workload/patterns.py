"""Load patterns: number of emulated users as a function of time.

Each pattern maps episode time (seconds) to a concurrent-user count; the
generator converts users to request rates at 1 RPS mean per user, the
paper's Locust configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable


@runtime_checkable
class LoadPattern(Protocol):
    """Time-varying user population."""

    def users(self, time: float) -> float:
        """Concurrent emulated users at episode time ``time`` (seconds)."""
        ...


@dataclass(frozen=True)
class ConstantLoad:
    """Fixed user population (the paper's Figure 11 load levels)."""

    n_users: float

    def __post_init__(self) -> None:
        if self.n_users < 0:
            raise ValueError("n_users must be >= 0")

    def users(self, time: float) -> float:
        return self.n_users


@dataclass(frozen=True)
class StepLoad:
    """Piecewise-constant load: steps of ``(start_time, users)``.

    Steps must be sorted by start time; the first step should start at 0.
    """

    steps: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("need at least one step")
        times = [t for t, _ in self.steps]
        if times != sorted(times):
            raise ValueError("steps must be sorted by start time")

    def users(self, time: float) -> float:
        current = self.steps[0][1]
        for start, users in self.steps:
            if time >= start:
                current = users
            else:
                break
        return current


@dataclass(frozen=True)
class DiurnalLoad:
    """Sinusoidal day/night pattern around a base population.

    ``users(t) = base + amplitude * sin(2*pi*t / period + phase)``,
    floored at zero.  The paper's Figure 12 (bottom) uses a diurnal load
    for Social Network with a 300-user peak.
    """

    base: float
    amplitude: float
    period: float = 600.0
    phase: float = -math.pi / 2

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.amplitude < 0:
            raise ValueError("amplitude must be >= 0")

    def users(self, time: float) -> float:
        value = self.base + self.amplitude * math.sin(
            2.0 * math.pi * time / self.period + self.phase
        )
        return max(value, 0.0)


@dataclass(frozen=True)
class RampLoad:
    """Linear ramp from ``start_users`` to ``end_users`` over ``duration``."""

    start_users: float
    end_users: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def users(self, time: float) -> float:
        frac = min(max(time / self.duration, 0.0), 1.0)
        return self.start_users + frac * (self.end_users - self.start_users)


class TraceLoad:
    """Replay a recorded user-count trace at 1 s granularity.

    The trace is held flat beyond its end (the last value persists), so
    an episode may run longer than the trace.
    """

    def __init__(self, trace: Sequence[float]) -> None:
        if len(trace) == 0:
            raise ValueError("trace must be non-empty")
        self._trace = [float(v) for v in trace]

    def users(self, time: float) -> float:
        idx = min(int(time), len(self._trace) - 1)
        return self._trace[max(idx, 0)]


__all__ = [
    "LoadPattern",
    "ConstantLoad",
    "StepLoad",
    "DiurnalLoad",
    "RampLoad",
    "TraceLoad",
]
