"""Open-loop workload generator (the Locust substitute).

Combines a :class:`~repro.workload.patterns.LoadPattern` (how many users)
with a :class:`RequestMix` (what they send) into per-request-type offered
rates, at the paper's 1 RPS mean arrival rate per user.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.graph import AppGraph
from repro.workload.patterns import LoadPattern


@dataclass(frozen=True)
class RequestMix:
    """Normalized request-type mix.

    The paper varies the ratio of ComposePost : ReadHomeTimeline :
    ReadUserTimeline across workloads W0-W3 (Section 5.5).
    """

    fractions: tuple[tuple[str, float], ...]

    @classmethod
    def from_ratios(cls, ratios: dict[str, float]) -> "RequestMix":
        """Build a mix from unnormalized ratios (e.g. ``5:80:15``)."""
        total = sum(ratios.values())
        if total <= 0:
            raise ValueError("ratios must sum to a positive value")
        if any(v < 0 for v in ratios.values()):
            raise ValueError("ratios must be non-negative")
        return cls(tuple((name, value / total) for name, value in ratios.items()))

    def as_dict(self) -> dict[str, float]:
        return dict(self.fractions)

    def vector(self, graph: AppGraph) -> np.ndarray:
        """Mix fractions aligned to ``graph.request_types`` order."""
        lookup = self.as_dict()
        unknown = set(lookup) - set(graph.type_names)
        if unknown:
            raise ValueError(f"mix references unknown request types: {unknown}")
        return np.array([lookup.get(name, 0.0) for name in graph.type_names])


class Workload:
    """Offered load per request type as a function of episode time.

    Parameters
    ----------
    graph:
        Application whose request types the mix refers to.
    pattern:
        User population over time.
    mix:
        Request-type mix; fractions are applied to total RPS.
    rps_per_user:
        Mean request rate per emulated user (paper: 1 RPS).
    """

    def __init__(
        self,
        graph: AppGraph,
        pattern: LoadPattern,
        mix: RequestMix,
        rps_per_user: float = 1.0,
    ) -> None:
        if rps_per_user <= 0:
            raise ValueError("rps_per_user must be positive")
        self.graph = graph
        self.pattern = pattern
        self.mix = mix
        self.rps_per_user = rps_per_user
        self._mix_vector = mix.vector(graph)

    def rates(self, time: float) -> np.ndarray:
        """Offered requests/second per type at episode time ``time``."""
        total = self.pattern.users(time) * self.rps_per_user
        return total * self._mix_vector

    def total_rps(self, time: float) -> float:
        return float(self.rates(time).sum())

    def with_pattern(self, pattern: LoadPattern) -> "Workload":
        """Same mix, different load pattern."""
        return Workload(self.graph, pattern, self.mix, self.rps_per_user)

    def with_mix(self, mix: RequestMix) -> "Workload":
        """Same load pattern, different request mix."""
        return Workload(self.graph, self.pattern, mix, self.rps_per_user)


__all__ = ["Workload", "RequestMix"]
