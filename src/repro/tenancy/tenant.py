"""One tenant: an application, its workload, its QoS, its scheduler.

A :class:`Tenant` packages everything that belongs to a single team on
the shared cluster — the app topology, the load pattern it faces, the
QoS target it declared, and its *own* per-tenant Sinan (or baseline)
manager.  The tenant's manager is unaware it is sharing hardware: it
proposes allocations exactly as in single-tenant operation, the
:class:`~repro.tenancy.arbiter.CreditArbiter` decides how much of the
proposal is granted, and the tenant scales its proposal down onto the
grant before stepping its simulator.

Scaling a proposal to a grant interpolates every tier between its
minimum floor and the proposed level by the same fraction — the same
shape :meth:`~repro.sim.cluster.ClusterSimulator.clip_alloc` uses for a
platform ceiling, so a grant reduction degrades all tiers evenly
instead of zeroing whichever tier happens to be last.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.manager import Manager
from repro.core.qos import QoSTarget
from repro.sim.cluster import LOCAL_PLATFORM, ClusterSimulator
from repro.sim.faults import FaultProfile
from repro.sim.graph import AppGraph
from repro.tenancy.arbiter import AllocationRequest
from repro.workload.patterns import LoadPattern


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant (picklable)."""

    name: str
    app: str
    """Application name from the harness registry (``social_network``,
    ``hotel_reservation``, ``media_service``)."""

    pattern: LoadPattern
    """Workload the tenant faces over the episode."""

    manager: str = "sinan"
    """Per-tenant scheduler, by harness name."""

    qos_ms: float | None = None
    """QoS target override; ``None`` uses the app's paper target."""

    fault_profile: str | FaultProfile | None = None
    """Optional chaos profile injected into *this tenant only*."""


class Tenant:
    """A running tenant: spec + graph + manager + private simulator."""

    def __init__(
        self,
        spec: TenantSpec,
        graph: AppGraph,
        qos: QoSTarget,
        manager: Manager,
        cluster: ClusterSimulator,
        seed: int | None = None,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        self.graph = graph
        self.qos = qos
        self.manager = manager
        self.cluster = cluster
        self.seed = seed
        self._min_vec = graph.min_alloc()
        self.floor = float(self._min_vec.sum())
        self._desired: np.ndarray | None = None

    def reset(self) -> None:
        """Fresh episode: manager state cleared, and — when the build
        seed is known — the cluster rewound to its seeded start, so
        rerunning the same tenant set is bit-identical."""
        self.manager.reset()
        if self.seed is not None:
            self.cluster.reset(self.seed)
        self._desired = None

    def request(self) -> AllocationRequest:
        """Ask the tenant's scheduler and phrase its answer for the arbiter.

        The manager sees the cluster's *observed* telemetry (so a fault
        profile corrupting this tenant's view behaves exactly as in
        single-tenant runs); the ``violating`` flag scores ground truth,
        since the arbiter plays the role of the cluster operator.
        """
        desired = self.manager.decide(self.cluster.observed)
        if desired is None:
            desired = self.cluster.current_alloc.copy()
        desired = self.cluster.clip_alloc(np.asarray(desired, dtype=float))
        self._desired = desired
        demand = float(desired.sum())
        current = float(self.cluster.current_alloc.sum())
        log = self.cluster.telemetry
        violating = len(log) > 0 and self.qos.violated(log.latest)
        return AllocationRequest(
            tenant=self.name,
            demand=demand,
            keep=min(demand, current),
            floor=self.floor,
            violating=violating,
        )

    def apply(self, grant: float) -> None:
        """Scale the pending proposal onto ``grant`` cores and step."""
        if self._desired is None:
            raise RuntimeError("apply() without a preceding request()")
        desired = self._desired
        self._desired = None
        total = float(desired.sum())
        if grant < total - 1e-9:
            span = total - self.floor
            ratio = 0.0 if span <= 1e-12 else (grant - self.floor) / span
            ratio = min(max(ratio, 0.0), 1.0)
            desired = self._min_vec + (desired - self._min_vec) * ratio
        self.cluster.step(desired)


def build_tenant(
    spec: TenantSpec,
    budget_cpu: float,
    seed: int = 0,
    predictor=None,
    pipeline_budget=None,
    jobs: int | None = None,
) -> Tenant:
    """Construct a runnable :class:`Tenant` from its spec.

    The tenant's private simulator gets a platform whose ``total_cpu``
    is the *shared* cluster budget (or the tenant's fixed slice, for
    the static-partitioning baseline), so the arbiter — not the
    platform clip — is the binding constraint.  ``sinan`` tenants train
    (or load from cache) their own predictor unless one is passed in.
    """
    from repro.harness.pipeline import (
        app_spec,
        get_trained_predictor,
        make_cluster,
        make_manager,
    )

    aspec = app_spec(spec.app)
    graph = aspec.graph_factory()
    qos = aspec.qos if spec.qos_ms is None else QoSTarget(spec.qos_ms)
    platform = dataclasses.replace(LOCAL_PLATFORM, total_cpu=float(budget_cpu))
    cluster = make_cluster(
        graph,
        users=spec.pattern.users(0.0),
        seed=seed,
        platform=platform,
        pattern=spec.pattern,
        fault_profile=spec.fault_profile,
        fault_seed=seed,
    )
    if spec.manager == "sinan" and predictor is None:
        predictor = get_trained_predictor(spec.app, pipeline_budget, jobs=jobs)
    manager = make_manager(spec.manager, graph, qos, predictor)
    return Tenant(spec, graph, qos, manager, cluster, seed=seed)


__all__ = ["TenantSpec", "Tenant", "build_tenant"]
