"""Credit-based arbitration of per-interval CPU requests.

Once per decision interval every tenant's own Sinan (or baseline)
scheduler proposes an allocation for *its* application; the arbiter
resolves those proposals against the finite cluster budget.  Three
regimes, from loose to tight:

* **uncontended** — total demand fits the budget: grant everything.
* **knapsack** — every tenant can *hold* its current operating point
  (the ``keep`` level) but not every scale-up fits: scale-up deltas are
  admitted whole-or-nothing by a 0/1 knapsack over the leftover budget,
  valued by credit (boosted for tenants violating QoS right now).
  Partial scale-ups are deliberately not granted — the per-tenant model
  predicted the *requested* allocation meets QoS; a fraction of it
  carries no such prediction.
* **weighted-drf** — even the keeps overflow the budget: grants
  water-fill between each tenant's floor (sum of per-tier minimums)
  and its keep level, weighted by credit.  With CPU the only arbitrated
  resource, credit-weighted DRF reduces to weighted max-min fairness.

Determinism contract: the arbiter draws one permutation from its own
seeded generator on *every* call — contended or not — so its RNG
schedule never depends on workload behaviour.  The permutation breaks
ties (knapsack item order); all other arithmetic is closed-form.  Two
runs with the same seeds are bit-identical regardless of worker
fan-out, and faults confined to one tenant cannot perturb another
tenant's random streams through the arbiter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.audit import ArbitrationRecord
from repro.tenancy.credit import CreditConfig, CreditLedger

#: Scale-up deltas are admitted in whole multiples of this many cores.
QUANTUM_CPU = 0.5


@dataclass(frozen=True)
class AllocationRequest:
    """One tenant's per-interval ask, as seen by the arbiter."""

    tenant: str
    demand: float
    """Total CPU the tenant's scheduler wants next interval."""

    keep: float
    """CPU needed to hold the current operating point (no scale-up)."""

    floor: float
    """Sum of the application's per-tier minimum allocations."""

    violating: bool = False
    """Did the tenant miss its QoS target in the latest interval?"""


@dataclass(frozen=True)
class TenantGrant:
    """The arbiter's answer to one request."""

    tenant: str
    demand: float
    grant: float
    credit: float
    """Credit balance after this interval's settlement."""


@dataclass(frozen=True)
class ArbiterDecision:
    """Outcome of one arbitration round across all tenants."""

    interval: int
    time: float
    budget_cpu: float
    mode: str
    contended: bool
    grants: dict[str, TenantGrant]

    @property
    def total_demand(self) -> float:
        return sum(g.demand for g in self.grants.values())

    @property
    def total_granted(self) -> float:
        return sum(g.grant for g in self.grants.values())

    def record(self) -> ArbitrationRecord:
        """The decision as a typed audit record."""
        names = tuple(sorted(self.grants))
        return ArbitrationRecord(
            interval=self.interval,
            time=self.time,
            budget_cpu=self.budget_cpu,
            total_demand=round(self.total_demand, 6),
            total_granted=round(self.total_granted, 6),
            contended=self.contended,
            mode=self.mode,
            tenants=names,
            demands=tuple(round(self.grants[n].demand, 6) for n in names),
            grants=tuple(round(self.grants[n].grant, 6) for n in names),
            credits=tuple(round(self.grants[n].credit, 6) for n in names),
        )


def _water_fill(caps: np.ndarray, weights: np.ndarray, total: float) -> np.ndarray:
    """Weighted max-min: split ``total`` by ``weights``, capped per item.

    Iteratively gives each unsaturated item its weighted share of what
    remains; items whose cap binds are frozen at the cap and the rest
    re-divided.  Closed-form per round, terminates in <= n rounds, and
    independent of item order — no tie-breaking needed.
    """
    grant = np.zeros_like(caps)
    active = caps > 1e-12
    remaining = float(total)
    while remaining > 1e-9 and active.any():
        share = remaining * weights * active / float(weights[active].sum())
        over = active & (grant + share >= caps - 1e-12)
        if not over.any():
            grant += share
            break
        remaining -= float((caps[over] - grant[over]).sum())
        grant[over] = caps[over]
        active &= ~over
    return grant


def _knapsack_admit(
    deltas: np.ndarray, values: np.ndarray, capacity: float
) -> np.ndarray:
    """0/1 knapsack: admit whole scale-up deltas maximizing total value.

    Deltas are quantized to :data:`QUANTUM_CPU`-core items.  Classic DP
    with first-wins tie-breaking: on equal value the earlier item (in
    the caller's — permuted — order) keeps its slot, so the caller's
    seeded permutation is the only tie-breaker.  Returns a boolean
    admit mask in the caller's order.
    """
    n = len(deltas)
    weights = np.maximum(np.ceil(deltas / QUANTUM_CPU - 1e-9).astype(int), 1)
    cap = int(capacity / QUANTUM_CPU + 1e-9)
    admitted = np.zeros(n, dtype=bool)
    if cap <= 0 or n == 0:
        return admitted
    best = np.full(cap + 1, -1.0)
    best[0] = 0.0
    take = np.zeros((n, cap + 1), dtype=bool)
    for i in range(n):
        w, v = weights[i], values[i]
        if w > cap:
            continue
        # Descending so each item is used at most once; strict > keeps
        # the earlier (permuted) item on value ties.
        for c in range(cap, w - 1, -1):
            if best[c - w] >= 0 and best[c - w] + v > best[c]:
                best[c] = best[c - w] + v
                take[i, c] = True
    c = int(np.argmax(best))
    for i in range(n - 1, -1, -1):
        if take[i, c]:
            admitted[i] = True
            c -= weights[i]
    return admitted


class CreditArbiter:
    """Resolve conflicting tenant requests against one CPU budget.

    Owns a :class:`~repro.tenancy.credit.CreditLedger` (balances evolve
    with every :meth:`arbitrate` call) and a private seeded generator
    used only for tie-breaking.
    """

    name = "credit"

    def __init__(
        self,
        budget_cpu: float,
        qos_ms: dict[str, float],
        config: CreditConfig | None = None,
        seed: int = 0,
    ) -> None:
        if budget_cpu <= 0:
            raise ValueError("budget_cpu must be positive")
        self.budget_cpu = float(budget_cpu)
        self.ledger = CreditLedger.from_qos(qos_ms, config)
        self._seed = seed
        self.rng = np.random.default_rng(seed)

    def reset(self, seed: int | None = None) -> None:
        """Fresh episode: reopen the ledger and reseed the generator."""
        if seed is not None:
            self._seed = seed
        self.rng = np.random.default_rng(self._seed)
        self.ledger.reset()

    def arbitrate(
        self,
        requests: list[AllocationRequest],
        interval: int,
        time: float,
    ) -> ArbiterDecision:
        """Grant CPU for one interval across all tenants."""
        if not requests:
            raise ValueError("arbitrate needs at least one request")
        # Drawn unconditionally so RNG consumption is independent of
        # contention (see the module determinism contract).
        order = self.rng.permutation(len(requests))

        floors = np.array([r.floor for r in requests])
        demands = np.maximum(np.array([r.demand for r in requests]), floors)
        keeps = np.clip(np.array([r.keep for r in requests]), floors, demands)
        violating = np.array([r.violating for r in requests])
        weights = np.array([
            self.ledger.effective_weight(r.tenant, r.violating)
            for r in requests
        ])

        budget = self.budget_cpu
        if floors.sum() > budget + 1e-9:
            raise ValueError(
                f"cluster budget {budget:.1f} cannot cover tenant floors "
                f"({floors.sum():.1f} cores)"
            )

        if demands.sum() <= budget + 1e-9:
            mode, contended = "uncontended", False
            grants = demands.copy()
        elif keeps.sum() > budget + 1e-9:
            mode, contended = "weighted-drf", True
            grants = floors + _water_fill(
                keeps - floors, weights, budget - floors.sum()
            )
        else:
            mode, contended = "knapsack", True
            grants = keeps.copy()
            deltas = demands - keeps
            candidates = order[deltas[order] > 1e-9]
            if candidates.size:
                admit = _knapsack_admit(
                    deltas[candidates], weights[candidates],
                    budget - keeps.sum(),
                )
                grants[candidates[admit]] = demands[candidates[admit]]

        fair = budget / len(requests)
        overdraw = (
            {r.tenant: float(grants[i] - fair)
             for i, r in enumerate(requests) if grants[i] > fair}
            if contended else None
        )
        self.ledger.settle(
            violating=[r.tenant for i, r in enumerate(requests) if violating[i]],
            overdraw=overdraw,
        )
        credits = self.ledger.snapshot()
        return ArbiterDecision(
            interval=interval,
            time=time,
            budget_cpu=budget,
            mode=mode,
            contended=contended,
            grants={
                r.tenant: TenantGrant(
                    tenant=r.tenant,
                    demand=float(demands[i]),
                    grant=float(grants[i]),
                    credit=credits[r.tenant],
                )
                for i, r in enumerate(requests)
            },
        )


class StaticPartitionArbiter:
    """Equal-capacity static partitioning — the baseline arbiter.

    Every tenant owns ``budget / n_tenants`` cores outright; requests
    are granted up to that slice and never beyond, regardless of what
    the neighbours are doing.  This is what operators get today by
    carving a shared cluster into fixed per-team quotas.
    """

    name = "static"

    def __init__(self, budget_cpu: float, n_tenants: int) -> None:
        if budget_cpu <= 0 or n_tenants <= 0:
            raise ValueError("need positive budget and tenant count")
        self.budget_cpu = float(budget_cpu)
        self.slice_cpu = float(budget_cpu) / n_tenants

    def reset(self, seed: int | None = None) -> None:
        """Stateless — nothing to reset."""

    def arbitrate(
        self,
        requests: list[AllocationRequest],
        interval: int,
        time: float,
    ) -> ArbiterDecision:
        """Grant each tenant up to its fixed slice."""
        if not requests:
            raise ValueError("arbitrate needs at least one request")
        return ArbiterDecision(
            interval=interval,
            time=time,
            budget_cpu=self.budget_cpu,
            mode="static",
            contended=False,
            grants={
                r.tenant: TenantGrant(
                    tenant=r.tenant,
                    demand=float(max(r.demand, r.floor)),
                    grant=float(min(max(r.demand, r.floor), self.slice_cpu)),
                    credit=0.0,
                )
                for r in requests
            },
        )


__all__ = [
    "QUANTUM_CPU",
    "AllocationRequest",
    "TenantGrant",
    "ArbiterDecision",
    "CreditArbiter",
    "StaticPartitionArbiter",
]
