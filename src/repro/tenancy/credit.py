"""Credit accounting for multi-tenant arbitration.

Each tenant holds a scalar *credit* balance that encodes how much claim
it has on the shared cluster when demand exceeds supply.  Credit

* **accrues** every interval in proportion to the tenant's declared SLO
  tightness (a 200 ms target earns faster than a 500 ms one — tighter
  QoS is a stronger standing claim, mirroring how the paper's scheduler
  prioritizes by proximity to the QoS target);
* **decays** multiplicatively on intervals where the tenant violated
  its own QoS (a tenant that cannot convert cores into met SLOs loses
  standing, which protects well-behaved tenants from a chronically
  overloaded neighbour); and
* is **spent** when the arbiter is contended and the tenant wins more
  than its equal share of the cluster (sustained overdraw drains the
  balance, so no tenant can monopolize the surplus forever).

Balances are clamped to ``[min_credit, max_credit]`` so a tenant can
neither be starved out permanently nor bank unbounded priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class CreditConfig:
    """Tuning knobs for the credit economy.

    The defaults keep the economy gentle: balances move a few percent
    per interval, so standing reflects behaviour over tens of intervals
    rather than single-interval noise.
    """

    base_credit: float = 1.0
    """Opening balance for every tenant."""

    accrual_rate: float = 0.02
    """Per-interval accrual for a tenant of average SLO tightness;
    scaled by each tenant's normalized tightness."""

    violation_decay: float = 0.97
    """Multiplicative factor applied on each violating interval."""

    spend_rate: float = 0.01
    """Credit spent per core granted above the equal share, per
    contended interval."""

    min_credit: float = 0.1
    """Floor — even a chronically violating tenant keeps a small claim."""

    max_credit: float = 5.0
    """Ceiling — bounds how much priority a tenant can bank."""

    urgency_boost: float = 2.0
    """Weight multiplier for tenants currently violating QoS: a live
    violation is a stronger signal than banked standing alone."""

    def __post_init__(self) -> None:
        if self.min_credit <= 0 or self.max_credit < self.min_credit:
            raise ValueError("need 0 < min_credit <= max_credit")
        if not 0.0 < self.violation_decay <= 1.0:
            raise ValueError("violation_decay must be in (0, 1]")


class CreditLedger:
    """Per-tenant credit balances plus the update rule.

    Construct with :meth:`from_qos` so SLO tightness is normalized
    across the actual tenant set (tightness of tenant *i* is
    ``(1/qos_i) / mean_j(1/qos_j)`` — mean tightness is 1.0 by
    construction, making ``accrual_rate`` directly interpretable).
    """

    def __init__(
        self,
        tightness: Mapping[str, float],
        config: CreditConfig | None = None,
    ) -> None:
        if not tightness:
            raise ValueError("ledger needs at least one tenant")
        self.config = config or CreditConfig()
        self.tightness = dict(tightness)
        self._credits = {t: self.config.base_credit for t in tightness}

    @classmethod
    def from_qos(
        cls,
        qos_ms: Mapping[str, float],
        config: CreditConfig | None = None,
    ) -> "CreditLedger":
        """Build a ledger with tightness derived from QoS targets (ms)."""
        if not qos_ms:
            raise ValueError("ledger needs at least one tenant")
        inv = {t: 1.0 / ms for t, ms in qos_ms.items()}
        mean_inv = sum(inv.values()) / len(inv)
        return cls({t: v / mean_inv for t, v in inv.items()}, config)

    @property
    def tenants(self) -> list[str]:
        return list(self._credits)

    def credit(self, tenant: str) -> float:
        return self._credits[tenant]

    def snapshot(self) -> dict[str, float]:
        """Current balances (a copy, safe to store in records)."""
        return dict(self._credits)

    def effective_weight(self, tenant: str, violating: bool) -> float:
        """Arbitration weight: banked credit, boosted if violating now."""
        boost = self.config.urgency_boost if violating else 1.0
        return self._credits[tenant] * boost

    def settle(
        self,
        violating: Iterable[str] = (),
        overdraw: Mapping[str, float] | None = None,
    ) -> None:
        """Apply one interval's worth of credit dynamics.

        ``violating`` names tenants that missed QoS this interval;
        ``overdraw`` maps tenants to cores granted above the equal
        share on a *contended* interval (pass nothing when the cluster
        was uncontended — surplus is free when nobody else wanted it).
        """
        cfg = self.config
        violating = set(violating)
        overdraw = overdraw or {}
        for t in self._credits:
            c = self._credits[t] + cfg.accrual_rate * self.tightness[t]
            if t in violating:
                c *= cfg.violation_decay
            c -= cfg.spend_rate * max(0.0, overdraw.get(t, 0.0))
            self._credits[t] = min(cfg.max_credit, max(cfg.min_credit, c))

    def reset(self) -> None:
        """Restore every balance to the opening credit."""
        for t in self._credits:
            self._credits[t] = self.config.base_credit


__all__ = ["CreditConfig", "CreditLedger"]
