"""Multi-tenant shared cluster: credit-based arbitration across apps.

Single-tenant Sinan answers "how few cores does *this* app need to meet
QoS?".  This subsystem asks the follow-on question a shared cluster
forces: when N independently-managed applications want more CPU than
the cluster has, who gets it?

* :mod:`repro.tenancy.credit` — per-tenant credit balances: accrue
  with declared SLO tightness, decay with QoS violations, spent when
  winning contended cores.
* :mod:`repro.tenancy.arbiter` — the :class:`CreditArbiter` resolving
  per-interval requests (credit-weighted DRF when even hold levels
  overflow; knapsack admission of atomic scale-ups otherwise), plus
  the :class:`StaticPartitionArbiter` baseline.
* :mod:`repro.tenancy.tenant` — a :class:`Tenant` bundling one app
  topology, workload pattern, QoS target, and its own scheduler.
* :mod:`repro.tenancy.simulator` — the :class:`MultiTenantSimulator`
  stepping all tenants in lockstep against the shared budget.

The harness entry points are
:func:`repro.harness.multitenant.run_multitenant_episode` and
``repro multitenant`` on the CLI.
"""

from repro.tenancy.arbiter import (
    QUANTUM_CPU,
    AllocationRequest,
    ArbiterDecision,
    CreditArbiter,
    StaticPartitionArbiter,
    TenantGrant,
)
from repro.tenancy.credit import CreditConfig, CreditLedger
from repro.tenancy.simulator import MultiTenantSimulator
from repro.tenancy.tenant import Tenant, TenantSpec, build_tenant

__all__ = [
    "QUANTUM_CPU",
    "AllocationRequest",
    "ArbiterDecision",
    "CreditArbiter",
    "StaticPartitionArbiter",
    "TenantGrant",
    "CreditConfig",
    "CreditLedger",
    "MultiTenantSimulator",
    "Tenant",
    "TenantSpec",
    "build_tenant",
]
