"""Lockstep multi-tenant simulation over one shared CPU budget.

The :class:`MultiTenantSimulator` advances N independent
:class:`~repro.sim.cluster.ClusterSimulator`\\ s in lockstep, one
decision interval at a time:

1. every tenant's scheduler proposes an allocation for its own app;
2. the arbiter resolves the proposals against the shared budget;
3. every tenant scales its proposal onto its grant and steps.

Each tenant keeps its own RNG streams (cluster seed, fault seed) and
the arbiter keeps its own, so episodes are bit-identical for fixed
seeds and a fault profile on one tenant cannot perturb another
tenant's streams.  With a recorder attached, every tenant reports
through a :class:`~repro.obs.recorder.TenantRecorder` (metrics gain a
``tenant=`` label, audit rows carry the tenant id) and each arbitration
round lands in the shared audit log as a typed
:class:`~repro.obs.audit.ArbitrationRecord`.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.recorder import NULL_RECORDER, Recorder, TenantRecorder
from repro.tenancy.arbiter import ArbiterDecision
from repro.tenancy.tenant import Tenant


class MultiTenantSimulator:
    """Step N tenants against one arbiter and one CPU budget."""

    def __init__(
        self,
        tenants: Sequence[Tenant],
        arbiter,
        recorder: Recorder | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        floors = sum(t.floor for t in tenants)
        budget = getattr(arbiter, "budget_cpu", None)
        if budget is not None and floors > budget + 1e-9:
            raise ValueError(
                f"budget {budget:.1f} cores cannot cover the tenants' "
                f"combined floors ({floors:.1f} cores)"
            )
        self.tenants = list(tenants)
        self.arbiter = arbiter
        self.interval = 0
        self.recorder = NULL_RECORDER
        if recorder is not None:
            self.attach_recorder(recorder)

    def attach_recorder(self, recorder: Recorder) -> None:
        """Route each tenant through a tenant-labelled recorder view."""
        from repro.obs.recorder import attach_recorder

        self.recorder = recorder
        for t in self.tenants:
            attach_recorder(
                TenantRecorder(recorder, t.name),
                manager=t.manager,
                cluster=t.cluster,
            )

    def reset(self) -> None:
        """Fresh episode: reset managers and the arbiter's ledger/RNG."""
        for t in self.tenants:
            t.reset()
        self.arbiter.reset()
        self.interval = 0

    def step(self) -> ArbiterDecision:
        """One lockstep interval: propose, arbitrate, apply."""
        requests = [t.request() for t in self.tenants]
        decision = self.arbiter.arbitrate(
            requests, self.interval, float(self.interval)
        )
        for t in self.tenants:
            t.apply(decision.grants[t.name].grant)
        if self.recorder.enabled:
            self.recorder.audit(decision.record())
            for name, g in decision.grants.items():
                self.recorder.gauge("tenant_cpu_granted", g.grant, tenant=name)
                self.recorder.gauge("tenant_cpu_demand", g.demand, tenant=name)
                self.recorder.gauge("tenant_credit", g.credit, tenant=name)
            self.recorder.counter(
                "arbitrations_total", mode=decision.mode,
                contended=str(decision.contended).lower(),
            )
        self.interval += 1
        return decision

    def run(self, duration: int) -> list[ArbiterDecision]:
        """Reset, then run ``duration`` intervals; returns all decisions."""
        self.reset()
        return [self.step() for _ in range(duration)]


__all__ = ["MultiTenantSimulator"]
