"""End-to-end pipeline: application registry, data collection, model
training, and caching.

The paper's workflow (Appendix A.5) is: generate training data with the
bandit explorer, train the hybrid model, then deploy the inference
engine against the cluster.  ``build_sinan_pipeline`` performs all three
steps; ``get_trained_predictor`` memoizes the expensive middle step both
in-process and on disk (``.cache/``, overridable via the
``REPRO_CACHE_DIR`` environment variable), so the benchmark suite trains
each application's model once and reuses it across figures.

The disk cache is concurrency- and crash-safe: entries are written to a
temp file and published with an atomic ``os.replace``, cross-process
races on a cold cache are serialized by an exclusive ``.lock`` file (the
second process waits, then loads the winner's model instead of training
twice), and a truncated or otherwise unreadable entry is treated as a
miss — logged, deleted, and retrained — never as a crash.

Collection fans out per-load episodes over worker processes when
``jobs`` is given (see :mod:`repro.harness.parallel`); the dataset is
bit-identical to the serial run for a given seed regardless of worker
count, because every episode is independently seeded ``seed + i``.
Fanned-out calls share the process-wide warm pool and broadcast the
predictor once per content fingerprint (:mod:`repro.harness.pool`), so
the on-policy refinement rounds stop re-pickling the model per task and
successive pipeline stages reuse live workers.

Budgets scale the pipeline: ``small`` for unit tests, ``medium`` for the
benchmark suite, ``large`` for higher-fidelity runs approaching the
paper's collection scale.  The ``REPRO_BUDGET`` environment variable
overrides the default budget used by the benchmarks.
"""

from __future__ import annotations

import contextlib
import logging
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

try:  # POSIX-only; the lock degrades to a no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.apps import (
    HOTEL_QOS_MS,
    MEDIA_QOS_MS,
    SOCIAL_QOS_MS,
    hotel_reservation,
    media_service,
    social_network,
)
from repro.core.data_collection import (
    BanditPolicyFactory,
    CollectionConfig,
    DataCollector,
)
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.core.qos import QoSTarget
from repro.core.sinan import SinanManager
from repro.harness.parallel import EpisodeTask, run_episodes
from repro.ml.dataset import SinanDataset
from repro.sim.behaviors import Behavior
from repro.sim.cluster import (
    LOCAL_PLATFORM,
    ClusterSimulator,
    PlatformSpec,
)
from repro.sim.faults import FaultInjector, FaultProfile, resolve_profile
from repro.sim.graph import AppGraph
from repro.workload.generator import RequestMix, Workload
from repro.workload.mixes import hotel_mix, media_mix, social_mix
from repro.workload.patterns import ConstantLoad, LoadPattern

logger = logging.getLogger(__name__)

# v6: collection episodes are independently seeded (seed + i) per load
# level so serial and parallel collection are bit-identical; previously
# one bandit instance carried state across load levels.
# v7: predictor checkpoints use the tagged save format (SAVE_FORMAT=2)
# and carry compiled boosted trees + fast-path state; older cache files
# would fail HybridPredictor.load's format check.
# v8: models are trained on the fast training path (histogram tree
# grower, im2col/fused-GEMM backprop); trained weights match the old
# path only to float tolerance, not bit for bit, so cached predictors
# from v7 would silently differ from freshly trained ones.
_CACHE_VERSION = 8


@dataclass(frozen=True)
class Budget:
    """How much data/compute the pipeline spends."""

    name: str
    collection_loads: int
    """Number of constant-load levels sampled during collection."""

    seconds_per_load: int
    """Collection intervals per load level."""

    epochs: int
    batch_size: int

    refine_rounds: int = 1
    """On-policy refinement passes: after the initial (bandit-collected)
    training, data is also collected while the trained Sinan manages the
    cluster, and the models are retrained on the union.  This is the
    paper's periodic background retraining (Section 4.2, "retraining can
    be triggered periodically..."), closing the gap between the
    exploration distribution and the deployment distribution."""

    @property
    def total_samples(self) -> int:
        return self.collection_loads * self.seconds_per_load


BUDGETS: dict[str, Budget] = {
    "small": Budget("small", collection_loads=2, seconds_per_load=60, epochs=8,
                    batch_size=128, refine_rounds=0),
    "medium": Budget("medium", collection_loads=6, seconds_per_load=400, epochs=30,
                     batch_size=256, refine_rounds=1),
    "large": Budget("large", collection_loads=8, seconds_per_load=700, epochs=40,
                    batch_size=512, refine_rounds=1),
}


def resolve_budget(budget: str | Budget | None = None) -> Budget:
    """Resolve a budget name, honoring the REPRO_BUDGET env override."""
    if isinstance(budget, Budget):
        return budget
    name = budget or os.environ.get("REPRO_BUDGET", "medium")
    try:
        return BUDGETS[name]
    except KeyError:
        raise KeyError(f"unknown budget {name!r}; choose from {sorted(BUDGETS)}") from None


@dataclass(frozen=True)
class AppSpec:
    """Per-application evaluation parameters from the paper."""

    name: str
    graph_factory: Callable[[], AppGraph]
    qos: QoSTarget
    mix_factory: Callable[[], RequestMix]
    fig11_loads: tuple[float, ...]
    """The user counts swept in Figure 11."""

    collection_load_range: tuple[float, float]
    """(low, high) user range the collector samples."""


_APP_SPECS: dict[str, AppSpec] = {
    "social_network": AppSpec(
        name="social_network",
        graph_factory=social_network,
        qos=QoSTarget(SOCIAL_QOS_MS),
        mix_factory=social_mix,
        fig11_loads=(50, 100, 150, 200, 250, 300, 350, 400, 450),
        collection_load_range=(50, 480),
    ),
    "hotel_reservation": AppSpec(
        name="hotel_reservation",
        graph_factory=hotel_reservation,
        qos=QoSTarget(HOTEL_QOS_MS),
        mix_factory=hotel_mix,
        fig11_loads=(1000, 1300, 1600, 1900, 2200, 2500, 2800, 3100, 3400, 3700),
        collection_load_range=(800, 3900),
    ),
    "media_service": AppSpec(
        name="media_service",
        graph_factory=media_service,
        qos=QoSTarget(MEDIA_QOS_MS),
        mix_factory=media_mix,
        fig11_loads=(100, 200, 300, 400, 500, 600, 700, 800, 900),
        collection_load_range=(80, 950),
    ),
}


def app_spec(app: str | AppGraph) -> AppSpec:
    """Look up an application's evaluation parameters by name or graph."""
    name = app if isinstance(app, str) else app.name
    try:
        return _APP_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {sorted(_APP_SPECS)}"
        ) from None


def make_cluster(
    graph: AppGraph,
    users: float,
    seed: int = 0,
    mix: RequestMix | None = None,
    platform: PlatformSpec = LOCAL_PLATFORM,
    behaviors: tuple[Behavior, ...] = (),
    pattern: LoadPattern | None = None,
    fault_profile: str | FaultProfile | None = None,
    fault_seed: int | None = None,
) -> ClusterSimulator:
    """Build a fresh episode for ``graph`` at a given load.

    ``fault_profile`` (a name from
    :data:`~repro.sim.faults.FAULT_PROFILES` or a profile instance)
    attaches a seeded :class:`~repro.sim.faults.FaultInjector`;
    ``fault_seed`` defaults to the episode seed, keeping fault runs
    bit-identical for a fixed seed under any ``--jobs`` fan-out.
    """
    spec = app_spec(graph)
    workload = Workload(
        graph,
        pattern or ConstantLoad(users),
        mix or spec.mix_factory(),
    )
    faults = None
    if fault_profile is not None:
        faults = FaultInjector(
            resolve_profile(fault_profile),
            graph.n_tiers,
            seed=seed if fault_seed is None else fault_seed,
        )
    return ClusterSimulator(
        graph, workload, platform=platform, seed=seed, behaviors=behaviors,
        faults=faults,
    )


def make_manager(name: str, graph: AppGraph, qos: QoSTarget, predictor=None):
    """Build a manager by CLI name (shared by ``run``/``sweep``/``resilience``).

    ``static`` holds the deploy-time allocation (60% of each ceiling,
    matching :class:`~repro.sim.cluster.ClusterSimulator`'s default) —
    the no-reaction baseline fault scenarios are compared against.
    """
    from repro.baselines import AutoScale, PowerChief
    from repro.core.manager import StaticManager

    if name == "sinan":
        if predictor is None:
            raise ValueError("the sinan manager needs a trained predictor")
        return SinanManager(predictor, qos, graph)
    if name == "autoscale-opt":
        return AutoScale.opt(graph.min_alloc(), graph.max_alloc())
    if name == "autoscale-cons":
        return AutoScale.conservative(graph.min_alloc(), graph.max_alloc())
    if name == "powerchief":
        return PowerChief(graph.min_alloc(), graph.max_alloc())
    if name == "static":
        return StaticManager(graph.max_alloc() * 0.6)
    raise ValueError(
        f"unknown manager {name!r}; choose from sinan, autoscale-opt, "
        "autoscale-cons, powerchief, static"
    )


def collection_loads(spec: AppSpec, budget: Budget) -> list[float]:
    """Evenly spaced collection load levels across the app's range."""
    low, high = spec.collection_load_range
    return list(np.linspace(low, high, budget.collection_loads))


@dataclass(frozen=True)
class _EpisodeClusterFactory:
    """Picklable ``(users, seed) -> ClusterSimulator`` for worker processes."""

    graph: AppGraph
    platform: PlatformSpec
    mix: RequestMix | None = None

    def __call__(self, users: float, seed: int) -> ClusterSimulator:
        return make_cluster(
            self.graph, users, seed, mix=self.mix, platform=self.platform
        )


def collect_training_data(
    graph: AppGraph,
    budget: str | Budget | None = None,
    seed: int = 0,
    platform: PlatformSpec = LOCAL_PLATFORM,
    mix: RequestMix | None = None,
    policy=None,
    jobs: int | None = None,
    progress=None,
) -> SinanDataset:
    """Collect a bandit-explored training dataset for ``graph``.

    Each load level is an independent episode seeded ``seed + i``; with
    ``jobs`` set, episodes fan out over worker processes (``0`` = all
    cores) and the concatenated dataset is bit-identical to the serial
    run.  Passing an explicit ``policy`` instance keeps the legacy
    shared-state serial protocol (used by the Figure 10 studies) and is
    incompatible with ``jobs > 1``.
    """
    spec = app_spec(graph)
    budget = resolve_budget(budget)
    config = CollectionConfig(qos=spec.qos)
    if not isinstance(graph, AppGraph):
        graph = spec.graph_factory()
    collector = DataCollector(
        _EpisodeClusterFactory(graph, platform, mix),
        config,
    )
    loads = collection_loads(spec, budget)
    if policy is not None:
        result = collector.collect(
            policy, loads, seconds_per_load=budget.seconds_per_load,
            seed=seed, jobs=jobs, progress=progress,
        )
    else:
        result = collector.collect(
            loads=loads,
            seconds_per_load=budget.seconds_per_load,
            seed=seed,
            policy_factory=BanditPolicyFactory(config),
            jobs=jobs,
            progress=progress,
        )
    return result.dataset


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", Path(__file__).resolve().parents[3] / ".cache")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


_memory_cache: dict[tuple, HybridPredictor] = {}


def _load_cache_entry(cache_file: Path) -> HybridPredictor | None:
    """Load a cached predictor; any unreadable entry is a cache miss.

    A crash or power loss mid-write (pre-atomic-write caches), a partial
    copy, or a version skew must never wedge the pipeline: the corrupt
    entry is logged, removed, and the caller retrains.
    """
    try:
        with open(cache_file, "rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception as exc:  # truncated pickle, version skew, EIO, ...
        logger.warning(
            "corrupt predictor cache %s (%s: %s); retraining",
            cache_file, type(exc).__name__, exc,
        )
        with contextlib.suppress(OSError):
            cache_file.unlink()
        return None


def _store_cache_entry(cache_file: Path, predictor: HybridPredictor) -> None:
    """Atomically publish a cache entry (temp file + ``os.replace``).

    Readers either see the complete old entry or the complete new one —
    never a truncated pickle — even across a crash or a concurrent
    writer.
    """
    tmp = cache_file.with_name(f"{cache_file.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(predictor, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, cache_file)
    finally:
        with contextlib.suppress(OSError):
            tmp.unlink()


@contextlib.contextmanager
def _cache_lock(cache_file: Path):
    """Exclusive cross-process lock for one cache entry.

    Serializes train-and-write on a cold cache: the losing process
    blocks until the winner publishes its entry, then loads it instead
    of training the same model twice.  No-op where ``fcntl`` is missing.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    lock_file = cache_file.with_name(cache_file.name + ".lock")
    with open(lock_file, "a+") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def _train_predictor(
    spec: AppSpec,
    budget: Budget,
    seed: int,
    jobs: int | None = None,
    progress=None,
) -> HybridPredictor:
    """The uncached train path: collect, fit, on-policy refine."""
    graph = spec.graph_factory()
    dataset = collect_training_data(
        graph, budget, seed=seed, jobs=jobs, progress=progress
    )
    predictor = HybridPredictor(
        graph,
        spec.qos,
        PredictorConfig(epochs=budget.epochs, batch_size=budget.batch_size),
        seed=seed,
    )
    predictor.train(dataset)

    # On-policy refinement: collect under the trained manager, retrain
    # on the union (the paper's periodic background retraining).
    for round_idx in range(budget.refine_rounds):
        on_policy = _collect_on_policy(
            predictor, spec, graph, budget, seed=seed + 101 + round_idx,
            jobs=jobs, progress=progress,
        )
        dataset = SinanDataset.concatenate([dataset, on_policy])
        predictor.train(dataset, seed=seed + 7 + round_idx)
    return predictor


def get_trained_predictor(
    app: str | AppGraph,
    budget: str | Budget | None = None,
    seed: int = 0,
    use_cache: bool = True,
    *,
    read_cache: bool | None = None,
    write_cache: bool | None = None,
    jobs: int | None = None,
    progress=None,
) -> HybridPredictor:
    """Train (or load from cache) the hybrid predictor for an app.

    Caching is keyed on (app, budget, seed, cache version); delete the
    ``.cache`` directory (or set ``REPRO_CACHE_DIR``) to force
    retraining.  ``read_cache`` / ``write_cache`` refine ``use_cache``:
    ``read_cache=False`` alone retrains and then *refreshes* the cache
    (the CLI's ``--no-cache``), while ``use_cache=False`` skips the
    cache entirely.  Disk entries are written atomically and guarded by
    a per-entry lock, so concurrent callers racing on a cold cache train
    once and share the result; a corrupt entry is treated as a miss.

    ``jobs`` fans the underlying collection episodes out over worker
    processes (``0`` = all cores) without changing the trained model.
    """
    read = use_cache if read_cache is None else read_cache
    write = use_cache if write_cache is None else write_cache
    spec = app_spec(app)
    budget = resolve_budget(budget)
    key = (spec.name, budget.name, seed, _CACHE_VERSION)
    if read and key in _memory_cache:
        return _memory_cache[key]

    if not (read or write):
        return _train_predictor(spec, budget, seed, jobs=jobs, progress=progress)

    cache_file = _cache_dir() / f"predictor-{spec.name}-{budget.name}-s{seed}-v{_CACHE_VERSION}.pkl"
    with _cache_lock(cache_file):
        if read:
            predictor = _load_cache_entry(cache_file)
            if predictor is not None:
                _memory_cache[key] = predictor
                return predictor
        predictor = _train_predictor(spec, budget, seed, jobs=jobs, progress=progress)
        if write:
            _store_cache_entry(cache_file, predictor)
        _memory_cache[key] = predictor
    return predictor


def _on_policy_episode(
    predictor: HybridPredictor,
    graph: AppGraph,
    qos: QoSTarget,
    users: float,
    seconds: int,
    seed: int,
) -> SinanDataset:
    """One episode managed by the trained Sinan (picklable worker)."""
    from repro.core.features import build_dataset

    manager = SinanManager(predictor, qos, graph)
    cluster = make_cluster(graph, users, seed=seed)
    for _ in range(seconds):
        cluster.step(manager.decide(cluster.telemetry))
    return build_dataset(
        cluster.telemetry,
        graph,
        qos,
        n_timesteps=predictor.config.n_timesteps,
        horizon=predictor.config.horizon,
        meta={"policy": "sinan-on-policy", "users": users},
    )


def _collect_on_policy(
    predictor: HybridPredictor,
    spec: AppSpec,
    graph: AppGraph,
    budget: Budget,
    seed: int,
    jobs: int | None = None,
    progress=None,
) -> SinanDataset:
    """Record episodes managed by the trained Sinan across load levels."""
    seconds = max(budget.seconds_per_load // 2, 30)
    tasks = [
        EpisodeTask(
            index=i,
            label=f"on-policy[users={users:g}]",
            fn=_on_policy_episode,
            kwargs=dict(
                predictor=predictor,
                graph=graph,
                qos=spec.qos,
                users=users,
                seconds=seconds,
                seed=seed + i,
            ),
        )
        for i, users in enumerate(collection_loads(spec, budget))
    ]
    summary = run_episodes(tasks, jobs=jobs, progress=progress)
    summary.raise_if_no_results()
    return SinanDataset.concatenate(summary.results)


def build_sinan_pipeline(
    graph: AppGraph,
    users: float = 100,
    seed: int = 0,
    budget: str | Budget | None = None,
) -> tuple[SinanManager, ClusterSimulator]:
    """Data collection -> training -> manager + a fresh cluster to run."""
    spec = app_spec(graph)
    predictor = get_trained_predictor(graph, budget, seed=seed)
    manager = SinanManager(predictor, spec.qos, graph)
    cluster = make_cluster(graph, users, seed=seed + 1000)
    return manager, cluster


__all__ = [
    "Budget",
    "BUDGETS",
    "resolve_budget",
    "AppSpec",
    "app_spec",
    "make_cluster",
    "make_manager",
    "collection_loads",
    "collect_training_data",
    "get_trained_predictor",
    "build_sinan_pipeline",
]
