"""End-to-end pipeline: application registry, data collection, model
training, and caching.

The paper's workflow (Appendix A.5) is: generate training data with the
bandit explorer, train the hybrid model, then deploy the inference
engine against the cluster.  ``build_sinan_pipeline`` performs all three
steps; ``get_trained_predictor`` memoizes the expensive middle step both
in-process and on disk (``.cache/``), so the benchmark suite trains each
application's model once and reuses it across figures.

Budgets scale the pipeline: ``small`` for unit tests, ``medium`` for the
benchmark suite, ``large`` for higher-fidelity runs approaching the
paper's collection scale.  The ``REPRO_BUDGET`` environment variable
overrides the default budget used by the benchmarks.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.apps import (
    HOTEL_QOS_MS,
    SOCIAL_QOS_MS,
    hotel_reservation,
    social_network,
)
from repro.core.data_collection import (
    BanditExplorer,
    CollectionConfig,
    DataCollector,
)
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.core.qos import QoSTarget
from repro.core.sinan import SinanManager
from repro.ml.dataset import SinanDataset
from repro.sim.behaviors import Behavior
from repro.sim.cluster import (
    LOCAL_PLATFORM,
    ClusterSimulator,
    PlatformSpec,
)
from repro.sim.graph import AppGraph
from repro.workload.generator import RequestMix, Workload
from repro.workload.mixes import hotel_mix, social_mix
from repro.workload.patterns import ConstantLoad, LoadPattern

_CACHE_VERSION = 5


@dataclass(frozen=True)
class Budget:
    """How much data/compute the pipeline spends."""

    name: str
    collection_loads: int
    """Number of constant-load levels sampled during collection."""

    seconds_per_load: int
    """Collection intervals per load level."""

    epochs: int
    batch_size: int

    refine_rounds: int = 1
    """On-policy refinement passes: after the initial (bandit-collected)
    training, data is also collected while the trained Sinan manages the
    cluster, and the models are retrained on the union.  This is the
    paper's periodic background retraining (Section 4.2, "retraining can
    be triggered periodically..."), closing the gap between the
    exploration distribution and the deployment distribution."""

    @property
    def total_samples(self) -> int:
        return self.collection_loads * self.seconds_per_load


BUDGETS: dict[str, Budget] = {
    "small": Budget("small", collection_loads=2, seconds_per_load=60, epochs=8,
                    batch_size=128, refine_rounds=0),
    "medium": Budget("medium", collection_loads=6, seconds_per_load=400, epochs=30,
                     batch_size=256, refine_rounds=1),
    "large": Budget("large", collection_loads=8, seconds_per_load=700, epochs=40,
                    batch_size=512, refine_rounds=1),
}


def resolve_budget(budget: str | Budget | None = None) -> Budget:
    """Resolve a budget name, honoring the REPRO_BUDGET env override."""
    if isinstance(budget, Budget):
        return budget
    name = budget or os.environ.get("REPRO_BUDGET", "medium")
    try:
        return BUDGETS[name]
    except KeyError:
        raise KeyError(f"unknown budget {name!r}; choose from {sorted(BUDGETS)}") from None


@dataclass(frozen=True)
class AppSpec:
    """Per-application evaluation parameters from the paper."""

    name: str
    graph_factory: Callable[[], AppGraph]
    qos: QoSTarget
    mix_factory: Callable[[], RequestMix]
    fig11_loads: tuple[float, ...]
    """The user counts swept in Figure 11."""

    collection_load_range: tuple[float, float]
    """(low, high) user range the collector samples."""


_APP_SPECS: dict[str, AppSpec] = {
    "social_network": AppSpec(
        name="social_network",
        graph_factory=social_network,
        qos=QoSTarget(SOCIAL_QOS_MS),
        mix_factory=social_mix,
        fig11_loads=(50, 100, 150, 200, 250, 300, 350, 400, 450),
        collection_load_range=(50, 480),
    ),
    "hotel_reservation": AppSpec(
        name="hotel_reservation",
        graph_factory=hotel_reservation,
        qos=QoSTarget(HOTEL_QOS_MS),
        mix_factory=hotel_mix,
        fig11_loads=(1000, 1300, 1600, 1900, 2200, 2500, 2800, 3100, 3400, 3700),
        collection_load_range=(800, 3900),
    ),
}


def app_spec(app: str | AppGraph) -> AppSpec:
    """Look up an application's evaluation parameters by name or graph."""
    name = app if isinstance(app, str) else app.name
    try:
        return _APP_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {sorted(_APP_SPECS)}"
        ) from None


def make_cluster(
    graph: AppGraph,
    users: float,
    seed: int = 0,
    mix: RequestMix | None = None,
    platform: PlatformSpec = LOCAL_PLATFORM,
    behaviors: tuple[Behavior, ...] = (),
    pattern: LoadPattern | None = None,
) -> ClusterSimulator:
    """Build a fresh episode for ``graph`` at a given load."""
    spec = app_spec(graph)
    workload = Workload(
        graph,
        pattern or ConstantLoad(users),
        mix or spec.mix_factory(),
    )
    return ClusterSimulator(graph, workload, platform=platform, seed=seed, behaviors=behaviors)


def collection_loads(spec: AppSpec, budget: Budget) -> list[float]:
    """Evenly spaced collection load levels across the app's range."""
    low, high = spec.collection_load_range
    return list(np.linspace(low, high, budget.collection_loads))


def collect_training_data(
    graph: AppGraph,
    budget: str | Budget | None = None,
    seed: int = 0,
    platform: PlatformSpec = LOCAL_PLATFORM,
    mix: RequestMix | None = None,
    policy=None,
) -> SinanDataset:
    """Collect a bandit-explored training dataset for ``graph``."""
    spec = app_spec(graph)
    budget = resolve_budget(budget)
    config = CollectionConfig(qos=spec.qos)
    policy = policy or BanditExplorer(config, seed=seed)
    collector = DataCollector(
        lambda users, s: make_cluster(graph, users, s, mix=mix, platform=platform),
        config,
    )
    result = collector.collect(
        policy,
        collection_loads(spec, budget),
        seconds_per_load=budget.seconds_per_load,
        seed=seed,
    )
    return result.dataset


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", Path(__file__).resolve().parents[3] / ".cache")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


_memory_cache: dict[tuple, HybridPredictor] = {}


def get_trained_predictor(
    app: str | AppGraph,
    budget: str | Budget | None = None,
    seed: int = 0,
    use_cache: bool = True,
) -> HybridPredictor:
    """Train (or load from cache) the hybrid predictor for an app.

    Caching is keyed on (app, budget, seed, cache version); delete the
    ``.cache`` directory to force retraining.
    """
    spec = app_spec(app)
    budget = resolve_budget(budget)
    key = (spec.name, budget.name, seed, _CACHE_VERSION)
    if use_cache and key in _memory_cache:
        return _memory_cache[key]

    cache_file = _cache_dir() / f"predictor-{spec.name}-{budget.name}-s{seed}-v{_CACHE_VERSION}.pkl"
    if use_cache and cache_file.exists():
        with open(cache_file, "rb") as fh:
            predictor = pickle.load(fh)
        _memory_cache[key] = predictor
        return predictor

    graph = spec.graph_factory()
    dataset = collect_training_data(graph, budget, seed=seed)
    predictor = HybridPredictor(
        graph,
        spec.qos,
        PredictorConfig(epochs=budget.epochs, batch_size=budget.batch_size),
        seed=seed,
    )
    predictor.train(dataset)

    # On-policy refinement: collect under the trained manager, retrain
    # on the union (the paper's periodic background retraining).
    for round_idx in range(budget.refine_rounds):
        on_policy = _collect_on_policy(
            predictor, spec, graph, budget, seed=seed + 101 + round_idx
        )
        dataset = SinanDataset.concatenate([dataset, on_policy])
        predictor.train(dataset, seed=seed + 7 + round_idx)

    if use_cache:
        with open(cache_file, "wb") as fh:
            pickle.dump(predictor, fh)
        _memory_cache[key] = predictor
    return predictor


def _collect_on_policy(
    predictor: HybridPredictor,
    spec: AppSpec,
    graph: AppGraph,
    budget: Budget,
    seed: int,
) -> SinanDataset:
    """Record episodes managed by the trained Sinan across load levels."""
    from repro.core.features import build_dataset
    from repro.core.sinan import SinanManager

    datasets = []
    seconds = max(budget.seconds_per_load // 2, 30)
    for i, users in enumerate(collection_loads(spec, budget)):
        manager = SinanManager(predictor, spec.qos, graph)
        cluster = make_cluster(graph, users, seed=seed + i)
        for _ in range(seconds):
            cluster.step(manager.decide(cluster.telemetry))
        datasets.append(
            build_dataset(
                cluster.telemetry,
                graph,
                spec.qos,
                n_timesteps=predictor.config.n_timesteps,
                horizon=predictor.config.horizon,
                meta={"policy": "sinan-on-policy", "users": users},
            )
        )
    return SinanDataset.concatenate(datasets)


def build_sinan_pipeline(
    graph: AppGraph,
    users: float = 100,
    seed: int = 0,
    budget: str | Budget | None = None,
) -> tuple[SinanManager, ClusterSimulator]:
    """Data collection -> training -> manager + a fresh cluster to run."""
    spec = app_spec(graph)
    predictor = get_trained_predictor(graph, budget, seed=seed)
    manager = SinanManager(predictor, spec.qos, graph)
    cluster = make_cluster(graph, users, seed=seed + 1000)
    return manager, cluster


__all__ = [
    "Budget",
    "BUDGETS",
    "resolve_budget",
    "AppSpec",
    "app_spec",
    "make_cluster",
    "collection_loads",
    "collect_training_data",
    "get_trained_predictor",
    "build_sinan_pipeline",
]
