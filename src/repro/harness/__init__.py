"""Experiment harness: episodes, the end-to-end training pipeline, and
report formatting used by the benchmark suite."""

from repro.harness.experiment import EpisodeResult, run_episode, sweep_loads
from repro.harness.parallel import (
    EpisodeOutcome,
    EpisodeTask,
    RunSummary,
    resolve_jobs,
    run_episodes,
)
from repro.harness.pool import (
    ModelRef,
    WorkerPool,
    close_shared_pool,
    shared_pool,
)
from repro.harness.pipeline import (
    AppSpec,
    Budget,
    BUDGETS,
    app_spec,
    make_cluster,
    make_manager,
    collect_training_data,
    get_trained_predictor,
    build_sinan_pipeline,
    resolve_budget,
)
from repro.harness.multitenant import (
    MultiTenantResult,
    TenantResult,
    default_tenant_specs,
    format_multitenant_report,
    run_multitenant_episode,
    sweep_multitenant,
)
from repro.harness.reporting import format_table, format_series
from repro.harness.resilience import (
    ResilienceResult,
    format_resilience_report,
    run_resilience_episode,
    sweep_resilience,
)

__all__ = [
    "EpisodeResult",
    "run_episode",
    "sweep_loads",
    "EpisodeOutcome",
    "EpisodeTask",
    "RunSummary",
    "resolve_jobs",
    "run_episodes",
    "ModelRef",
    "WorkerPool",
    "close_shared_pool",
    "shared_pool",
    "AppSpec",
    "Budget",
    "BUDGETS",
    "app_spec",
    "make_cluster",
    "make_manager",
    "collect_training_data",
    "get_trained_predictor",
    "build_sinan_pipeline",
    "resolve_budget",
    "format_table",
    "format_series",
    "MultiTenantResult",
    "TenantResult",
    "default_tenant_specs",
    "format_multitenant_report",
    "run_multitenant_episode",
    "sweep_multitenant",
    "ResilienceResult",
    "format_resilience_report",
    "run_resilience_episode",
    "sweep_resilience",
]
