"""Persistent warm worker pool with one-time model broadcast.

Fan-out used to be the last cold path of the harness: every
:func:`~repro.harness.parallel.run_episodes` call built a fresh
``ProcessPoolExecutor`` and pickled the full hybrid predictor (hundreds
of boosted trees plus the CNN — several MB) into *every* task payload,
so a 64-episode sweep paid 64 model serializations plus a pool spin-up
per call site.  This module gives all five call sites
(``pipeline.sweep_loads``-style sweeps, collection, on-policy
refinement, resilience grids, and the CLI sweep) one shared
serialize-once/execute-many substrate — the same shape parameter-server
and inference-serving stacks use for weight broadcast:

* :class:`WorkerPool` — a lazily created pool of worker processes that
  survives across calls.  :func:`shared_pool` keeps one process-wide
  instance warm; ``run_episodes`` reuses it by default, so successive
  sweeps skip the spin-up and the workers keep their deserialized
  models.
* **One-time model broadcast** — a predictor appearing in task kwargs
  is pickled once, published to ``multiprocessing.shared_memory`` keyed
  by a content fingerprint (sha256 of the pickle), and replaced in the
  submitted payload by a slim :class:`ModelRef`.  Each worker keeps a
  small fingerprint-keyed cache of deserialized predictors, so N tasks
  x heavy pickle becomes 1 publish + at most 1 deserialize per worker.
  A promoted challenger (``adopt_predictor``) pickles to different
  bytes, so its fingerprint changes and caches invalidate naturally.
* **Longest-expected-first scheduling** — tasks are submitted in
  descending expected-cost order (decision intervals x load when the
  kwargs carry them, submission order otherwise) to cut tail idle on
  skewed sweeps; submission is chunked so at most a couple of payloads
  per worker are in flight.  Outcomes still come back in task order,
  and ordering never changes results — episodes are independent and
  individually seeded.
* **Guaranteed cleanup** — the parent owns every shared-memory segment
  and unlinks them on :meth:`WorkerPool.close`, via a ``weakref``
  finalizer (which also runs at interpreter exit), and when a broken
  pool is replaced.  Workers only ever attach and read, so a worker
  crash cannot leak ``/dev/shm`` segments; a task lost to a crash (or
  an unpicklable payload/result) is recovered by re-running it inline
  in the parent with measured timing and a consistent attempt count.

Results are bit-identical to ``jobs=1`` and to the legacy per-task
payload path: broadcast only moves the *same* pickle bytes through
shared memory instead of the task queue, and the worker deserializes
them exactly as it would a per-task payload.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import pickle
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import shared_memory

from repro.harness.parallel import (
    EpisodeOutcome,
    EpisodeTask,
    _emit_warnings,
    _mp_context,
    _record_outcome,
    _run_task,
    resolve_jobs,
)

logger = logging.getLogger(__name__)

#: Deserialized models kept per worker process, keyed by fingerprint.
#: Small on purpose: a run touches one or two predictors (incumbent and
#: a promoted challenger), and each can be several hundred MB-seconds
#: of deserialization work worth keeping.
MODEL_CACHE_LIMIT = 4


@dataclass(frozen=True)
class ModelRef:
    """Slim stand-in for a broadcast model in a task payload.

    Carries everything a worker needs to resolve the real object: the
    content fingerprint (cache key), the shared-memory segment name,
    and the payload length (segments may be page-rounded).
    """

    fingerprint: str
    shm_name: str
    n_bytes: int


# -- worker side -------------------------------------------------------

_model_cache: OrderedDict[str, object] = OrderedDict()


def _resolve_ref(ref: ModelRef) -> tuple[object, bool]:
    """Fetch a broadcast model in a worker: cache hit or attach+load.

    Attach-and-load happens at most once per (worker, fingerprint); the
    segment is closed immediately after the bytes are copied out, and
    never unlinked — the parent owns the segment's lifetime.
    """
    cached = _model_cache.get(ref.fingerprint)
    if cached is not None:
        _model_cache.move_to_end(ref.fingerprint)
        return cached, True
    shm = shared_memory.SharedMemory(name=ref.shm_name)
    try:
        obj = pickle.loads(bytes(shm.buf[: ref.n_bytes]))
    finally:
        shm.close()
    _model_cache[ref.fingerprint] = obj
    while len(_model_cache) > MODEL_CACHE_LIMIT:
        _model_cache.popitem(last=False)
    return obj, False


def _run_pool_task(task: EpisodeTask, retries: int) -> EpisodeOutcome:
    """Worker entry point: resolve :class:`ModelRef` kwargs, then run.

    Module-level so the pool can pickle it by reference; wraps the same
    ``_run_task`` the serial path uses, so results are bit-identical.
    """
    resolved: dict[str, object] = {}
    hits = misses = 0
    for key, value in task.kwargs.items():
        if isinstance(value, ModelRef):
            obj, hit = _resolve_ref(value)
            resolved[key] = obj
            hits += int(hit)
            misses += int(not hit)
    if resolved:
        task = replace(task, kwargs={**task.kwargs, **resolved})
    outcome = _run_task(task, retries=retries)
    outcome.model_cache_hits = hits
    outcome.model_cache_misses = misses
    return outcome


# -- scheduling --------------------------------------------------------

_COST_INTERVAL_KEYS = ("duration", "seconds", "seconds_per_load", "intervals")
_COST_LOAD_KEYS = ("users", "load")


def _expected_cost(task: EpisodeTask) -> float | None:
    """Heuristic episode cost: decision intervals x load, when known."""
    def first_number(keys):
        for key in keys:
            value = task.kwargs.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        return None

    intervals = first_number(_COST_INTERVAL_KEYS)
    if intervals is None:
        return None
    load = first_number(_COST_LOAD_KEYS)
    return intervals * (load if load and load > 0 else 1.0)


def _schedule(tasks: list[EpisodeTask]) -> list[int]:
    """Submission order: longest expected episode first.

    Starting the heaviest episodes first minimizes the tail where the
    last worker grinds through a long episode alone.  Falls back to
    submission order (stable sort; unknown costs keep their relative
    order after the known ones).  Safe to reorder freely: episodes are
    independent and individually seeded, and outcomes are re-sorted
    into task order.
    """
    costs = [_expected_cost(task) for task in tasks]
    if all(cost is None for cost in costs):
        return list(range(len(tasks)))
    return sorted(
        range(len(tasks)), key=lambda i: (-(costs[i] or 0.0), i)
    )


# -- parent side -------------------------------------------------------


@dataclass
class PoolRunStats:
    """Per-run pool accounting, surfaced on the ``RunSummary``."""

    reused: bool = False
    broadcast_bytes: int = 0
    broadcast_publishes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    recovered_inline: int = 0


def _cleanup_store(store: dict) -> None:
    """Unlink every owned shared-memory segment (idempotent).

    Used by :meth:`WorkerPool.close`, by the pool's ``weakref``
    finalizer (GC'd pools), and — because finalizers run at interpreter
    shutdown — as the atexit guarantee that no ``/dev/shm`` segment
    outlives the process on a normal exit.
    """
    while store:
        _, (shm, _) = store.popitem()
        with contextlib.suppress(Exception):
            shm.close()
        with contextlib.suppress(Exception):
            shm.unlink()


class WorkerPool:
    """A reusable process pool with shared-memory model broadcast.

    Context-managed (``with WorkerPool(...) as pool``) or long-lived
    via :func:`shared_pool`.  Thread-safe for concurrent ``run`` calls
    (the continuous-learning retrain worker may fan out from a thread
    while the main thread sweeps).

    Parameters
    ----------
    jobs:
        Worker count (``resolve_jobs`` semantics: ``0`` = one per CPU,
        ``None`` = ``REPRO_JOBS`` else 1).
    broadcast:
        When ``False``, payload slimming is disabled and every task
        carries its full kwargs — the legacy per-task-pickle behavior,
        kept for the sweep benchmark's baseline.
    """

    def __init__(self, jobs: int | None = None, mp_context=None,
                 broadcast: bool = True) -> None:
        self.n_jobs = max(1, resolve_jobs(jobs))
        self.broadcast_enabled = broadcast
        self._mp_context = mp_context or _mp_context()
        self._executor: ProcessPoolExecutor | None = None
        self._store: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        self._fingerprints: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._lock = threading.Lock()
        self._broken = False
        self._closed = False
        self.runs = 0
        """Completed :meth:`run` calls (the pool-reuse counter)."""
        self.worker_spinups = 0
        """Times a fresh executor was created (1 = never recycled)."""
        self._finalizer = weakref.finalize(self, _cleanup_store, self._store)

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._broken and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._broken = False
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_jobs, mp_context=self._mp_context
            )
            self.worker_spinups += 1
        return self._executor

    def close(self) -> None:
        """Shut workers down and unlink every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        _cleanup_store(self._store)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- broadcast -----------------------------------------------------

    def broadcast(self, obj) -> tuple[ModelRef, int]:
        """Publish ``obj`` to shared memory (once per content).

        Returns the :class:`ModelRef` and the number of *newly*
        published bytes (0 when the fingerprint was already live).  The
        fingerprint is the sha256 of the pickle, so a model mutated or
        replaced between calls republishes under a new key and worker
        caches miss exactly when they must.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            payload: bytes | None = None
            try:
                fingerprint = self._fingerprints.get(obj)
            except TypeError:  # unhashable / non-weakrefable object
                fingerprint = None
            if fingerprint is None or fingerprint not in self._store:
                payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
                fingerprint = hashlib.sha256(payload).hexdigest()
                with contextlib.suppress(TypeError):
                    self._fingerprints[obj] = fingerprint
            entry = self._store.get(fingerprint)
            if entry is not None:
                shm, n_bytes = entry
                return ModelRef(fingerprint, shm.name, n_bytes), 0
            shm = shared_memory.SharedMemory(
                create=True, size=max(len(payload), 1)
            )
            shm.buf[: len(payload)] = payload
            self._store[fingerprint] = (shm, len(payload))
            logger.info(
                "broadcast %s: %.1f MB -> %s",
                type(obj).__name__, len(payload) / 1e6, shm.name,
            )
            return ModelRef(fingerprint, shm.name, len(payload)), len(payload)

    def _slim_task(
        self, task: EpisodeTask, stats: PoolRunStats
    ) -> EpisodeTask:
        """Replace broadcastable kwargs with :class:`ModelRef` stubs."""
        if not self.broadcast_enabled:
            return task
        slim: dict[str, object] = {}
        for key, value in task.kwargs.items():
            if _broadcastable(key, value):
                ref, new_bytes = self.broadcast(value)
                slim[key] = ref
                stats.broadcast_bytes += new_bytes
                stats.broadcast_publishes += int(new_bytes > 0)
        if not slim:
            return task
        return replace(task, kwargs={**task.kwargs, **slim})

    # -- execution -----------------------------------------------------

    def run(
        self,
        tasks: list[EpisodeTask],
        n_jobs: int | None = None,
        retries: int = 1,
        progress=None,
        recorder=None,
    ) -> tuple[list[EpisodeOutcome], PoolRunStats]:
        """Run tasks on the pool; outcomes return in task-index order.

        ``n_jobs`` caps this run's concurrency below the pool size
        (a warm pool sized for a big sweep can serve a small one
        without recreating workers).  A pool-level dispatch failure —
        worker crash, unpicklable payload or result — is retried inline
        in the parent with the original (un-slimmed) kwargs: infra
        failures are not simulation crashes, so the seed is *not*
        bumped and a recovered result is the canonical one.
        """
        stats = PoolRunStats(reused=self.runs > 0 and self._executor is not None)
        if not tasks:
            return [], stats
        limit = max(1, min(n_jobs or self.n_jobs, self.n_jobs))
        record = recorder is not None and recorder.enabled
        executor = self._ensure_executor()
        prepared = [self._slim_task(task, stats) for task in tasks]
        order = _schedule(tasks)
        # Chunked submission: a small buffer of queued futures keeps the
        # feeder busy without flooding the call queue with payloads; when
        # the pool is larger than this run's concurrency cap, in-flight
        # futures are clamped to the cap so extra workers stay idle.
        inflight_limit = (
            limit + min(limit, 2) if self.n_jobs <= limit else limit
        )
        pending: dict = {}
        outcomes: list[EpisodeOutcome] = []
        next_pos = 0
        done_count = 0
        total = len(tasks)

        def submit_ready() -> None:
            nonlocal next_pos
            while next_pos < total and len(pending) < inflight_limit:
                idx = order[next_pos]
                next_pos += 1
                if self._broken:
                    outcomes.append(self._recover_inline(
                        tasks[idx], "pool broken", 0.0, retries, stats
                    ))
                    finish(outcomes[-1])
                    continue
                future = executor.submit(_run_pool_task, prepared[idx], retries)
                pending[future] = (idx, time.perf_counter())

        def finish(outcome: EpisodeOutcome) -> None:
            nonlocal done_count
            done_count += 1
            _emit_warnings(outcome)
            stats.cache_hits += outcome.model_cache_hits
            stats.cache_misses += outcome.model_cache_misses
            if record:
                _record_outcome(recorder, outcome)
            if progress is not None:
                progress(outcome, done_count, total)

        submit_ready()
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                idx, submitted = pending.pop(future)
                try:
                    outcome = future.result()
                except BrokenProcessPool as exc:
                    self._broken = True
                    outcome = self._recover_inline(
                        tasks[idx], f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - submitted, retries, stats,
                    )
                except Exception as exc:  # unpicklable payload/result, ...
                    outcome = self._recover_inline(
                        tasks[idx], f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - submitted, retries, stats,
                    )
                outcomes.append(outcome)
                finish(outcome)
            submit_ready()

        outcomes.sort(key=lambda o: o.index)
        self.runs += 1
        if record:
            self._record_pool_metrics(recorder, stats)
        return outcomes, stats

    def _recover_inline(
        self,
        task: EpisodeTask,
        error: str,
        pool_seconds: float,
        retries: int,
        stats: PoolRunStats,
    ) -> EpisodeOutcome:
        """Re-run a task whose pool dispatch failed, inline in the parent.

        The failed dispatch counts as one attempt and its measured
        wall-clock is folded into the outcome, so pool-level failures
        land in ``harness_episode_seconds`` with real durations and an
        ``attempts`` count consistent with worker-side failures.
        """
        logger.warning(
            "episode %s lost to a pool-level failure (%s); re-running "
            "inline", task.label, error,
        )
        stats.recovered_inline += 1
        outcome = _run_task(task, retries=retries)
        outcome.attempts += 1
        outcome.seconds += pool_seconds
        outcome.warnings.insert(
            0, f"pool-level failure ({error}); re-ran inline"
        )
        return outcome

    def _record_pool_metrics(self, recorder, stats: PoolRunStats) -> None:
        recorder.gauge("harness_pool_workers", float(self.n_jobs))
        recorder.counter("harness_pool_runs_total")
        if stats.reused:
            recorder.counter("harness_pool_reuse_total")
        if stats.broadcast_publishes:
            recorder.counter(
                "harness_broadcast_publishes_total",
                float(stats.broadcast_publishes),
            )
            recorder.counter(
                "harness_broadcast_bytes_total", float(stats.broadcast_bytes)
            )
        if stats.cache_hits:
            recorder.counter(
                "harness_model_cache_hits_total", float(stats.cache_hits)
            )
        if stats.cache_misses:
            recorder.counter(
                "harness_model_cache_misses_total", float(stats.cache_misses)
            )
        if stats.recovered_inline:
            recorder.counter(
                "harness_pool_recoveries_total", float(stats.recovered_inline)
            )


def _broadcastable(key: str, value) -> bool:
    """Whether a task kwarg should travel via shared-memory broadcast.

    Anything bound to the conventional ``predictor=`` kwarg plus any
    :class:`~repro.core.predictor.HybridPredictor` under another name.
    ``None`` predictors (non-sinan managers) stay inline.
    """
    if value is None or isinstance(value, ModelRef):
        return False
    if key == "predictor":
        return True
    from repro.core.predictor import HybridPredictor

    return isinstance(value, HybridPredictor)


# -- the process-wide shared pool --------------------------------------

_shared: WorkerPool | None = None
_shared_lock = threading.Lock()


def shared_pool(jobs: int | None = None) -> WorkerPool:
    """The process-wide warm pool, (re)created on demand.

    Reused as long as the existing pool is open and at least as large
    as the request (``run`` caps per-call concurrency, so a larger pool
    can serve a smaller request exactly); a bigger request replaces it.
    Closed automatically at interpreter exit via the pool's finalizer.
    """
    global _shared
    n_jobs = max(1, resolve_jobs(jobs if jobs is not None else 0))
    with _shared_lock:
        if (
            _shared is not None
            and not _shared.closed
            and _shared.n_jobs >= n_jobs
        ):
            return _shared
        if _shared is not None:
            _shared.close()
        _shared = WorkerPool(jobs=n_jobs)
        return _shared


def close_shared_pool() -> None:
    """Tear down the shared warm pool (workers + shared memory)."""
    global _shared
    with _shared_lock:
        if _shared is not None:
            _shared.close()
            _shared = None


__all__ = [
    "MODEL_CACHE_LIMIT",
    "ModelRef",
    "PoolRunStats",
    "WorkerPool",
    "shared_pool",
    "close_shared_pool",
]
