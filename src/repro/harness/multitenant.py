"""Multi-tenant episodes: N apps sharing one cluster budget.

:func:`run_multitenant_episode` steps a set of
:class:`~repro.tenancy.tenant.TenantSpec`\\ s in lockstep against one
arbiter and scores each tenant on the usual Figure 11 metrics plus the
cluster-wide aggregate.  Two arms are built from the same specs:

* ``credit`` — every tenant keeps its own adaptive scheduler and the
  :class:`~repro.tenancy.arbiter.CreditArbiter` resolves contention
  against the shared budget;
* ``static`` — the cluster is carved into equal fixed slices
  (``budget / n``), each statically provisioned: the tenant's manager
  is replaced by the deploy-time static allocator and its platform
  ceiling pinned to the slice, which is what a quota-carved cluster
  without elastic reclaim burns.

:func:`sweep_multitenant` fans (arm x seed) episodes over the parallel
harness; every episode is independently seeded, so results are
bit-identical to the serial run for any ``jobs`` fan-out (asserted by
``benchmarks/test_multitenant.py`` and the tenancy test suite).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.harness.parallel import EpisodeTask, run_episodes
from repro.harness.reporting import format_table
from repro.sim.telemetry import TelemetryLog
from repro.tenancy.arbiter import CreditArbiter, StaticPartitionArbiter
from repro.tenancy.credit import CreditConfig
from repro.tenancy.simulator import MultiTenantSimulator
from repro.tenancy.tenant import TenantSpec, build_tenant
from repro.workload.patterns import StepLoad

#: Arms every sweep/benchmark compares.
ARMS = ("credit", "static")

#: Offset between consecutive tenants' base seeds (one multi-tenant
#: episode consumes several independent streams).
_TENANT_SEED_STRIDE = 7919

#: Offset of the arbiter's tie-break stream from the episode seed.
_ARBITER_SEED_OFFSET = 555


@dataclass
class TenantResult:
    """One tenant's score inside a multi-tenant episode."""

    tenant: str
    app: str
    manager_name: str
    qos_ms: float
    qos_fraction: float
    mean_total_cpu: float
    max_total_cpu: float
    telemetry: TelemetryLog

    def row(self, arbiter: str, seed: int) -> list[str]:
        return [
            arbiter,
            str(seed),
            self.tenant,
            self.app,
            f"{self.qos_fraction:.3f}",
            f"{self.mean_total_cpu:.1f}",
            f"{self.max_total_cpu:.1f}",
        ]


@dataclass
class MultiTenantResult:
    """One full multi-tenant episode (all tenants, one arbiter)."""

    arbiter: str
    budget_cpu: float
    duration: int
    warmup: int
    seed: int
    contended_fraction: float
    mode_counts: dict[str, int] = field(default_factory=dict)
    tenants: list[TenantResult] = field(default_factory=list)
    max_cluster_cpu: float = 0.0
    """Peak of the summed per-interval cluster allocation (post-warmup)."""

    @property
    def aggregate_qos_fraction(self) -> float:
        """Mean per-tenant QoS attainment — each tenant counts equally."""
        return float(np.mean([t.qos_fraction for t in self.tenants]))

    @property
    def mean_cluster_cpu(self) -> float:
        """Sum of the tenants' mean allocated CPU (cores)."""
        return float(sum(t.mean_total_cpu for t in self.tenants))

    def row(self) -> list[str]:
        modes = ",".join(
            f"{m}:{n}" for m, n in sorted(self.mode_counts.items())
        )
        return [
            self.arbiter,
            str(self.seed),
            f"{self.aggregate_qos_fraction:.3f}",
            f"{self.mean_cluster_cpu:.1f}",
            f"{self.max_cluster_cpu:.1f}",
            f"{self.budget_cpu:.0f}",
            f"{self.contended_fraction:.2f}",
            modes,
        ]


def default_tenant_specs(manager: str = "sinan") -> list[TenantSpec]:
    """The standard 3-tenant contention scenario.

    Three heterogeneous apps with staggered load peaks, so consecutive
    pairs of tenants peak together and the cluster sees sustained
    contention windows without being permanently overloaded.
    """
    return [
        TenantSpec(
            "social", "social_network",
            StepLoad(((0, 150), (40, 420), (90, 150))),
            manager=manager,
        ),
        TenantSpec(
            "hotel", "hotel_reservation",
            StepLoad(((0, 1200), (60, 3200), (110, 1200))),
            manager=manager,
        ),
        TenantSpec(
            "media", "media_service",
            StepLoad(((0, 250), (80, 650), (130, 250))),
            manager=manager,
        ),
    ]


def run_multitenant_episode(
    specs: list[TenantSpec],
    budget_cpu: float,
    duration: int,
    seed: int = 0,
    arbiter: str = "credit",
    warmup: int = 10,
    predictors: dict | None = None,
    pipeline_budget=None,
    credit_config: CreditConfig | None = None,
    jobs: int | None = None,
    recorder=None,
) -> MultiTenantResult:
    """Run one lockstep multi-tenant episode and score it.

    ``predictors`` maps app name to a trained predictor for ``sinan``
    tenants (missing entries are trained/cached on demand).  The
    ``static`` arm replaces every tenant's manager with the deploy-time
    static allocator and pins each platform to the equal slice — see
    the module docstring for why that is the baseline.
    """
    if duration <= warmup:
        raise ValueError("duration must exceed warmup")
    if arbiter not in ARMS:
        raise ValueError(f"arbiter must be one of {ARMS}, got {arbiter!r}")
    predictors = predictors or {}

    if arbiter == "static":
        slice_cpu = budget_cpu / len(specs)
        specs = [dataclasses.replace(s, manager="static") for s in specs]
        per_tenant_cpu = [slice_cpu] * len(specs)
    else:
        per_tenant_cpu = [budget_cpu] * len(specs)

    tenants = [
        build_tenant(
            spec,
            budget_cpu=per_tenant_cpu[i],
            seed=seed + _TENANT_SEED_STRIDE * (i + 1),
            predictor=predictors.get(spec.app),
            pipeline_budget=pipeline_budget,
            jobs=jobs,
        )
        for i, spec in enumerate(specs)
    ]
    if arbiter == "static":
        arb = StaticPartitionArbiter(budget_cpu, len(tenants))
    else:
        arb = CreditArbiter(
            budget_cpu,
            {t.name: t.qos.latency_ms for t in tenants},
            config=credit_config,
            seed=seed + _ARBITER_SEED_OFFSET,
        )
    sim = MultiTenantSimulator(tenants, arb, recorder=recorder)
    decisions = sim.run(duration)

    scored = decisions[warmup:]
    tenant_results = []
    cluster_cpu = np.zeros(duration - warmup)
    for t in tenants:
        log = t.cluster.telemetry
        p99 = np.array([t.qos.latency_of(s) for s in log])[warmup:]
        total_cpu = log.total_cpu_series()[warmup:]
        cluster_cpu += total_cpu
        tenant_results.append(TenantResult(
            tenant=t.name,
            app=t.spec.app,
            manager_name=t.manager.name,
            qos_ms=t.qos.latency_ms,
            qos_fraction=float(np.mean(p99 <= t.qos.latency_ms)),
            mean_total_cpu=float(total_cpu.mean()),
            max_total_cpu=float(total_cpu.max()),
            telemetry=log,
        ))
    return MultiTenantResult(
        arbiter=arbiter,
        budget_cpu=budget_cpu,
        duration=duration,
        warmup=warmup,
        seed=seed,
        contended_fraction=float(np.mean([d.contended for d in scored])),
        mode_counts=dict(Counter(d.mode for d in scored)),
        tenants=tenant_results,
        max_cluster_cpu=float(cluster_cpu.max()),
    )


def _multitenant_episode(
    specs: list[TenantSpec],
    budget_cpu: float,
    duration: int,
    seed: int,
    arbiter: str,
    warmup: int,
    predictors: dict | None,
    credit_config: CreditConfig | None,
    pipeline_budget=None,
) -> MultiTenantResult:
    """One (arm, seed) episode — picklable worker."""
    return run_multitenant_episode(
        specs, budget_cpu, duration, seed=seed, arbiter=arbiter,
        warmup=warmup, predictors=predictors, credit_config=credit_config,
        pipeline_budget=pipeline_budget,
    )


def sweep_multitenant(
    specs: list[TenantSpec],
    budget_cpu: float,
    duration: int,
    seeds: list[int] | None = None,
    arms: tuple[str, ...] = ARMS,
    warmup: int = 10,
    predictors: dict | None = None,
    credit_config: CreditConfig | None = None,
    pipeline_budget=None,
    jobs: int | None = None,
    progress=None,
    recorder=None,
) -> list[MultiTenantResult]:
    """Run every (arm, seed) episode, serially or over worker processes.

    Both arms share each seed, so every seed is a paired comparison of
    credit arbitration against static partitioning on identical
    workload draws.  Episodes are independently seeded and fan out on
    the process-wide warm pool; results come back in grid order and
    are bit-identical to the serial run.
    """
    seeds = seeds if seeds is not None else [0]
    tasks = []
    for s in seeds:
        for arm in arms:
            tasks.append(EpisodeTask(
                index=len(tasks),
                label=f"multitenant[{arm},seed={s}]",
                fn=_multitenant_episode,
                kwargs=dict(
                    specs=specs,
                    budget_cpu=budget_cpu,
                    duration=duration,
                    seed=s,
                    arbiter=arm,
                    warmup=warmup,
                    predictors=predictors if arm == "credit" else None,
                    credit_config=credit_config,
                    pipeline_budget=pipeline_budget,
                ),
            ))
    summary = run_episodes(tasks, jobs=jobs, progress=progress, recorder=recorder)
    summary.raise_if_no_results()
    return summary.results


def format_multitenant_report(results: list[MultiTenantResult]) -> str:
    """Cluster-level and per-tenant tables for a multi-tenant sweep."""
    cluster = format_table(
        ["Arbiter", "seed", "P(QoS)", "meanCPU", "maxCPU", "budget",
         "contended", "modes"],
        [r.row() for r in results],
        title="Shared cluster: aggregate QoS attainment and CPU "
              "(credit arbitration vs equal static partitions)",
    )
    per_tenant = format_table(
        ["Arbiter", "seed", "Tenant", "App", "P(QoS)", "meanCPU", "maxCPU"],
        [t.row(r.arbiter, r.seed) for r in results for t in r.tenants],
        title="Per-tenant breakdown",
    )
    return f"{cluster}\n\n{per_tenant}"


__all__ = [
    "ARMS",
    "TenantResult",
    "MultiTenantResult",
    "default_tenant_specs",
    "run_multitenant_episode",
    "sweep_multitenant",
    "format_multitenant_report",
]
