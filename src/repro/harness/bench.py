"""Decision-path micro-benchmark: fast path vs reference path.

Times the per-decision scoring pipeline — candidate encoding, CNN
inference, Boosted-Trees inference, and the end-to-end
``predict_candidates`` call — across candidate counts, comparing the
shared-trunk fast path against the pre-optimization reference path and
asserting the two are *bitwise* equivalent.  A final section replays a
short scheduler episode twice (fast path on and off) and checks the
decision traces are identical.

The models are synthetic (random CNN weights, randomly grown trees):
the benchmark measures inference mechanics, which do not depend on the
weights being trained, so it stays fast enough for a CI smoke job while
exercising production-sized models (full ``CNNConfig``, hundreds of
trees).  Run it via ``repro bench``; results land in
``BENCH_decision.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.actions import ActionSpace
from repro.core.predictor import HybridPredictor, PredictorConfig, TrainingReport
from repro.core.scheduler import OnlineScheduler
from repro.harness.pipeline import app_spec, make_cluster
from repro.ml.boosted_trees import BoostedTreesConfig, _compile_trees, _Node
from repro.ml.dataset import SinanDataset
from repro.ml.network import FitResult
from repro.sim.telemetry import LATENCY_PERCENTILES, TelemetryLog

_PERCENTILES = LATENCY_PERCENTILES


def repo_root() -> Path:
    """Repository root, for anchoring relative benchmark outputs.

    Resolved from this file's location (``src/repro/harness`` is three
    levels below the checkout root, marked by ``pyproject.toml``) so
    ``repro bench`` writes ``BENCH_*.json`` to the same place no matter
    the caller's working directory.  Falls back to the CWD for
    installed, non-checkout layouts.
    """
    root = Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root
    return Path.cwd()


def resolve_output(output: str | Path) -> Path:
    """Absolute path for a benchmark result file: absolute paths are
    taken as-is, relative ones anchor to :func:`repo_root`."""
    path = Path(output)
    return path if path.is_absolute() else repo_root() / path


@dataclass(frozen=True)
class BenchConfig:
    """Knobs of one ``repro bench`` invocation."""

    app: str = "social_network"
    candidate_counts: tuple[int, ...] = (16, 64, 128)
    n_timesteps: int = 5
    repeats: int = 30
    seed: int = 0
    n_trees: int = 300
    tree_depth: int = 6
    decision_intervals: int = 25
    output: str = "BENCH_decision.json"
    """Result JSON path; empty skips writing.  Relative paths resolve
    against the repository root (see :func:`resolve_output`), not the
    CWD."""


@dataclass
class _Timed:
    """Min-over-repeats wall time of fast and reference variants."""

    fast_ms: float
    reference_ms: float
    speedup: float = field(init=False)

    def __post_init__(self) -> None:
        self.speedup = self.reference_ms / self.fast_ms if self.fast_ms else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "fast_ms": round(self.fast_ms, 4),
            "reference_ms": round(self.reference_ms, 4),
            "speedup": round(self.speedup, 2),
        }


def _time_ms(fn, repeats: int) -> float:
    fn()  # warm caches (einsum paths, compiled trees) outside the timing
    best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def _grow_tree(rng: np.random.Generator, n_features: int, depth: int) -> _Node:
    """A random decision tree over standard-normal features."""
    if depth == 0:
        return _Node(value=float(rng.normal(0.0, 0.05)))
    return _Node(
        feature=int(rng.integers(n_features)),
        threshold=float(rng.normal(0.0, 0.7)),
        left=_grow_tree(rng, n_features, depth - 1),
        right=_grow_tree(rng, n_features, depth - 1),
    )


def make_synthetic_predictor(config: BenchConfig) -> HybridPredictor:
    """A production-sized predictor with fabricated weights.

    Fitting 300+ trees takes minutes; growing random ones takes
    milliseconds and exercises exactly the same inference code.  The
    normalizer is fitted on a small random dataset and the training
    report is stubbed so the scheduler's ``thresholds``/``rmse_val``
    accessors work.
    """
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    rng = np.random.default_rng(config.seed)
    predictor = HybridPredictor(
        graph,
        spec.qos,
        PredictorConfig(n_timesteps=config.n_timesteps),
        seed=config.seed,
    )

    n, f, t = graph.n_tiers, predictor.encoder.n_channels, config.n_timesteps
    m = predictor.cnn.n_percentiles
    calib = SinanDataset(
        X_RH=np.abs(rng.normal(2.0, 1.0, (64, f, n, t))),
        X_LH=np.abs(rng.normal(spec.qos.latency_ms / 2, 20.0, (64, t, m))),
        X_RC=np.abs(rng.normal(2.0, 0.5, (64, n))),
        y_lat=np.abs(rng.normal(spec.qos.latency_ms / 2, 20.0, (64, m))),
        y_viol=rng.integers(0, 2, 64).astype(float),
        meta={},
    )
    predictor.normalizer.fit(calib)

    n_bt_features = predictor.cnn.config.latent_dim + 3 * n + m
    predictor.trees.trees = [
        _grow_tree(rng, n_bt_features, config.tree_depth)
        for _ in range(config.n_trees)
    ]
    predictor.trees.base_margin = -1.0
    predictor.trees._compiled = _compile_trees(predictor.trees.trees)

    predictor.report = TrainingReport(
        cnn_fit=FitResult(),
        rmse_train=8.0,
        rmse_val=10.0,
        bt_accuracy_train=0.95,
        bt_accuracy_val=0.93,
        bt_trees=config.n_trees,
        bt_false_pos_val=0.05,
        bt_false_neg_val=0.01,
        p_up=0.08,
        p_down=0.02,
        n_train=1000,
        n_val=100,
    )
    return predictor


def make_bench_log(config: BenchConfig, intervals: int | None = None) -> TelemetryLog:
    """A telemetry log recorded from a short managed-by-nobody episode."""
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    lo, hi = spec.collection_load_range
    cluster = make_cluster(graph, users=(lo + hi) / 2, seed=config.seed)
    rng = np.random.default_rng(config.seed + 1)
    for _ in range(intervals or (config.n_timesteps + 20)):
        jitter = rng.uniform(-0.2, 0.2, cluster.n_tiers)
        cluster.step(cluster.clip_alloc(cluster.current_alloc + jitter))
    return cluster.telemetry


def _candidate_batch(
    log: TelemetryLog, n_tiers: int, b: int, rng: np.random.Generator
) -> np.ndarray:
    base = np.asarray(log.latest.cpu_alloc, dtype=float)
    return np.clip(base + rng.uniform(-1.0, 1.0, (b, n_tiers)), 0.2, None)


def bench_components(
    predictor: HybridPredictor, log: TelemetryLog, b: int, config: BenchConfig
) -> dict:
    """Per-stage and end-to-end timings for one candidate count."""
    rng = np.random.default_rng(config.seed + b)
    cands = _candidate_batch(log, predictor.graph.n_tiers, b, rng)
    repeats = config.repeats
    ref_repeats = max(repeats // 4, 3)

    encoder = predictor.encoder
    encode = _Timed(
        _time_ms(lambda: encoder.encode_candidates_shared(log, cands), repeats),
        _time_ms(lambda: encoder.encode_candidates(log, cands), ref_repeats),
    )

    x_rh1, x_lh1, x_rc = encoder.encode_candidates_shared(log, cands)
    in_fast = predictor._model_inputs(x_rh1, x_lh1, x_rc)
    x_rhb, x_lhb, _ = encoder.encode_candidates(log, cands)
    in_ref = predictor._model_inputs(x_rhb, x_lhb, x_rc)
    cnn = _Timed(
        _time_ms(lambda: predictor.cnn.predict_candidates(in_fast), repeats),
        _time_ms(lambda: predictor.cnn.predict_with_latent(in_ref), ref_repeats),
    )

    _, latent = predictor.cnn.predict_candidates(in_fast)
    bt_in = predictor._bt_features(latent, x_rh1, x_lh1, x_rc)
    trees = _Timed(
        _time_ms(lambda: predictor.trees.predict_proba(bt_in), repeats),
        _time_ms(lambda: predictor.trees.predict_proba_reference(bt_in), ref_repeats),
    )

    total = _Timed(
        _time_ms(lambda: predictor.predict_candidates(log, cands), repeats),
        _time_ms(lambda: predictor.predict_candidates_reference(log, cands), ref_repeats),
    )

    lat_fast, prob_fast = predictor.predict_candidates(log, cands)
    lat_ref, prob_ref = predictor.predict_candidates_reference(log, cands)
    equal = bool(
        np.array_equal(lat_fast, lat_ref) and np.array_equal(prob_fast, prob_ref)
    )

    return {
        "candidates": b,
        "encode": encode.as_dict(),
        "cnn": cnn.as_dict(),
        "trees": trees.as_dict(),
        "total": total.as_dict(),
        "bitwise_equal": equal,
    }


def bench_scheduler(predictor: HybridPredictor, config: BenchConfig) -> dict:
    """Replay one managed episode with the fast path on and off.

    Decisions feed back into the simulator, so a single diverging
    decision would diverge every subsequent interval — trace equality is
    a strong end-to-end check.
    """
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    lo, hi = spec.collection_load_range

    def run(fast: bool) -> tuple[list[np.ndarray], float]:
        cluster = make_cluster(graph, users=(lo + hi) / 2, seed=config.seed + 7)
        space = ActionSpace(graph.min_alloc(), graph.max_alloc())
        scheduler = OnlineScheduler(predictor, space, spec.qos)
        predictor.fast_path = fast
        predictor.encoder.invalidate_cache()
        trace: list[np.ndarray] = []
        spent = 0.0
        for _ in range(config.decision_intervals):
            cluster.step(cluster.current_alloc)
            t0 = time.perf_counter()
            alloc = scheduler.decide(cluster.observed)
            spent += time.perf_counter() - t0
            if alloc is not None:
                cluster.step(alloc)
                trace.append(np.asarray(alloc, dtype=float))
        return trace, spent * 1e3 / max(config.decision_intervals, 1)

    try:
        trace_fast, ms_fast = run(fast=True)
        trace_ref, ms_ref = run(fast=False)
    finally:
        predictor.fast_path = True

    identical = len(trace_fast) == len(trace_ref) and all(
        np.array_equal(a, b) for a, b in zip(trace_fast, trace_ref)
    )
    return {
        "decisions": len(trace_fast),
        "identical_traces": bool(identical),
        "fast_ms_per_decision": round(ms_fast, 3),
        "reference_ms_per_decision": round(ms_ref, 3),
        "speedup": round(ms_ref / ms_fast, 2) if ms_fast else 0.0,
    }


# ----------------------------------------------------------------------
# Training-path benchmark
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrainingBenchConfig:
    """Knobs of one ``repro bench --training`` invocation.

    Mirrors :class:`BenchConfig` for the *training* path: the histogram
    tree grower, the im2col CNN backprop, and the fused LSTM are each
    timed against their reference implementations, then the whole
    ``HybridPredictor.train`` runs once per path.  The dataset is
    synthetic but learnable (labels are a noisy function of the
    features), so trees split meaningfully and losses decrease — the
    mechanics under test are identical to training on collected data.
    """

    app: str = "social_network"
    n_samples: int = 1536
    n_timesteps: int = 5
    n_trees: int = 400
    cnn_epochs: int = 5
    batch_size: int = 256
    seed: int = 0
    repeats: int = 2
    output: str = "BENCH_training.json"


def make_training_dataset(config: TrainingBenchConfig) -> SinanDataset:
    """A synthetic but learnable dataset sized like collected data.

    Latency labels follow a smooth function of the aggregate load
    signal minus the candidate allocation (plus noise), violations
    threshold the p99 label against QoS — enough structure that the
    trees grow full depth and the CNN loss actually falls.
    """
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    from repro.core.features import WindowEncoder

    f = WindowEncoder(graph, config.n_timesteps).n_channels
    n, t, tiers = config.n_samples, config.n_timesteps, graph.n_tiers
    m = len(_PERCENTILES)
    qos = spec.qos.latency_ms
    rng = np.random.default_rng(config.seed)

    X_RH = np.abs(rng.normal(2.0, 1.0, (n, f, tiers, t)))
    X_RC = np.abs(rng.normal(2.0, 0.5, (n, tiers)))
    load = X_RH.mean(axis=(1, 2, 3)) - 0.6 * X_RC.mean(axis=1)
    load = (load - load.mean()) / max(load.std(), 1e-9)
    p99 = qos * (0.55 + 0.35 * np.tanh(load)) + rng.normal(0.0, qos * 0.03, n)
    p99 = np.clip(p99, qos * 0.05, qos * 2.2)
    spread = np.linspace(0.82, 1.0, m)
    y_lat = p99[:, None] * spread[None, :]
    X_LH = np.abs(
        y_lat[:, None, :] * rng.uniform(0.85, 1.15, (n, t, m))
    )
    # Violation labels carry interaction structure plus 15% label flips:
    # linearly inseparable and noisy, so both tree growers chase
    # residuals to full depth — the workload a real collected dataset
    # induces — instead of terminating on a trivially pure split.
    inter = X_RH[:, 0].mean(axis=(1, 2)) * X_RC[:, 0] - X_RH[:, -1].mean(
        axis=(1, 2)
    ) * X_RC[:, -1]
    inter = (inter - inter.mean()) / max(inter.std(), 1e-9)
    y_viol = ((p99 / qos + 0.3 * np.sign(inter) * inter * inter) > 1.0).astype(
        float
    )
    flips = rng.random(n) < 0.15
    y_viol[flips] = 1.0 - y_viol[flips]
    return SinanDataset(
        X_RH=X_RH, X_LH=X_LH, X_RC=X_RC, y_lat=y_lat, y_viol=y_viol, meta={}
    )


def _tree_structures_equal(a, b) -> bool:
    """Exact split-for-split equality of two fitted ensembles
    (feature and bin threshold exact, leaf weights to 1e-10)."""
    if len(a.trees) != len(b.trees):
        return False

    def walk(x, y) -> bool:
        if (x is None) != (y is None):
            return False
        if x is None:
            return True
        if x.feature != y.feature or x.threshold != y.threshold:
            return False
        if abs(x.value - y.value) > 1e-10:
            return False
        return walk(x.left, y.left) and walk(x.right, y.right)

    return all(walk(ta, tb) for ta, tb in zip(a.trees, b.trees))


def bench_tree_fit(config: TrainingBenchConfig) -> dict:
    """Histogram grower vs reference grower on a bt-feature-sized task."""
    from repro.ml.boosted_trees import BoostedTrees, BoostedTreesConfig

    spec = app_spec(config.app)
    graph = spec.graph_factory()
    rng = np.random.default_rng(config.seed + 11)
    # Same feature dimension the trees see in the hybrid model:
    # latent + [rc, delta, util] per tier + latency percentiles.
    latent_dim = PredictorConfig().cnn.latent_dim
    d = latent_dim + 3 * graph.n_tiers + len(_PERCENTILES)
    n = config.n_samples
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.5 * X[:, 1] * X[:, 2] + 0.3 * rng.normal(size=n) > 0.4).astype(
        float
    )
    n_val = max(n // 10, 10)
    X_val = rng.normal(size=(n_val, d))
    y_val = (X_val[:, 0] + 0.5 * X_val[:, 1] * X_val[:, 2] > 0.4).astype(float)

    # Both paths grow the full budget (no early stop) so the timed work
    # is identical by construction.
    bt_cfg = BoostedTreesConfig(
        n_trees=config.n_trees, early_stopping_rounds=config.n_trees
    )

    def fit(fast: bool) -> BoostedTrees:
        model = BoostedTrees(bt_cfg, seed=config.seed)
        model.fast_train = fast
        model.fit(X, y, X_val, y_val)
        return model

    t0 = time.perf_counter()
    model_fast = fit(True)
    fast_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    model_ref = fit(False)
    ref_s = time.perf_counter() - t0

    margins_equal = bool(
        np.array_equal(
            model_fast.predict_margin(X_val), model_ref.predict_margin(X_val)
        )
    )
    return {
        "n_samples": n,
        "n_features": d,
        "n_trees": len(model_fast.trees),
        "fast_s": round(fast_s, 3),
        "reference_s": round(ref_s, 3),
        "speedup": round(ref_s / fast_s, 2) if fast_s else 0.0,
        "structures_equal": _tree_structures_equal(model_fast, model_ref),
        "margins_bitwise_equal": margins_equal,
    }


def bench_cnn_epochs(config: TrainingBenchConfig) -> dict:
    """im2col/fused training vs einsum/loop reference, same CNN fit."""
    from repro.ml.cnn import LatencyCNN
    from repro.ml.network import FitResult as _FitResult

    spec = app_spec(config.app)
    graph = spec.graph_factory()
    rng = np.random.default_rng(config.seed + 23)
    n, t, tiers = config.n_samples, config.n_timesteps, graph.n_tiers
    m = len(_PERCENTILES)
    cnn_seed = config.seed + 5

    from repro.core.features import WindowEncoder

    f = WindowEncoder(graph, t).n_channels

    def build() -> LatencyCNN:
        return LatencyCNN(
            n_tiers=tiers,
            n_timesteps=t,
            n_channels=f,
            n_percentiles=m,
            seed=cnn_seed,
            n_rc_features=2 * tiers,
        )

    inputs = (
        rng.normal(size=(n, f, tiers, t)),
        rng.normal(size=(n, t, m)),
        rng.normal(size=(n, 2 * tiers)),
    )
    targets = inputs[0].mean(axis=(1, 2, 3))[:, None] * np.ones(m) + rng.normal(
        0.0, 0.05, (n, m)
    )

    def fit(fast: bool) -> _FitResult:
        model = build()
        model.set_fast_train(fast)
        return model.fit(
            inputs,
            targets,
            epochs=config.cnn_epochs,
            batch_size=config.batch_size,
            seed=config.seed,
            patience=0,
        )

    fit_fast = fit(True)
    fit_ref = fit(False)
    losses_close = bool(
        np.allclose(fit_fast.train_loss, fit_ref.train_loss, rtol=0, atol=1e-8)
    )
    fast_s = float(np.mean(fit_fast.epoch_time_s))
    ref_s = float(np.mean(fit_ref.epoch_time_s))
    return {
        "n_samples": n,
        "epochs": config.cnn_epochs,
        "fast_s_per_epoch": round(fast_s, 3),
        "reference_s_per_epoch": round(ref_s, 3),
        "speedup": round(ref_s / fast_s, 2) if fast_s else 0.0,
        "losses_close": losses_close,
        "max_loss_diff": float(
            np.max(np.abs(np.subtract(fit_fast.train_loss, fit_ref.train_loss)))
        ),
    }


def bench_end_to_end(config: TrainingBenchConfig, dataset: SinanDataset) -> dict:
    """One full ``HybridPredictor.train`` per path, timed."""
    spec = app_spec(config.app)

    def train(fast: bool) -> tuple[HybridPredictor, TrainingReport, float]:
        graph = spec.graph_factory()
        predictor = HybridPredictor(
            graph,
            spec.qos,
            PredictorConfig(
                n_timesteps=config.n_timesteps,
                epochs=config.cnn_epochs,
                batch_size=config.batch_size,
                patience=0,
                trees=BoostedTreesConfig(
                    n_trees=config.n_trees,
                    early_stopping_rounds=config.n_trees,
                ),
            ),
            seed=config.seed,
        )
        predictor.fast_train = fast
        t0 = time.perf_counter()
        report = predictor.train(dataset)
        return predictor, report, time.perf_counter() - t0

    # Min over repeats per path: the training runs are seconds-long, so
    # one background hiccup would otherwise dominate the ratio.
    _, report_fast, fast_s = train(True)
    _, report_ref, ref_s = train(False)
    for _ in range(max(0, config.repeats - 1)):
        fast_s = min(fast_s, train(True)[2])
        ref_s = min(ref_s, train(False)[2])
    # The two paths differ by float rounding, so the trained models are
    # equivalent in quality, not bitwise: compare the reported metrics.
    rmse_close = bool(
        np.isclose(report_fast.rmse_val, report_ref.rmse_val, rtol=0.05, atol=1.0)
    )
    acc_close = bool(
        np.isclose(
            report_fast.bt_accuracy_val, report_ref.bt_accuracy_val, atol=0.05
        )
    )
    return {
        "n_samples": len(dataset),
        "n_trees": config.n_trees,
        "cnn_epochs": config.cnn_epochs,
        "fast_s": round(fast_s, 3),
        "reference_s": round(ref_s, 3),
        "speedup": round(ref_s / fast_s, 2) if fast_s else 0.0,
        "rmse_val_fast": round(report_fast.rmse_val, 3),
        "rmse_val_reference": round(report_ref.rmse_val, 3),
        "bt_accuracy_val_fast": round(report_fast.bt_accuracy_val, 4),
        "bt_accuracy_val_reference": round(report_ref.bt_accuracy_val, 4),
        "quality_close": rmse_close and acc_close,
    }


def run_training_bench(config: TrainingBenchConfig | None = None) -> dict:
    """Run the training benchmark and return (and optionally write) results."""
    config = config or TrainingBenchConfig()
    dataset = make_training_dataset(config)
    results = {
        "benchmark": "training-path",
        "app": config.app,
        "n_samples": config.n_samples,
        "window": config.n_timesteps,
        "n_trees": config.n_trees,
        "cnn_epochs": config.cnn_epochs,
        "seed": config.seed,
        "tree_fit": bench_tree_fit(config),
        "cnn_fit": bench_cnn_epochs(config),
        "end_to_end": bench_end_to_end(config, dataset),
    }
    results["equivalent"] = bool(
        results["tree_fit"]["structures_equal"]
        and results["tree_fit"]["margins_bitwise_equal"]
        and results["cnn_fit"]["losses_close"]
        and results["end_to_end"]["quality_close"]
    )
    if config.output:
        resolve_output(config.output).write_text(
            json.dumps(results, indent=2) + "\n"
        )
    return results


def format_training_bench(results: dict) -> str:
    """Human-readable summary of one ``run_training_bench`` result."""
    tf, cf, e2e = results["tree_fit"], results["cnn_fit"], results["end_to_end"]
    lines = [
        f"training-path benchmark — {results['app']} "
        f"({results['n_samples']} samples, {results['n_trees']} trees, "
        f"{results['cnn_epochs']} CNN epochs)",
        f"tree fit:   {tf['fast_s']:.2f}s fast vs {tf['reference_s']:.2f}s "
        f"reference ({tf['speedup']:.1f}x), structures "
        + ("equal" if tf["structures_equal"] else "DIFFER")
        + ", margins "
        + ("bitwise equal" if tf["margins_bitwise_equal"] else "DIFFER"),
        f"cnn epoch:  {cf['fast_s_per_epoch']:.2f}s fast vs "
        f"{cf['reference_s_per_epoch']:.2f}s reference ({cf['speedup']:.1f}x), "
        f"losses " + ("match" if cf["losses_close"] else "DIVERGED")
        + f" (max diff {cf['max_loss_diff']:.2e})",
        f"end-to-end: {e2e['fast_s']:.2f}s fast vs {e2e['reference_s']:.2f}s "
        f"reference ({e2e['speedup']:.1f}x), quality "
        + ("close" if e2e["quality_close"] else "DIVERGED"),
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Simulation-path benchmark
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SimBenchConfig:
    """Knobs of one ``repro bench --sim`` invocation.

    Times full simulated episodes on the production-sized application
    (28 tiers for ``social_network``) with the batched-tick fast path on
    and off, and checks the two paths produce bitwise-identical
    :class:`~repro.sim.telemetry.IntervalStats` across normal, bursty,
    and overload scenarios.  The default tick of 0.05 s (20 ticks per
    decision interval) is the high-resolution regime the fast path
    exists for: the reference's per-tick Python cost scales linearly
    with the tick count while the batched path's does not.
    """

    app: str = "social_network"
    intervals: int = 300
    tick: float = 0.05
    rps: float = 900.0
    repeats: int = 3
    seed: int = 0
    equivalence_intervals: int = 60
    output: str = "BENCH_sim.json"


_SIM_STAT_FIELDS = (
    "time", "rps", "cpu_alloc", "cpu_util", "rss_mb", "cache_mb",
    "rx_pps", "tx_pps", "queue", "latency_ms", "drops",
    "latency_samples_ms",
)


def _interval_stats_equal(a, b) -> bool:
    """Bitwise equality of two :class:`IntervalStats` (every field)."""
    for name in _SIM_STAT_FIELDS:
        if not np.array_equal(
            np.asarray(getattr(a, name)), np.asarray(getattr(b, name))
        ):
            return False
    return a.rps_by_type == b.rps_by_type


def _sim_episode_inputs(graph, config: SimBenchConfig):
    base_alloc = np.full(graph.n_tiers, 2.0)
    rates = np.full(graph.n_types, config.rps / graph.n_types)
    return base_alloc, rates


def _run_sim_episode(engine, intervals: int, base_alloc, rates) -> float:
    """Drive one episode with deterministic load/allocation sweeps and
    return its wall time; the sweeps cross the latency knee so queues,
    drops, and the sampler's drop path are all exercised."""
    phase = np.arange(base_alloc.size)
    t0 = time.perf_counter()
    for i in range(intervals):
        engine.run_interval(
            base_alloc * (1.0 + 0.1 * np.sin(i + phase)),
            rates * (1.0 + 0.2 * np.sin(i / 3.0)),
        )
    return time.perf_counter() - t0


def bench_sim_episode(config: SimBenchConfig) -> dict:
    """Episode wall time, fast path vs reference (min over repeats)."""
    from repro.sim.engine import EngineConfig, QueueingEngine

    spec = app_spec(config.app)
    graph = spec.graph_factory()
    base_alloc, rates = _sim_episode_inputs(graph, config)

    def timed(fast: bool) -> float:
        best = float("inf")
        for _ in range(max(config.repeats, 1)):
            engine = QueueingEngine(
                graph,
                EngineConfig(tick=config.tick, fast_sim=fast),
                seed=config.seed,
            )
            # Warm-up interval: builds the tick plan and (first time
            # only) compiles the C kernel, outside the timed region.
            engine.run_interval(base_alloc, rates)
            best = min(
                best,
                _run_sim_episode(engine, config.intervals, base_alloc, rates),
            )
        return best

    fast_s = timed(True)
    ref_s = timed(False)
    return {
        "intervals": config.intervals,
        "fast_s": round(fast_s, 4),
        "reference_s": round(ref_s, 4),
        "fast_ms_per_interval": round(fast_s / config.intervals * 1e3, 4),
        "reference_ms_per_interval": round(ref_s / config.intervals * 1e3, 4),
        "intervals_per_s_fast": round(config.intervals / fast_s, 1),
        "intervals_per_s_reference": round(config.intervals / ref_s, 1),
        "speedup": round(ref_s / fast_s, 2) if fast_s else 0.0,
    }


def bench_sim_equivalence(config: SimBenchConfig) -> dict:
    """Bitwise fast-vs-reference check across engine scenarios.

    Each scenario runs a fresh fast engine and a fresh reference engine
    from the same seed and compares every ``IntervalStats`` field of
    every interval, the engines' internal state vectors, and the final
    RNG state — any divergence in the RNG consumption plan would show up
    here even if the visible stats happened to agree.
    """
    from repro.sim.engine import EngineConfig, QueueingEngine

    spec = app_spec(config.app)
    graph = spec.graph_factory()
    base_alloc, rates = _sim_episode_inputs(graph, config)
    phase = np.arange(graph.n_tiers)
    scenarios = {
        "normal": {},
        "overload": {"max_queue": 30.0},
        "bursty": {"spike_prob": 0.5, "spike_mult_range": (2.0, 3.0)},
    }
    results: dict[str, bool] = {}
    for name, overrides in scenarios.items():
        engines = [
            QueueingEngine(
                graph,
                EngineConfig(tick=config.tick, fast_sim=fast, **overrides),
                seed=config.seed + 13,
            )
            for fast in (True, False)
        ]
        ok = True
        for i in range(config.equivalence_intervals):
            allocs = base_alloc * (1.0 + 0.1 * np.sin(i + phase))
            tr = rates * (1.0 + 0.2 * np.sin(i / 3.0))
            sf, sr = (e.run_interval(allocs, tr) for e in engines)
            if not _interval_stats_equal(sf, sr):
                ok = False
                break
        fast_e, ref_e = engines
        ok = ok and all(
            np.array_equal(getattr(fast_e, attr), getattr(ref_e, attr))
            for attr in ("queue", "_busy_ewma", "_busy_frac", "_demand", "_sojourn")
        )
        ok = ok and fast_e.time == ref_e.time
        ok = (
            ok
            and fast_e._rng.bit_generator.state == ref_e._rng.bit_generator.state
        )
        results[name] = bool(ok)
    results["all"] = all(results.values())
    return results


def run_sim_bench(config: SimBenchConfig | None = None) -> dict:
    """Run the simulation benchmark and return (and optionally write)
    results."""
    config = config or SimBenchConfig()
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    results = {
        "benchmark": "sim-path",
        "app": config.app,
        "n_tiers": graph.n_tiers,
        "tick": config.tick,
        "ticks_per_interval": max(int(round(1.0 / config.tick)), 1),
        "rps": config.rps,
        "repeats": config.repeats,
        "seed": config.seed,
        "episode": bench_sim_episode(config),
        "equivalence": bench_sim_equivalence(config),
    }
    if config.output:
        resolve_output(config.output).write_text(
            json.dumps(results, indent=2) + "\n"
        )
    return results


def format_sim_bench(results: dict) -> str:
    """Human-readable summary of one ``run_sim_bench`` result."""
    ep, eq = results["episode"], results["equivalence"]
    scenario_bits = ", ".join(
        f"{name}={'yes' if ok else 'NO'}"
        for name, ok in eq.items()
        if name != "all"
    )
    return "\n".join([
        f"sim-path benchmark — {results['app']} "
        f"({results['n_tiers']} tiers, tick {results['tick']}s = "
        f"{results['ticks_per_interval']} ticks/interval, "
        f"{ep['intervals']} intervals)",
        f"episode:  {ep['fast_s']:.2f}s fast vs {ep['reference_s']:.2f}s "
        f"reference ({ep['speedup']:.1f}x; "
        f"{ep['intervals_per_s_fast']:.0f} vs "
        f"{ep['intervals_per_s_reference']:.0f} intervals/s)",
        f"interval: {ep['fast_ms_per_interval']:.3f}ms fast vs "
        f"{ep['reference_ms_per_interval']:.3f}ms reference",
        "bitwise:  " + ("equal" if eq["all"] else "DIVERGED")
        + f" ({scenario_bits})",
    ])


# ----------------------------------------------------------------------
# Episode benchmark (end-to-end control loop + event engine)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EpisodeBenchConfig:
    """Knobs of one ``repro bench --episode`` invocation.

    Times the full Sinan-attached episode loop — fluid simulator steps
    plus scheduler decisions — with every fast path enabled
    (``predictor.fast_path`` + ``scheduler.fast_control`` +
    ``fast_sim``) against the full reference stack (Action-list
    candidates, list-based ``_select``, per-candidate model path), the
    struct-of-arrays event engine against ``run_reference``, and the
    per-decision wall time of ``OnlineScheduler.decide`` against the
    sum of its model components at B=64.  Equivalence gates (decision
    traces, telemetry, event summaries, RNG state) run in normal and
    fault-profile episodes.
    """

    app: str = "social_network"
    decision_intervals: int = 25
    repeats: int = 3
    seed: int = 0
    n_trees: int = 300
    tree_depth: int = 6
    n_timesteps: int = 5
    component_candidates: int = 64
    component_repeats: int = 30
    decide_repeats: int = 30
    equivalence_intervals: int = 12
    fault_profile: str = "chaos"
    event_alloc: float = 1.0
    event_rps: float = 120.0
    event_duration: float = 20.0
    event_repeats: int = 6
    output: str = "BENCH_episode.json"


def _component_config(config: EpisodeBenchConfig) -> BenchConfig:
    """The decision-path ``BenchConfig`` matching an episode config."""
    return BenchConfig(
        app=config.app,
        n_timesteps=config.n_timesteps,
        repeats=config.component_repeats,
        seed=config.seed,
        n_trees=config.n_trees,
        tree_depth=config.tree_depth,
        decision_intervals=config.decision_intervals,
        output="",
    )


def _run_episode(
    predictor: HybridPredictor,
    spec,
    graph,
    fast: bool,
    intervals: int,
    seed: int,
    fault_profile: str | None = None,
):
    """Replay one managed episode end to end.

    ``fast`` toggles the whole stack at once: the predictor's
    shared-trunk path and the scheduler's matrix candidate/select path.
    Returns ``(trace, telemetry, wall_s)`` where the wall time covers
    simulator steps *and* decisions — the Sinan-attached throughput the
    benchmark reports.
    """
    lo, hi = spec.collection_load_range
    cluster = make_cluster(
        graph,
        users=(lo + hi) / 2,
        seed=seed,
        fault_profile=fault_profile,
    )
    space = ActionSpace(graph.min_alloc(), graph.max_alloc())
    scheduler = OnlineScheduler(predictor, space, spec.qos)
    scheduler.fast_control = fast
    predictor.fast_path = fast
    predictor.encoder.invalidate_cache()
    trace: list[np.ndarray] = []
    t0 = time.perf_counter()
    for _ in range(intervals):
        cluster.step(cluster.current_alloc)
        alloc = scheduler.decide(cluster.observed)
        if alloc is not None:
            cluster.step(alloc)
            trace.append(np.asarray(alloc, dtype=float).copy())
    wall = time.perf_counter() - t0
    return trace, cluster.telemetry, wall


def bench_episode_throughput(
    predictor: HybridPredictor, spec, graph, config: EpisodeBenchConfig
) -> dict:
    """End-to-end episode wall time, full-fast vs full-reference.

    Decisions feed back into the simulator, so the identical-trace
    check also guards the fast control loop end to end: one diverging
    decision would diverge every subsequent interval.
    """

    def best(fast: bool) -> tuple[float, list[np.ndarray]]:
        walls, trace = [], []
        for r in range(max(config.repeats, 1)):
            trace, _, wall = _run_episode(
                predictor, spec, graph, fast,
                config.decision_intervals, config.seed + 7,
            )
            walls.append(wall)
        return min(walls), trace

    try:
        fast_s, trace_fast = best(True)
        ref_s, trace_ref = best(False)
    finally:
        predictor.fast_path = True

    identical = len(trace_fast) == len(trace_ref) and all(
        np.array_equal(a, b) for a, b in zip(trace_fast, trace_ref)
    )
    n = config.decision_intervals
    return {
        "intervals": n,
        "fast_s": round(fast_s, 4),
        "reference_s": round(ref_s, 4),
        "fast_ms_per_interval": round(fast_s / n * 1e3, 3),
        "reference_ms_per_interval": round(ref_s / n * 1e3, 3),
        "intervals_per_s_fast": round(n / fast_s, 2),
        "intervals_per_s_reference": round(n / ref_s, 2),
        "speedup": round(ref_s / fast_s, 2) if fast_s else 0.0,
        "identical_traces": bool(identical),
    }


def bench_event_run(config: EpisodeBenchConfig) -> dict:
    """``EventDrivenEngine.run`` vs ``run_reference`` (min over
    repeats) on the production-sized graph near saturation, where the
    per-event Python cost of the reference dominates."""
    from repro.sim.event_engine import EventDrivenEngine, EventEngineConfig

    spec = app_spec(config.app)
    graph = spec.graph_factory()
    allocs = np.full(graph.n_tiers, config.event_alloc)
    rates = np.full(graph.n_types, config.event_rps / graph.n_types)

    def timed(method: str) -> float:
        best = float("inf")
        for _ in range(max(config.event_repeats, 1)):
            engine = EventDrivenEngine(
                graph, EventEngineConfig(), seed=config.seed + 3
            )
            t0 = time.perf_counter()
            getattr(engine, method)(allocs, rates, config.event_duration)
            best = min(best, time.perf_counter() - t0)
        return best

    fast_s = timed("run")
    ref_s = timed("run_reference")
    probe = EventDrivenEngine(graph, EventEngineConfig(), seed=config.seed + 3)
    summary = probe.run(allocs, rates, config.event_duration)
    n_req = int(summary["n_requests"])
    return {
        "duration_s": config.event_duration,
        "rps": config.event_rps,
        "alloc": config.event_alloc,
        "n_requests": n_req,
        "fast_ms": round(fast_s * 1e3, 3),
        "reference_ms": round(ref_s * 1e3, 3),
        "requests_per_s_fast": round(n_req / fast_s, 1),
        "requests_per_s_reference": round(n_req / ref_s, 1),
        "speedup": round(ref_s / fast_s, 2) if fast_s else 0.0,
    }


def bench_decide_overhead(
    predictor: HybridPredictor, spec, graph, config: EpisodeBenchConfig
) -> dict:
    """``scheduler.decide`` wall time vs the sum of its model
    components at the same candidate count.

    The ratio is the control-loop overhead the fast candidate/select
    path exists to kill: anything above ~1.0 is pure-Python work around
    the models (candidate enumeration, selection, bookkeeping).  Decide
    is timed per-decision inside a live episode (where steady-state
    decisions score exactly B=64 candidates on ``social_network``:
    scale-ups/holds only, reclamation gated by the cooldown) and, like
    every other timing here (:func:`_time_ms`), the minimum wall time
    is kept; decisions at other candidate counts — e.g. the first one,
    which also enumerates scale-downs — are reported but excluded from
    the ratio, which would otherwise compare different batch sizes.
    """
    bcfg = _component_config(config)
    log = make_bench_log(bcfg)
    components = bench_components(
        predictor, log, config.component_candidates, bcfg
    )
    components_ms = (
        components["encode"]["fast_ms"]
        + components["cnn"]["fast_ms"]
        + components["trees"]["fast_ms"]
    )

    lo, hi = spec.collection_load_range
    batch_sizes: list[int] = []
    original = predictor.predict_candidates

    def spying_predict(log_, cands):
        batch_sizes.append(len(cands))
        return original(log_, cands)

    decide_ms = float("inf")
    counted = 0
    predictor.fast_path = True
    predictor.encoder.invalidate_cache()
    try:
        predictor.predict_candidates = spying_predict
        for _ in range(max(config.decide_repeats // 25, 1)):
            cluster = make_cluster(
                graph, users=(lo + hi) / 2, seed=config.seed + 7
            )
            space = ActionSpace(graph.min_alloc(), graph.max_alloc())
            scheduler = OnlineScheduler(predictor, space, spec.qos)
            for _ in range(25):
                cluster.step(cluster.current_alloc)
                observed = cluster.observed
                n_before = len(batch_sizes)
                t0 = time.perf_counter()
                alloc = scheduler.decide(observed)
                elapsed = time.perf_counter() - t0
                scored = batch_sizes[n_before:]
                if scored == [config.component_candidates]:
                    decide_ms = min(decide_ms, elapsed * 1e3)
                    counted += 1
                if alloc is not None:
                    cluster.step(alloc)
    finally:
        predictor.__dict__.pop("predict_candidates", None)

    ratio = decide_ms / components_ms if components_ms else 0.0
    return {
        "component_candidates": config.component_candidates,
        "decisions_at_b": counted,
        "candidate_counts_seen": sorted(set(batch_sizes)),
        "decide_ms": round(decide_ms, 4),
        "components_sum_ms": round(components_ms, 4),
        "overhead_ratio": round(ratio, 3),
        "components": components,
    }


def bench_episode_equivalence(
    predictor: HybridPredictor, spec, graph, config: EpisodeBenchConfig
) -> dict:
    """Bitwise fast-vs-reference gates for the whole episode stack.

    Control loop: full episodes (normal and fault-injected) with every
    fast path on vs off must produce identical decision traces *and*
    identical telemetry on every interval.  Event engine: ``run`` vs
    ``run_reference`` from the same seed must agree on every summary
    field and leave the RNG bit-generator in the same state, in a
    normal and an overloaded (drop-heavy) scenario.
    """
    from repro.sim.event_engine import EventDrivenEngine, EventEngineConfig

    results: dict[str, bool] = {}
    for name, profile in (("normal", None),
                          (config.fault_profile, config.fault_profile)):
        try:
            trace_f, tel_f, _ = _run_episode(
                predictor, spec, graph, True,
                config.equivalence_intervals, config.seed + 31, profile,
            )
            trace_r, tel_r, _ = _run_episode(
                predictor, spec, graph, False,
                config.equivalence_intervals, config.seed + 31, profile,
            )
        finally:
            predictor.fast_path = True
        ok = len(trace_f) == len(trace_r) and all(
            np.array_equal(a, b) for a, b in zip(trace_f, trace_r)
        )
        ok = ok and len(tel_f) == len(tel_r) and all(
            _interval_stats_equal(tel_f[i], tel_r[i])
            for i in range(len(tel_f))
        )
        results[f"episode_{name}"] = bool(ok)

    allocs = np.full(graph.n_tiers, config.event_alloc)
    rates = np.full(graph.n_types, config.event_rps / graph.n_types)
    scenarios = {
        "normal": ({}, allocs),
        "overload": ({"max_queue": 100}, allocs * 0.7),
    }
    for name, (overrides, alloc) in scenarios.items():
        fast_e, ref_e = (
            EventDrivenEngine(
                graph, EventEngineConfig(**overrides), seed=config.seed + 13
            )
            for _ in range(2)
        )
        sf = fast_e.run(alloc, rates, config.event_duration)
        sr = ref_e.run_reference(alloc, rates, config.event_duration)
        ok = set(sf) == set(sr) and all(
            np.array_equal(np.asarray(sf[k]), np.asarray(sr[k]), equal_nan=True)
            for k in sf
        )
        ok = ok and fast_e._rng.bit_generator.state == ref_e._rng.bit_generator.state
        results[f"event_{name}"] = bool(ok)
    results["all"] = all(results.values())
    return results


def run_episode_bench(config: EpisodeBenchConfig | None = None) -> dict:
    """Run the episode benchmark and return (and optionally write)
    results."""
    config = config or EpisodeBenchConfig()
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    predictor = make_synthetic_predictor(_component_config(config))

    episode = bench_episode_throughput(predictor, spec, graph, config)
    event = bench_event_run(config)
    decision = bench_decide_overhead(predictor, spec, graph, config)
    equivalence = bench_episode_equivalence(predictor, spec, graph, config)
    results = {
        "benchmark": "episode-path",
        "app": config.app,
        "n_tiers": graph.n_tiers,
        "n_trees": config.n_trees,
        "window": config.n_timesteps,
        "seed": config.seed,
        "repeats": config.repeats,
        "fault_profile": config.fault_profile,
        "episode": episode,
        "event_engine": event,
        "decision": decision,
        "equivalence": equivalence,
        "equivalent": bool(
            equivalence["all"]
            and episode["identical_traces"]
            and decision["components"]["bitwise_equal"]
        ),
    }
    if config.output:
        resolve_output(config.output).write_text(
            json.dumps(results, indent=2) + "\n"
        )
    return results


def format_episode_bench(results: dict) -> str:
    """Human-readable summary of one ``run_episode_bench`` result."""
    ep = results["episode"]
    ev = results["event_engine"]
    dec = results["decision"]
    eq = results["equivalence"]
    scenario_bits = ", ".join(
        f"{name}={'yes' if ok else 'NO'}"
        for name, ok in eq.items()
        if name != "all"
    )
    return "\n".join([
        f"episode-path benchmark — {results['app']} "
        f"({results['n_tiers']} tiers, {results['n_trees']} trees, "
        f"{ep['intervals']} intervals)",
        f"episode:  {ep['fast_s']:.2f}s fast vs {ep['reference_s']:.2f}s "
        f"reference ({ep['speedup']:.1f}x; "
        f"{ep['intervals_per_s_fast']:.1f} vs "
        f"{ep['intervals_per_s_reference']:.1f} intervals/s)",
        f"events:   {ev['fast_ms']:.0f}ms fast vs {ev['reference_ms']:.0f}ms "
        f"reference ({ev['speedup']:.1f}x; {ev['n_requests']} requests over "
        f"{ev['duration_s']:.0f}s sim)",
        f"decide:   {dec['decide_ms']:.2f}ms vs "
        f"{dec['components_sum_ms']:.2f}ms model components at "
        f"B={dec['component_candidates']} "
        f"(overhead ratio {dec['overhead_ratio']:.2f})",
        "bitwise:  " + ("equal" if results["equivalent"] else "DIVERGED")
        + f" ({scenario_bits})",
    ])


# ---------------------------------------------------------------------
# Fan-out sweep benchmark: warm worker pool vs cold per-task-pickle path


@dataclass(frozen=True)
class SweepBenchConfig:
    """Knobs of one ``repro bench --sweep`` invocation.

    Times a multi-episode on-policy collection sweep three ways — the
    pre-pool baseline (fresh cold pool, full predictor pickled into
    every task), the warm shared pool with one-time shared-memory model
    broadcast, and the serial inline path — then measures per-task
    payload bytes, warm-pool reuse across successive calls, and the
    bit-identity contract (pooled == serial == cold, in normal and
    fault-injected episodes).
    """

    app: str = "social_network"
    episodes: int = 32
    """Episodes in the timed collection sweep (the paper's point: sweep
    wall-clock, not any single episode, dominates collection cost)."""
    seconds: int = 12
    """Decision intervals per episode."""
    jobs: int = 0
    """Pool workers for the timed sweeps (``0`` = one per CPU)."""
    seed: int = 0
    n_trees: int = 300
    tree_depth: int = 6
    n_timesteps: int = 5
    equivalence_episodes: int = 3
    equivalence_seconds: int = 8
    fault_profile: str = "chaos"
    output: str = "BENCH_sweep.json"


_SWEEP_DATASET_FIELDS = ("X_RH", "X_LH", "X_RC", "y_lat", "y_viol")


def _sweep_component_config(config: SweepBenchConfig) -> BenchConfig:
    return BenchConfig(
        app=config.app,
        n_timesteps=config.n_timesteps,
        seed=config.seed,
        n_trees=config.n_trees,
        tree_depth=config.tree_depth,
        output="",
    )


def _sweep_bench_tasks(
    predictor: HybridPredictor, spec, graph,
    n_episodes: int, seconds: int, seed: int,
):
    """On-policy collection tasks across the app's load range — the
    exact task shape ``pipeline._collect_on_policy`` fans out."""
    from repro.harness.parallel import EpisodeTask
    from repro.harness.pipeline import _on_policy_episode

    low, high = spec.collection_load_range
    loads = np.linspace(low, high, n_episodes)
    return [
        EpisodeTask(
            index=i,
            label=f"bench-sweep[users={users:g}]",
            fn=_on_policy_episode,
            kwargs=dict(
                predictor=predictor,
                graph=graph,
                qos=spec.qos,
                users=float(users),
                seconds=seconds,
                seed=seed + i,
            ),
        )
        for i, users in enumerate(loads)
    ]


def _sweep_datasets_equal(a, b) -> bool:
    return all(
        np.array_equal(
            getattr(a, name), getattr(b, name), equal_nan=True
        )
        for name in _SWEEP_DATASET_FIELDS
    )


def _sweep_results_equal(results_a, results_b) -> bool:
    return len(results_a) == len(results_b) and all(
        _sweep_datasets_equal(a, b) for a, b in zip(results_a, results_b)
    )


def bench_sweep_throughput(
    predictor: HybridPredictor, spec, graph, config: SweepBenchConfig
) -> dict:
    """Wall-clock of the full collection sweep: cold baseline vs warm pool.

    The baseline is the exact pre-pool fan-out: a fresh pool per call
    whose spin-up is part of the measured wall time, with the full
    predictor pickled into every task.  The warm variant is measured as
    a *subsequent* call on an already-live pool (spin-up and the
    one-time broadcast are timed separately as ``warm_spinup_s``) —
    that's the steady state every later sweep in a run sees.
    """
    from repro.harness.parallel import resolve_jobs, run_episodes
    from repro.harness.pool import WorkerPool

    n_workers = resolve_jobs(config.jobs)
    tasks = _sweep_bench_tasks(
        predictor, spec, graph, config.episodes, config.seconds, config.seed
    )

    t0 = time.perf_counter()
    with WorkerPool(jobs=n_workers, broadcast=False) as cold:
        baseline = run_episodes(tasks, jobs=n_workers, pool=cold)
    baseline_s = time.perf_counter() - t0
    baseline.raise_if_no_results()

    with WorkerPool(jobs=n_workers) as warm:
        t0 = time.perf_counter()
        run_episodes(tasks[:n_workers], jobs=n_workers, pool=warm)
        warm_spinup_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        pooled = run_episodes(tasks, jobs=n_workers, pool=warm)
        warm_s = time.perf_counter() - t0
    pooled.raise_if_no_results()

    return {
        "episodes": config.episodes,
        "seconds_per_episode": config.seconds,
        "workers": n_workers,
        "baseline_cold_s": round(baseline_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_spinup_s": round(warm_spinup_s, 3),
        "speedup": round(baseline_s / warm_s, 2) if warm_s else 0.0,
        "pool_reused": bool(pooled.pool_reused),
        "broadcast_publishes": pooled.broadcast_publishes,
        "model_cache_hits": pooled.model_cache_hits,
        "identical_results": _sweep_results_equal(
            baseline.results, pooled.results
        ),
    }


def bench_sweep_payload(
    predictor: HybridPredictor, spec, graph, config: SweepBenchConfig
) -> dict:
    """Per-task payload bytes: full-predictor pickle vs ``ModelRef``."""
    import pickle

    from repro.harness.pool import WorkerPool

    task = _sweep_bench_tasks(
        predictor, spec, graph, 1, config.seconds, config.seed
    )[0]
    cold_bytes = len(pickle.dumps(task.kwargs, pickle.HIGHEST_PROTOCOL))
    with WorkerPool(jobs=1) as pool:
        ref, published = pool.broadcast(predictor)
        warm_bytes = len(pickle.dumps(
            {**task.kwargs, "predictor": ref}, pickle.HIGHEST_PROTOCOL
        ))
    return {
        "cold_task_bytes": cold_bytes,
        "warm_task_bytes": warm_bytes,
        "broadcast_bytes_once": published,
        "reduction": round(cold_bytes / warm_bytes, 1) if warm_bytes else 0.0,
    }


def bench_sweep_reuse(
    predictor: HybridPredictor, spec, graph, config: SweepBenchConfig
) -> dict:
    """Two successive sweeps: warm pool reuse vs two cold pools.

    The second warm call must report ``pool_reused`` with zero new
    broadcast publishes, and both protocols must agree bit-for-bit —
    the warm pool is a pure wall-clock optimization.
    """
    from repro.harness.parallel import run_episodes
    from repro.harness.pool import WorkerPool

    n = max(2, config.equivalence_episodes)
    first = _sweep_bench_tasks(
        predictor, spec, graph, n, config.equivalence_seconds, config.seed
    )
    second = _sweep_bench_tasks(
        predictor, spec, graph, n, config.equivalence_seconds,
        config.seed + 1000,
    )

    cold_results = []
    t0 = time.perf_counter()
    for tasks in (first, second):
        with WorkerPool(jobs=2, broadcast=False) as cold:
            summary = run_episodes(tasks, jobs=2, pool=cold)
            cold_results.append(summary.results)
    cold_s = time.perf_counter() - t0

    warm_results = []
    t0 = time.perf_counter()
    with WorkerPool(jobs=2) as warm:
        first_summary = run_episodes(first, jobs=2, pool=warm)
        second_summary = run_episodes(second, jobs=2, pool=warm)
        warm_results = [first_summary.results, second_summary.results]
    warm_s = time.perf_counter() - t0

    return {
        "episodes_per_sweep": n,
        "two_cold_pools_s": round(cold_s, 3),
        "one_warm_pool_s": round(warm_s, 3),
        "second_call_reused": bool(second_summary.pool_reused),
        "second_call_publishes": second_summary.broadcast_publishes,
        "identical_results": all(
            _sweep_results_equal(c, w)
            for c, w in zip(cold_results, warm_results)
        ),
    }


def bench_sweep_equivalence(
    predictor: HybridPredictor, spec, graph, config: SweepBenchConfig
) -> dict:
    """Bit-identity gates: pooled == serial == cold per-task path.

    Collection episodes (normal) and resilience cells (under the fault
    profile, sinan + a model-free manager) must produce byte-identical
    results no matter which execution substrate ran them.
    """
    from dataclasses import asdict

    from repro.harness.parallel import EpisodeTask, run_episodes
    from repro.harness.pool import WorkerPool
    from repro.harness.resilience import _resilience_episode

    results: dict[str, bool] = {}

    tasks = _sweep_bench_tasks(
        predictor, spec, graph, config.equivalence_episodes,
        config.equivalence_seconds, config.seed + 17,
    )
    serial = run_episodes(tasks, jobs=1)
    with WorkerPool(jobs=2) as warm:
        pooled = run_episodes(tasks, jobs=2, pool=warm)
    with WorkerPool(jobs=2, broadcast=False) as cold:
        cold_run = run_episodes(tasks, jobs=2, pool=cold)
    results["collection_serial_vs_warm"] = _sweep_results_equal(
        serial.results, pooled.results
    )
    results["collection_serial_vs_cold"] = _sweep_results_equal(
        serial.results, cold_run.results
    )

    users = float(np.mean(spec.collection_load_range))
    fault_tasks = [
        EpisodeTask(
            index=i,
            label=f"bench-fault[{manager}]",
            fn=_resilience_episode,
            kwargs=dict(
                app=config.app,
                manager_name=manager,
                profile_name=config.fault_profile,
                users=users,
                duration=config.equivalence_seconds,
                seed=config.seed + 29,
                warmup=2,
                predictor=predictor if manager == "sinan" else None,
            ),
        )
        for i, manager in enumerate(("sinan", "static"))
    ]
    fault_serial = run_episodes(fault_tasks, jobs=1)
    with WorkerPool(jobs=2) as warm:
        fault_pooled = run_episodes(fault_tasks, jobs=2, pool=warm)
    results[f"fault_{config.fault_profile}_serial_vs_warm"] = (
        len(fault_serial.results) == len(fault_pooled.results)
        and all(
            asdict(a) == asdict(b)
            for a, b in zip(fault_serial.results, fault_pooled.results)
        )
    )
    results["all"] = all(results.values())
    return results


def run_sweep_bench(config: SweepBenchConfig | None = None) -> dict:
    """Run the fan-out sweep benchmark and return (and optionally
    write) results."""
    config = config or SweepBenchConfig()
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    predictor = make_synthetic_predictor(_sweep_component_config(config))

    throughput = bench_sweep_throughput(predictor, spec, graph, config)
    payload = bench_sweep_payload(predictor, spec, graph, config)
    reuse = bench_sweep_reuse(predictor, spec, graph, config)
    equivalence = bench_sweep_equivalence(predictor, spec, graph, config)
    results = {
        "benchmark": "fanout-sweep",
        "app": config.app,
        "n_tiers": graph.n_tiers,
        "n_trees": config.n_trees,
        "seed": config.seed,
        "fault_profile": config.fault_profile,
        "throughput": throughput,
        "payload": payload,
        "reuse": reuse,
        "equivalence": equivalence,
        "equivalent": bool(
            equivalence["all"]
            and throughput["identical_results"]
            and reuse["identical_results"]
        ),
    }
    if config.output:
        resolve_output(config.output).write_text(
            json.dumps(results, indent=2) + "\n"
        )
    return results


def format_sweep_bench(results: dict) -> str:
    """Human-readable summary of one ``run_sweep_bench`` result."""
    th = results["throughput"]
    pl = results["payload"]
    ru = results["reuse"]
    eq = results["equivalence"]
    gate_bits = ", ".join(
        f"{name}={'yes' if ok else 'NO'}"
        for name, ok in eq.items()
        if name != "all"
    )
    return "\n".join([
        f"fan-out sweep benchmark — {results['app']} "
        f"({th['episodes']} episodes x {th['seconds_per_episode']} "
        f"intervals, {th['workers']} workers, {results['n_trees']} trees)",
        f"sweep:    {th['warm_s']:.2f}s warm pool vs "
        f"{th['baseline_cold_s']:.2f}s cold per-task baseline "
        f"({th['speedup']:.1f}x; spin-up+broadcast {th['warm_spinup_s']:.2f}s "
        f"paid once)",
        f"payload:  {pl['warm_task_bytes']:,}B/task vs "
        f"{pl['cold_task_bytes']:,}B/task "
        f"({pl['reduction']:.0f}x smaller; "
        f"{pl['broadcast_bytes_once']:,}B broadcast once)",
        f"reuse:    {ru['one_warm_pool_s']:.2f}s one warm pool vs "
        f"{ru['two_cold_pools_s']:.2f}s two cold pools over two sweeps "
        f"(second call reused={'yes' if ru['second_call_reused'] else 'NO'}, "
        f"publishes={ru['second_call_publishes']})",
        "bitwise:  " + ("equal" if results["equivalent"] else "DIVERGED")
        + f" ({gate_bits})",
    ])


def run_bench(config: BenchConfig | None = None) -> dict:
    """Run the full benchmark and return (and optionally write) results."""
    config = config or BenchConfig()
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    predictor = make_synthetic_predictor(config)
    log = make_bench_log(config)

    results = {
        "benchmark": "decision-path",
        "app": config.app,
        "n_tiers": graph.n_tiers,
        "window": config.n_timesteps,
        "n_trees": config.n_trees,
        "seed": config.seed,
        "repeats": config.repeats,
        "components": [
            bench_components(predictor, log, b, config)
            for b in config.candidate_counts
        ],
        "scheduler": bench_scheduler(predictor, config),
    }
    if config.output:
        resolve_output(config.output).write_text(
            json.dumps(results, indent=2) + "\n"
        )
    return results


def format_bench(results: dict) -> str:
    """Human-readable table of one ``run_bench`` result."""
    lines = [
        f"decision-path benchmark — {results['app']} "
        f"({results['n_tiers']} tiers, window {results['window']}, "
        f"{results['n_trees']} trees)",
        f"{'B':>5} {'encode':>8} {'cnn':>8} {'trees':>8} "
        f"{'total fast':>11} {'total ref':>10} {'speedup':>8} {'equal':>6}",
    ]
    for row in results["components"]:
        lines.append(
            f"{row['candidates']:>5} "
            f"{row['encode']['speedup']:>7.1f}x "
            f"{row['cnn']['speedup']:>7.1f}x "
            f"{row['trees']['speedup']:>7.1f}x "
            f"{row['total']['fast_ms']:>9.2f}ms "
            f"{row['total']['reference_ms']:>8.2f}ms "
            f"{row['total']['speedup']:>7.1f}x "
            f"{'yes' if row['bitwise_equal'] else 'NO':>6}"
        )
    sched = results["scheduler"]
    lines.append(
        f"scheduler: {sched['decisions']} decisions, "
        f"{sched['fast_ms_per_decision']:.2f}ms/decision fast vs "
        f"{sched['reference_ms_per_decision']:.2f}ms reference "
        f"({sched['speedup']:.1f}x), traces "
        + ("identical" if sched["identical_traces"] else "DIVERGED")
    )
    return "\n".join(lines)


__all__ = [
    "BenchConfig",
    "repo_root",
    "resolve_output",
    "run_bench",
    "format_bench",
    "make_synthetic_predictor",
    "make_bench_log",
    "bench_components",
    "bench_scheduler",
    "TrainingBenchConfig",
    "make_training_dataset",
    "run_training_bench",
    "format_training_bench",
    "bench_tree_fit",
    "bench_cnn_epochs",
    "bench_end_to_end",
    "SimBenchConfig",
    "run_sim_bench",
    "format_sim_bench",
    "bench_sim_episode",
    "bench_sim_equivalence",
    "EpisodeBenchConfig",
    "run_episode_bench",
    "format_episode_bench",
    "SweepBenchConfig",
    "run_sweep_bench",
    "format_sweep_bench",
    "bench_sweep_throughput",
    "bench_sweep_payload",
    "bench_sweep_reuse",
    "bench_sweep_equivalence",
    "bench_episode_throughput",
    "bench_event_run",
    "bench_decide_overhead",
    "bench_episode_equivalence",
]
