"""Resilience scenarios: fault profiles x managers, with recovery metrics.

The paper's evaluation never stresses the scheduler's safety mechanism
(Section 4.3's trust counter and unpredicted-violation recovery); this
harness does.  :func:`run_resilience_episode` drives one manager through
a fault-injected episode and measures, against ground-truth telemetry:

* QoS-meet fraction and mean/max CPU (the usual Figure 11 metrics),
* recovery time after each injected physics fault (intervals from fault
  onset until the p99 is back under QoS),
* the scheduler's safety counters — mispredictions, trust state, and
  max-allocation fallbacks (including predictor failures),
* how much of the manager's telemetry view was dropped or corrupted.

:func:`sweep_resilience` fans the (profile x manager) grid out over the
parallel episode harness and :func:`format_resilience_report` renders
the resulting table.  Results are bit-identical for a fixed seed
regardless of ``jobs``.  Fanned-out grids run on the process-wide warm
pool (:mod:`repro.harness.pool`): the sinan cells' predictor is
broadcast once via shared memory instead of being pickled into every
(profile x manager) task, and repeated sweeps reuse live workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.manager import Manager
from repro.core.qos import QoSTarget
from repro.harness.parallel import EpisodeTask, run_episodes
from repro.harness.reporting import format_table
from repro.sim.cluster import ClusterSimulator

#: Intervals past a fault's end still attributed to it when looking for
#: the first violation (queues built during the fault drain late).
_GRACE_INTERVALS = 5


@dataclass
class ResilienceResult:
    """One manager's episode under one fault profile."""

    manager_name: str
    profile: str
    users: float
    qos_ms: float
    duration: int
    qos_fraction: float
    mean_total_cpu: float
    max_total_cpu: float
    n_faults: int
    """Injected physics faults that started inside the episode."""

    recovery_times: list[float] = field(default_factory=list)
    """Per-fault recovery time in intervals (0 = QoS never lost)."""

    mispredictions: int | None = None
    trusted: bool | None = None
    fallbacks: int | None = None
    predictor_failures: int | None = None
    dropped_intervals: int = 0
    corrupted_intervals: int = 0

    @property
    def mean_recovery(self) -> float:
        """Mean recovery time across faults (0.0 when no faults fired)."""
        if not self.recovery_times:
            return 0.0
        return float(np.mean(self.recovery_times))

    def row(self) -> list[str]:
        def opt(value) -> str:
            return "-" if value is None else str(value)

        return [
            self.profile,
            self.manager_name,
            f"{self.qos_fraction:.3f}",
            f"{self.mean_total_cpu:.1f}",
            str(self.n_faults),
            f"{self.mean_recovery:.1f}",
            opt(self.mispredictions),
            opt(self.fallbacks),
            f"{self.dropped_intervals}/{self.corrupted_intervals}",
        ]


def recovery_time(
    p99: np.ndarray,
    qos_ms: float,
    start_idx: int,
    fault_intervals: int,
) -> float:
    """Intervals from a fault's onset until QoS is met again.

    Looks for the first violating interval within the fault window (plus
    a short grace for queue drain); returns 0 when the fault never broke
    QoS, otherwise the index distance from onset to the first interval
    back under the target (episode end if it never recovers).
    """
    n = len(p99)
    if start_idx >= n:
        return 0.0
    horizon = min(n, start_idx + fault_intervals + _GRACE_INTERVALS)
    violating = np.flatnonzero(p99[start_idx:horizon] > qos_ms)
    if violating.size == 0:
        return 0.0
    first_bad = start_idx + int(violating[0])
    recovered = np.flatnonzero(p99[first_bad:] <= qos_ms)
    end = first_bad + int(recovered[0]) if recovered.size else n
    return float(end - start_idx)


def run_resilience_episode(
    manager: Manager,
    cluster: ClusterSimulator,
    duration: int,
    qos: QoSTarget,
    warmup: int = 10,
    profile_name: str | None = None,
    recorder=None,
) -> ResilienceResult:
    """Run one fault-injected episode and collect resilience metrics.

    Works for fault-free clusters too (``n_faults`` is then 0), so the
    same scorer can baseline a manager with and without faults.

    ``recorder`` attaches a :class:`repro.obs.Recorder` for the episode
    (default off; the episode is then bitwise-identical).
    """
    if duration <= warmup:
        raise ValueError("duration must exceed warmup")
    if recorder is not None:
        from repro.obs.recorder import attach_recorder

        attach_recorder(recorder, manager=manager, cluster=cluster)
    manager.reset()
    for _ in range(duration):
        alloc = manager.decide(cluster.observed)
        cluster.step(alloc)

    log = cluster.telemetry  # ground truth, never the corrupted view
    p99 = np.array([qos.latency_of(s) for s in log])
    total_cpu = log.total_cpu_series()
    injector = cluster.faults

    recovery_times: list[float] = []
    n_faults = 0
    if injector is not None:
        start_time = log[0].time - 1.0  # interval i covers (t0+i, t0+i+1]
        for event in injector.physics_events(until=log.latest.time):
            n_faults += 1
            start_idx = max(int(np.floor(event.start - start_time)), 0)
            recovery_times.append(
                recovery_time(
                    p99, qos.latency_ms, start_idx,
                    max(int(np.ceil(event.duration)), 1),
                )
            )

    return ResilienceResult(
        manager_name=manager.name,
        profile=profile_name or (injector.profile.name if injector else "none"),
        users=cluster.workload.pattern.users(0.0),
        qos_ms=qos.latency_ms,
        duration=duration,
        qos_fraction=float(np.mean(p99[warmup:] <= qos.latency_ms)),
        mean_total_cpu=float(total_cpu[warmup:].mean()),
        max_total_cpu=float(total_cpu[warmup:].max()),
        n_faults=n_faults,
        recovery_times=recovery_times,
        mispredictions=getattr(manager, "mispredictions", None),
        trusted=getattr(manager, "trusted", None),
        fallbacks=getattr(manager, "fallbacks", None),
        predictor_failures=getattr(manager, "predictor_failures", None),
        dropped_intervals=injector.dropped_intervals if injector else 0,
        corrupted_intervals=injector.corrupted_intervals if injector else 0,
    )


def _resilience_episode(
    app: str,
    manager_name: str,
    profile_name: str,
    users: float,
    duration: int,
    seed: int,
    warmup: int,
    predictor,
) -> ResilienceResult:
    """One (profile, manager) cell — picklable worker."""
    from repro.harness.pipeline import app_spec, make_cluster, make_manager

    spec = app_spec(app)
    graph = spec.graph_factory()
    manager = make_manager(manager_name, graph, spec.qos, predictor)
    cluster = make_cluster(
        graph, users, seed=seed, fault_profile=profile_name,
    )
    return run_resilience_episode(
        manager, cluster, duration, spec.qos, warmup=warmup,
        profile_name=profile_name,
    )


def sweep_resilience(
    app: str,
    profiles: list[str],
    manager_names: list[str],
    users: float,
    duration: int,
    seed: int = 0,
    warmup: int = 10,
    predictor=None,
    jobs: int | None = None,
    progress=None,
    recorder=None,
) -> list[ResilienceResult]:
    """Run every (profile, manager) cell, serially or over processes.

    Every manager faces the same fault schedule and workload draw within
    a profile (the cluster/injector seed depends only on the profile),
    making each column a paired comparison.  Results come back in grid
    order; a cell that failed even after the harness retry is omitted.
    """
    tasks = []
    for p_idx, profile_name in enumerate(profiles):
        for manager_name in manager_names:
            tasks.append(EpisodeTask(
                index=len(tasks),
                label=f"{profile_name}/{manager_name}",
                fn=_resilience_episode,
                kwargs=dict(
                    app=app,
                    manager_name=manager_name,
                    profile_name=profile_name,
                    users=users,
                    duration=duration,
                    seed=seed + 1009 * p_idx,
                    warmup=warmup,
                    predictor=predictor if manager_name == "sinan" else None,
                ),
            ))
    summary = run_episodes(tasks, jobs=jobs, progress=progress, recorder=recorder)
    summary.raise_if_no_results()
    return summary.results


def format_resilience_report(results: list[ResilienceResult]) -> str:
    """Render resilience results as the harness's fixed-width table."""
    headers = [
        "Profile", "Manager", "P(QoS)", "meanCPU", "faults",
        "recov(s)", "mispred", "fallback", "drop/corrupt",
    ]
    return format_table(
        headers,
        [r.row() for r in results],
        title="Resilience under injected faults "
              "(QoS/CPU scored on ground-truth telemetry)",
    )


__all__ = [
    "ResilienceResult",
    "recovery_time",
    "run_resilience_episode",
    "sweep_resilience",
    "format_resilience_report",
]
