"""Episode analysis: violation episodes, drain times, utilization stats.

Post-processing helpers over a :class:`~repro.sim.telemetry.TelemetryLog`
used by the benchmarks, the examples, and operators inspecting a run —
the paper's "execution logs ... and log processing scripts" (Appendix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.qos import QoSTarget
from repro.sim.telemetry import TelemetryLog


@dataclass(frozen=True)
class ViolationEpisode:
    """One contiguous run of QoS-violating intervals."""

    start: int
    end: int
    """Half-open interval indices [start, end)."""

    peak_ms: float

    @property
    def duration(self) -> int:
        return self.end - self.start


def violation_episodes(log: TelemetryLog, qos: QoSTarget) -> list[ViolationEpisode]:
    """Contiguous QoS-violation episodes in an episode's telemetry.

    The episode structure is the delayed-queueing signature: a single
    trigger shows up as one multi-interval episode whose length is the
    queue-drain time.
    """
    latency = np.array([qos.latency_of(s) for s in log])
    violating = latency > qos.latency_ms
    episodes: list[ViolationEpisode] = []
    start = None
    for i, bad in enumerate(violating):
        if bad and start is None:
            start = i
        elif not bad and start is not None:
            episodes.append(
                ViolationEpisode(start, i, float(latency[start:i].max()))
            )
            start = None
    if start is not None:
        episodes.append(
            ViolationEpisode(start, len(violating), float(latency[start:].max()))
        )
    return episodes


def mean_drain_time(log: TelemetryLog, qos: QoSTarget) -> float:
    """Average violation-episode length (intervals); 0 when QoS held."""
    episodes = violation_episodes(log, qos)
    if not episodes:
        return 0.0
    return float(np.mean([e.duration for e in episodes]))


@dataclass(frozen=True)
class TierStats:
    """Per-tier utilization/allocation summary over an episode."""

    name: str
    mean_alloc: float
    max_alloc: float
    mean_util: float
    p95_util: float


def tier_stats(log: TelemetryLog, tier_names: list[str]) -> list[TierStats]:
    """Per-tier summary, ordered by mean allocation (largest first)."""
    alloc = log.alloc_matrix()
    util = np.stack([s.cpu_util for s in log])
    stats = [
        TierStats(
            name=name,
            mean_alloc=float(alloc[:, i].mean()),
            max_alloc=float(alloc[:, i].max()),
            mean_util=float(util[:, i].mean()),
            p95_util=float(np.percentile(util[:, i], 95)),
        )
        for i, name in enumerate(tier_names)
    ]
    return sorted(stats, key=lambda s: -s.mean_alloc)


def allocation_churn(log: TelemetryLog) -> float:
    """Mean absolute per-interval change of total CPU (cores/interval).

    High churn indicates an unstable manager (the paper's p_d threshold
    exists to avoid resource fluctuation)."""
    total = log.total_cpu_series()
    if len(total) < 2:
        return 0.0
    return float(np.mean(np.abs(np.diff(total))))


def summarize(log: TelemetryLog, qos: QoSTarget, tier_names: list[str]) -> dict:
    """One-call episode summary used by reports."""
    return {
        "qos_fraction": log.qos_meet_fraction(qos.latency_ms),
        "mean_cpu": float(log.total_cpu_series().mean()),
        "max_cpu": float(log.total_cpu_series().max()),
        "violation_episodes": len(violation_episodes(log, qos)),
        "mean_drain_time_s": mean_drain_time(log, qos),
        "allocation_churn": allocation_churn(log),
        "hottest_tiers": [s.name for s in tier_stats(log, tier_names)[:3]],
    }


__all__ = [
    "ViolationEpisode",
    "violation_episodes",
    "mean_drain_time",
    "TierStats",
    "tier_stats",
    "allocation_churn",
    "summarize",
]
