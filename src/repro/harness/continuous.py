"""Continuous-learning episodes and the drift scenario.

Harness entry points for :class:`~repro.core.retrain.ContinuousSinanManager`:

* :func:`run_continuous_episode` — one episode with the learning loop
  on, returning the ordinary episode summary plus the model-lifecycle
  record (drift signals, divergences, promotions).
* :func:`run_drift_scenario` — the end-to-end experiment backing the
  pipeline: the same seeded episode with a permanent capacity
  regression (:class:`~repro.sim.behaviors.CapacityDrift`) is run twice,
  once under a frozen incumbent and once under the continuous manager;
  the comparison isolates what detection -> background retrain ->
  shadow -> promotion buys in post-drift QoS attainment.

The retrain worker's boundary data comes from
:class:`BoundaryCollector`, a picklable callable that runs a bandit
exploration sweep against the *drifted* platform (fresh clusters, own
seeds — it never touches the live episode).  Sweeps fan out over the
process pool by default (one worker per CPU, or ``REPRO_JOBS``; pass
``jobs=1`` to force serial) — per-load episodes are independent and
seeded, so the collected dataset is bit-identical at any worker count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.data_collection import (
    BanditPolicyFactory,
    CollectionConfig,
    DataCollector,
)
from repro.core.predictor import HybridPredictor
from repro.core.qos import QoSTarget
from repro.core.retrain import (
    ContinuousSinanManager,
    PromotionGate,
    RetrainConfig,
)
from repro.core.scheduler import SchedulerConfig
from repro.core.sinan import SinanManager
from repro.harness.experiment import EpisodeResult, run_episode
from repro.harness.pipeline import make_cluster
from repro.obs.audit import EVENT_PROMOTED, ModelEventRecord
from repro.sim.behaviors import CapacityDrift
from repro.sim.cluster import ClusterSimulator
from repro.sim.graph import AppGraph


@dataclass(frozen=True)
class _DriftedClusterFactory:
    """Picklable ``(users, seed) -> cluster`` on the post-drift platform."""

    graph: AppGraph
    capacity: float

    def __call__(self, users: float, seed: int) -> ClusterSimulator:
        behaviors = ()
        if self.capacity < 1.0:
            # start=0 / ramp=0: the regression is fully in effect, i.e.
            # collection samples the platform the challenger must learn.
            behaviors = (CapacityDrift(start=0.0, ramp=0.0,
                                       final_capacity=self.capacity),)
        return make_cluster(self.graph, users, seed, behaviors=behaviors)


def _default_jobs() -> int:
    """Default worker count for boundary sweeps: ``REPRO_JOBS`` when set
    (the harness-wide contract, now also honored by ``resolve_jobs`` for
    every ``jobs=None`` call site), otherwise one per CPU.  This helper
    differs from the harness-wide default only when the env var is
    unset: boundary collection fans out per CPU rather than running
    serial, because it is bit-identical at any worker count — fanning
    out by default only changes wall-clock time."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    return int(raw) if raw else 0


@dataclass(frozen=True)
class BoundaryCollector:
    """``collect(seed) -> SinanDataset`` for the retrain worker.

    Runs a fresh bandit-exploration sweep on the (possibly drifted)
    platform.  Everything is seeded from the worker's seed — the live
    episode's RNG and cluster are untouched.
    """

    graph: AppGraph
    qos: QoSTarget
    capacity: float = 1.0
    """Platform capacity the sweep samples (1.0 = nominal)."""
    loads: tuple[float, ...] = (60.0, 120.0, 240.0)
    seconds_per_load: int = 60
    jobs: int | None = None
    """Worker processes for the per-load fan-out.  ``None`` resolves
    through :func:`_default_jobs` (``REPRO_JOBS``, else one per CPU);
    ``1`` forces the inline serial path.  Either way the dataset is
    bit-identical — per-load episodes are independent and seeded."""
    cluster_factory: object = None
    """Optional picklable ``(users, seed) -> cluster`` override for
    applications outside the harness registry (it should already apply
    the drifted platform)."""

    def __call__(self, seed: int):
        config = CollectionConfig(qos=self.qos)
        factory = self.cluster_factory or _DriftedClusterFactory(
            self.graph, self.capacity
        )
        collector = DataCollector(factory, config)
        result = collector.collect(
            loads=list(self.loads),
            seconds_per_load=self.seconds_per_load,
            seed=seed,
            policy_factory=BanditPolicyFactory(config),
            jobs=self.jobs if self.jobs is not None else _default_jobs(),
        )
        return result.dataset


@dataclass
class ContinuousResult:
    """One continuous-learning episode and its model lifecycle."""

    episode: EpisodeResult
    events: list = field(default_factory=list)
    """Interleaved model-event / divergence records, decision order."""
    drift_signals: list = field(default_factory=list)
    promotions: int = 0
    retrains: int = 0
    final_state: str = "monitor"

    @property
    def promotion_interval(self) -> int | None:
        """Decision index of the first promotion, or ``None``."""
        for record in self.events:
            if (
                isinstance(record, ModelEventRecord)
                and record.event == EVENT_PROMOTED
            ):
                return record.interval
        return None

    @property
    def divergences(self) -> int:
        return sum(
            1 for r in self.events if not isinstance(r, ModelEventRecord)
        )


def run_continuous_episode(
    manager: ContinuousSinanManager,
    cluster: ClusterSimulator,
    duration: int,
    qos: QoSTarget,
    warmup: int = 10,
    recorder=None,
) -> ContinuousResult:
    """One episode under the continuous-learning manager.

    Same loop as :func:`~repro.harness.experiment.run_episode` — the
    learning machinery lives inside ``manager.decide`` — plus the
    model-lifecycle stream in the result.
    """
    episode = run_episode(
        manager, cluster, duration, qos, warmup=warmup, recorder=recorder
    )
    return ContinuousResult(
        episode=episode,
        events=list(manager.events),
        drift_signals=list(manager.detector.signals),
        promotions=manager.promotions,
        retrains=manager.retrains,
        final_state=manager.state,
    )


@dataclass
class DriftScenarioResult:
    """Frozen-vs-continuous comparison on the same seeded drift episode."""

    continuous: ContinuousResult
    frozen: EpisodeResult
    qos_ms: float
    post_start: int
    """First interval of the post-promotion comparison window."""
    frozen_post_qos: float
    """Frozen incumbent's QoS attainment over the window."""
    continuous_post_qos: float
    """Continuous manager's QoS attainment over the same window."""

    @property
    def qos_gain(self) -> float:
        return self.continuous_post_qos - self.frozen_post_qos


def _qos_fraction(telemetry, qos: QoSTarget, start: int) -> float:
    p99 = np.array([qos.latency_of(s) for s in telemetry])[start:]
    if len(p99) == 0:
        return float("nan")
    return float(np.mean(p99 <= qos.latency_ms))


def scenario_scheduler_config(trust_threshold: int = 10**6) -> SchedulerConfig:
    """Scheduler config for drift studies: calibrated thresholds
    (``p_down``/``p_up`` from the model, so recalibration is visible in
    behavior) and an effectively unlimited trust threshold (the paper's
    deployments never had to drop trust; a frozen incumbent that merely
    goes conservative would mask the comparison)."""
    return SchedulerConfig(p_down=None, p_up=None, trust_threshold=trust_threshold)


def run_drift_scenario(
    predictor: HybridPredictor,
    graph: AppGraph,
    qos: QoSTarget,
    users: float,
    duration: int,
    seed: int = 0,
    drift: CapacityDrift | None = None,
    collect=None,
    drift_config=None,
    retrain_config: RetrainConfig | None = None,
    gate: PromotionGate | None = None,
    scheduler_config: SchedulerConfig | None = None,
    cluster_factory=None,
    registry=None,
    warmup: int = 10,
    recorder=None,
) -> DriftScenarioResult:
    """Run the end-to-end drift experiment on paired seeded episodes.

    Both arms see the identical cluster (same seed, same
    :class:`CapacityDrift`); the frozen arm keeps its deploy-time model
    for the whole episode, the continuous arm may detect, retrain in the
    background, shadow, and promote.  The result compares QoS attainment
    over the window starting at the continuous arm's first promotion
    (falling back to the second half of the episode if nothing was
    promoted, so the comparison never silently degenerates).

    ``cluster_factory`` — ``(users, seed, behaviors) -> cluster`` — lets
    applications outside the harness registry (the tests' tiny app) run
    the scenario; the default builds registry clusters.
    """
    drift = drift or CapacityDrift(start=60.0, ramp=30.0, final_capacity=0.55)
    scheduler_config = scheduler_config or scenario_scheduler_config()
    if collect is None:
        collect = BoundaryCollector(
            graph, qos,
            capacity=drift.final_capacity,
            loads=(users * 0.6, users, users * 1.5),
        )

    def episode_cluster() -> ClusterSimulator:
        if cluster_factory is not None:
            return cluster_factory(users, seed, (drift,))
        return make_cluster(graph, users, seed, behaviors=(drift,))

    frozen_manager = SinanManager(
        predictor, qos, graph, scheduler_config=scheduler_config
    )
    frozen = run_episode(
        frozen_manager, episode_cluster(), duration, qos, warmup=warmup
    )

    manager = ContinuousSinanManager(
        predictor,
        qos,
        collect=collect,
        graph=graph,
        scheduler_config=scheduler_config,
        drift_config=drift_config,
        retrain_config=retrain_config,
        gate=gate,
        registry=registry,
    )
    continuous = run_continuous_episode(
        manager, episode_cluster(), duration, qos, warmup=warmup,
        recorder=recorder,
    )

    promo = continuous.promotion_interval
    post_start = promo + 1 if promo is not None else duration // 2
    return DriftScenarioResult(
        continuous=continuous,
        frozen=frozen,
        qos_ms=qos.latency_ms,
        post_start=post_start,
        frozen_post_qos=_qos_fraction(frozen.telemetry, qos, post_start),
        continuous_post_qos=_qos_fraction(
            continuous.episode.telemetry, qos, post_start
        ),
    )


def format_continuous_report(result: ContinuousResult) -> str:
    """Human-readable episode summary plus the model lifecycle."""
    ep = result.episode
    lines = [
        f"continuous episode: {ep.duration} intervals, "
        f"QoS attainment {ep.qos_fraction:.3f}, "
        f"mean CPU {ep.mean_total_cpu:.1f}",
        f"  drift signals: {len(result.drift_signals)}, "
        f"retrains: {result.retrains}, promotions: {result.promotions}, "
        f"shadow divergences: {result.divergences}, "
        f"final state: {result.final_state}",
    ]
    for signal in result.drift_signals:
        lines.append(f"  - {signal.describe()}")
    for record in result.events:
        if isinstance(record, ModelEventRecord):
            why = f" ({record.reason})" if record.reason else ""
            lines.append(
                f"  - interval {record.interval}: model v{record.version} "
                f"{record.event}{why}"
            )
    return "\n".join(lines)


def format_drift_scenario(result: DriftScenarioResult) -> str:
    """Two-arm comparison table for the drift scenario."""
    lines = [
        format_continuous_report(result.continuous),
        f"post-window (from interval {result.post_start}):",
        f"  frozen incumbent QoS attainment:   {result.frozen_post_qos:.3f}",
        f"  continuous manager QoS attainment: {result.continuous_post_qos:.3f}",
        f"  gain: {result.qos_gain:+.3f}",
    ]
    return "\n".join(lines)


__all__ = [
    "BoundaryCollector",
    "ContinuousResult",
    "run_continuous_episode",
    "DriftScenarioResult",
    "run_drift_scenario",
    "scenario_scheduler_config",
    "format_continuous_report",
    "format_drift_scenario",
]
