"""Plain-text report formatting for the benchmark harness.

Each benchmark prints the same rows/series the paper's table or figure
reports, so a run's stdout is directly comparable with the paper.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y") -> str:
    """One figure series as aligned x/y columns."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        y_txt = f"{y:.3f}" if isinstance(y, float) else str(y)
        lines.append(f"  {x!s:>10}  {y_txt}")
    return "\n".join(lines)


__all__ = ["format_table", "format_series"]
