"""Parallel episode harness: fan independent simulations over processes.

Data collection and the Figure-11 sweeps dominate the wall-clock cost of
every benchmark run, yet each of their episodes is an independent,
seeded simulation — the same embarrassingly-parallel structure the paper
exploits by spreading collection across a 4-node cluster (Section 4.2).
This module provides the one fan-out primitive the rest of the harness
shares:

* :func:`run_episodes` executes a list of :class:`EpisodeTask` either
  inline (``jobs=1``, the default) or on a ``ProcessPoolExecutor``.
  Both paths run the *same* per-episode worker function with the same
  per-episode seeds, so results are bit-identical regardless of worker
  count; outcomes are always returned in task order.
* A failed episode is retried once with its seed bumped by
  :data:`RETRY_SEED_BUMP` (a deterministic simulation that crashed will
  crash again under the same seed).  Failures that survive the retry are
  recorded on the :class:`RunSummary` instead of killing the whole run.
* Per-episode progress/timing lines are emitted through the
  ``repro.harness.parallel`` logger (the CLI enables INFO logging) or a
  caller-supplied ``progress`` callback.

Workers are separate processes, so task functions and their keyword
arguments must be picklable: module-level functions and dataclasses,
not closures.  The serial path has no such requirement, which keeps
lambda-based factories in tests and notebooks working unchanged.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable

logger = logging.getLogger(__name__)

#: Seed increment applied when an episode is retried after a failure.
#: Large and prime, so bumped seeds never collide with the sequential
#: per-episode seeds (``seed + i``) of the original schedule.
RETRY_SEED_BUMP = 1_000_003


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count.

    ``None`` means serial (1 worker, run inline), ``0`` means one worker
    per available CPU, any positive value is taken literally.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return int(jobs)


@dataclass(frozen=True)
class EpisodeTask:
    """One independent episode: a picklable function plus its kwargs.

    ``kwargs`` should carry the episode's ``seed`` under the key named
    by ``seed_key`` so the retry path can deterministically re-seed it.
    """

    index: int
    label: str
    fn: Callable[..., Any]
    kwargs: dict
    seed_key: str = "seed"


@dataclass
class EpisodeOutcome:
    """Result (or failure) of one episode, with timing and attempts."""

    index: int
    label: str
    result: Any = None
    error: str | None = None
    attempts: int = 1
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the episode produced a result."""
        return self.error is None


@dataclass
class RunSummary:
    """Outcome of a :func:`run_episodes` call, in task-index order."""

    outcomes: list[EpisodeOutcome] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0

    @property
    def failures(self) -> list[EpisodeOutcome]:
        """Episodes that still failed after the retry."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def results(self) -> list[Any]:
        """Successful episode results, in task order."""
        return [o.result for o in self.outcomes if o.ok]

    def format(self) -> str:
        """One-line human summary (episodes, failures, timing)."""
        n_retried = sum(1 for o in self.outcomes if o.attempts > 1)
        parts = [
            f"{len(self.outcomes)} episodes in {self.wall_seconds:.1f}s",
            f"jobs={self.jobs}",
        ]
        if n_retried:
            parts.append(f"{n_retried} retried")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        return ", ".join(parts)

    def raise_if_no_results(self) -> None:
        """Fail loudly when every episode died (partial runs proceed)."""
        if self.outcomes and not self.results:
            errors = "; ".join(
                f"{o.label}: {o.error}" for o in self.failures[:5]
            )
            raise RuntimeError(f"all {len(self.outcomes)} episodes failed: {errors}")


def _run_task(task: EpisodeTask, retries: int = 1) -> EpisodeOutcome:
    """Execute one task, retrying with a bumped seed on failure.

    Module-level so the process pool can pickle it; also used verbatim
    by the serial path so both produce identical results.
    """
    kwargs = dict(task.kwargs)
    start = time.perf_counter()
    for attempt in range(1, retries + 2):
        try:
            result = task.fn(**kwargs)
            return EpisodeOutcome(
                index=task.index,
                label=task.label,
                result=result,
                attempts=attempt,
                seconds=time.perf_counter() - start,
            )
        except Exception as exc:  # noqa: BLE001 - surfaced in the summary
            error = f"{type(exc).__name__}: {exc}"
            if attempt > retries:
                return EpisodeOutcome(
                    index=task.index,
                    label=task.label,
                    error=error,
                    attempts=attempt,
                    seconds=time.perf_counter() - start,
                )
            if task.seed_key in kwargs:
                kwargs[task.seed_key] = kwargs[task.seed_key] + RETRY_SEED_BUMP
            logger.warning(
                "episode %s failed (%s); retrying with bumped seed", task.label, error
            )
    raise AssertionError("unreachable")  # pragma: no cover


def _log_progress(outcome: EpisodeOutcome, done: int, total: int) -> None:
    status = "ok" if outcome.ok else f"FAILED ({outcome.error})"
    retry = f", attempt {outcome.attempts}" if outcome.attempts > 1 else ""
    logger.info(
        "[%d/%d] %s %s in %.1fs%s", done, total, outcome.label, status,
        outcome.seconds, retry,
    )


def _mp_context() -> mp.context.BaseContext:
    """Pick a start method: env override, else fork (cheap) if available."""
    method = os.environ.get("REPRO_MP_START")
    if method:
        return mp.get_context(method)
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _record_outcome(recorder, outcome: EpisodeOutcome) -> None:
    """Harness-level metrics for one finished episode (wall-clock times
    are real here — the harness is not part of the simulated physics)."""
    recorder.counter("harness_episodes_total")
    if not outcome.ok:
        recorder.counter("harness_episode_failures_total")
    if outcome.attempts > 1:
        recorder.counter(
            "harness_episode_retries_total", float(outcome.attempts - 1)
        )
    recorder.observe(
        "harness_episode_seconds",
        outcome.seconds,
        buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0),
    )


def run_episodes(
    tasks: list[EpisodeTask],
    jobs: int | None = None,
    retries: int = 1,
    progress: Callable[[EpisodeOutcome, int, int], None] | None = None,
    recorder=None,
) -> RunSummary:
    """Run independent episode tasks, serially or on a process pool.

    Parameters
    ----------
    tasks:
        Episodes to run.  Results come back in ``task.index`` order no
        matter the completion order.
    jobs:
        Worker processes (see :func:`resolve_jobs`).  ``jobs=1`` runs
        everything inline in this process — same code path as the
        workers, so results match bit-for-bit.
    retries:
        How many times a failing episode is re-attempted (with its seed
        bumped by :data:`RETRY_SEED_BUMP`).
    progress:
        Callback ``(outcome, n_done, n_total)`` fired as each episode
        finishes; defaults to an INFO log line per episode.
    recorder:
        Optional :class:`repro.obs.Recorder`; when enabled, episode
        counts, failures, retries, and durations land in its metrics
        registry.  Recording happens in this (parent) process only, so
        it works identically for serial and pooled runs.
    """
    n_jobs = resolve_jobs(jobs)
    n_jobs = max(1, min(n_jobs, len(tasks)))
    progress = progress or _log_progress
    record = recorder is not None and recorder.enabled
    if record:
        recorder.gauge("harness_jobs", float(n_jobs))
    start = time.perf_counter()
    outcomes: list[EpisodeOutcome] = []

    if n_jobs == 1:
        for done, task in enumerate(tasks, start=1):
            outcome = _run_task(task, retries=retries)
            outcomes.append(outcome)
            if record:
                _record_outcome(recorder, outcome)
            progress(outcome, done, len(tasks))
    else:
        with ProcessPoolExecutor(
            max_workers=n_jobs, mp_context=_mp_context()
        ) as pool:
            futures = {
                pool.submit(_run_task, task, retries): task for task in tasks
            }
            done = 0
            for future in as_completed(futures):
                task = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:  # pool/pickling failure
                    outcome = EpisodeOutcome(
                        index=task.index,
                        label=task.label,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=1,
                    )
                outcomes.append(outcome)
                done += 1
                if record:
                    _record_outcome(recorder, outcome)
                progress(outcome, done, len(tasks))
        outcomes.sort(key=lambda o: o.index)

    summary = RunSummary(
        outcomes=outcomes, jobs=n_jobs, wall_seconds=time.perf_counter() - start
    )
    logger.info("%s", summary.format())
    return summary


__all__ = [
    "RETRY_SEED_BUMP",
    "EpisodeTask",
    "EpisodeOutcome",
    "RunSummary",
    "resolve_jobs",
    "run_episodes",
]
