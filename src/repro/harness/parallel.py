"""Parallel episode harness: fan independent simulations over processes.

Data collection and the Figure-11 sweeps dominate the wall-clock cost of
every benchmark run, yet each of their episodes is an independent,
seeded simulation — the same embarrassingly-parallel structure the paper
exploits by spreading collection across a 4-node cluster (Section 4.2).
This module provides the one fan-out primitive the rest of the harness
shares:

* :func:`run_episodes` executes a list of :class:`EpisodeTask` either
  inline (``jobs=1``, the default) or on a persistent warm worker pool
  (see :mod:`repro.harness.pool`) that is shared across calls within a
  run and broadcasts heavy model payloads once instead of per task.
  Both paths run the *same* per-episode worker function with the same
  per-episode seeds, so results are bit-identical regardless of worker
  count; outcomes are always returned in task order.
* A failed episode is retried once with its seed bumped by
  :data:`RETRY_SEED_BUMP` (a deterministic simulation that crashed will
  crash again under the same seed).  Failures that survive the retry are
  recorded on the :class:`RunSummary` instead of killing the whole run.
* Per-episode progress/timing lines are emitted through the
  ``repro.harness.parallel`` logger (the CLI enables INFO logging) or a
  caller-supplied ``progress`` callback.

Workers are separate processes, so task functions and their keyword
arguments must be picklable: module-level functions and dataclasses,
not closures.  The serial path has no such requirement, which keeps
lambda-based factories in tests and notebooks working unchanged.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

logger = logging.getLogger(__name__)

#: Seed increment applied when an episode is retried after a failure.
#: Large and prime, so bumped seeds never collide with the sequential
#: per-episode seeds (``seed + i``) of the original schedule.
RETRY_SEED_BUMP = 1_000_003


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count.

    ``None`` consults the ``REPRO_JOBS`` environment variable (the
    harness-wide contract, shared by every ``jobs=None`` call site) and
    falls back to serial (1 worker, run inline) when it is unset or
    empty; ``0`` — literal or via the env var — means one worker per
    available CPU, any positive value is taken literally.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return int(jobs)


@dataclass(frozen=True)
class EpisodeTask:
    """One independent episode: a picklable function plus its kwargs.

    ``kwargs`` should carry the episode's ``seed`` under the key named
    by ``seed_key`` so the retry path can deterministically re-seed it.
    """

    index: int
    label: str
    fn: Callable[..., Any]
    kwargs: dict
    seed_key: str = "seed"


@dataclass
class EpisodeOutcome:
    """Result (or failure) of one episode, with timing and attempts."""

    index: int
    label: str
    result: Any = None
    error: str | None = None
    attempts: int = 1
    seconds: float = 0.0

    warnings: list[str] = field(default_factory=list)
    """Worker-side retry/recovery messages.  Under ``spawn`` a worker's
    own log records never reach the parent, so the dispatcher re-logs
    these when the outcome arrives (see :func:`run_episodes`)."""

    model_cache_hits: int = 0
    """Broadcast payloads this episode resolved from its worker's
    deserialized-model cache (see :mod:`repro.harness.pool`)."""

    model_cache_misses: int = 0
    """Broadcast payloads the worker had to attach + deserialize."""

    @property
    def ok(self) -> bool:
        """Whether the episode produced a result."""
        return self.error is None


@dataclass
class RunSummary:
    """Outcome of a :func:`run_episodes` call, in task-index order."""

    outcomes: list[EpisodeOutcome] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0

    pool_reused: bool = False
    """Whether a warm worker pool from an earlier call served this run."""

    broadcast_bytes: int = 0
    """Bytes newly published to shared memory for this run (0 when every
    model was already broadcast by an earlier call, or none was used)."""

    broadcast_publishes: int = 0
    model_cache_hits: int = 0
    model_cache_misses: int = 0
    recovered_inline: int = 0
    """Tasks whose pool-level dispatch failed (worker crash, unpicklable
    payload/result) and that were re-run inline in the parent."""

    @property
    def failures(self) -> list[EpisodeOutcome]:
        """Episodes that still failed after the retry."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def results(self) -> list[Any]:
        """Successful episode results, in task order."""
        return [o.result for o in self.outcomes if o.ok]

    def format(self) -> str:
        """One-line human summary (episodes, failures, timing)."""
        n_retried = sum(1 for o in self.outcomes if o.attempts > 1)
        parts = [
            f"{len(self.outcomes)} episodes in {self.wall_seconds:.1f}s",
            f"jobs={self.jobs}",
        ]
        if n_retried:
            parts.append(f"{n_retried} retried")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        return ", ".join(parts)

    def raise_if_no_results(self) -> None:
        """Fail loudly when every episode died (partial runs proceed)."""
        if self.outcomes and not self.results:
            errors = "; ".join(
                f"{o.label}: {o.error}" for o in self.failures[:5]
            )
            raise RuntimeError(f"all {len(self.outcomes)} episodes failed: {errors}")


def _run_task(task: EpisodeTask, retries: int = 1) -> EpisodeOutcome:
    """Execute one task, retrying with a bumped seed on failure.

    Module-level so the process pool can pickle it; also used verbatim
    by the serial path so both produce identical results.
    """
    kwargs = dict(task.kwargs)
    start = time.perf_counter()
    warnings: list[str] = []
    for attempt in range(1, retries + 2):
        try:
            result = task.fn(**kwargs)
            return EpisodeOutcome(
                index=task.index,
                label=task.label,
                result=result,
                attempts=attempt,
                seconds=time.perf_counter() - start,
                warnings=warnings,
            )
        except Exception as exc:  # noqa: BLE001 - surfaced in the summary
            error = f"{type(exc).__name__}: {exc}"
            if attempt > retries:
                return EpisodeOutcome(
                    index=task.index,
                    label=task.label,
                    error=error,
                    attempts=attempt,
                    seconds=time.perf_counter() - start,
                    warnings=warnings,
                )
            if task.seed_key in kwargs:
                kwargs[task.seed_key] = kwargs[task.seed_key] + RETRY_SEED_BUMP
            # Recorded on the outcome (not logged here): under ``spawn``
            # a worker-side log line dies with the worker, so the parent
            # re-emits these when the outcome comes back.
            warnings.append(f"failed ({error}); retrying with bumped seed")
    raise AssertionError("unreachable")  # pragma: no cover


def _emit_warnings(outcome: EpisodeOutcome) -> None:
    """Re-log worker-side retry/recovery messages in the parent."""
    for message in outcome.warnings:
        logger.warning("episode %s: %s", outcome.label, message)


def _log_progress(outcome: EpisodeOutcome, done: int, total: int) -> None:
    status = "ok" if outcome.ok else f"FAILED ({outcome.error})"
    retry = f", attempt {outcome.attempts}" if outcome.attempts > 1 else ""
    logger.info(
        "[%d/%d] %s %s in %.1fs%s", done, total, outcome.label, status,
        outcome.seconds, retry,
    )


def _mp_context() -> mp.context.BaseContext:
    """Pick a start method: env override, else fork (cheap) if available."""
    method = os.environ.get("REPRO_MP_START")
    if method:
        return mp.get_context(method)
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _record_outcome(recorder, outcome: EpisodeOutcome) -> None:
    """Harness-level metrics for one finished episode (wall-clock times
    are real here — the harness is not part of the simulated physics)."""
    recorder.counter("harness_episodes_total")
    if not outcome.ok:
        recorder.counter("harness_episode_failures_total")
    if outcome.attempts > 1:
        recorder.counter(
            "harness_episode_retries_total", float(outcome.attempts - 1)
        )
    recorder.observe(
        "harness_episode_seconds",
        outcome.seconds,
        buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0),
    )


def _warm_pool_default() -> bool:
    """Warm-pool escape hatch: ``REPRO_WARM_POOL=0`` restores the
    legacy cold-pool-per-call, payload-per-task behavior."""
    raw = os.environ.get("REPRO_WARM_POOL", "").strip().lower()
    return raw not in ("0", "false", "off")


def run_episodes(
    tasks: list[EpisodeTask],
    jobs: int | None = None,
    retries: int = 1,
    progress: Callable[[EpisodeOutcome, int, int], None] | None = None,
    recorder=None,
    pool=None,
    warm_pool: bool | None = None,
) -> RunSummary:
    """Run independent episode tasks, serially or on a worker pool.

    Parameters
    ----------
    tasks:
        Episodes to run.  Results come back in ``task.index`` order no
        matter the completion order.
    jobs:
        Worker processes (see :func:`resolve_jobs`; ``None`` honors
        ``REPRO_JOBS``).  ``jobs=1`` runs everything inline in this
        process — same code path as the workers, so results match
        bit-for-bit.
    retries:
        How many times a failing episode is re-attempted (with its seed
        bumped by :data:`RETRY_SEED_BUMP`).
    progress:
        Callback ``(outcome, n_done, n_total)`` fired as each episode
        finishes; defaults to an INFO log line per episode.
    recorder:
        Optional :class:`repro.obs.Recorder`; when enabled, episode
        counts, failures, retries, durations, and the pool's
        reuse/broadcast counters land in its metrics registry.
        Recording happens in this (parent) process only, so it works
        identically for serial and pooled runs.
    pool:
        Explicit :class:`repro.harness.pool.WorkerPool` to run on.
        Forces pooled execution even when ``jobs`` resolves to 1 (used
        by the sweep benchmark to compare pool configurations); the
        caller keeps ownership — the pool is not closed here.
    warm_pool:
        ``True`` (default, or ``REPRO_WARM_POOL`` unset) reuses the
        process-wide shared warm pool across calls and broadcasts model
        payloads once via shared memory; ``False`` spins up a transient
        cold pool with per-task payloads (the pre-warm-pool behavior).
        Either way results are bit-identical — only wall-clock changes.
    """
    n_jobs = resolve_jobs(jobs)
    n_jobs = max(1, min(n_jobs, len(tasks)))
    progress = progress or _log_progress
    record = recorder is not None and recorder.enabled
    if record:
        recorder.gauge("harness_jobs", float(n_jobs))
    start = time.perf_counter()
    stats = None

    if n_jobs == 1 and pool is None:
        outcomes: list[EpisodeOutcome] = []
        for done, task in enumerate(tasks, start=1):
            outcome = _run_task(task, retries=retries)
            _emit_warnings(outcome)
            outcomes.append(outcome)
            if record:
                _record_outcome(recorder, outcome)
            progress(outcome, done, len(tasks))
    else:
        from repro.harness import pool as pool_mod

        if warm_pool is None:
            warm_pool = _warm_pool_default()
        if pool is not None:
            outcomes, stats = pool.run(
                tasks, n_jobs=n_jobs, retries=retries, progress=progress,
                recorder=recorder,
            )
        elif warm_pool:
            outcomes, stats = pool_mod.shared_pool(n_jobs).run(
                tasks, n_jobs=n_jobs, retries=retries, progress=progress,
                recorder=recorder,
            )
        else:
            with pool_mod.WorkerPool(jobs=n_jobs, broadcast=False) as cold:
                outcomes, stats = cold.run(
                    tasks, n_jobs=n_jobs, retries=retries, progress=progress,
                    recorder=recorder,
                )

    summary = RunSummary(
        outcomes=outcomes, jobs=n_jobs, wall_seconds=time.perf_counter() - start
    )
    if stats is not None:
        summary.pool_reused = stats.reused
        summary.broadcast_bytes = stats.broadcast_bytes
        summary.broadcast_publishes = stats.broadcast_publishes
        summary.model_cache_hits = stats.cache_hits
        summary.model_cache_misses = stats.cache_misses
        summary.recovered_inline = stats.recovered_inline
    logger.info("%s", summary.format())
    return summary


__all__ = [
    "RETRY_SEED_BUMP",
    "EpisodeTask",
    "EpisodeOutcome",
    "RunSummary",
    "resolve_jobs",
    "run_episodes",
]
