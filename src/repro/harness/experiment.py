"""Deployment episodes: one manager driving one cluster.

Mirrors the paper's evaluation loop (Section 5.3): the manager is
queried once per 1 s interval; the episode records the aggregate CPU
allocation over time and the fraction of intervals meeting QoS — the
three panels of paper Figure 11 (mean CPU, max CPU, P(meet QoS)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.manager import Manager
from repro.core.qos import QoSTarget
from repro.harness.parallel import EpisodeTask, run_episodes
from repro.sim.cluster import ClusterSimulator
from repro.sim.telemetry import TelemetryLog


@dataclass
class EpisodeResult:
    """Summary of one manager/load episode."""

    manager_name: str
    users: float
    qos_ms: float
    mean_total_cpu: float
    max_total_cpu: float
    qos_fraction: float
    duration: int
    telemetry: TelemetryLog

    def row(self) -> list:
        """Table row for reporting."""
        return [
            self.manager_name,
            f"{self.users:g}",
            f"{self.mean_total_cpu:.1f}",
            f"{self.max_total_cpu:.1f}",
            f"{self.qos_fraction:.3f}",
        ]


def run_episode(
    manager: Manager,
    cluster: ClusterSimulator,
    duration: int,
    qos: QoSTarget,
    warmup: int = 10,
    recorder=None,
) -> EpisodeResult:
    """Run ``duration`` decision intervals under ``manager``.

    The first ``warmup`` intervals are excluded from the summary metrics
    (the manager is converging from the deploy-time allocation), but are
    retained in the telemetry log.

    The manager reads the cluster's *observed* telemetry — identical to
    the ground-truth log unless a fault injector is corrupting the
    manager's view — while the summary metrics always score ground
    truth.

    Passing a :class:`repro.obs.Recorder` attaches it to the manager,
    cluster, and predictor for the episode; the default (``None``)
    leaves observability off and the episode bitwise-identical.
    """
    if duration <= warmup:
        raise ValueError("duration must exceed warmup")
    if recorder is not None:
        from repro.obs.recorder import attach_recorder

        attach_recorder(recorder, manager=manager, cluster=cluster)
    manager.reset()
    for _ in range(duration):
        alloc = manager.decide(cluster.observed)
        cluster.step(alloc)

    log = cluster.telemetry
    p99 = np.array([qos.latency_of(s) for s in log])[warmup:]
    total_cpu = log.total_cpu_series()[warmup:]
    users = cluster.workload.pattern.users(0.0)
    return EpisodeResult(
        manager_name=manager.name,
        users=users,
        qos_ms=qos.latency_ms,
        mean_total_cpu=float(total_cpu.mean()),
        max_total_cpu=float(total_cpu.max()),
        qos_fraction=float(np.mean(p99 <= qos.latency_ms)),
        duration=duration,
        telemetry=log,
    )


def _sweep_episode(
    manager_factory: Callable[[], Manager],
    cluster_factory: Callable[[float, int], ClusterSimulator],
    users: float,
    seed: int,
    duration: int,
    qos: QoSTarget,
    warmup: int,
) -> EpisodeResult:
    """One (fresh manager, fresh cluster) episode — picklable worker."""
    manager = manager_factory()
    cluster = cluster_factory(users, seed)
    return run_episode(manager, cluster, duration, qos, warmup)


def sweep_loads(
    manager_factory: Callable[[], Manager],
    cluster_factory: Callable[[float, int], ClusterSimulator],
    loads: list[float],
    duration: int,
    qos: QoSTarget,
    seed: int = 0,
    warmup: int = 10,
    jobs: int | None = None,
    progress=None,
    recorder=None,
) -> list[EpisodeResult]:
    """Run one episode per load level with fresh manager and cluster.

    This is the paper's Figure 11 protocol: for each user count, an
    independent experiment measuring mean/max CPU allocation and the
    probability of meeting QoS.  With ``jobs`` set, episodes fan out
    over worker processes (both factories must then be picklable —
    module-level callables, not lambdas) on the process-wide warm pool
    (:mod:`repro.harness.pool`), so back-to-back sweeps skip the pool
    spin-up; results always come back in load order and are identical
    to the serial run.
    """
    tasks = [
        EpisodeTask(
            index=i,
            label=f"sweep[users={users:g}]",
            fn=_sweep_episode,
            kwargs=dict(
                manager_factory=manager_factory,
                cluster_factory=cluster_factory,
                users=users,
                seed=seed + i,
                duration=duration,
                qos=qos,
                warmup=warmup,
            ),
        )
        for i, users in enumerate(loads)
    ]
    summary = run_episodes(tasks, jobs=jobs, progress=progress, recorder=recorder)
    summary.raise_if_no_results()
    return summary.results


__all__ = ["EpisodeResult", "run_episode", "sweep_loads"]
