"""Terminal-friendly figure rendering (ASCII sparklines and panels).

The benchmark suite and examples print the paper's figures as text; this
module provides the shared rendering helpers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_BLOCKS = " .:-=+*#%@"


def sparkline(
    values: Sequence[float],
    width: int = 48,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render a series as a fixed-width intensity strip.

    ``lo``/``hi`` pin the scale (useful to keep several series
    comparable, e.g. anchoring ``hi`` at the QoS target).
    """
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return " " * width
    idx = np.linspace(0, len(values) - 1, width).astype(int)
    sampled = values[idx]
    lo = float(sampled.min()) if lo is None else lo
    hi = float(sampled.max()) if hi is None else hi
    span = max(hi - lo, 1e-12)
    out = []
    for value in sampled:
        level = (value - lo) / span * (len(_BLOCKS) - 1)
        out.append(_BLOCKS[int(round(min(max(level, 0), len(_BLOCKS) - 1)))])
    return "".join(out)


def timeline_panel(
    title: str,
    series: dict[str, Sequence[float]],
    width: int = 48,
    shared_scale: bool = False,
) -> str:
    """Render several labelled series as aligned sparklines.

    With ``shared_scale`` all series share one (lo, hi) range, so their
    strips are directly comparable.
    """
    lo = hi = None
    if shared_scale and series:
        stacked = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
        lo, hi = float(stacked.min()), float(stacked.max())
    label_width = max((len(name) for name in series), default=0)
    lines = [title]
    for name, values in series.items():
        values = np.asarray(values, dtype=float)
        suffix = f"  [{values.min():.0f}, {values.max():.0f}]"
        lines.append(
            f"  {name.rjust(label_width)}  "
            f"{sparkline(values, width, lo, hi)}{suffix}"
        )
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal ASCII histogram."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return title
    counts, edges = np.histogram(values, bins=bins)
    peak = max(counts.max(), 1)
    lines = [title] if title else []
    for count, lo_edge, hi_edge in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  [{lo_edge:8.1f}, {hi_edge:8.1f})  {bar} {count}")
    return "\n".join(lines)


__all__ = ["sparkline", "timeline_panel", "histogram"]
