"""Scheduler decision audit log: one structured record per decision.

Third pillar of the observability subsystem, and the reproduction of
the explainability angle of the paper's evaluation (Section 7): after
an episode, every allocation can be traced back to *why* it was chosen
— what the scheduler observed, how many candidate actions survived
pruning, which action won, what the CNN/Boosted-Trees scores were, and
whether a safety mechanism (unpredicted-violation boost, max-allocation
fallback) overrode the model.

Records live in a bounded ring buffer (:class:`AuditLog`) so a
long-running deployment holds the most recent window at fixed memory;
eviction is strictly oldest-first.  ``repro audit`` reads the JSONL
export and renders either a one-line-per-decision table or a full
explanation of a single interval.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: ``fallback_reason`` values an :class:`AuditRecord` can carry.
REASON_BOOST = "unpredicted-violation-boost"
REASON_PREDICTOR_FAILURE = "predictor-failure"
REASON_NO_ACCEPTABLE = "no-acceptable-action"

#: ``ModelEventRecord.event`` values (continuous-learning lifecycle).
EVENT_DRIFT = "drift-signal"
EVENT_RETRAIN_STARTED = "retrain-started"
EVENT_SHADOW_STARTED = "shadow-started"
EVENT_PROMOTED = "promoted"
EVENT_REJECTED = "rejected"


@dataclass(frozen=True)
class AuditRecord:
    """Everything needed to explain one scheduler decision."""

    interval: int
    """Decision index within the episode (0-based)."""

    time: float
    """Simulation time (seconds) of the telemetry the decision read."""

    measured_p99_ms: float
    """Observed tail latency driving the safety checks (NaN = unknown)."""

    rps: float
    """Observed offered load in the latest interval."""

    total_cpu: float
    """Aggregate CPU allocation the decision started from."""

    n_candidates: int
    """Candidate actions scored (0 when scoring was skipped)."""

    chosen_kind: str
    """Action kind (``hold`` / ``scale_up`` / ... / ``max-allocation`` /
    ``recovery-boost``)."""

    chosen_total_cpu: float
    """Aggregate CPU of the chosen allocation."""

    predicted_p99_ms: float = float("nan")
    """CNN-predicted tail latency of the chosen action (NaN on safety
    paths that skip scoring)."""

    violation_prob: float = float("nan")
    """Boosted-Trees violation probability of the chosen action."""

    hold_p_ewma: float = float("nan")
    """Smoothed hold-action violation probability after this decision."""

    fallback_reason: str | None = None
    """Why the model's choice was overridden, or ``None``."""

    trusted: bool = True
    mispredictions: int = 0
    cooldown: int = 0
    chosen_alloc: tuple[float, ...] = field(default_factory=tuple)
    """Per-tier cores of the chosen allocation (empty when holding)."""

    tenant: str | None = None
    """Owning tenant in a multi-tenant run (``None`` = single-tenant).
    Stamped by :class:`~repro.obs.recorder.TenantRecorder`."""

    def to_json(self) -> dict:
        out = asdict(self)
        out["chosen_alloc"] = list(self.chosen_alloc)
        return out

    @staticmethod
    def from_json(data: dict) -> "AuditRecord":
        data = dict(data)
        data["chosen_alloc"] = tuple(data.get("chosen_alloc") or ())
        return AuditRecord(**data)


@dataclass(frozen=True)
class DivergenceRecord:
    """Shadow challenger disagreed with the live incumbent.

    Emitted by the continuous-learning shadow phase: the challenger
    scored the same telemetry as the incumbent and would have chosen a
    different action.  The incumbent's decision is what actually ran —
    these records are the evidence the promotion gate (and a human
    reviewing a promotion) judges a candidate model on.
    """

    interval: int
    """Decision index the divergence occurred at."""

    time: float
    """Simulation time (seconds) of the telemetry both models read."""

    challenger_version: int
    """Registry version of the shadow model."""

    incumbent_kind: str
    challenger_kind: str
    incumbent_total_cpu: float
    challenger_total_cpu: float
    incumbent_predicted_p99_ms: float = float("nan")
    challenger_predicted_p99_ms: float = float("nan")
    tenant: str | None = None
    """Owning tenant in a multi-tenant run (``None`` = single-tenant)."""

    def to_json(self) -> dict:
        out = asdict(self)
        out["record"] = "divergence"
        return out

    @staticmethod
    def from_json(data: dict) -> "DivergenceRecord":
        data = {k: v for k, v in data.items() if k != "record"}
        return DivergenceRecord(**data)


@dataclass(frozen=True)
class ModelEventRecord:
    """One model-lifecycle event (drift, retrain, shadow, promotion)."""

    interval: int
    """Decision index at which the event happened."""

    time: float
    """Simulation time (seconds) at the event."""

    event: str
    """One of the ``EVENT_*`` constants."""

    version: int
    """Model registry version the event concerns."""

    reason: str | None = None
    """Why (drift reason, gate verdict), when the event has a cause."""

    detail: str = ""
    """Free-form context (gate metrics, signal values)."""

    tenant: str | None = None
    """Owning tenant in a multi-tenant run (``None`` = single-tenant)."""

    def to_json(self) -> dict:
        out = asdict(self)
        out["record"] = "model-event"
        return out

    @staticmethod
    def from_json(data: dict) -> "ModelEventRecord":
        data = {k: v for k, v in data.items() if k != "record"}
        return ModelEventRecord(**data)


@dataclass(frozen=True)
class ArbitrationRecord:
    """One cluster-level arbitration decision across all tenants.

    Emitted by the multi-tenant :class:`~repro.tenancy.CreditArbiter`
    once per decision interval: what each tenant demanded, what it was
    granted against the shared CPU budget, and the credit balances the
    grants were weighted by.  The per-tenant arrays are aligned with
    :attr:`tenants`.
    """

    interval: int
    """Decision interval the arbitration resolved (0-based)."""

    time: float
    """Simulation time (seconds) of the arbitrated interval."""

    budget_cpu: float
    """Cluster-wide CPU budget (cores) the requests competed for."""

    total_demand: float
    """Sum of the tenants' desired aggregate allocations."""

    total_granted: float
    """Sum of the granted aggregate allocations."""

    contended: bool
    """Whether demand exceeded the budget this interval."""

    mode: str
    """How the interval was resolved (``uncontended`` /
    ``weighted-drf`` / ``knapsack``)."""

    tenants: tuple[str, ...] = field(default_factory=tuple)
    demands: tuple[float, ...] = field(default_factory=tuple)
    grants: tuple[float, ...] = field(default_factory=tuple)
    credits: tuple[float, ...] = field(default_factory=tuple)

    def to_json(self) -> dict:
        out = asdict(self)
        out["record"] = "arbitration"
        for key in ("tenants", "demands", "grants", "credits"):
            out[key] = list(out[key])
        return out

    @staticmethod
    def from_json(data: dict) -> "ArbitrationRecord":
        data = {k: v for k, v in data.items() if k != "record"}
        for key in ("tenants", "demands", "grants", "credits"):
            data[key] = tuple(data.get(key) or ())
        return ArbitrationRecord(**data)


#: JSONL dispatch: the ``record`` tag names the dataclass; plain decision
#: records carry no tag (backward compatible with pre-tag exports).
_RECORD_TYPES = {
    "divergence": DivergenceRecord,
    "model-event": ModelEventRecord,
    "arbitration": ArbitrationRecord,
}


def record_from_json(data: dict):
    """Decode one JSONL line into its record dataclass."""
    kind = data.get("record")
    if kind is None:
        return AuditRecord.from_json(data)
    try:
        cls = _RECORD_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown audit record type {kind!r}") from None
    return cls.from_json(data)


class AuditLog:
    """Bounded ring buffer of audit records; oldest evicted first.

    Holds per-decision :class:`AuditRecord` entries and, interleaved in
    decision order, the continuous-learning :class:`DivergenceRecord` /
    :class:`ModelEventRecord` stream."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[AuditRecord] = deque(maxlen=capacity)
        self.evicted = 0
        """Records dropped (oldest-first) once the buffer filled."""

    def append(self, record: AuditRecord) -> None:
        if len(self._records) == self.capacity:
            self.evicted += 1
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(self) -> list:
        """All records oldest to newest (decisions and model stream)."""
        return list(self._records)

    def decisions(self) -> list[AuditRecord]:
        """Only the per-decision records, oldest to newest."""
        return [r for r in self._records if isinstance(r, AuditRecord)]

    def divergences(self) -> list[DivergenceRecord]:
        """Only the shadow-divergence records, oldest to newest."""
        return [r for r in self._records if isinstance(r, DivergenceRecord)]

    def model_events(self) -> list[ModelEventRecord]:
        """Only the model-lifecycle records, oldest to newest."""
        return [r for r in self._records if isinstance(r, ModelEventRecord)]

    def arbitrations(self) -> list[ArbitrationRecord]:
        """Only the multi-tenant arbitration records, oldest to newest."""
        return [r for r in self._records if isinstance(r, ArbitrationRecord)]

    def find(self, interval: int) -> AuditRecord | None:
        for record in self._records:
            if isinstance(record, AuditRecord) and record.interval == interval:
                return record
        return None

    def clear(self) -> None:
        self._records.clear()
        self.evicted = 0

    # -- persistence ---------------------------------------------------

    def write_jsonl(self, path) -> None:
        lines = [json.dumps(r.to_json()) for r in self._records]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @staticmethod
    def read_jsonl(path) -> "AuditLog":
        text = Path(path).read_text()
        records = [
            record_from_json(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        log = AuditLog(capacity=max(len(records), 1))
        for record in records:
            log.append(record)
        return log


def explain(record: AuditRecord, qos_ms: float | None = None) -> str:
    """Human-readable account of why the recorded action was picked."""
    lines = [
        f"interval {record.interval} (t={record.time:.0f}s)",
        f"  observed: p99={record.measured_p99_ms:.1f}ms, "
        f"rps={record.rps:.0f}, total_cpu={record.total_cpu:.1f}",
    ]
    if qos_ms is not None:
        state = "VIOLATING" if record.measured_p99_ms > qos_ms else "meeting QoS"
        lines[-1] += f" ({state}, QoS={qos_ms:.0f}ms)"
    if record.fallback_reason == REASON_BOOST:
        lines.append(
            "  decision: unpredicted QoS violation -> immediate recovery "
            f"boost to {record.chosen_total_cpu:.1f} cores (candidates not "
            "scored; misprediction counter now "
            f"{record.mispredictions})"
        )
    elif record.fallback_reason == REASON_PREDICTOR_FAILURE:
        lines.append(
            "  decision: predictor raised or returned non-finite scores "
            f"-> max-allocation safety action "
            f"({record.chosen_total_cpu:.1f} cores)"
        )
    elif record.fallback_reason == REASON_NO_ACCEPTABLE:
        lines.append(
            f"  decision: {record.n_candidates} candidates scored, none "
            "acceptable (every action above the latency margin or "
            "violation thresholds) -> max-allocation safety action "
            f"({record.chosen_total_cpu:.1f} cores)"
        )
    else:
        lines.append(
            f"  decision: {record.chosen_kind} chosen from "
            f"{record.n_candidates} candidates -> "
            f"{record.chosen_total_cpu:.1f} cores"
        )
        lines.append(
            f"  model: predicted p99={record.predicted_p99_ms:.1f}ms, "
            f"violation prob={record.violation_prob:.3f} "
            f"(hold EWMA {record.hold_p_ewma:.3f})"
        )
    lines.append(
        f"  safety state: trusted={record.trusted}, "
        f"mispredictions={record.mispredictions}, "
        f"reclaim cooldown={record.cooldown}"
    )
    return "\n".join(lines)


def format_audit_table(records: list) -> str:
    """One line per decision (the ``repro audit`` overview).

    Accepts a mixed stream: shadow divergences and model-lifecycle
    events are rendered as interleaved marker lines."""
    header = (
        f"{'ivl':>5} {'t(s)':>6} {'p99(ms)':>8} {'cands':>5} "
        f"{'chosen':>16} {'cpu':>7} {'p_viol':>7} {'why':<28}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        if isinstance(r, DivergenceRecord):
            lines.append(
                f"{r.interval:>5} {r.time:>6.0f}   ~ shadow "
                f"v{r.challenger_version} diverged: "
                f"{r.challenger_kind} ({r.challenger_total_cpu:.1f} cpu) "
                f"vs live {r.incumbent_kind} "
                f"({r.incumbent_total_cpu:.1f} cpu)"
            )
        elif isinstance(r, ModelEventRecord):
            why = f": {r.reason}" if r.reason else ""
            lines.append(
                f"{r.interval:>5} {r.time:>6.0f}   * model v{r.version} "
                f"{r.event}{why}"
            )
        elif isinstance(r, ArbitrationRecord):
            shares = ", ".join(
                f"{name}={grant:.0f}/{demand:.0f}"
                for name, grant, demand in zip(r.tenants, r.grants, r.demands)
            )
            mode = f"{r.mode}, contended" if r.contended else r.mode
            lines.append(
                f"{r.interval:>5} {r.time:>6.0f}   # arbiter "
                f"{r.total_granted:.0f}/{r.total_demand:.0f} of "
                f"{r.budget_cpu:.0f} cores ({mode}): {shares}"
            )
        else:
            lines.append(
                f"{r.interval:>5} {r.time:>6.0f} {r.measured_p99_ms:>8.1f} "
                f"{r.n_candidates:>5} {r.chosen_kind:>16} "
                f"{r.chosen_total_cpu:>7.1f} "
                f"{r.violation_prob:>7.3f} {(r.fallback_reason or '-'):<28}"
            )
    return "\n".join(lines)


__all__ = [
    "AuditRecord",
    "DivergenceRecord",
    "ModelEventRecord",
    "ArbitrationRecord",
    "AuditLog",
    "explain",
    "format_audit_table",
    "record_from_json",
    "REASON_BOOST",
    "REASON_PREDICTOR_FAILURE",
    "REASON_NO_ACCEPTABLE",
    "EVENT_DRIFT",
    "EVENT_RETRAIN_STARTED",
    "EVENT_SHADOW_STARTED",
    "EVENT_PROMOTED",
    "EVENT_REJECTED",
]
