"""Observability subsystem: metrics, tracing, and decision audit.

Zero-dependency instrumentation for the Sinan reproduction, in three
pillars plus a dispatch handle:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms with O(1) record, exported as Prometheus text or JSON;
* :mod:`repro.obs.tracing` — spans on explicit simulation-time clocks,
  exported as JSONL or Chrome ``trace_event`` JSON (Perfetto-loadable);
* :mod:`repro.obs.audit` — one structured record per scheduler
  decision in a bounded ring buffer, inspectable via ``repro audit``;
* :mod:`repro.obs.recorder` — the :class:`Recorder` handle every
  instrumented component reports through.  The default is a shared
  no-op (:data:`NULL_RECORDER`): with observability off, instrumented
  code paths produce bitwise-identical outputs and their overhead is a
  single attribute check per report site.

Attach an :class:`ActiveRecorder` with :func:`attach_recorder` (or the
``recorder`` keyword of the episode runners / ``repro run --trace``)
to collect everything for one episode.
"""

from repro.obs.audit import (
    ArbitrationRecord,
    AuditLog,
    AuditRecord,
    DivergenceRecord,
    ModelEventRecord,
    explain,
    format_audit_table,
    record_from_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    ActiveRecorder,
    Recorder,
    TenantRecorder,
    attach_recorder,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "ArbitrationRecord",
    "AuditLog",
    "AuditRecord",
    "DivergenceRecord",
    "ModelEventRecord",
    "explain",
    "format_audit_table",
    "record_from_json",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Recorder",
    "ActiveRecorder",
    "TenantRecorder",
    "NULL_RECORDER",
    "attach_recorder",
    "Span",
    "Tracer",
]
