"""Request/decision tracing: lightweight spans on explicit clocks.

Second pillar of the observability subsystem.  A :class:`Span` is a
closed interval on a named *track* (one row in a trace viewer):
scheduler decisions land on the ``scheduler`` track, sampled tier
visits on one track per tier.  Timestamps are **explicit** — callers
pass simulation time in seconds; the tracer never reads a wall clock,
so tracing a deterministic episode yields a deterministic artifact and
the hot paths stay free of ``time.time()``-style syscalls.

Exports:

* :meth:`Tracer.write_jsonl` — one JSON object per line, trivially
  greppable/streamable;
* :meth:`Tracer.write_chrome` / :meth:`Tracer.to_chrome` — the Chrome
  ``trace_event`` format (complete ``"ph": "X"`` events plus
  ``thread_name`` metadata per track), loadable in ``chrome://tracing``
  and Perfetto.

Sampling is deterministic: :meth:`Tracer.sampled` keeps every
``sample_every``-th index, so two runs of the same episode sample the
same intervals/requests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Synthetic process id used in Chrome trace events (one simulated
#: cluster = one "process").
TRACE_PID = 1


@dataclass(frozen=True)
class Span:
    """One completed interval of work on a track."""

    name: str
    ts_us: int
    """Start, microseconds of simulation time."""

    dur_us: int
    """Duration in microseconds (>= 0)."""

    track: str = "main"
    cat: str = ""
    args: dict | None = None

    def to_json(self) -> dict:
        out = {
            "name": self.name,
            "track": self.track,
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
        }
        if self.cat:
            out["cat"] = self.cat
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Collects spans with deterministic sampling and bounded size."""

    def __init__(self, sample_every: int = 1, max_spans: int = 200_000) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._tracks: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.spans)

    def sampled(self, index: int) -> bool:
        """Deterministic keep/drop decision for the ``index``-th unit."""
        return index % self.sample_every == 0

    def span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        track: str = "main",
        cat: str = "",
        args: dict | None = None,
    ) -> None:
        """Record one completed span; clocks are caller-supplied seconds
        (simulation time), never read from the host."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(
            name=name,
            ts_us=int(round(start_s * 1e6)),
            dur_us=max(int(round(duration_s * 1e6)), 0),
            track=track,
            cat=cat,
            args=args,
        ))

    def _track_id(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = self._tracks[track] = len(self._tracks) + 1
        return tid

    # -- exporters -----------------------------------------------------

    def _ordered(self) -> list[Span]:
        """Spans in start-time order (stable for ties).

        Spans can be *recorded* out of time order — e.g. a request span
        is emitted at completion but timestamped at arrival — so the
        exporters re-sort to keep each track monotonic.
        """
        return sorted(self.spans, key=lambda s: s.ts_us)

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` JSON (complete events + track names)."""
        events: list[dict] = []
        for span in self._ordered():
            event = {
                "name": span.name,
                "ph": "X",
                "ts": span.ts_us,
                "dur": span.dur_us,
                "pid": TRACE_PID,
                "tid": self._track_id(span.track),
            }
            if span.cat:
                event["cat"] = span.cat
            if span.args:
                event["args"] = span.args
            events.append(event)
        for track, tid in sorted(self._tracks.items(), key=lambda kv: kv[1]):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_chrome()) + "\n")

    def to_jsonl_lines(self) -> list[str]:
        return [json.dumps(span.to_json()) for span in self._ordered()]

    def write_jsonl(self, path) -> None:
        lines = self.to_jsonl_lines()
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    def write(self, path) -> None:
        """Write to ``path``: ``.jsonl`` gets the line format, anything
        else the Chrome ``trace_event`` JSON."""
        path = Path(path)
        if path.suffix == ".jsonl":
            self.write_jsonl(path)
        else:
            self.write_chrome(path)


__all__ = ["Span", "Tracer", "TRACE_PID"]
