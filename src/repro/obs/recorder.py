"""The ``Recorder`` handle: how instrumented code reports, if at all.

Every instrumentation point in the simulator, scheduler, predictor, and
harness goes through a :class:`Recorder`.  The base class is a no-op
with ``enabled = False``; hot paths guard their reporting with a single
``if recorder.enabled:`` check, so with observability off (the default)
the decision and simulation paths do no extra work beyond that branch —
outputs are bitwise identical to an uninstrumented build, and the
overhead stays within timing noise (checked by
``benchmarks/test_obs_overhead.py``).

:class:`ActiveRecorder` wires the three pillars together — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and an
:class:`~repro.obs.audit.AuditLog` — any of which may be disabled
individually by passing ``None``.

Recorders are attached *after* construction via :func:`attach_recorder`
(or the ``recorder`` keyword on episode runners), so no constructor in
the sim/core layers needs to grow an argument and previously pickled
objects keep working: instrumented code reads the attribute defensively
and treats its absence as "off".
"""

from __future__ import annotations

from repro.obs.audit import AuditLog, AuditRecord
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.tracing import Tracer


class Recorder:
    """No-op recorder; the default for every instrumented component.

    All reporting methods do nothing.  Subclasses flip :attr:`enabled`
    and implement the pillars; instrumented code must check ``enabled``
    before doing any work to *prepare* a report (building label dicts,
    reading clocks, stacking arrays), so the disabled path costs one
    attribute read and one branch.
    """

    enabled = False
    metrics: MetricsRegistry | None = None
    tracer: Tracer | None = None
    audit_log: AuditLog | None = None

    def counter(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Increment a counter (no-op here)."""

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge (no-op here)."""

    def observe(self, name: str, value: float, buckets=DEFAULT_BUCKETS,
                **labels: str) -> None:
        """Record one histogram sample (no-op here)."""

    def observe_many(self, name: str, values, buckets=DEFAULT_BUCKETS,
                     **labels: str) -> None:
        """Record a batch of histogram samples (no-op here)."""

    def span(self, name: str, start_s: float, duration_s: float,
             track: str = "main", cat: str = "", args: dict | None = None) -> None:
        """Record a completed span on a simulation-time clock (no-op)."""

    def audit(self, record: AuditRecord) -> None:
        """Append a decision audit record (no-op here)."""

    def sampled(self, index: int) -> bool:
        """Whether the ``index``-th sampling unit is traced (never,
        here)."""
        return False


#: Shared no-op instance; safe to attach everywhere (it holds no state).
NULL_RECORDER = Recorder()


class ActiveRecorder(Recorder):
    """Recorder that actually records, into any subset of the pillars."""

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        audit_log: AuditLog | None = None,
        sample_every: int = 1,
        all_pillars: bool = True,
    ) -> None:
        """With ``all_pillars`` (default), missing pillars are created;
        pass ``all_pillars=False`` to record only what was given."""
        if all_pillars:
            metrics = metrics or MetricsRegistry()
            tracer = tracer or Tracer(sample_every=sample_every)
            audit_log = audit_log or AuditLog()
        self.metrics = metrics
        self.tracer = tracer
        self.audit_log = audit_log

    def counter(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, buckets=DEFAULT_BUCKETS,
                **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name, buckets=buckets, **labels).observe(value)

    def observe_many(self, name: str, values, buckets=DEFAULT_BUCKETS,
                     **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name, buckets=buckets, **labels).observe_many(
                values
            )

    def span(self, name: str, start_s: float, duration_s: float,
             track: str = "main", cat: str = "", args: dict | None = None) -> None:
        if self.tracer is not None:
            self.tracer.span(name, start_s, duration_s, track=track, cat=cat,
                             args=args)

    def audit(self, record: AuditRecord) -> None:
        if self.audit_log is not None:
            self.audit_log.append(record)

    def sampled(self, index: int) -> bool:
        return self.tracer is not None and self.tracer.sampled(index)


class TenantRecorder(Recorder):
    """Per-tenant view of a shared recorder.

    Multi-tenant runs attach one of these to each tenant's manager,
    scheduler, predictor, and cluster: every metric the component
    reports gains a ``tenant=<name>`` label, spans land on a
    tenant-prefixed track, and audit records that carry a ``tenant``
    field are stamped with the tenant id before they reach the shared
    :class:`~repro.obs.audit.AuditLog`.  The underlying pillars are the
    base recorder's, so one export holds every tenant, separable by
    label.
    """

    def __init__(self, base: Recorder, tenant: str) -> None:
        self.base = base
        self.tenant = tenant
        self.enabled = base.enabled
        self.metrics = base.metrics
        self.tracer = base.tracer
        self.audit_log = base.audit_log

    def counter(self, name: str, amount: float = 1.0, **labels: str) -> None:
        labels.setdefault("tenant", self.tenant)
        self.base.counter(name, amount, **labels)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        labels.setdefault("tenant", self.tenant)
        self.base.gauge(name, value, **labels)

    def observe(self, name: str, value: float, buckets=DEFAULT_BUCKETS,
                **labels: str) -> None:
        labels.setdefault("tenant", self.tenant)
        self.base.observe(name, value, buckets, **labels)

    def observe_many(self, name: str, values, buckets=DEFAULT_BUCKETS,
                     **labels: str) -> None:
        labels.setdefault("tenant", self.tenant)
        self.base.observe_many(name, values, buckets, **labels)

    def span(self, name: str, start_s: float, duration_s: float,
             track: str = "main", cat: str = "", args: dict | None = None) -> None:
        self.base.span(name, start_s, duration_s,
                       track=f"{self.tenant}/{track}", cat=cat, args=args)

    def audit(self, record) -> None:
        if getattr(record, "tenant", "set") is None:
            import dataclasses

            record = dataclasses.replace(record, tenant=self.tenant)
        self.base.audit(record)

    def sampled(self, index: int) -> bool:
        return self.base.sampled(index)


def attach_recorder(
    recorder: Recorder,
    manager=None,
    cluster=None,
    predictor=None,
) -> Recorder:
    """Point existing components at ``recorder`` and return it.

    Attaches to whatever is passed: a manager (and, through it, its
    scheduler and predictor), a cluster (and its engine), or a bare
    predictor.  Components without an instrumentation surface (the
    static/autoscaling baselines) are silently skipped, so episode
    runners can call this unconditionally.
    """
    if cluster is not None:
        cluster.recorder = recorder
        engine = getattr(cluster, "engine", None)
        if engine is not None:
            engine.recorder = recorder
    if manager is not None:
        scheduler = getattr(manager, "scheduler", None)
        if scheduler is not None:
            scheduler.recorder = recorder
        if predictor is None:
            predictor = getattr(manager, "predictor", None)
    if predictor is not None:
        predictor.recorder = recorder
    return recorder


__all__ = [
    "Recorder",
    "ActiveRecorder",
    "TenantRecorder",
    "NULL_RECORDER",
    "attach_recorder",
]
