"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the first pillar of the observability subsystem.  It is
deliberately tiny and dependency-free: instruments are plain Python
objects updated in place, so recording a sample costs a dict lookup (or
nothing, when the caller caches the instrument handle) plus an O(1)
update — a histogram record is one ``bisect`` over its *fixed* bucket
bounds, independent of how many samples were recorded before it.

Instruments are identified by ``(name, sorted label pairs)``, the same
model Prometheus uses.  Two exporters are provided:

* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` comments, one
  ``name{labels} value`` line per sample, cumulative ``_bucket`` lines
  with an ``+Inf`` terminator for histograms);
* :meth:`MetricsRegistry.to_json` — a stable JSON rendering of
  :meth:`MetricsRegistry.snapshot`.

Both renderings are sorted (by metric name, then label values), so the
output is deterministic for a deterministic run.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

#: Default histogram bucket upper bounds (generic latency-ish scale,
#: milliseconds or seconds alike); callers pick their own per metric.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with O(1) record.

    ``bounds`` are the ascending bucket *upper* bounds; an implicit
    ``+Inf`` bucket catches everything above the last bound.  Recording
    is a single bisect over the fixed bound tuple — its cost never
    depends on how much data the histogram already holds.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly ascending: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values) -> None:
        """Vectorized :meth:`observe` for a batch (e.g. per-candidate
        predictor scores): one ``searchsorted`` instead of B bisects."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.bounds, arr, side="left")
        for i, n in zip(*np.unique(idx, return_counts=True)):
            self.counts[int(i)] += int(n)
        self.sum += float(arr.sum())
        self.count += int(arr.size)

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (ending at +Inf)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


@dataclass
class _Family:
    """All instruments sharing one metric name."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    buckets: tuple[float, ...] | None = None
    instruments: dict[_LabelKey, Counter | Gauge | Histogram] = field(
        default_factory=dict
    )


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


class MetricsRegistry:
    """Registry of named, labeled instruments with snapshot/reset."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -- get-or-create -------------------------------------------------

    def _family(
        self, name: str, kind: str, help: str, buckets: tuple[float, ...] | None
    ) -> _Family:
        if not name or set(name) - _NAME_OK or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name=name, kind=kind, help=help, buckets=buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        family = self._family(name, "counter", help, None)
        key = _label_key(labels)
        inst = family.instruments.get(key)
        if inst is None:
            inst = family.instruments[key] = Counter()
        return inst

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        family = self._family(name, "gauge", help, None)
        key = _label_key(labels)
        inst = family.instruments.get(key)
        if inst is None:
            inst = family.instruments[key] = Gauge()
        return inst

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        family = self._family(name, "histogram", help, tuple(buckets))
        key = _label_key(labels)
        inst = family.instruments.get(key)
        if inst is None:
            inst = family.instruments[key] = Histogram(family.buckets)
        return inst

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument, keeping registrations and help text."""
        for family in self._families.values():
            for key, inst in family.instruments.items():
                if isinstance(inst, Histogram):
                    family.instruments[key] = Histogram(inst.bounds)
                elif isinstance(inst, Counter):
                    family.instruments[key] = Counter()
                else:
                    family.instruments[key] = Gauge()

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (stable ordering)."""
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for key in sorted(family.instruments):
                inst = family.instruments[key]
                labels = dict(key)
                if isinstance(inst, Histogram):
                    samples.append({
                        "labels": labels,
                        "count": inst.count,
                        "sum": inst.sum,
                        "buckets": {
                            _format_value(b): c
                            for b, c in zip(inst.bounds, inst.cumulative_counts())
                        },
                        "inf": inst.count,
                    })
                else:
                    samples.append({"labels": labels, "value": inst.value})
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    # -- exporters -----------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Render the Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.instruments):
                inst = family.instruments[key]
                if isinstance(inst, Histogram):
                    for bound, cum in zip(
                        inst.bounds, inst.cumulative_counts()
                    ):
                        lines.append(
                            f"{name}_bucket"
                            f"{_format_labels(key, (('le', _format_value(bound)),))}"
                            f" {cum}"
                        )
                    lines.append(
                        f"{name}_bucket{_format_labels(key, (('le', '+Inf'),))}"
                        f" {inst.count}"
                    )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {_format_value(inst.sum)}"
                    )
                    lines.append(f"{name}_count{_format_labels(key)} {inst.count}")
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} {_format_value(inst.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent) + "\n"

    def write(self, path) -> None:
        """Write to ``path``: ``.json`` gets the JSON export, anything
        else the Prometheus text format."""
        from pathlib import Path

        path = Path(path)
        if path.suffix == ".json":
            path.write_text(self.to_json())
        else:
            path.write_text(self.to_prometheus_text())


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]
