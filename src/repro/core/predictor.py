"""The hybrid model: CNN short-term latency predictor + Boosted-Trees
long-term violation predictor (paper Figure 5).

The CNN predicts the next interval's tail latencies (p95-p99) from the
resource/latency history and a candidate allocation; the Boosted Trees
reuse the CNN's compact latent variable ``L_f`` (plus the candidate
allocation) to classify whether that allocation leads to a QoS violation
within the next ``k`` intervals.  Keeping the two tasks in separate
models avoids the semantic-gap overprediction of the joint multi-task
network (Figure 4) and lets each model be regularized for its own
objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import WindowEncoder
from repro.core.qos import QoSTarget
from repro.sim.telemetry import CPU_ALLOC_CHANNEL, CPU_UTIL_CHANNEL
from repro.ml.boosted_trees import BoostedTrees, BoostedTreesConfig
from repro.ml.cnn import CNNConfig, LatencyCNN
from repro.ml.dataset import FeatureNormalizer, SinanDataset, TrainValSplit
from repro.ml.losses import LatencyScaler, ScaledMSELoss
from repro.ml.metrics import (
    false_negative_rate,
    false_positive_rate,
    rmse,
)
from repro.ml.network import FitResult
from repro.sim.graph import AppGraph
from repro.sim.telemetry import TelemetryLog


@dataclass(frozen=True)
class PredictorConfig:
    """Hyper-parameters of the hybrid model."""

    n_timesteps: int = 5
    horizon: int = 3
    epochs: int = 40
    batch_size: int = 512
    lr: float = 0.003
    weight_decay: float = 1e-5
    patience: int = 8
    scaler_alpha: float | None = None
    """Eq. 2 alpha; ``None`` derives it from QoS (ceiling at 2x QoS)."""

    label_cap_frac: float = 2.4
    """CNN regression trains only on samples whose next-interval p99 is
    below ``label_cap_frac * QoS`` — the exploration region of the data
    collector.  Timeout-plateau samples (dropped requests) stay in the
    Boosted-Trees training set as violation labels but would only teach
    the regressor to predict the client timeout constant."""

    cnn: CNNConfig = field(default_factory=CNNConfig)
    trees: BoostedTreesConfig = field(default_factory=BoostedTreesConfig)


@dataclass
class TrainingReport:
    """Everything the paper reports about model quality (Tables 2-3)."""

    cnn_fit: FitResult
    rmse_train: float
    rmse_val: float
    bt_accuracy_train: float
    bt_accuracy_val: float
    bt_trees: int
    bt_false_pos_val: float
    bt_false_neg_val: float
    p_up: float
    p_down: float
    n_train: int
    n_val: int


class HybridPredictor:
    """CNN + Boosted Trees with a shared feature pipeline."""

    def __init__(
        self,
        graph: AppGraph,
        qos: QoSTarget,
        config: PredictorConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.qos = qos
        self.config = config or PredictorConfig()
        self.seed = seed
        self.encoder = WindowEncoder(graph, self.config.n_timesteps)
        self.normalizer = FeatureNormalizer(qos.latency_ms)
        alpha = (
            self.config.scaler_alpha
            if self.config.scaler_alpha is not None
            else 1.0 / qos.latency_ms
        )
        self.scaler = LatencyScaler(t=qos.latency_ms, alpha=alpha)
        self.cnn = LatencyCNN(
            n_tiers=graph.n_tiers,
            n_timesteps=self.config.n_timesteps,
            n_channels=self.encoder.n_channels,
            n_percentiles=len(qos_percentiles()),
            config=self.config.cnn,
            seed=seed,
            # The candidate allocation is delta-encoded next to its
            # absolute value: [candidate, candidate - current], which
            # makes the network's sensitivity to the *change* explicit.
            n_rc_features=2 * graph.n_tiers,
        )
        self.trees = BoostedTrees(self.config.trees, seed=seed)
        self.report: TrainingReport | None = None
        # Online scoring path: True routes predict_candidates through the
        # shared-trunk CNN + compiled trees (bit-identical to the
        # reference path, see predict_candidates_reference).
        self.fast_path = True
        # Training path: True fits the trees level-wise over histograms
        # and the CNN with im2col convolutions; False selects the
        # reference growers/backprop (the training oracles).
        self.fast_train = True

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(
        self,
        dataset: SinanDataset,
        train_frac: float = 0.9,
        seed: int | None = None,
    ) -> TrainingReport:
        """Train CNN then Boosted Trees (paper: in that order), 9:1 split."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        split = dataset.split(train_frac, rng)
        return self._train_on_split(split, lr=self.config.lr, epochs=self.config.epochs)

    def _model_inputs(
        self, x_rh: np.ndarray, x_lh: np.ndarray, x_rc: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Normalized CNN inputs from raw feature arrays.

        The candidate-allocation branch receives both the absolute
        candidate and its delta from the currently applied allocation
        (read off the resource-history tensor's alloc channel).
        """
        rh, lh, rc = self.normalizer.transform(x_rh, x_lh, x_rc)
        current = x_rh[:, CPU_ALLOC_CHANNEL, :, -1]
        delta = (x_rc - current) / self.normalizer.rc_scale
        return rh, lh, np.concatenate([rc, delta], axis=1)

    def _bt_features(
        self,
        latent: np.ndarray,
        x_rh: np.ndarray,
        x_lh: np.ndarray,
        x_rc: np.ndarray,
    ) -> np.ndarray:
        """Violation-predictor input: the CNN latent plus the candidate
        allocation, current utilization, and current latency level."""
        rc = x_rc / self.normalizer.rc_scale
        current = x_rh[:, CPU_ALLOC_CHANNEL, :, -1]
        delta = (x_rc - current) / self.normalizer.rc_scale
        util = x_rh[:, CPU_UTIL_CHANNEL, :, -1]
        lat = x_lh[:, -1, :] / self.qos.latency_ms
        b = len(latent)
        if len(util) != b:
            # Shared-history fast path: one history row serves the whole
            # candidate batch; broadcasting is a zero-copy view and the
            # per-row values are bitwise those of an explicit tile.
            util = np.broadcast_to(util, (b, util.shape[1]))
            lat = np.broadcast_to(lat, (b, lat.shape[1]))
        return np.concatenate([latent, rc, delta, util, lat], axis=1)

    def _train_on_split(
        self, split: TrainValSplit, lr: float, epochs: int
    ) -> TrainingReport:
        cfg = self.config
        # Push the training-path toggle down into both models (old
        # pickles predate the attribute, hence the .get default).
        fast = bool(self.__dict__.get("fast_train", True))
        self.trees.fast_train = fast
        self.cnn.set_fast_train(fast)
        if not self.normalizer.fitted:
            self.normalizer.fit(split.train)
        train, val = split.train, split.val
        train_in = self._model_inputs(train.X_RH, train.X_LH, train.X_RC)
        val_in = self._model_inputs(val.X_RH, val.X_LH, val.X_RC)

        # CNN regression: only the exploration region (see label_cap_frac).
        cap = cfg.label_cap_frac * self.qos.latency_ms
        reg_train = train.filter_latency_below(cap)
        reg_val = val.filter_latency_below(cap)
        if len(reg_train) == 0 or len(reg_val) == 0:
            raise ValueError(
                "no training samples below the latency cap; collect data "
                "closer to the QoS boundary"
            )
        fit = self.cnn.fit(
            self._model_inputs(reg_train.X_RH, reg_train.X_LH, reg_train.X_RC),
            reg_train.y_lat,
            self._model_inputs(reg_val.X_RH, reg_val.X_LH, reg_val.X_RC),
            reg_val.y_lat,
            loss=ScaledMSELoss(self.scaler),
            epochs=epochs,
            batch_size=cfg.batch_size,
            lr=lr,
            weight_decay=cfg.weight_decay,
            patience=cfg.patience,
            seed=self.seed,
        )

        latent_train = self.cnn.latent(train_in)
        latent_val = self.cnn.latent(val_in)
        bt_train = self._bt_features(latent_train, train.X_RH, train.X_LH, train.X_RC)
        bt_val = self._bt_features(latent_val, val.X_RH, val.X_LH, val.X_RC)
        self.trees.fit(bt_train, train.y_viol, bt_val, val.y_viol)

        val_prob = self.trees.predict_proba(bt_val)
        p_up, p_down = self._calibrate_thresholds(val_prob, val.y_viol)
        pred_val = (val_prob >= 0.5).astype(float)
        # The observability score buckets are derived from rmse_val; a
        # new report (train / fine_tune / promotion) invalidates them.
        self.__dict__.pop("_lat_buckets", None)
        self.report = TrainingReport(
            cnn_fit=fit,
            rmse_train=fit.train_rmse_final,
            rmse_val=fit.val_rmse_final,
            bt_accuracy_train=self.trees.train_accuracy,
            bt_accuracy_val=self.trees.val_accuracy,
            bt_trees=self.trees.n_trees_used,
            bt_false_pos_val=false_positive_rate(pred_val, val.y_viol),
            bt_false_neg_val=false_negative_rate(pred_val, val.y_viol),
            p_up=p_up,
            p_down=p_down,
            n_train=len(split.train),
            n_val=len(split.val),
        )
        return self.report

    @staticmethod
    def _calibrate_thresholds(
        val_prob: np.ndarray, val_labels: np.ndarray, max_fn: float = 0.01
    ) -> tuple[float, float]:
        """Pick (p_up, p_down) from validation probabilities.

        ``p_up`` is set so that classifying "violation" at that threshold
        misses at most ``max_fn`` of validation violations (paper: false
        negatives no greater than 1%); ``p_down`` is lower, favoring
        stable allocations.
        """
        viol_probs = val_prob[val_labels > 0.5]
        if len(viol_probs) == 0:
            p_up = 0.5
        else:
            p_up = float(np.quantile(viol_probs, max_fn))
            p_up = float(np.clip(p_up, 0.02, 0.9))
        p_down = max(p_up / 4.0, 0.005)
        return p_up, p_down

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def predict_raw(
        self, x_rh: np.ndarray, x_lh: np.ndarray, x_rc: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Latency (B, M) in ms and violation probability (B,) for raw
        (unnormalized) feature batches."""
        inputs = self._model_inputs(x_rh, x_lh, x_rc)
        latency, latent = self.cnn.predict_with_latent(inputs)
        prob = self.trees.predict_proba(
            self._bt_features(latent, x_rh, x_lh, x_rc)
        )
        return latency, prob

    def predict_candidates(
        self, log: TelemetryLog, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score candidate allocations against the live telemetry window.

        Dispatches to the shared-trunk fast path unless ``fast_path`` is
        False.  Both paths produce bitwise-identical latencies and
        violation probabilities; the fast one encodes the telemetry
        window once (zero-copy, incrementally cached) and runs the conv
        trunk a single time per decision instead of once per candidate.
        """
        if not self.__dict__.get("fast_path", True):
            latency, prob = self.predict_candidates_reference(log, candidates)
        else:
            x_rh, x_lh, x_rc = self.encoder.encode_candidates_shared(
                log, candidates
            )
            rh, lh, rc = self._model_inputs(x_rh, x_lh, x_rc)
            latency, latent = self.cnn.predict_candidates((rh, lh, rc))
            prob = self.trees.predict_proba(
                self._bt_features(latent, x_rh, x_lh, x_rc)
            )
        recorder = self.__dict__.get("recorder")
        if recorder is not None and recorder.enabled:
            self._report_scores(recorder, latency, prob)
        return latency, prob

    def _report_scores(self, recorder, latency, prob) -> None:
        """Record one scored candidate batch (metrics pillar only)."""
        recorder.counter("predictor_batches_total")
        recorder.counter("predictor_candidates_total", float(latency.shape[0]))
        # The QoS metric is the highest reported percentile (p99).
        recorder.observe_many(
            "predictor_p99_ms", latency[:, -1], buckets=self._score_buckets()
        )
        recorder.observe_many(
            "predictor_violation_prob",
            prob,
            buckets=(0.005, 0.01, 0.02, 0.05, 0.08, 0.1, 0.2, 0.5, 0.9),
        )

    def _score_buckets(self) -> tuple[float, ...]:
        """Latency buckets scaled to this model's validation error."""
        buckets = self.__dict__.get("_lat_buckets")
        if buckets is None:
            base = max(float(self.rmse_val), 1.0)
            buckets = self._lat_buckets = tuple(
                round(base * f, 3)
                for f in (1.0, 2.5, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0)
            )
        return buckets

    def predict_candidates_reference(
        self, log: TelemetryLog, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The pre-optimization scoring path, kept as equivalence oracle:
        materializes B copies of the history window and runs the full
        CNN batch plus the recursive tree walk."""
        x_rh, x_lh, x_rc = self.encoder.encode_candidates(log, candidates)
        inputs = self._model_inputs(x_rh, x_lh, x_rc)
        latency, latent = self.cnn.predict_with_latent(inputs)
        prob = self.trees.predict_proba_reference(
            self._bt_features(latent, x_rh, x_lh, x_rc)
        )
        return latency, prob

    def evaluate(self, dataset: SinanDataset) -> dict[str, float]:
        """RMSE / classification quality on an arbitrary dataset."""
        latency, prob = self.predict_raw(dataset.X_RH, dataset.X_LH, dataset.X_RC)
        pred_labels = (prob >= 0.5).astype(float)
        return {
            "rmse": rmse(latency, dataset.y_lat),
            "bt_accuracy": float(np.mean(pred_labels == dataset.y_viol)),
            "bt_false_neg": false_negative_rate(pred_labels, dataset.y_viol),
            "bt_false_pos": false_positive_rate(pred_labels, dataset.y_viol),
        }

    # ------------------------------------------------------------------

    @property
    def rmse_val(self) -> float:
        """Validation RMSE; the scheduler's latency filter uses
        ``QoS - rmse_val`` as its acceptance bound."""
        if self.report is None:
            raise RuntimeError("predictor is not trained")
        return self.report.rmse_val

    @property
    def thresholds(self) -> tuple[float, float]:
        """(p_down, p_up) calibrated on validation data."""
        if self.report is None:
            raise RuntimeError("predictor is not trained")
        return self.report.p_down, self.report.p_up

    #: On-disk serialization format.  Version 2 wraps the pickle in a
    #: tagged envelope and carries predictors whose boosted trees are
    #: compiled to arrays; bump when the stored state changes shape.
    SAVE_FORMAT = 2

    def __getstate__(self) -> dict:
        # Observability state is per-episode, not part of the model:
        # serialized predictors start detached (same shape as format-2
        # checkpoints written before instrumentation existed).
        state = dict(self.__dict__)
        state.pop("recorder", None)
        state.pop("_lat_buckets", None)
        return state

    def save(self, path) -> None:
        """Serialize the trained predictor (weights, trees, normalizer).

        The pickle is wrapped in a ``{"format", "kind", "predictor"}``
        envelope so :meth:`load` can give a precise error when handed a
        file written by an incompatible version instead of failing
        deep inside an attribute access later."""
        import pickle

        payload = {
            "format": self.SAVE_FORMAT,
            "kind": "repro.HybridPredictor",
            "predictor": self,
        }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)

    @staticmethod
    def load(path) -> "HybridPredictor":
        """Load a predictor previously stored with :meth:`save`.

        Raises ``ValueError`` for a version-tagged file with the wrong
        format number (or a pre-versioning raw pickle) and ``TypeError``
        for files that are not predictor checkpoints at all."""
        import pickle

        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if isinstance(payload, HybridPredictor):
            raise ValueError(
                f"{path!r} is a pre-versioning predictor checkpoint "
                f"(format 1); re-train and re-save with this version "
                f"(format {HybridPredictor.SAVE_FORMAT})"
            )
        if not isinstance(payload, dict) or payload.get("kind") != "repro.HybridPredictor":
            raise TypeError(f"{path!r} does not contain a HybridPredictor")
        fmt = payload.get("format")
        if fmt != HybridPredictor.SAVE_FORMAT:
            raise ValueError(
                f"{path!r} uses predictor save format {fmt}, but this "
                f"version reads format {HybridPredictor.SAVE_FORMAT}; "
                f"re-train and re-save the predictor"
            )
        predictor = payload["predictor"]
        if not isinstance(predictor, HybridPredictor):
            raise TypeError(f"{path!r} does not contain a HybridPredictor")
        return predictor

    def fine_tune(
        self,
        dataset: SinanDataset,
        lr_scale: float = 0.01,
        epochs: int | None = None,
        train_frac: float = 0.9,
        seed: int | None = None,
    ) -> TrainingReport:
        """Incremental retraining on newly collected data (Section 5.4).

        Keeps the learnt weights and the original feature normalization,
        lowering the learning rate (the paper uses lambda/100 = 1e-5) so
        SGD stays in a nearby region of the original solution.  Also
        refits the Boosted Trees on the new latents.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        split = dataset.split(train_frac, rng)
        return self._train_on_split(
            split,
            lr=self.config.lr * lr_scale,
            epochs=epochs if epochs is not None else max(self.config.epochs // 2, 5),
        )


def qos_percentiles() -> tuple[int, ...]:
    """The latency percentiles the models predict (p95-p99)."""
    from repro.sim.telemetry import LATENCY_PERCENTILES

    return LATENCY_PERCENTILES


__all__ = ["HybridPredictor", "PredictorConfig", "TrainingReport"]
