"""Explainable ML: LIME-style attribution over the latency CNN.

Paper Section 5.6: to debug unpredictable tail latency, Sinan perturbs
the utilization history of individual tiers (or individual resource
channels of one tier) by multiplicative constants, queries the CNN on
the perturbed samples, fits a linear surrogate from perturbation factors
to predicted latency, and ranks tiers/resources by the magnitude of
their regression weights.  In the paper this pointed at
``social-graph Redis`` — and specifically its cache and resident-set
memory channels — exposing Redis's log-synchronization fork-and-copy as
the culprit (Figure 16, Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictor import HybridPredictor
from repro.ml.dataset import SinanDataset
from repro.sim.telemetry import RESOURCE_CHANNELS


@dataclass(frozen=True)
class TierAttribution:
    """One ranked entry of the Table 4 style attribution."""

    name: str
    weight: float


class LimeExplainer:
    """Perturbation-based linear-surrogate attribution for the CNN."""

    def __init__(
        self,
        predictor: HybridPredictor,
        factor_range: tuple[float, float] = (0.5, 1.3),
        n_perturbations: int = 400,
        seed: int = 0,
    ) -> None:
        if factor_range[0] <= 0 or factor_range[0] >= factor_range[1]:
            raise ValueError("factor_range must be (low, high) with 0 < low < high")
        self.predictor = predictor
        self.factor_range = factor_range
        self.n_perturbations = n_perturbations
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def _violation_samples(
        self, dataset: SinanDataset, max_samples: int
    ) -> SinanDataset:
        """Prefer samples at QoS-violation timesteps (the paper picks X
        from where the violations occur)."""
        qos = self.predictor.qos
        p99 = dataset.y_lat[:, qos.percentile_index]
        viol_idx = np.flatnonzero(p99 > qos.latency_ms)
        if len(viol_idx) == 0:
            viol_idx = np.argsort(p99)[-max_samples:]
        if len(viol_idx) > max_samples:
            viol_idx = self._rng.choice(viol_idx, size=max_samples, replace=False)
        return dataset.subset(viol_idx)

    def _predict_p99(self, x_rh, x_lh, x_rc) -> np.ndarray:
        latency, _ = self.predictor.predict_raw(x_rh, x_lh, x_rc)
        return latency[:, self.predictor.qos.percentile_index]

    def _fit_surrogate(self, factors: np.ndarray, responses: np.ndarray) -> np.ndarray:
        """Ridge-regularized linear fit: response ~ factors.

        Factors are centered at 1 (the unperturbed point), so a weight's
        magnitude is the latency sensitivity to scaling that feature.
        """
        X = np.column_stack([factors - 1.0, np.ones(len(factors))])
        lam = 1e-3
        gram = X.T @ X + lam * np.eye(X.shape[1])
        coef = np.linalg.solve(gram, X.T @ responses)
        return coef[:-1]

    # ------------------------------------------------------------------

    def explain_tiers(
        self, dataset: SinanDataset, top_k: int = 5, max_samples: int = 12
    ) -> list[TierAttribution]:
        """Rank tiers by their influence on predicted tail latency."""
        base = self._violation_samples(dataset, max_samples)
        n_tiers = base.n_tiers
        lo, hi = self.factor_range
        factors = self._rng.uniform(lo, hi, size=(self.n_perturbations, n_tiers))

        responses = np.empty(self.n_perturbations)
        for row, factor in enumerate(factors):
            x_rh = base.X_RH * factor[None, None, :, None]
            x_rc = base.X_RC * factor[None, :]
            responses[row] = self._predict_p99(x_rh, base.X_LH, x_rc).mean()

        weights = self._fit_surrogate(factors, responses)
        ranked = np.argsort(-np.abs(weights))[:top_k]
        names = self.predictor.graph.tier_names
        return [TierAttribution(names[i], float(weights[i])) for i in ranked]

    def explain_resources(
        self,
        dataset: SinanDataset,
        tier: str,
        top_k: int = 3,
        max_samples: int = 12,
    ) -> list[TierAttribution]:
        """Rank resource channels of one tier by influence on latency."""
        graph = self.predictor.graph
        tier_idx = graph.index[tier]
        base = self._violation_samples(dataset, max_samples)
        n_channels = base.n_channels
        lo, hi = self.factor_range
        factors = self._rng.uniform(lo, hi, size=(self.n_perturbations, n_channels))

        responses = np.empty(self.n_perturbations)
        for row, factor in enumerate(factors):
            x_rh = base.X_RH.copy()
            x_rh[:, :, tier_idx, :] *= factor[None, :, None]
            responses[row] = self._predict_p99(x_rh, base.X_LH, base.X_RC).mean()

        weights = self._fit_surrogate(factors, responses)
        ranked = np.argsort(-np.abs(weights))[:top_k]
        return [
            TierAttribution(RESOURCE_CHANNELS[i], float(weights[i])) for i in ranked
        ]


__all__ = ["LimeExplainer", "TierAttribution"]
