"""QoS targets and violation labelling.

The paper defines QoS on the end-to-end 99th-percentile latency per 1 s
interval: 200 ms for Hotel Reservation, 500 ms for Social Network
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.telemetry import LATENCY_PERCENTILES, IntervalStats


@dataclass(frozen=True)
class QoSTarget:
    """Tail-latency service-level objective."""

    latency_ms: float
    percentile: int = 99

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        if self.percentile not in LATENCY_PERCENTILES:
            raise ValueError(
                f"percentile must be one of {LATENCY_PERCENTILES}"
            )

    @property
    def percentile_index(self) -> int:
        return LATENCY_PERCENTILES.index(self.percentile)

    def latency_of(self, stats: IntervalStats) -> float:
        """The interval's latency at the QoS percentile (ms)."""
        return float(stats.latency_ms[self.percentile_index])

    def violated(self, stats: IntervalStats) -> bool:
        return self.latency_of(stats) > self.latency_ms

    def violation_labels(self, latency_series: np.ndarray, horizon: int) -> np.ndarray:
        """Label each interval: does a violation occur within ``horizon``?

        ``labels[i] = 1`` iff any of ``latency_series[i .. i+horizon-1]``
        exceeds the target — the Boosted-Trees training label of the
        paper ("anticipating a QoS violation over the next 5 intervals").
        The tail, where the full horizon is unavailable, is labelled from
        the remaining intervals.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        series = np.asarray(latency_series, dtype=float)
        if series.size == 0:
            return np.zeros(0, dtype=np.int64)
        violated = series > self.latency_ms
        # Sliding-window maximum: right-pad with False so the tail windows
        # shrink to the remaining intervals, then OR over each window.
        padded = np.concatenate([violated, np.zeros(horizon - 1, dtype=bool)])
        windows = np.lib.stride_tricks.sliding_window_view(padded, horizon)
        return windows.any(axis=1).astype(np.int64)


__all__ = ["QoSTarget"]
