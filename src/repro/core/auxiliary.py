"""Auxiliary resource managers (paper Section 4.3, "Additional resources").

Sinan's models focus on compute; the paper notes other resources behave
like thresholds and "can be managed with much simpler models, like
setting fixed thresholds for memory usage, or scaling proportionally
with respect to user load for network bandwidth."  These two helpers
implement exactly that and can be layered next to any CPU manager.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.graph import AppGraph
from repro.sim.telemetry import TelemetryLog


@dataclass
class MemoryProvisioner:
    """Per-tier memory limits from profiled peak usage.

    The paper provisions each tier with its maximum profiled memory to
    eliminate out-of-memory errors (Section 2.1).  ``profile`` tracks
    the peak resident set observed; ``limits`` returns that peak plus a
    safety headroom.
    """

    graph: AppGraph
    headroom: float = 1.25

    def __post_init__(self) -> None:
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        self._peak_rss = np.zeros(self.graph.n_tiers)

    def profile(self, log: TelemetryLog) -> None:
        """Fold an episode's telemetry into the peak-usage profile."""
        for stats in log:
            self._peak_rss = np.maximum(self._peak_rss, stats.rss_mb)

    @property
    def peak_rss_mb(self) -> np.ndarray:
        return self._peak_rss.copy()

    def limits_mb(self) -> np.ndarray:
        """Per-tier memory limits (MB) covering the profiled peak."""
        if not self._peak_rss.any():
            raise RuntimeError("no profile collected yet")
        return self._peak_rss * self.headroom

    def would_oom(self, log: TelemetryLog) -> np.ndarray:
        """Boolean mask of tiers whose latest usage exceeds the limits."""
        return log.latest.rss_mb > self.limits_mb()


@dataclass
class BandwidthProvisioner:
    """Network bandwidth scaled proportionally to offered load.

    Bandwidth behaves like a threshold resource: below the requirement
    performance collapses, above it extra capacity is wasted.  The
    provisioner learns per-tier packets-per-user from telemetry and
    allocates ``margin`` times the expected rate.
    """

    graph: AppGraph
    margin: float = 1.5

    def __post_init__(self) -> None:
        if self.margin < 1.0:
            raise ValueError("margin must be >= 1")
        self._pps_per_rps = np.zeros(self.graph.n_tiers)
        self._samples = 0

    def profile(self, log: TelemetryLog) -> None:
        """Estimate per-tier packet rate per unit of offered load."""
        for stats in log:
            if stats.rps <= 0:
                continue
            rate = (stats.rx_pps + stats.tx_pps) / stats.rps
            self._pps_per_rps = (
                (self._pps_per_rps * self._samples + rate) / (self._samples + 1)
            )
            self._samples += 1

    def limits_pps(self, expected_rps: float) -> np.ndarray:
        """Per-tier bandwidth limits (packets/s) for an expected load."""
        if self._samples == 0:
            raise RuntimeError("no profile collected yet")
        return self._pps_per_rps * expected_rps * self.margin


__all__ = ["MemoryProvisioner", "BandwidthProvisioner"]
