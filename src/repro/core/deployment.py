"""Deployment roles: the paper's Figure 8 component split.

Sinan runs as three cooperating components (paper Section 4.1):

* **per-node agents** that read each server's cgroup counters and apply
  CPU limits to the containers placed there,
* a **prediction service** hosting the ML models (in the paper, on a
  GPU box) answering scoring queries,
* a **centralized scheduler** with global visibility that gathers the
  agents' reports each interval, queries the prediction service, and
  pushes the chosen allocation back to the agents.

The simulator itself is in-process, so these classes mainly make the
distribution boundary explicit: what data crosses it (telemetry up,
allocations down, feature batches to the model) and what stays local.
They are the natural seams to replace with RPC in a real deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.manager import Manager
from repro.core.predictor import HybridPredictor
from repro.sim.cluster import ClusterSimulator
from repro.sim.telemetry import IntervalStats, TelemetryLog


@dataclass(frozen=True)
class NodePlacement:
    """Static tier-to-node placement (one microservice per container)."""

    node_of_tier: tuple[int, ...]

    @classmethod
    def round_robin(cls, n_tiers: int, n_nodes: int) -> "NodePlacement":
        if n_nodes < 1:
            raise ValueError("need at least one node")
        return cls(tuple(i % n_nodes for i in range(n_tiers)))

    @property
    def n_nodes(self) -> int:
        return max(self.node_of_tier) + 1 if self.node_of_tier else 0

    def tiers_on(self, node: int) -> list[int]:
        return [i for i, n in enumerate(self.node_of_tier) if n == node]


class NodeAgent:
    """Per-server agent: reports local telemetry, enforces local limits.

    In the paper this wraps Docker's cgroup interface; here it slices
    the cluster-wide telemetry down to the tiers placed on its node.
    """

    def __init__(self, node_id: int, tier_indices: list[int]) -> None:
        self.node_id = node_id
        self.tier_indices = list(tier_indices)
        self._pending_limits: np.ndarray | None = None

    def report(self, stats: IntervalStats) -> dict:
        """The per-interval usage report sent to the central scheduler."""
        idx = self.tier_indices
        return {
            "node": self.node_id,
            "tiers": list(idx),
            "cpu_util": stats.cpu_util[idx].copy(),
            "cpu_alloc": stats.cpu_alloc[idx].copy(),
            "rss_mb": stats.rss_mb[idx].copy(),
            "rx_pps": stats.rx_pps[idx].copy(),
            "tx_pps": stats.tx_pps[idx].copy(),
        }

    def enforce(self, limits: np.ndarray) -> None:
        """Stage this node's slice of the new allocation."""
        limits = np.asarray(limits, dtype=float)
        if limits.shape != (len(self.tier_indices),):
            raise ValueError("limits must match this node's tier count")
        self._pending_limits = limits

    @property
    def pending_limits(self) -> np.ndarray | None:
        return self._pending_limits


class PredictionService:
    """Model-hosting boundary: feature batches in, scores out.

    Stateless between calls; everything the models need crosses the
    boundary explicitly, which is what lets the paper host the models on
    a separate GPU server with ~1% of the decision interval as latency.
    """

    def __init__(self, predictor: HybridPredictor) -> None:
        self._predictor = predictor
        self.queries = 0

    def score(
        self, log: TelemetryLog, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        self.queries += 1
        return self._predictor.predict_candidates(log, candidates)


class CentralScheduler:
    """Glue: agents' reports -> manager decision -> agents' enforcement.

    Wraps any :class:`~repro.core.manager.Manager` (Sinan or a baseline)
    and drives one cluster; :meth:`tick` is one decision interval.
    """

    def __init__(
        self,
        manager: Manager,
        cluster: ClusterSimulator,
        n_nodes: int = 4,
    ) -> None:
        self.manager = manager
        self.cluster = cluster
        self.placement = NodePlacement.round_robin(cluster.n_tiers, n_nodes)
        self.agents = [
            NodeAgent(node, self.placement.tiers_on(node))
            for node in range(self.placement.n_nodes)
        ]
        self.reports: list[list[dict]] = []

    def tick(self) -> IntervalStats:
        """One decision interval: decide, distribute, step, gather."""
        alloc = self.manager.decide(self.cluster.telemetry)
        if alloc is not None:
            for agent in self.agents:
                agent.enforce(np.asarray(alloc)[agent.tier_indices])
        stats = self.cluster.step(alloc)
        self.reports.append([agent.report(stats) for agent in self.agents])
        return stats

    def run(self, duration: int) -> TelemetryLog:
        for _ in range(duration):
            self.tick()
        return self.cluster.telemetry


__all__ = ["NodePlacement", "NodeAgent", "PredictionService", "CentralScheduler"]
