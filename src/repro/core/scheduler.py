"""Sinan's online scheduler (paper Section 4.3).

Once per decision interval the scheduler scores the Table 1 candidate
actions with the hybrid model and applies the paper's selection rules:

1. exclude actions whose predicted tail latency exceeds
   ``QoS - RMSE_val`` (the validation error is the safety margin);
2. filter by predicted violation probability with two thresholds
   ``p_d < p_u``: holding is acceptable while its violation probability
   is below ``p_u``; a scale-down is acceptable only below ``p_d``; if
   even holding is risky, only scale-ups below ``p_u`` are acceptable,
   and if none exists all tiers are scaled to their maximum;
3. among acceptable actions, take the one using the least total CPU.

A safety mechanism guards against model drift: when a QoS violation
arrives that the model did not predict, the scheduler immediately
upscales every tier, counts the misprediction, and — past a trust
threshold — becomes more conservative about reclaiming resources (in
the paper's deployments the trust never had to drop).

The scheduler also degrades gracefully instead of crashing the control
loop: non-finite telemetry (see :mod:`repro.sim.faults`) is sanitized
before encoding, a predictor exception or non-finite score falls back
to the max-allocation safety action, and an unknown (NaN) measured
latency blocks reclamation until a trustworthy reading returns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.actions import (
    KIND_CODES,
    Action,
    ActionKind,
    ActionSpace,
    CandidateSet,
)
from repro.core.manager import Manager
from repro.core.predictor import HybridPredictor
from repro.core.qos import QoSTarget
from repro.obs.audit import (
    REASON_BOOST,
    REASON_NO_ACCEPTABLE,
    REASON_PREDICTOR_FAILURE,
    AuditRecord,
)
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.sim.telemetry import TelemetryLog

#: Decision wall-time buckets (milliseconds); sized around the measured
#: fast-path latency in ``BENCH_decision.json``.
_DECISION_MS_BUCKETS: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)


class _DecisionNote:
    """Scratch the decision path fills in for the audit record.

    Only allocated when a recorder is enabled; ``_decide`` receives
    ``None`` otherwise and skips every annotation.
    """

    __slots__ = (
        "n_candidates",
        "chosen_kind",
        "predicted_ms",
        "violation_prob",
        "fallback_reason",
    )

    def __init__(self) -> None:
        self.n_candidates = 0
        self.chosen_kind = "hold"
        self.predicted_ms = float("nan")
        self.violation_prob = float("nan")
        self.fallback_reason: str | None = None


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler thresholds and safety knobs."""

    p_down: float | None = 0.02
    """Scale-down acceptance threshold (the paper's user-defined p_d);
    ``None`` uses the threshold calibrated on validation data."""

    p_up: float | None = 0.08
    """Hold/scale-up acceptance threshold (the paper's user-defined p_u,
    sized so QoS misses stay rare); ``None`` uses the calibrated one."""

    victim_window: int = 5
    """Recently-downscaled tiers stay "victims" for this many cycles."""

    trust_threshold: int = 10
    """Unpredicted violations before the scheduler turns conservative."""

    recovery_boost: float = 1.3
    """Multiplicative upscale applied on an unpredicted violation."""

    reclaim_latency_frac: float = 0.8
    """Resource reclamation is allowed only while measured tail latency
    is below this fraction of QoS (the paper disables reclamation when
    latency exceeds its expected value)."""

    prob_smoothing: float = 0.5
    """EWMA weight on the hold action's violation probability: damps
    single-interval noise in the Boosted-Trees output so one optimistic
    blip cannot trigger a reclamation streak."""

    down_cooldown: int = 3
    """Intervals to wait after any upscale/violation before reclaiming
    resources again (favors stable allocations, paper Section 4.3)."""


#: Kind codes the mask-based selection treats as resource reclamation.
_DOWN_CODES = (
    KIND_CODES[ActionKind.SCALE_DOWN],
    KIND_CODES[ActionKind.SCALE_DOWN_BATCH],
)
_HOLD_CODE = KIND_CODES[ActionKind.HOLD]


class OnlineScheduler(Manager):
    """QoS-aware allocation search over the pruned action space."""

    name = "sinan"

    fast_control = True
    """Route candidate generation and selection through the vectorized
    path (:meth:`ActionSpace.candidates_fast` + :meth:`_select_fast`).
    The Action-list path (:meth:`ActionSpace.candidates` +
    :meth:`_select`) is the retained oracle; both produce bitwise-equal
    decisions, so this toggle never changes behavior — only speed."""

    def __init__(
        self,
        predictor: HybridPredictor,
        action_space: ActionSpace,
        qos: QoSTarget,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.predictor = predictor
        self.action_space = action_space
        self.qos = qos
        self.config = config or SchedulerConfig()
        self.refresh_thresholds()
        self.recorder: Recorder = NULL_RECORDER
        """Observability handle (no-op by default; see
        :func:`repro.obs.recorder.attach_recorder`)."""
        self.reset()

    def refresh_thresholds(self) -> None:
        """Re-derive ``p_down`` / ``p_up`` from the current predictor.

        ``__init__`` snapshots the predictor's calibrated thresholds
        once; a promoted (retrained) model carries *new* calibration, so
        the promotion path must call this after swapping
        :attr:`predictor` or the recalibrated thresholds would be
        silently ignored by a live scheduler.  Explicit config values
        still win, matching the constructor's semantics.
        """
        calibrated_down, calibrated_up = self.predictor.thresholds
        self.p_down = (
            self.config.p_down if self.config.p_down is not None else calibrated_down
        )
        self.p_up = self.config.p_up if self.config.p_up is not None else calibrated_up

    def adopt_predictor(
        self, predictor: HybridPredictor, reset_safety: bool = True
    ) -> None:
        """Swap in a (re)trained predictor mid-deployment (promotion).

        Refreshes the calibrated thresholds and, by default, resets the
        safety counters: accumulated mispredictions belong to the old
        model, and carrying them over would leave a freshly promoted
        model permanently untrusted.  Episode-level counters
        (``decisions``, ``prediction_trace``) are preserved.

        A promoted predictor also pickles to different bytes than the
        incumbent, so fan-out layers that broadcast models by content
        fingerprint (:mod:`repro.harness.pool`) republish it and worker
        caches invalidate automatically — no explicit flush needed.
        """
        self.predictor = predictor
        self.refresh_thresholds()
        if reset_safety:
            self.mispredictions = 0
            self._last_predicted_safe = True
            self._hold_p_ewma = 0.0
            self._cooldown = 0

    def reset(self) -> None:
        self.mispredictions = 0
        self.decisions = 0
        self.fallbacks = 0
        """Decisions resolved by the max-allocation safety action (no
        acceptable candidate, or a predictor failure)."""
        self.predictor_failures = 0
        """Scoring attempts that raised or returned non-finite output
        (a :attr:`fallbacks` subset)."""
        self._last_predicted_safe = True
        self._hold_p_ewma = 0.0
        self._cooldown = 0
        self._victim_age = np.full(self.action_space.n_tiers, np.inf)
        self.prediction_trace: list[dict[str, float]] = []
        """Per-decision record of predicted vs measured latency and the
        hold action's violation probability (drives paper Figure 12)."""
        # The encoder's incremental history cache keys on the telemetry
        # log object; drop it so a reused scheduler starting a fresh
        # episode cannot shift features from the previous one.
        encoder = getattr(self.predictor, "encoder", None)
        if encoder is not None:
            invalidate = getattr(encoder, "invalidate_cache", None)
            if invalidate is not None:
                invalidate()

    # ------------------------------------------------------------------

    @property
    def trusted(self) -> bool:
        """False once mispredictions exceed the trust threshold."""
        return self.mispredictions <= self.config.trust_threshold

    def decide(self, log: TelemetryLog) -> np.ndarray | None:
        """One control decision: score the candidate set, pick an action.

        Candidate scoring goes through
        :meth:`HybridPredictor.predict_candidates`, which by default uses
        the shared-trunk fast path — bit-identical to the reference path,
        so decision traces do not depend on the ``fast_path`` toggle.

        When a recorder is attached and enabled, the decision is also
        reported as a metric/span/audit record; the decision itself is
        unchanged (``_decide`` runs identically either way).
        """
        recorder = self.__dict__.get("recorder", NULL_RECORDER)
        if not recorder.enabled or len(log) == 0:
            return self._decide(log)
        interval = self.decisions  # 0-based index of the decision below
        note = _DecisionNote()
        started = time.perf_counter()
        alloc = self._decide(log, note)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        self._report(recorder, log, note, alloc, interval, elapsed_ms)
        return alloc

    def _decide(
        self, log: TelemetryLog, note: _DecisionNote | None = None
    ) -> np.ndarray | None:
        if len(log) == 0:
            return None
        latest = log.latest
        current = np.asarray(latest.cpu_alloc, dtype=float)
        if not np.all(np.isfinite(current)):
            # A corrupted allocation reading cannot anchor the candidate
            # set; assume the ceiling (the safe direction) where unknown.
            current = np.where(
                np.isfinite(current), current, self.action_space.max_alloc
            )
        measured = self.qos.latency_of(latest)
        measured_known = bool(np.isfinite(measured))
        violated_now = measured_known and measured > self.qos.latency_ms
        self.decisions += 1
        self._victim_age += 1

        # Safety: an unpredicted violation triggers an immediate upscale.
        if violated_now and self._last_predicted_safe:
            self.mispredictions += 1
            self._last_predicted_safe = False
            self._cooldown = self.config.down_cooldown
            boosted = np.minimum(
                current * self.config.recovery_boost + 0.2,
                self.action_space.max_alloc,
            )
            self._record(measured, np.nan, 1.0)
            if note is not None:
                note.chosen_kind = "recovery-boost"
                note.fallback_reason = REASON_BOOST
                note.violation_prob = 1.0
            return boosted

        self._cooldown = max(self._cooldown - 1, 0)
        allow_down = (
            measured_known
            and measured < self.config.reclaim_latency_frac * self.qos.latency_ms
            and self._cooldown == 0
            and self.trusted
        )
        victims = self._victim_age <= self.config.victim_window
        # A NaN utilization reading counts as busy: reclaiming a tier we
        # cannot see is never safe.
        cpu_util = np.nan_to_num(
            np.asarray(latest.cpu_util, dtype=float),
            nan=1.0, posinf=1.0, neginf=0.0,
        )
        fast = self.fast_control
        if fast:
            cset = self.action_space.candidates_fast(
                current,
                cpu_util,
                victims=victims,
                allow_scale_down=allow_down,
            )
            candidates = cset.allocs
        else:
            actions = self.action_space.candidates(
                current,
                cpu_util,
                victims=victims,
                allow_scale_down=allow_down,
            )
            candidates = np.stack([a.alloc for a in actions])
        if note is not None:
            note.n_candidates = len(candidates)
        try:
            latency, prob = self.predictor.predict_candidates(log, candidates)
            if not (np.all(np.isfinite(latency)) and np.all(np.isfinite(prob))):
                raise ArithmeticError("non-finite predictor output")
        except Exception:
            # Graceful degradation (never crash the control loop): an
            # unscorable decision takes the paper's max-allocation safety
            # action and blocks reclamation for a cooldown.
            self.predictor_failures += 1
            self.fallbacks += 1
            self._last_predicted_safe = False
            self._cooldown = self.config.down_cooldown
            chosen = self.action_space.max_allocation_action()
            self._record(measured, np.nan, 1.0, fallback=True)
            if note is not None:
                note.chosen_kind = "max-allocation"
                note.fallback_reason = REASON_PREDICTOR_FAILURE
                note.violation_prob = 1.0
            return chosen.alloc

        pred_qos_lat = latency[:, self.qos.percentile_index]

        if fast:
            chosen_idx = self._select_fast(cset, pred_qos_lat, prob)
        else:
            chosen_idx = self._select(actions, pred_qos_lat, prob)
        if chosen_idx is not None:
            if fast:
                chosen_kind = cset.kind_of(chosen_idx)
                chosen_alloc = candidates[chosen_idx]
            else:
                chosen_kind = actions[chosen_idx].kind
                chosen_alloc = actions[chosen_idx].alloc
            self._last_predicted_safe = prob[chosen_idx] < self.p_up
            self._record(measured, float(pred_qos_lat[chosen_idx]), float(prob[chosen_idx]))
            if note is not None:
                note.chosen_kind = chosen_kind.value
                note.predicted_ms = float(pred_qos_lat[chosen_idx])
                note.violation_prob = float(prob[chosen_idx])
        else:  # fallback to max allocation
            fallback = self.action_space.max_allocation_action()
            chosen_kind = fallback.kind
            chosen_alloc = fallback.alloc
            self.fallbacks += 1
            self._last_predicted_safe = False
            self._record(measured, np.nan, 1.0, fallback=True)
            if note is not None:
                note.chosen_kind = "max-allocation"
                note.fallback_reason = REASON_NO_ACCEPTABLE
                note.violation_prob = 1.0

        if chosen_kind in (
            ActionKind.SCALE_UP,
            ActionKind.SCALE_UP_ALL,
            ActionKind.SCALE_UP_VICTIM,
        ):
            self._cooldown = self.config.down_cooldown
        went_down = chosen_alloc < current - 1e-9
        self._victim_age[went_down] = 0
        return chosen_alloc

    def _select(
        self, actions: list[Action], pred_lat: np.ndarray, prob: np.ndarray
    ) -> int | None:
        """Index of the chosen action, or ``None`` for the max-allocation
        safety fallback."""
        margin = self.qos.latency_ms - self.predictor.rmse_val
        hold_idx = next(
            i for i, a in enumerate(actions) if a.kind is ActionKind.HOLD
        )
        w = self.config.prob_smoothing
        self._hold_p_ewma = (1.0 - w) * self._hold_p_ewma + w * prob[hold_idx]
        hold_ok = self._hold_p_ewma < self.p_up and pred_lat[hold_idx] <= margin

        acceptable: list[int] = []
        for i, action in enumerate(actions):
            if pred_lat[i] > margin:
                continue
            if action.kind in (ActionKind.SCALE_DOWN, ActionKind.SCALE_DOWN_BATCH):
                if prob[i] < self.p_down:
                    acceptable.append(i)
            elif action.kind is ActionKind.HOLD:
                if hold_ok:
                    acceptable.append(i)
            else:  # scale ups
                if prob[i] < self.p_up:
                    acceptable.append(i)

        if not acceptable:
            return None
        if hold_ok:
            # Stable region: only leave hold for a cheaper (scale-down)
            # action; never pay for an upscale the model deems unneeded.
            downs = [
                i
                for i in acceptable
                if actions[i].total_cpu < actions[hold_idx].total_cpu - 1e-9
            ]
            return min(downs, key=lambda i: actions[i].total_cpu, default=hold_idx)
        ups = [i for i in acceptable if actions[i].kind not in
               (ActionKind.SCALE_DOWN, ActionKind.SCALE_DOWN_BATCH, ActionKind.HOLD)]
        if not ups:
            return None
        return min(ups, key=lambda i: actions[i].total_cpu)

    def _select_fast(
        self, cset: CandidateSet, pred_lat: np.ndarray, prob: np.ndarray
    ) -> int | None:
        """Mask-based :meth:`_select` over a :class:`CandidateSet`.

        Same selection rules, same first-match tie-breaks: Python's
        ``min`` keeps the first of equal keys and ``np.argmin`` returns
        the first minimum, so ties resolve to the earliest candidate in
        generation order on both paths.
        """
        margin = self.qos.latency_ms - self.predictor.rmse_val
        kinds = cset.kinds
        total_cpu = cset.total_cpu
        is_hold = kinds == _HOLD_CODE
        hold_idx = int(np.argmax(is_hold))
        w = self.config.prob_smoothing
        self._hold_p_ewma = (1.0 - w) * self._hold_p_ewma + w * prob[hold_idx]
        hold_ok = self._hold_p_ewma < self.p_up and pred_lat[hold_idx] <= margin

        is_down = (kinds == _DOWN_CODES[0]) | (kinds == _DOWN_CODES[1])
        is_up = ~(is_down | is_hold)
        acceptable = (pred_lat <= margin) & (
            (is_down & (prob < self.p_down))
            | (is_up & (prob < self.p_up))
            | (is_hold if hold_ok else False)
        )
        if not acceptable.any():
            return None
        if hold_ok:
            # Stable region: only leave hold for a strictly cheaper
            # acceptable action (same 1e-9 improvement threshold).
            cheaper = acceptable & (total_cpu < total_cpu[hold_idx] - 1e-9)
            if not cheaper.any():
                return hold_idx
            idx = np.flatnonzero(cheaper)
            return int(idx[np.argmin(total_cpu[idx])])
        ups = acceptable & is_up
        if not ups.any():
            return None
        idx = np.flatnonzero(ups)
        return int(idx[np.argmin(total_cpu[idx])])

    def _record(
        self, measured: float, predicted: float, p_viol: float,
        fallback: bool = False,
    ) -> None:
        self.prediction_trace.append(
            {
                "measured_ms": measured,
                "predicted_ms": predicted,
                "p_violation": p_viol,
                "fallback": 1.0 if fallback else 0.0,
            }
        )

    def _report(
        self,
        recorder: Recorder,
        log: TelemetryLog,
        note: _DecisionNote,
        alloc: np.ndarray | None,
        interval: int,
        elapsed_ms: float,
    ) -> None:
        """Emit the metric/span/audit view of one completed decision."""
        latest = log.latest
        measured = self.qos.latency_of(latest)
        chosen = latest.cpu_alloc if alloc is None else alloc
        chosen = np.asarray(chosen, dtype=float)

        recorder.counter("scheduler_decisions_total")
        if note.fallback_reason == REASON_BOOST:
            recorder.counter("scheduler_mispredictions_total")
        elif note.fallback_reason is not None:
            recorder.counter("scheduler_fallbacks_total")
            if note.fallback_reason == REASON_PREDICTOR_FAILURE:
                recorder.counter("scheduler_predictor_failures_total")
        recorder.gauge("scheduler_trusted", 1.0 if self.trusted else 0.0)
        recorder.gauge("scheduler_hold_p_ewma", self._hold_p_ewma)
        recorder.gauge("scheduler_total_cpu_cores", float(np.nansum(chosen)))
        recorder.observe(
            "scheduler_decision_wall_ms", elapsed_ms,
            buckets=_DECISION_MS_BUCKETS,
        )

        recorder.span(
            "decide",
            float(latest.time),
            elapsed_ms / 1e3,
            track="scheduler",
            cat="decision",
            args={
                "interval": interval,
                "kind": note.chosen_kind,
                "candidates": note.n_candidates,
                "fallback": note.fallback_reason,
            },
        )

        recorder.audit(AuditRecord(
            interval=interval,
            time=float(latest.time),
            measured_p99_ms=float(measured),
            rps=float(latest.rps),
            total_cpu=float(np.nansum(np.asarray(latest.cpu_alloc, dtype=float))),
            n_candidates=note.n_candidates,
            chosen_kind=note.chosen_kind,
            chosen_total_cpu=float(np.nansum(chosen)),
            predicted_p99_ms=note.predicted_ms,
            violation_prob=note.violation_prob,
            hold_p_ewma=float(self._hold_p_ewma),
            fallback_reason=note.fallback_reason,
            trusted=self.trusted,
            mispredictions=self.mispredictions,
            cooldown=self._cooldown,
            chosen_alloc=tuple(float(c) for c in chosen),
        ))


__all__ = ["OnlineScheduler", "SchedulerConfig"]
