"""Training-data collection: exploring the allocation-space boundary.

The accuracy of Sinan's models hinges on the training distribution
(paper Section 4.2 and Figures 9-10).  The paper designs the collection
process as a multi-armed bandit: each tier is an arm, the application's
running state is approximated by the tuple ``(rps, lat_cur, lat_diff)``,
and every step each tier takes the operation that maximizes the expected
reduction of the confidence interval of its Bernoulli
probability-of-meeting-QoS (Eq. 3) — which concentrates samples on the
QoS *boundary*, where the mapping from resources to QoS is
nondeterministic.

Pruning rules (paper): operations come from a predefined set (CPU steps
of 0.2 up to 1.0 core, or 10%/30% of the tier's allocation); a per-tier
utilization cap prevents overly aggressive downsizing; reclamation is
disabled while latency exceeds the expected value; exploration stays in
the ``[0, QoS + alpha]`` latency region with ``alpha = 20%`` of QoS so
slight violations are observed without drifting far from deployment
conditions.

The module also implements the two flawed collection schemes of
Figure 10: collecting while an autoscaler manages the cluster (never
sees violations -> underestimates latency) and random exploration
(rarely near the boundary -> overestimates latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.core.features import build_dataset
from repro.core.qos import QoSTarget
from repro.ml.dataset import SinanDataset
from repro.sim.cluster import ClusterSimulator
from repro.sim.telemetry import TelemetryLog

#: Per-tier CPU deltas available to the bandit (paper Section 4.2).
_ABS_DELTAS = (-1.0, -0.6, -0.2, 0.0, 0.2, 0.6, 1.0)
_REL_DELTAS = (-0.3, -0.1, 0.1, 0.3)


@dataclass(frozen=True)
class CollectionConfig:
    """Knobs of the collection process."""

    qos: QoSTarget
    horizon: int = 3
    n_timesteps: int = 5
    alpha_frac: float = 0.2
    """Exploration band above QoS, as a fraction of the QoS target."""

    util_cap: float = 0.9
    """Per-tier utilization cap enforced when downsizing."""

    alloc_bucket: float = 0.2
    """Bucket width (cores) for the bandit's per-tier resource states."""

    @property
    def explore_ceiling_ms(self) -> float:
        return self.qos.latency_ms * (1.0 + self.alpha_frac)


class CollectPolicy(Protocol):
    """Chooses the next allocation while collecting training data."""

    name: str

    def decide(self, cluster: ClusterSimulator) -> np.ndarray:
        ...


@dataclass
class _ArmStats:
    meets: int = 0
    total: int = 0

    def p(self) -> float:
        return (self.meets + 1.0) / (self.total + 2.0)


class BanditExplorer:
    """The paper's multi-armed-bandit boundary explorer (Eq. 3)."""

    name = "bandit"

    def __init__(self, config: CollectionConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._stats: dict[tuple, _ArmStats] = {}
        self._pending: list[tuple] = []

    # -- state discretization ------------------------------------------

    def _running_state(self, cluster: ClusterSimulator) -> tuple[int, int, int]:
        """Discretized (rps, lat_cur, lat_diff) tuple."""
        log = cluster.telemetry
        if len(log) == 0:
            return (0, 0, 0)
        qos = self.config.qos
        latest = log.latest
        rps_bucket = int(math.log2(max(latest.rps, 1.0)))
        lat_ratio = qos.latency_of(latest) / qos.latency_ms
        lat_bucket = int(np.digitize(lat_ratio, [0.25, 0.5, 0.75, 1.0, 1.2]))
        if len(log) >= 2:
            diff = qos.latency_of(log[-1]) - qos.latency_of(log[-2])
            diff_bucket = int(np.sign(diff)) if abs(diff) > 0.05 * qos.latency_ms else 0
        else:
            diff_bucket = 0
        return (rps_bucket, lat_bucket, diff_bucket)

    def _bucket(self, cores: float) -> int:
        return int(round(cores / self.config.alloc_bucket))

    # -- Eq. 3 information gain ----------------------------------------

    def _info_gain(self, key: tuple) -> float:
        arm = self._stats.get(key, _ArmStats())
        n = arm.total
        p = arm.p()
        p_plus = (arm.meets + 2.0) / (n + 3.0)
        p_minus = (arm.meets + 1.0) / (n + 3.0)
        width = math.sqrt(p * (1.0 - p) / (n + 2.0))
        width_plus = math.sqrt(p_plus * (1.0 - p_plus) / (n + 3.0))
        width_minus = math.sqrt(p_minus * (1.0 - p_minus) / (n + 3.0))
        return width - (p * width_plus + (1.0 - p) * width_minus)

    def _op_coefficient(self, delta: float, lat_ratio: float) -> float:
        """The paper's C_op: rewards meeting QoS and cutting slack."""
        if lat_ratio > 1.0:  # violating: favor upscaling strongly
            if delta > 0:
                return 2.0
            return 0.5 if delta == 0 else 0.0
        if lat_ratio > 0.8:  # near the boundary: prefer to hold/raise
            return 1.2 if delta >= 0 else 0.8
        # comfortably meeting QoS: reward reclaiming overprovisioning
        if delta < 0:
            return 1.4
        return 1.0 if delta == 0 else 0.6

    # -- policy interface ----------------------------------------------

    def decide(self, cluster: ClusterSimulator) -> np.ndarray:
        cfg = self.config
        current = cluster.current_alloc.copy()
        state = self._running_state(cluster)
        log = cluster.telemetry
        lat_ratio = (
            cfg.qos.latency_of(log.latest) / cfg.qos.latency_ms if len(log) else 0.0
        )
        # A non-finite measured latency (idle interval, corrupted
        # telemetry) compares False against every band below, which
        # would read as "comfortably meeting QoS" and reward
        # reclamation.  Unknown is not safe: block reclamation and skip
        # the arm updates for this step (see :meth:`observe`).
        lat_known = math.isfinite(lat_ratio)
        util = log.latest.cpu_util if len(log) else np.zeros_like(current)
        busy = util * current
        min_alloc = cluster.min_alloc
        max_alloc = cluster.max_alloc

        # Hard recovery: above the exploration ceiling, upscale everything
        # so the latency distribution stays near deployment conditions
        # (the paper explores in [0, QoS + alpha] only).  Deep overload
        # (dropped requests / runaway queues) jumps straight to max so
        # the 5 s timeout plateau never dominates the dataset.
        if lat_ratio > 2.0 * (1.0 + cfg.alpha_frac) or (
            len(log) and log.latest.drops > 0
        ):
            return max_alloc.copy()
        if lat_ratio > 1.0 + cfg.alpha_frac:
            return np.minimum(current * 1.5 + 0.5, max_alloc)

        new_alloc = current.copy()
        self._pending = []
        for tier in range(len(current)):
            deltas = set(_ABS_DELTAS) | {current[tier] * r for r in _REL_DELTAS}
            best_delta, best_score = 0.0, -np.inf
            for delta in deltas:
                target = float(np.clip(current[tier] + delta, min_alloc[tier], max_alloc[tier]))
                real_delta = target - current[tier]
                if real_delta < 0:
                    if not lat_known or lat_ratio > 1.0:
                        continue  # no reclamation while violating/blind
                    if busy[tier] / max(target, 1e-9) > cfg.util_cap:
                        continue  # utilization cap
                key = (state, tier, self._bucket(target))
                gain = self._info_gain(key)
                score = self._op_coefficient(real_delta, lat_ratio) * gain
                # Small jitter breaks ties between equally unexplored arms.
                score += self._rng.uniform(0, 1e-6)
                if score > best_score:
                    best_score, best_delta = score, real_delta
            new_alloc[tier] = current[tier] + best_delta
            if lat_known:
                self._pending.append((state, tier, self._bucket(new_alloc[tier])))
        return new_alloc

    def observe(self, met_qos: bool) -> None:
        """Update the Bernoulli estimates with the step's QoS outcome."""
        for key in self._pending:
            arm = self._stats.setdefault(key, _ArmStats())
            arm.total += 1
            if met_qos:
                arm.meets += 1
        self._pending = []

    @property
    def n_arms_visited(self) -> int:
        return len(self._stats)


class RandomCollectPolicy:
    """Blind random exploration of the allocation box (Figure 10b).

    Samples allocations uniformly over the feasible space — including
    regions that never occur in operation and contain no points near
    the QoS boundary — so the trained model's picture of the boundary
    is poor and reclamation decisions become unreliable.

    ``hold_prob`` keeps the current allocation for a few intervals at a
    time so consecutive telemetry windows are self-consistent.
    """

    name = "random"

    def __init__(self, seed: int = 0, hold_prob: float = 0.7) -> None:
        self._rng = np.random.default_rng(seed)
        self.hold_prob = hold_prob

    def decide(self, cluster: ClusterSimulator) -> np.ndarray:
        current = cluster.current_alloc
        if self._rng.random() < self.hold_prob:
            return current.copy()
        span = cluster.max_alloc - cluster.min_alloc
        return cluster.min_alloc + self._rng.random(len(current)) * span

    def observe(self, met_qos: bool) -> None:  # stateless
        return


class AutoscaleCollectPolicy:
    """Collect while a utilization autoscaler manages the cluster
    (Figure 10a).

    The autoscaler steers away from violations, so the dataset contains
    almost none and the model underestimates latency near the boundary.
    """

    name = "autoscale"

    def __init__(self, manager) -> None:
        self._manager = manager

    def decide(self, cluster: ClusterSimulator) -> np.ndarray:
        alloc = self._manager.decide(cluster.telemetry)
        if alloc is None:
            return cluster.current_alloc
        return np.clip(alloc, cluster.min_alloc, cluster.max_alloc)

    def observe(self, met_qos: bool) -> None:
        return


@dataclass(frozen=True)
class BanditPolicyFactory:
    """Builds a fresh :class:`BanditExplorer` per episode seed.

    Episodes handed to parallel workers must not share bandit state, so
    the collector takes a picklable factory rather than one policy
    instance; this mirrors the paper's collection across a 4-node
    cluster, where each node explores independently.
    """

    config: CollectionConfig

    def __call__(self, seed: int) -> BanditExplorer:
        return BanditExplorer(self.config, seed=seed)


def _collect_episode(
    cluster_factory: Callable[[float, int], ClusterSimulator],
    policy_factory: Callable[[int], CollectPolicy],
    config: CollectionConfig,
    users: float,
    seconds_per_load: int,
    seed: int,
) -> tuple[SinanDataset, TelemetryLog]:
    """Run one independent collection episode (one load level).

    Module-level and driven purely by its arguments so the parallel
    harness can ship it to worker processes; the serial path runs the
    same function inline, which is what makes ``jobs=1`` and ``jobs=N``
    bit-identical for a given seed.
    """
    policy = policy_factory(seed)
    cluster = cluster_factory(users, seed)
    for _ in range(seconds_per_load):
        alloc = policy.decide(cluster)
        stats = cluster.step(alloc)
        policy.observe(config.qos.latency_of(stats) <= config.qos.latency_ms)
    dataset = build_dataset(
        cluster.telemetry,
        cluster.graph,
        config.qos,
        n_timesteps=config.n_timesteps,
        horizon=config.horizon,
        meta={"policy": policy.name, "users": users},
    )
    return dataset, cluster.telemetry


@dataclass
class CollectionResult:
    dataset: SinanDataset
    logs: list[TelemetryLog] = field(default_factory=list)


class DataCollector:
    """Runs a collection policy over a sweep of load levels.

    Parameters
    ----------
    cluster_factory:
        ``(users, seed) -> ClusterSimulator`` building a fresh episode at
        a given constant load.
    config:
        Collection knobs (QoS, horizon, caps).
    """

    def __init__(
        self,
        cluster_factory: Callable[[float, int], ClusterSimulator],
        config: CollectionConfig,
    ) -> None:
        self.cluster_factory = cluster_factory
        self.config = config

    def collect(
        self,
        policy=None,
        loads: list[float] = (),
        seconds_per_load: int = 120,
        seed: int = 0,
        *,
        policy_factory: Callable[[int], CollectPolicy] | None = None,
        jobs: int | None = None,
        progress=None,
    ) -> CollectionResult:
        """Collect ``seconds_per_load`` intervals at each load level.

        Each load level is a fresh episode (drained queues), mirroring
        the paper's multi-hour collection across request rates; the
        per-episode logs are converted into aligned samples and
        concatenated in load order.

        Exactly one of ``policy`` and ``policy_factory`` must be given:

        * ``policy`` — one shared, stateful policy instance stepped
          through all load levels in order (the legacy serial protocol;
          bandit statistics carry across loads).  Incompatible with
          ``jobs > 1``, since fanned-out episodes cannot share state.
        * ``policy_factory`` — ``seed -> policy``; episode *i* gets an
          independent policy seeded ``seed + i``.  Episodes are then
          fully independent and can run on ``jobs`` worker processes,
          producing a dataset bit-identical to the serial run.

        Episodes that fail are retried once with a bumped seed; episodes
        that fail twice are dropped from the dataset with a warning (the
        run only raises if *every* episode failed).
        """
        from repro.harness.parallel import (  # runtime import: avoids core->harness cycle
            EpisodeTask,
            resolve_jobs,
            run_episodes,
        )

        cfg = self.config
        if (policy is None) == (policy_factory is None):
            raise ValueError("pass exactly one of policy= and policy_factory=")

        if policy is not None:
            # Only an *explicit* jobs request conflicts with a shared
            # policy; an ambient REPRO_JOBS (resolved when jobs=None)
            # must not break the legacy serial protocol.
            if jobs is not None and resolve_jobs(jobs) > 1:
                raise ValueError(
                    "a shared policy instance cannot be fanned out across "
                    "worker processes; pass policy_factory= instead"
                )
            datasets: list[SinanDataset] = []
            logs: list[TelemetryLog] = []
            for i, users in enumerate(loads):
                cluster = self.cluster_factory(users, seed + i)
                for _ in range(seconds_per_load):
                    alloc = policy.decide(cluster)
                    stats = cluster.step(alloc)
                    policy.observe(cfg.qos.latency_of(stats) <= cfg.qos.latency_ms)
                datasets.append(
                    build_dataset(
                        cluster.telemetry,
                        cluster.graph,
                        cfg.qos,
                        n_timesteps=cfg.n_timesteps,
                        horizon=cfg.horizon,
                        meta={"policy": policy.name, "users": users},
                    )
                )
                logs.append(cluster.telemetry)
            return CollectionResult(SinanDataset.concatenate(datasets), logs)

        tasks = [
            EpisodeTask(
                index=i,
                label=f"collect[users={users:g}]",
                fn=_collect_episode,
                kwargs=dict(
                    cluster_factory=self.cluster_factory,
                    policy_factory=policy_factory,
                    config=cfg,
                    users=users,
                    seconds_per_load=seconds_per_load,
                    seed=seed + i,
                ),
            )
            for i, users in enumerate(loads)
        ]
        summary = run_episodes(tasks, jobs=jobs, progress=progress)
        summary.raise_if_no_results()
        pairs = summary.results
        return CollectionResult(
            SinanDataset.concatenate([ds for ds, _ in pairs]),
            [log for _, log in pairs],
        )


__all__ = [
    "CollectionConfig",
    "CollectPolicy",
    "BanditExplorer",
    "BanditPolicyFactory",
    "RandomCollectPolicy",
    "AutoscaleCollectPolicy",
    "DataCollector",
    "CollectionResult",
]
