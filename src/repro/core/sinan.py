"""SinanManager: the complete resource manager.

Ties together the trained hybrid predictor and the online scheduler
behind the common :class:`~repro.core.manager.Manager` interface, so it
can be dropped into the same experiment harness as the autoscaling and
PowerChief baselines (paper Section 5.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.actions import ActionSpace
from repro.core.manager import Manager
from repro.core.predictor import HybridPredictor
from repro.core.qos import QoSTarget
from repro.core.scheduler import OnlineScheduler, SchedulerConfig
from repro.sim.graph import AppGraph
from repro.sim.telemetry import TelemetryLog


class SinanManager(Manager):
    """QoS-aware, ML-driven manager for one application deployment."""

    name = "Sinan"

    def __init__(
        self,
        predictor: HybridPredictor,
        qos: QoSTarget,
        graph: AppGraph | None = None,
        scheduler_config: SchedulerConfig | None = None,
        action_space: ActionSpace | None = None,
    ) -> None:
        graph = graph or predictor.graph
        if action_space is None:
            action_space = ActionSpace(graph.min_alloc(), graph.max_alloc())
        self.predictor = predictor
        self.qos = qos
        self.graph = graph
        self.scheduler = OnlineScheduler(predictor, action_space, qos, scheduler_config)

    def decide(self, log: TelemetryLog) -> np.ndarray | None:
        return self.scheduler.decide(log)

    def reset(self) -> None:
        self.scheduler.reset()

    # ------------------------------------------------------------------
    # Introspection (used by the Figure 12 timeline and diagnostics)
    # ------------------------------------------------------------------

    @property
    def prediction_trace(self) -> list[dict[str, float]]:
        """Per-decision predicted vs. measured latency and violation
        probability (paper Figure 12's middle column)."""
        return self.scheduler.prediction_trace

    @property
    def mispredictions(self) -> int:
        return self.scheduler.mispredictions

    @property
    def trusted(self) -> bool:
        return self.scheduler.trusted

    @property
    def fallbacks(self) -> int:
        """Decisions resolved by the max-allocation safety action."""
        return self.scheduler.fallbacks

    @property
    def predictor_failures(self) -> int:
        """Scoring attempts that raised or returned non-finite output."""
        return self.scheduler.predictor_failures


__all__ = ["SinanManager"]
