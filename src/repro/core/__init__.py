"""Sinan's core: the paper's primary contribution.

* :mod:`repro.core.qos` — QoS targets and violation labelling,
* :mod:`repro.core.features` — the CNN input encoding (resource-history
  tensor, latency history, candidate allocation) and dataset building,
* :mod:`repro.core.actions` — the pruned action space of Table 1,
* :mod:`repro.core.data_collection` — the multi-armed-bandit exploration
  of the allocation space (Section 4.2) plus the autoscale/random
  collection baselines of Figure 10,
* :mod:`repro.core.predictor` — the hybrid CNN + Boosted-Trees model,
* :mod:`repro.core.scheduler` — the online scheduler (Section 4.3),
* :mod:`repro.core.sinan` — the complete manager tying it together,
* :mod:`repro.core.retrain` — incremental/transfer retraining (S. 5.4),
* :mod:`repro.core.interpret` — LIME-style explainability (S. 5.6).
"""

from repro.core.qos import QoSTarget
from repro.core.features import WindowEncoder, build_dataset
from repro.core.actions import ActionSpace, Action, ActionKind
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.core.scheduler import OnlineScheduler, SchedulerConfig
from repro.core.manager import Manager, StaticManager
from repro.core.sinan import SinanManager
from repro.core.data_collection import (
    BanditExplorer,
    BanditPolicyFactory,
    AutoscaleCollectPolicy,
    RandomCollectPolicy,
    DataCollector,
    CollectionConfig,
)
from repro.core.retrain import fine_tune_predictor, RetrainReport
from repro.core.interpret import LimeExplainer, TierAttribution
from repro.core.auxiliary import MemoryProvisioner, BandwidthProvisioner
from repro.core.deployment import (
    CentralScheduler,
    NodeAgent,
    NodePlacement,
    PredictionService,
)

__all__ = [
    "QoSTarget",
    "WindowEncoder",
    "build_dataset",
    "ActionSpace",
    "Action",
    "ActionKind",
    "HybridPredictor",
    "PredictorConfig",
    "OnlineScheduler",
    "SchedulerConfig",
    "Manager",
    "StaticManager",
    "SinanManager",
    "BanditExplorer",
    "BanditPolicyFactory",
    "AutoscaleCollectPolicy",
    "RandomCollectPolicy",
    "DataCollector",
    "CollectionConfig",
    "fine_tune_predictor",
    "RetrainReport",
    "LimeExplainer",
    "TierAttribution",
    "MemoryProvisioner",
    "BandwidthProvisioner",
    "CentralScheduler",
    "NodeAgent",
    "NodePlacement",
    "PredictionService",
]
