"""Online drift detection over the scheduler's decision stream.

The paper retrains Sinan incrementally "when the deployment drifts"
(Section 5.4) but never says how the drift is noticed.  This module
closes that gap: a :class:`DriftDetector` consumes the same per-decision
signals the audit log records — whether the decision was an unpredicted
violation (the scheduler's misprediction counter), whether it fell back
to the max-allocation safety action, and how far the previous decision's
predicted tail latency landed from the latency actually measured — and
raises a :class:`DriftSignal` when any of three sliding-window rates
clears its threshold:

* **misprediction rate** — unpredicted QoS violations per decision.
  The model's picture of the boundary is stale on the optimistic side.
* **fallback rate** — max-allocation fallbacks per decision (predictor
  failures plus "no acceptable action").  The model no longer scores
  any candidate as safe, i.e. it is stale on the pessimistic side.
* **calibration error** — mean ``|predicted - measured| / QoS`` over
  decisions whose prediction and follow-up measurement are both finite.
  The regression head itself has drifted, even if no violation happened
  yet.

Every signal carries the reason, the offending value, and the threshold
it crossed, so the retrain trigger is auditable after the fact.  After a
signal the detector goes quiet for ``cooldown`` decisions (retraining
takes a while; re-raising every interval would be noise) and its window
is cleared so a post-promotion model is judged only on its own record.

The detector is deliberately tiny and allocation-free per decision
(three deques of scalars), so it can sit inside the control loop; it
can also replay a recorded audit stream offline via :func:`scan_audit`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

#: ``DriftSignal.reason`` values.
REASON_MISPREDICTION_RATE = "misprediction-rate"
REASON_FALLBACK_RATE = "fallback-rate"
REASON_CALIBRATION = "calibration-error"


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds and window of the online drift detector."""

    window: int = 40
    """Sliding window length, in decisions."""

    min_decisions: int = 20
    """Decisions required in-window before any rate is judged (rates
    over a handful of samples are meaningless)."""

    misprediction_rate: float = 0.10
    """Unpredicted-violation fraction that signals drift."""

    fallback_rate: float = 0.30
    """Max-allocation-fallback fraction that signals drift."""

    calibration_frac: float = 0.35
    """Mean ``|predicted - measured|`` above this fraction of QoS
    signals drift."""

    min_calibration_samples: int = 10
    """Finite (predicted, measured) pairs required before the
    calibration rate is judged."""

    cooldown: int = 50
    """Decisions to stay quiet after raising a signal."""

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_decisions < 1:
            raise ValueError("min_decisions must be >= 1")


@dataclass(frozen=True)
class DriftSignal:
    """One retrain trigger, with its recorded reason."""

    decision: int
    """Decision index (0-based) at which the signal fired."""

    reason: str
    """One of :data:`REASON_MISPREDICTION_RATE`,
    :data:`REASON_FALLBACK_RATE`, :data:`REASON_CALIBRATION`."""

    value: float
    """The offending windowed rate / normalized error."""

    threshold: float
    """The configured threshold it crossed."""

    window: int
    """Decisions in the window when the signal fired."""

    def describe(self) -> str:
        return (
            f"drift at decision {self.decision}: {self.reason} "
            f"{self.value:.3f} > {self.threshold:.3f} "
            f"(window {self.window})"
        )


class DriftDetector:
    """Sliding-window drift monitor over per-decision outcomes.

    Feed it one :meth:`observe` per scheduler decision, then poll
    :meth:`check`.  Calibration pairs the *previous* decision's
    predicted tail latency with the latency measured *now* — the
    prediction targets the next interval, so the one-step lag is the
    honest comparison (the same alignment paper Figure 12 plots).
    """

    def __init__(self, qos_ms: float, config: DriftConfig | None = None) -> None:
        if qos_ms <= 0:
            raise ValueError("qos_ms must be positive")
        self.qos_ms = qos_ms
        self.config = config or DriftConfig()
        self.signals: list[DriftSignal] = []
        """Every signal raised, oldest first."""
        self.reset()

    def reset(self) -> None:
        """Clear window state (episode boundary); signals are kept."""
        w = self.config.window
        self._mispredicted: deque[bool] = deque(maxlen=w)
        self._fallback: deque[bool] = deque(maxlen=w)
        self._calib_err: deque[float] = deque(maxlen=w)
        self._prev_predicted = math.nan
        self._decisions = 0
        self._quiet_until = 0

    # ------------------------------------------------------------------

    def observe(
        self,
        measured_ms: float,
        predicted_ms: float,
        mispredicted: bool = False,
        fallback: bool = False,
    ) -> None:
        """Record one decision's outcome.

        Parameters
        ----------
        measured_ms:
            Tail latency measured in the interval the decision read
            (NaN when unknown).
        predicted_ms:
            The decision's predicted tail latency for the *next*
            interval (NaN on safety paths that skip scoring).
        mispredicted:
            The decision was an unpredicted-violation recovery boost.
        fallback:
            The decision fell back to the max-allocation safety action.
        """
        self._decisions += 1
        self._mispredicted.append(bool(mispredicted))
        self._fallback.append(bool(fallback))
        if math.isfinite(self._prev_predicted) and math.isfinite(measured_ms):
            self._calib_err.append(abs(self._prev_predicted - measured_ms))
        self._prev_predicted = float(predicted_ms)

    def check(self) -> DriftSignal | None:
        """Judge the window; return (and record) a signal, or ``None``."""
        cfg = self.config
        n = len(self._mispredicted)
        if self._decisions < self._quiet_until or n < cfg.min_decisions:
            return None
        candidates: list[tuple[str, float, float]] = []
        mis_rate = sum(self._mispredicted) / n
        if mis_rate > cfg.misprediction_rate:
            candidates.append((REASON_MISPREDICTION_RATE, mis_rate,
                               cfg.misprediction_rate))
        fb_rate = sum(self._fallback) / n
        if fb_rate > cfg.fallback_rate:
            candidates.append((REASON_FALLBACK_RATE, fb_rate,
                               cfg.fallback_rate))
        if len(self._calib_err) >= cfg.min_calibration_samples:
            calib = (sum(self._calib_err) / len(self._calib_err)) / self.qos_ms
            if calib > cfg.calibration_frac:
                candidates.append((REASON_CALIBRATION, calib,
                                   cfg.calibration_frac))
        if not candidates:
            return None
        # Most-exceeded threshold wins the recorded reason.
        reason, value, threshold = max(
            candidates, key=lambda c: c[1] / max(c[2], 1e-12)
        )
        signal = DriftSignal(
            decision=self._decisions,
            reason=reason,
            value=value,
            threshold=threshold,
            window=n,
        )
        self.signals.append(signal)
        self._quiet_until = self._decisions + self.config.cooldown
        self._clear_window()
        return signal

    def _clear_window(self) -> None:
        self._mispredicted.clear()
        self._fallback.clear()
        self._calib_err.clear()
        self._prev_predicted = math.nan

    # ------------------------------------------------------------------

    @property
    def decisions_seen(self) -> int:
        return self._decisions


def scan_audit(
    records,
    qos_ms: float,
    config: DriftConfig | None = None,
) -> list[DriftSignal]:
    """Replay a recorded audit stream through a fresh detector.

    ``records`` is an iterable of :class:`repro.obs.audit.AuditRecord`
    (e.g. ``AuditLog.read_jsonl(path).records()``); returns every signal
    the online detector would have raised over that stream.
    """
    from repro.obs.audit import REASON_BOOST

    detector = DriftDetector(qos_ms, config)
    for record in records:
        reason = record.fallback_reason
        detector.observe(
            measured_ms=record.measured_p99_ms,
            predicted_ms=record.predicted_p99_ms,
            mispredicted=reason == REASON_BOOST,
            fallback=reason is not None and reason != REASON_BOOST,
        )
        detector.check()
    return detector.signals


__all__ = [
    "DriftConfig",
    "DriftDetector",
    "DriftSignal",
    "scan_audit",
    "REASON_MISPREDICTION_RATE",
    "REASON_FALLBACK_RATE",
    "REASON_CALIBRATION",
]
