"""The pruned resource-allocation action space (paper Table 1).

Evaluating every possible allocation online is intractable; Sinan only
scores a heuristic candidate set per interval:

=================  ====================================================
Scale Down         reduce the CPU limit of 1 tier
Scale Down Batch   reduce the CPU limit of the k least-utilized tiers
Hold               keep the current allocation
Scale Up           increase the CPU limit of 1 tier
Scale Up All       increase the CPU limit of all tiers
Scale Up Victim    increase recently-downscaled tiers
=================  ====================================================

Per-tier steps follow the AWS step-scaling tutorial the paper cites:
absolute steps of 0.2 up to 1.0 CPU, and relative steps of 10% or 30%
of the tier's allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np


class ActionKind(enum.Enum):
    SCALE_DOWN = "scale_down"
    SCALE_DOWN_BATCH = "scale_down_batch"
    HOLD = "hold"
    SCALE_UP = "scale_up"
    SCALE_UP_ALL = "scale_up_all"
    SCALE_UP_VICTIM = "scale_up_victim"


#: Stable integer codes for :class:`ActionKind`, used by the vectorized
#: control loop (:meth:`ActionSpace.candidates_fast`) so candidate kinds
#: travel as one int array instead of per-object enum references.
KINDS_BY_CODE: tuple[ActionKind, ...] = tuple(ActionKind)
KIND_CODES: dict[ActionKind, int] = {k: i for i, k in enumerate(KINDS_BY_CODE)}


@dataclass(frozen=True)
class Action:
    """One candidate: the resulting allocation and its provenance."""

    kind: ActionKind
    alloc: np.ndarray
    description: str

    @cached_property
    def total_cpu(self) -> float:
        # Cached: the scheduler's selection loops compare total CPU many
        # times per candidate set, and the sum never changes (frozen
        # dataclass, allocations are never mutated after construction).
        return float(self.alloc.sum())


@dataclass(frozen=True)
class CandidateSet:
    """The vectorized form of one decision's candidate actions.

    Row ``i`` of :attr:`allocs` is what ``candidates()[i].alloc`` would
    be — same generation order, same dedupe contract — with the kind and
    total CPU carried as parallel arrays instead of per-Action objects.
    """

    allocs: np.ndarray
    """``(B, n_tiers)`` candidate allocation matrix."""
    kinds: np.ndarray
    """``(B,)`` int codes into :data:`KINDS_BY_CODE`."""
    total_cpu: np.ndarray
    """``(B,)`` row sums of :attr:`allocs`."""

    def __len__(self) -> int:
        return self.allocs.shape[0]

    def kind_of(self, index: int) -> ActionKind:
        return KINDS_BY_CODE[int(self.kinds[index])]


#: Absolute per-tier CPU steps (cores), per the paper: 0.2 up to 1.0.
ABSOLUTE_STEPS: tuple[float, ...] = (0.2, 0.6, 1.0)
#: Relative per-tier steps, per the AWS step-scaling tutorial.
RELATIVE_STEPS: tuple[float, ...] = (0.1, 0.3)
#: Whole-application upscale ratios evaluated for Scale Up All.  The
#: larger ratios let the scheduler respond to a predicted violation with
#: a right-sized boost instead of falling through to the max-allocation
#: safety action.
SCALE_UP_ALL_RATIOS: tuple[float, ...] = (0.1, 0.3, 0.6, 1.0)


class ActionSpace:
    """Generates the Table 1 candidate set for one decision."""

    def __init__(
        self,
        min_alloc: np.ndarray,
        max_alloc: np.ndarray,
        absolute_steps: tuple[float, ...] = ABSOLUTE_STEPS,
        relative_steps: tuple[float, ...] = RELATIVE_STEPS,
        batch_sizes: tuple[int, ...] = (2, 4, 8, 1_000_000),
        util_cap: float = 0.6,
    ) -> None:
        self.min_alloc = np.asarray(min_alloc, dtype=float)
        self.max_alloc = np.asarray(max_alloc, dtype=float)
        self.absolute_steps = absolute_steps
        self.relative_steps = relative_steps
        self.batch_sizes = batch_sizes
        self.util_cap = util_cap

    @property
    def n_tiers(self) -> int:
        return len(self.min_alloc)

    def _clip(self, alloc: np.ndarray) -> np.ndarray:
        return np.clip(alloc, self.min_alloc, self.max_alloc)

    def _down_steps(self, current: np.ndarray, tier: int) -> list[float]:
        steps = {s for s in self.absolute_steps}
        steps |= {current[tier] * r for r in self.relative_steps}
        return sorted(steps)

    def candidates(
        self,
        current: np.ndarray,
        cpu_util: np.ndarray,
        victims: np.ndarray | None = None,
        allow_scale_down: bool = True,
    ) -> list[Action]:
        """Candidate actions from the current allocation and utilization.

        Parameters
        ----------
        current:
            Current per-tier allocation.
        cpu_util:
            Last interval's per-tier utilization; used to order the
            batch scale-down and to enforce the paper's utilization cap
            (downsizing must not push a tier's projected utilization
            above the cap — the rule that avoids long queues and dropped
            requests during data collection and deployment).
        victims:
            Boolean mask of tiers scaled down within the last t cycles,
            for the Scale Up Victim action.
        allow_scale_down:
            The paper disables resource reclamation while tail latency
            exceeds the expected value; pass ``False`` to do the same.
        """
        current = np.asarray(current, dtype=float)
        cpu_util = np.asarray(cpu_util, dtype=float)
        n = self.n_tiers
        actions: list[Action] = [
            Action(ActionKind.HOLD, current.copy(), "hold")
        ]
        busy = cpu_util * current  # cores actually used last interval

        def util_ok(alloc: np.ndarray) -> bool:
            # The cap constrains only the tiers this action shrinks; a
            # tier that is already hot (and untouched) must not veto
            # reclaiming a different, idle tier.
            shrunk = alloc < current - 1e-12
            if not shrunk.any():
                return True
            projected = busy[shrunk] / np.maximum(alloc[shrunk], 1e-9)
            return bool(np.all(projected <= self.util_cap))

        if allow_scale_down:
            for tier in range(n):
                if current[tier] <= self.min_alloc[tier]:
                    continue
                for step in self._down_steps(current, tier):
                    alloc = current.copy()
                    alloc[tier] = max(alloc[tier] - step, self.min_alloc[tier])
                    if np.allclose(alloc, current):
                        continue
                    if not util_ok(alloc):
                        continue
                    actions.append(
                        Action(
                            ActionKind.SCALE_DOWN,
                            alloc,
                            f"down tier {tier} by {step:.2f}",
                        )
                    )
            order = np.argsort(cpu_util)
            for k in self.batch_sizes:
                k = min(k, n)
                chosen = order[:k]
                for step_desc, stepped in (
                    ("0.2", current[chosen] - 0.2),
                    ("10%", current[chosen] * 0.9),
                ):
                    alloc = current.copy()
                    alloc[chosen] = np.maximum(stepped, self.min_alloc[chosen])
                    if np.allclose(alloc, current) or not util_ok(alloc):
                        continue
                    actions.append(
                        Action(
                            ActionKind.SCALE_DOWN_BATCH,
                            alloc,
                            f"down {k} least-utilized tiers by {step_desc}",
                        )
                    )

        for tier in range(n):
            if current[tier] >= self.max_alloc[tier]:
                continue
            for step in self._down_steps(current, tier):
                alloc = current.copy()
                alloc[tier] = min(alloc[tier] + step, self.max_alloc[tier])
                if np.allclose(alloc, current):
                    continue
                actions.append(
                    Action(
                        ActionKind.SCALE_UP,
                        alloc,
                        f"up tier {tier} by {step:.2f}",
                    )
                )

        for ratio in SCALE_UP_ALL_RATIOS:
            alloc = self._clip(current * (1.0 + ratio))
            if not np.allclose(alloc, current):
                actions.append(
                    Action(
                        ActionKind.SCALE_UP_ALL,
                        alloc,
                        f"up all tiers by {int(ratio * 100)}%",
                    )
                )

        if victims is not None and victims.any():
            alloc = current.copy()
            alloc[victims] = np.minimum(
                alloc[victims] + 0.6, self.max_alloc[victims]
            )
            if not np.allclose(alloc, current):
                actions.append(
                    Action(
                        ActionKind.SCALE_UP_VICTIM,
                        alloc,
                        f"up {int(victims.sum())} recent victim tiers",
                    )
                )
        return self._dedupe(actions)

    def candidates_fast(
        self,
        current: np.ndarray,
        cpu_util: np.ndarray,
        victims: np.ndarray | None = None,
        allow_scale_down: bool = True,
    ) -> CandidateSet:
        """Vectorized :meth:`candidates`: same rows, no Action objects.

        Emits the ``(B, n_tiers)`` candidate matrix directly — the exact
        allocations, order, and dedupe of the Action-list path (which is
        retained as the oracle; ``tests/core/test_fast_control.py`` holds
        the two bitwise-equal) — so the scheduler's hot loop never builds
        or re-stacks per-candidate objects.
        """
        current = np.asarray(current, dtype=float)
        cpu_util = np.asarray(cpu_util, dtype=float)
        n = self.n_tiers
        busy = cpu_util * current
        blocks: list[np.ndarray] = [current[None, :].copy()]
        codes: list[np.ndarray] = [
            np.full(1, KIND_CODES[ActionKind.HOLD], dtype=np.int64)
        ]

        # Per-tier step menu, shared by scale-down and scale-up: the
        # sorted union of the absolute steps and this tier's relative
        # steps, with exact duplicates masked (``_down_steps`` builds the
        # same menu via sorted(set(...))).
        n_abs = len(self.absolute_steps)
        steps = np.empty((n, n_abs + len(self.relative_steps)))
        steps[:, :n_abs] = self.absolute_steps
        steps[:, n_abs:] = current[:, None] * np.asarray(self.relative_steps)
        steps.sort(axis=1)
        fresh = np.ones(steps.shape, dtype=bool)
        fresh[:, 1:] = steps[:, 1:] != steps[:, :-1]
        tiers = np.repeat(np.arange(n), steps.shape[1])
        flat_steps = steps.ravel()
        flat_fresh = fresh.ravel()
        cur_t = current[tiers]

        def one_tier_block(tiers_hit: np.ndarray, values: np.ndarray) -> np.ndarray:
            block = np.repeat(current[None, :], tiers_hit.size, axis=0)
            block[np.arange(tiers_hit.size), tiers_hit] = values
            return block

        if allow_scale_down:
            down_vals = np.maximum(cur_t - flat_steps, self.min_alloc[tiers])
            moved = ~np.isclose(down_vals, cur_t)
            shrunk = down_vals < cur_t - 1e-12
            util_fine = ~shrunk | (
                busy[tiers] / np.maximum(down_vals, 1e-9) <= self.util_cap
            )
            valid = (
                flat_fresh
                & (cur_t > self.min_alloc[tiers])
                & moved
                & util_fine
            )
            blocks.append(one_tier_block(tiers[valid], down_vals[valid]))
            codes.append(
                np.full(
                    int(valid.sum()), KIND_CODES[ActionKind.SCALE_DOWN],
                    dtype=np.int64,
                )
            )

            order = np.argsort(cpu_util)
            n_batch = 2 * len(self.batch_sizes)
            batch = np.repeat(current[None, :], n_batch, axis=0)
            row = 0
            for k in self.batch_sizes:
                chosen = order[: min(k, n)]
                floor = self.min_alloc[chosen]
                batch[row, chosen] = np.maximum(current[chosen] - 0.2, floor)
                batch[row + 1, chosen] = np.maximum(current[chosen] * 0.9, floor)
                row += 2
            near = np.isclose(batch, current[None, :]).all(axis=1)
            b_shrunk = batch < current[None, :] - 1e-12
            b_fine = (
                ~b_shrunk
                | (busy[None, :] / np.maximum(batch, 1e-9) <= self.util_cap)
            ).all(axis=1)
            b_valid = ~near & b_fine
            blocks.append(batch[b_valid])
            codes.append(
                np.full(
                    int(b_valid.sum()),
                    KIND_CODES[ActionKind.SCALE_DOWN_BATCH],
                    dtype=np.int64,
                )
            )

        up_vals = np.minimum(cur_t + flat_steps, self.max_alloc[tiers])
        up_valid = (
            flat_fresh
            & (cur_t < self.max_alloc[tiers])
            & ~np.isclose(up_vals, cur_t)
        )
        blocks.append(one_tier_block(tiers[up_valid], up_vals[up_valid]))
        codes.append(
            np.full(
                int(up_valid.sum()), KIND_CODES[ActionKind.SCALE_UP],
                dtype=np.int64,
            )
        )

        ratios = np.asarray(SCALE_UP_ALL_RATIOS)
        up_all = self._clip(current[None, :] * (1.0 + ratios)[:, None])
        a_valid = ~np.isclose(up_all, current[None, :]).all(axis=1)
        blocks.append(up_all[a_valid])
        codes.append(
            np.full(
                int(a_valid.sum()), KIND_CODES[ActionKind.SCALE_UP_ALL],
                dtype=np.int64,
            )
        )

        if victims is not None and victims.any():
            v_alloc = current.copy()
            v_alloc[victims] = np.minimum(
                v_alloc[victims] + 0.6, self.max_alloc[victims]
            )
            if not np.isclose(v_alloc, current).all():
                blocks.append(v_alloc[None, :])
                codes.append(
                    np.full(
                        1, KIND_CODES[ActionKind.SCALE_UP_VICTIM],
                        dtype=np.int64,
                    )
                )

        allocs = np.concatenate(blocks, axis=0)
        kinds = np.concatenate(codes)
        keep = self._dedupe_rows(allocs)
        allocs = np.ascontiguousarray(allocs[keep])
        return CandidateSet(
            allocs=allocs, kinds=kinds[keep], total_cpu=allocs.sum(axis=1)
        )

    @staticmethod
    def _dedupe_rows(allocs: np.ndarray) -> np.ndarray:
        """Surviving row indices under the :meth:`_dedupe` contract,
        computed by lexsorting the rounded rows: duplicates land
        adjacent (lexsort is stable, so within a duplicate group the
        original order is preserved and the group's last element is the
        last occurrence), the last of each group wins, and survivors are
        re-sorted into their original relative order.
        """
        rounded = np.round(allocs, 9)
        order = np.lexsort(rounded.T)
        srt = rounded[order]
        last_of_group = np.empty(order.size, dtype=bool)
        last_of_group[-1] = True
        if order.size > 1:
            last_of_group[:-1] = (srt[1:] != srt[:-1]).any(axis=1)
        keep = order[last_of_group]
        keep.sort()
        return keep

    @staticmethod
    def _dedupe(actions: list[Action]) -> list[Action]:
        """Drop candidates whose resulting allocation duplicates another
        (distinct steps clipping to the same ``min_alloc`` /
        ``max_alloc`` boundary), so no allocation is scored twice.

        The *last* occurrence of each allocation wins: the most specific
        kind (e.g. Scale Up Victim, generated after the generic per-tier
        upscales it may coincide with) keeps its label.
        """
        seen: set[tuple] = set()
        unique: list[Action] = []
        for action in reversed(actions):
            key = tuple(np.round(action.alloc, 9))
            if key in seen:
                continue
            seen.add(key)
            unique.append(action)
        unique.reverse()
        return unique

    def max_allocation_action(self) -> Action:
        """The safety fallback: every tier at its ceiling."""
        return Action(
            ActionKind.SCALE_UP_ALL, self.max_alloc.copy(), "all tiers to max"
        )


__all__ = [
    "Action",
    "ActionKind",
    "ActionSpace",
    "CandidateSet",
    "KIND_CODES",
    "KINDS_BY_CODE",
    "ABSOLUTE_STEPS",
    "RELATIVE_STEPS",
]
