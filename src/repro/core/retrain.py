"""Incremental retraining and the continuous-learning pipeline
(paper Section 5.4, Figure 13).

When the deployment changes — a new server platform (local -> GCE), a
different scale-out factor, or an application modification such as
AES-encrypting post bodies — the existing model is *fine-tuned* on a
small amount of newly collected data instead of retrained from scratch.
The learning rate drops to 1/100 of the original so SGD stays near the
learnt solution, and accuracy converges within roughly a thousand new
samples (minutes of profiling) instead of many hours.

:func:`fine_tune_predictor` reproduces that offline experiment
(Figure 13).  The rest of the module closes the loop the paper only
sketches — retraining "when the deployment drifts" *while the manager
keeps serving decisions*:

* :class:`ModelRegistry` — versioned store of predictors (layered on
  the ``SAVE_FORMAT`` pickle envelope), recording each model's lineage
  and which version is live.
* :class:`RetrainWorker` — produces a fine-tuned *challenger* off the
  control path.  The default mode is deterministic: the work runs
  inline at submit time but the result is withheld for a configurable
  number of decision intervals, modeling background-retrain latency
  without wall-clock nondeterminism; an optional thread mode does the
  work on a real background thread.
* :class:`ShadowEvaluator` — scores the challenger on every decision
  side-by-side with the incumbent.  The incumbent's decision is the one
  that runs, bitwise unchanged; disagreements are logged as
  :class:`~repro.obs.audit.DivergenceRecord`.
* :class:`PromotionGate` — judges the shadow record and only then is
  the challenger promoted (``OnlineScheduler.adopt_predictor``).
* :class:`ContinuousSinanManager` — the drop-in manager wiring drift
  detection -> background retrain -> shadow -> gated promotion into the
  ordinary ``decide()`` loop.
"""

from __future__ import annotations

import copy
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.manager import Manager
from repro.core.predictor import HybridPredictor
from repro.ml.dataset import SinanDataset


@dataclass
class RetrainReport:
    """Fine-tuning accuracy as a function of new-sample count.

    Mirrors the axes of paper Figure 13: x = number of newly collected
    samples, y = train/validation RMSE; ``base_rmse`` is the original
    model evaluated directly on the new platform's validation data
    (the paper's zero-new-samples point).
    """

    scenario: str
    base_rmse: float
    sample_counts: list[int] = field(default_factory=list)
    train_rmse: list[float] = field(default_factory=list)
    val_rmse: list[float] = field(default_factory=list)

    def converged_rmse(self) -> float:
        """Validation RMSE at the largest sample budget."""
        if not self.val_rmse:
            return self.base_rmse
        return self.val_rmse[-1]


def fine_tune_predictor(
    predictor: HybridPredictor,
    new_data: SinanDataset,
    sample_counts: list[int],
    scenario: str = "variant",
    lr_scale: float = 0.01,
    epochs: int | None = None,
    val_frac: float = 0.2,
    seed: int = 0,
) -> tuple[HybridPredictor, RetrainReport]:
    """Fine-tune a trained predictor on increasing amounts of new data.

    For each budget in ``sample_counts`` a fresh copy of the original
    predictor is fine-tuned on that many new samples and evaluated on a
    held-out validation slice of the new data; the returned predictor is
    the one fine-tuned at the largest budget.

    Returns
    -------
    (fine-tuned predictor, RetrainReport)
    """
    if predictor.report is None:
        raise ValueError("predictor must be trained before fine-tuning")
    if not sample_counts:
        raise ValueError("need at least one sample budget")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(new_data))
    n_val = max(int(len(new_data) * val_frac), 1)
    val = new_data.subset(order[:n_val])
    pool = new_data.subset(order[n_val:])
    # RMSE is reported on the QoS-relevant region, mirroring training:
    # client-timeout plateau samples would otherwise dominate the metric.
    cap = predictor.config.label_cap_frac * predictor.qos.latency_ms
    val_eval = val.filter_latency_below(cap)
    if len(val_eval) == 0:
        raise ValueError("validation slice has no samples below the label cap")
    max_budget = max(sample_counts)
    if max_budget > len(pool):
        raise ValueError(
            f"largest budget {max_budget} exceeds available pool {len(pool)}"
        )

    report = RetrainReport(
        scenario=scenario,
        base_rmse=predictor.evaluate(val_eval)["rmse"],
    )
    best: HybridPredictor | None = None
    for budget in sorted(sample_counts):
        tuned = copy.deepcopy(predictor)
        train = pool.subset(np.arange(budget))
        from repro.ml.dataset import TrainValSplit

        tuned._train_on_split(
            TrainValSplit(train=train, val=val),
            lr=tuned.config.lr * lr_scale,
            epochs=epochs if epochs is not None else max(tuned.config.epochs // 2, 5),
        )
        metrics_train = tuned.evaluate(train.filter_latency_below(cap))
        metrics_val = tuned.evaluate(val_eval)
        report.sample_counts.append(budget)
        report.train_rmse.append(metrics_train["rmse"])
        report.val_rmse.append(metrics_val["rmse"])
        best = tuned
    assert best is not None
    return best, report


# ----------------------------------------------------------------------
# Model version registry
# ----------------------------------------------------------------------


@dataclass
class ModelVersion:
    """One registered predictor version and its lineage."""

    version: int
    source: str
    """How the model came to be ("initial", "fine-tune@<interval>", ...)."""
    parent: int | None = None
    """Version this one was fine-tuned from (``None`` for roots)."""
    metrics: dict = field(default_factory=dict)
    promoted: bool = False
    """Whether this version was ever made live."""
    file: str | None = None
    """Pickle filename under the registry root (disk mode only)."""


class ModelRegistry:
    """Versioned predictor store layered on the ``SAVE_FORMAT`` envelope.

    In-memory by default (versions live for the process); give it a
    ``root`` directory to persist every version as ``vNNN.pkl`` — the
    same :meth:`HybridPredictor.save` envelope the rest of the repo
    uses, so any registered version loads with
    :meth:`HybridPredictor.load` — plus a ``manifest.json`` recording
    lineage and the active version.  A registry pointed at an existing
    root resumes from its manifest.
    """

    MANIFEST = "manifest.json"

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self.versions: list[ModelVersion] = []
        self.active: int | None = None
        """Version number currently live, or ``None``."""
        self._models: dict[int, HybridPredictor] = {}
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            manifest = self.root / self.MANIFEST
            if manifest.exists():
                self._load_manifest(manifest)

    def __len__(self) -> int:
        return len(self.versions)

    def register(
        self,
        predictor: HybridPredictor,
        source: str,
        parent: int | None = None,
        metrics: dict | None = None,
    ) -> ModelVersion:
        """Record a new version; returns its :class:`ModelVersion`."""
        number = (self.versions[-1].version + 1) if self.versions else 1
        entry = ModelVersion(
            version=number, source=source, parent=parent,
            metrics=dict(metrics or {}),
        )
        if self.root is not None:
            entry.file = f"v{number:03d}.pkl"
            predictor.save(self.root / entry.file)
        else:
            self._models[number] = predictor
        self.versions.append(entry)
        self._write_manifest()
        return entry

    def get(self, version: int) -> HybridPredictor:
        """The predictor registered as ``version``."""
        entry = self.entry(version)
        if self.root is not None:
            if entry.file is None:
                raise ValueError(f"version {version} has no stored file")
            return HybridPredictor.load(self.root / entry.file)
        return self._models[version]

    def entry(self, version: int) -> ModelVersion:
        for item in self.versions:
            if item.version == version:
                return item
        raise KeyError(f"unknown model version {version}")

    def promote(self, version: int, metrics: dict | None = None) -> None:
        """Mark ``version`` live (it must be registered)."""
        entry = self.entry(version)
        entry.promoted = True
        if metrics:
            entry.metrics.update(metrics)
        self.active = version
        self._write_manifest()

    # -- persistence ---------------------------------------------------

    def _write_manifest(self) -> None:
        if self.root is None:
            return
        payload = {
            "format": 1,
            "active": self.active,
            "models": [
                {
                    "version": v.version,
                    "source": v.source,
                    "parent": v.parent,
                    "metrics": v.metrics,
                    "promoted": v.promoted,
                    "file": v.file,
                }
                for v in self.versions
            ],
        }
        (self.root / self.MANIFEST).write_text(json.dumps(payload, indent=2))

    def _load_manifest(self, path: Path) -> None:
        payload = json.loads(path.read_text())
        if payload.get("format") != 1:
            raise ValueError(
                f"unsupported registry manifest format {payload.get('format')!r}"
            )
        self.active = payload.get("active")
        self.versions = [ModelVersion(**item) for item in payload["models"]]


# ----------------------------------------------------------------------
# Background retrain worker
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetrainConfig:
    """Knobs of the continuous-learning loop."""

    delivery_intervals: int = 20
    """Decisions between a retrain submission and the challenger
    becoming available (models background-retrain latency without
    wall-clock nondeterminism)."""

    shadow_intervals: int = 30
    """Decisions the challenger shadows the incumbent before the
    promotion gate judges it."""

    lr_scale: float = 0.01
    """Fine-tune learning-rate scale (paper Section 5.4: 1/100)."""

    epochs: int | None = None
    """Fine-tune epochs (``None`` = predictor default)."""

    seed: int = 0
    """Base seed for data collection / fine-tune SGD; bumped per
    submission so consecutive retrains are independent."""

    use_thread: bool = False
    """Run the retrain on a real background thread.  The challenger is
    still withheld until ``delivery_intervals`` have elapsed, so thread
    scheduling can delay delivery but never hasten it."""

    max_retrains: int | None = None
    """Cap on retrain cycles per episode (``None`` = unlimited; the
    drift detector's cooldown already rate-limits submissions)."""


class RetrainWorker:
    """Produces fine-tuned challengers off the control path.

    ``collect`` is called with a seed and must return a fresh
    :class:`SinanDataset` of boundary data (typically a
    :class:`~repro.core.data_collection.DataCollector` sweep against
    the current platform); it must not touch the live episode's RNG or
    cluster.  The incumbent passed to :meth:`submit` is deep-copied, so
    retraining never mutates the serving model.

    When ``collect`` fans out over processes (``BoundaryCollector`` with
    ``jobs > 1``), successive retrain cycles reuse the process-wide warm
    worker pool (:mod:`repro.harness.pool`) instead of cold-starting one
    per cycle; a promoted challenger re-broadcasts under a new content
    fingerprint, so stale worker-side model caches cannot serve it.
    """

    def __init__(self, collect, config: RetrainConfig | None = None) -> None:
        self.collect = collect
        self.config = config or RetrainConfig()
        self.submissions = 0
        self._pending: HybridPredictor | None = None
        self._ready_at: int | None = None
        self._thread: threading.Thread | None = None
        self.error: str | None = None
        """Failure message of the most recent submission, or ``None``."""

    @property
    def busy(self) -> bool:
        return self._ready_at is not None

    def submit(self, incumbent: HybridPredictor, interval: int) -> None:
        """Start retraining a copy of ``incumbent``.

        ``interval`` is the decision index at submission; the challenger
        becomes available ``delivery_intervals`` decisions later.
        """
        if self.busy:
            raise RuntimeError("a retrain is already in flight")
        seed = self.config.seed + self.submissions
        self.submissions += 1
        self.error = None
        self._ready_at = interval + self.config.delivery_intervals
        base = copy.deepcopy(incumbent)
        if self.config.use_thread:
            self._thread = threading.Thread(
                target=self._run, args=(base, seed), daemon=True
            )
            self._thread.start()
        else:
            self._run(base, seed)

    def _run(self, base: HybridPredictor, seed: int) -> None:
        try:
            dataset = self.collect(seed)
            base.fine_tune(
                dataset,
                lr_scale=self.config.lr_scale,
                epochs=self.config.epochs,
                seed=seed,
            )
            self._pending = base
        except Exception as exc:  # never crash the control loop
            self.error = f"{type(exc).__name__}: {exc}"
            self._pending = None

    def poll(self, interval: int) -> HybridPredictor | None:
        """The finished challenger once its delivery interval passed.

        Returns ``None`` while still "in the background".  After a
        failed retrain (see :attr:`error`) the worker clears itself so
        the caller can resubmit; the failure is surfaced exactly once
        via :attr:`error`.
        """
        if self._ready_at is None or interval < self._ready_at:
            return None
        if self._thread is not None:
            if self._thread.is_alive():
                return None
            self._thread = None
        self._ready_at = None
        challenger, self._pending = self._pending, None
        return challenger

    def cancel(self) -> None:
        """Drop any in-flight work (episode reset)."""
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._pending = None
        self._ready_at = None
        self.error = None


# ----------------------------------------------------------------------
# Shadow evaluation and the promotion gate
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShadowReport:
    """What the challenger did during its shadow phase."""

    version: int
    intervals: int
    divergences: int
    challenger_mispredictions: int
    """Intervals where QoS was violated though the challenger had
    scored the situation safe (would-be recovery boosts)."""
    challenger_fallbacks: int
    incumbent_mispredictions: int
    """Incumbent mispredictions over the same window (baseline)."""
    incumbent_fallbacks: int
    challenger_mae_ms: float
    """Mean |predicted - measured| tail latency of the challenger over
    the shadow window (NaN without finite pairs)."""
    incumbent_mae_ms: float
    calibration_samples: int
    """Finite (predicted, measured) pairs behind the challenger MAE."""

    challenger_mean_total_cpu: float = float("nan")
    """Mean total CPU (cores) the challenger *would have* allocated per
    shadow decision (NaN before any decision was shadowed)."""

    incumbent_mean_total_cpu: float = float("nan")
    """Mean total CPU the incumbent actually allocated over the same
    shadow window — the efficiency baseline."""

    @property
    def challenger_misprediction_rate(self) -> float:
        return self.challenger_mispredictions / max(self.intervals, 1)

    @property
    def challenger_fallback_rate(self) -> float:
        return self.challenger_fallbacks / max(self.intervals, 1)


class ShadowEvaluator:
    """Scores a challenger on live decisions without acting on them.

    The challenger gets its own :class:`OnlineScheduler` (same action
    space, QoS, and config as the incumbent) and decides on the same
    telemetry *after* the incumbent's decision is already fixed — the
    incumbent's allocations, counters, and RNG interactions are bitwise
    unchanged by shadowing.  Divergent choices become
    :class:`~repro.obs.audit.DivergenceRecord` entries; both models'
    one-step-ahead calibration error is tracked for the gate.
    """

    def __init__(
        self,
        challenger: HybridPredictor,
        incumbent: "OnlineScheduler",
        version: int,
    ) -> None:
        from repro.core.scheduler import OnlineScheduler

        self.challenger = challenger
        self.incumbent = incumbent
        self.version = version
        self.scheduler = OnlineScheduler(
            challenger, incumbent.action_space, incumbent.qos, incumbent.config
        )
        self.intervals = 0
        self.divergence_records: list = []
        self._inc_mis0 = incumbent.mispredictions
        self._inc_fb0 = incumbent.fallbacks
        self._prev_inc_pred = float("nan")
        self._prev_ch_pred = float("nan")
        self._inc_err = [0.0, 0]  # (sum, count)
        self._ch_err = [0.0, 0]
        self._inc_cpu = [0.0, 0]  # (total cores, decisions)
        self._ch_cpu = [0.0, 0]

    def observe(self, log, incumbent_alloc):
        """Shadow one decision; returns a divergence record or ``None``.

        Must be called right after the incumbent's ``decide`` on the
        same log (its latest prediction-trace entry is read here).
        """
        from repro.core.scheduler import _DecisionNote
        from repro.obs.audit import DivergenceRecord

        latest = log.latest
        measured = float(self.incumbent.qos.latency_of(latest))
        for prev, acc in (
            (self._prev_inc_pred, self._inc_err),
            (self._prev_ch_pred, self._ch_err),
        ):
            if np.isfinite(prev) and np.isfinite(measured):
                acc[0] += abs(prev - measured)
                acc[1] += 1

        note = _DecisionNote()
        ch_alloc = self.scheduler._decide(log, note)
        self.intervals += 1

        inc_trace = self.incumbent.prediction_trace
        inc_pred = float(inc_trace[-1]["predicted_ms"]) if inc_trace else float("nan")
        self._prev_inc_pred = inc_pred
        self._prev_ch_pred = float(note.predicted_ms)

        current = np.asarray(latest.cpu_alloc, dtype=float)
        inc_eff = current if incumbent_alloc is None else np.asarray(
            incumbent_alloc, dtype=float
        )
        ch_eff = current if ch_alloc is None else np.asarray(ch_alloc, dtype=float)
        self._inc_cpu[0] += float(np.nansum(inc_eff))
        self._inc_cpu[1] += 1
        self._ch_cpu[0] += float(np.nansum(ch_eff))
        self._ch_cpu[1] += 1
        if np.array_equal(inc_eff, ch_eff):
            return None
        record = DivergenceRecord(
            interval=self.incumbent.decisions - 1,
            time=float(latest.time),
            challenger_version=self.version,
            incumbent_kind=self._coarse_kind(inc_eff, current),
            challenger_kind=note.chosen_kind,
            incumbent_total_cpu=float(np.nansum(inc_eff)),
            challenger_total_cpu=float(np.nansum(ch_eff)),
            incumbent_predicted_p99_ms=inc_pred,
            challenger_predicted_p99_ms=float(note.predicted_ms),
        )
        self.divergence_records.append(record)
        return record

    @staticmethod
    def _coarse_kind(alloc: np.ndarray, current: np.ndarray) -> str:
        up = bool(np.any(alloc > current + 1e-9))
        down = bool(np.any(alloc < current - 1e-9))
        if up and down:
            return "mixed"
        if up:
            return "scale-up"
        if down:
            return "scale-down"
        return "hold"

    def report(self) -> ShadowReport:
        def mae(acc):
            return acc[0] / acc[1] if acc[1] else float("nan")

        return ShadowReport(
            version=self.version,
            intervals=self.intervals,
            divergences=len(self.divergence_records),
            challenger_mispredictions=self.scheduler.mispredictions,
            challenger_fallbacks=self.scheduler.fallbacks,
            incumbent_mispredictions=self.incumbent.mispredictions - self._inc_mis0,
            incumbent_fallbacks=self.incumbent.fallbacks - self._inc_fb0,
            challenger_mae_ms=mae(self._ch_err),
            incumbent_mae_ms=mae(self._inc_err),
            calibration_samples=self._ch_err[1],
            challenger_mean_total_cpu=(
                self._ch_cpu[0] / self._ch_cpu[1]
                if self._ch_cpu[1] else float("nan")
            ),
            incumbent_mean_total_cpu=(
                self._inc_cpu[0] / self._inc_cpu[1]
                if self._inc_cpu[1] else float("nan")
            ),
        )


@dataclass(frozen=True)
class GateDecision:
    """Outcome of judging a shadow report."""

    promote: bool
    reason: str
    metrics: dict = field(default_factory=dict)


@dataclass(frozen=True)
class PromotionGate:
    """Thresholds a challenger's shadow record must clear to go live."""

    min_intervals: int = 20
    """Shadow decisions required before judging at all."""

    max_misprediction_rate: float = 0.05
    """Challenger would-be unpredicted violations per shadow decision."""

    max_fallback_rate: float = 0.25
    """Challenger max-allocation fallbacks per shadow decision."""

    max_mae_ratio: float = 1.0
    """Challenger calibration MAE must be at most this multiple of the
    incumbent's over the same window (skipped when either side lacks
    finite samples)."""

    min_calibration_samples: int = 5
    """Pairs required before the MAE comparison is trusted."""

    max_cpu_regression: float = 0.05
    """Tolerated efficiency regression: the challenger's would-be mean
    allocated CPU may exceed the incumbent's over the same shadow
    window by at most this fraction.  A model that meets QoS only by
    allocating more hardware is not an improvement — the paper's whole
    objective is meeting QoS with the *fewest* resources."""

    def judge(self, report: ShadowReport) -> GateDecision:
        metrics = {
            "intervals": report.intervals,
            "divergences": report.divergences,
            "challenger_misprediction_rate": report.challenger_misprediction_rate,
            "challenger_fallback_rate": report.challenger_fallback_rate,
            "challenger_mae_ms": report.challenger_mae_ms,
            "incumbent_mae_ms": report.incumbent_mae_ms,
            "challenger_mean_total_cpu": report.challenger_mean_total_cpu,
            "incumbent_mean_total_cpu": report.incumbent_mean_total_cpu,
        }
        if report.intervals < self.min_intervals:
            return GateDecision(False, "shadow-too-short", metrics)
        if report.challenger_misprediction_rate > self.max_misprediction_rate:
            return GateDecision(False, "misprediction-rate", metrics)
        if report.challenger_fallback_rate > self.max_fallback_rate:
            return GateDecision(False, "fallback-rate", metrics)
        if (
            report.calibration_samples >= self.min_calibration_samples
            and np.isfinite(report.challenger_mae_ms)
            and np.isfinite(report.incumbent_mae_ms)
            and report.challenger_mae_ms
            > self.max_mae_ratio * report.incumbent_mae_ms
        ):
            return GateDecision(False, "calibration-no-better", metrics)
        if (
            np.isfinite(report.challenger_mean_total_cpu)
            and np.isfinite(report.incumbent_mean_total_cpu)
            and report.incumbent_mean_total_cpu > 0
            and report.challenger_mean_total_cpu
            > (1.0 + self.max_cpu_regression) * report.incumbent_mean_total_cpu
        ):
            return GateDecision(False, "cpu-regression", metrics)
        return GateDecision(True, "ok", metrics)


# ----------------------------------------------------------------------
# The continuous-learning manager
# ----------------------------------------------------------------------


class ContinuousSinanManager(Manager):
    """Sinan with the learning loop closed: drift detection, background
    retraining, shadow evaluation, and gated promotion — all inside the
    ordinary ``decide()`` interface, so it drops into every existing
    episode runner.

    State machine per decision (after the incumbent has decided —
    nothing below alters the returned allocation):

    ``monitor``
        Feed the drift detector from the incumbent's counters and
        prediction trace; on a signal, submit a retrain to the worker.
    ``retraining``
        Poll the worker; when the challenger is delivered, register it
        and open a shadow phase.
    ``shadow``
        Score the challenger side-by-side; after
        ``RetrainConfig.shadow_intervals`` decisions the
        :class:`PromotionGate` judges it, and only a passing challenger
        is adopted (``OnlineScheduler.adopt_predictor``).

    With ``collect=None`` the manager is detect-only (drift events are
    recorded, nothing is retrained); with ``promote=False`` the full
    loop runs but the gate's verdict is recorded instead of applied —
    the incumbent then behaves bitwise identically to a plain
    :class:`~repro.core.sinan.SinanManager` for the whole episode.
    """

    name = "Sinan-CL"

    STATE_MONITOR = "monitor"
    STATE_RETRAINING = "retraining"
    STATE_SHADOW = "shadow"

    def __init__(
        self,
        predictor: HybridPredictor,
        qos,
        collect=None,
        graph=None,
        scheduler_config=None,
        action_space=None,
        drift_config=None,
        retrain_config: RetrainConfig | None = None,
        gate: PromotionGate | None = None,
        registry: ModelRegistry | None = None,
        promote: bool = True,
    ) -> None:
        from repro.core.actions import ActionSpace
        from repro.core.drift import DriftDetector
        from repro.core.scheduler import OnlineScheduler

        graph = graph or predictor.graph
        if action_space is None:
            action_space = ActionSpace(graph.min_alloc(), graph.max_alloc())
        self.qos = qos
        self.graph = graph
        self.scheduler = OnlineScheduler(predictor, action_space, qos, scheduler_config)
        self.detector = DriftDetector(qos.latency_ms, drift_config)
        self.retrain_config = retrain_config or RetrainConfig()
        self.collect = collect
        self.worker = (
            RetrainWorker(collect, self.retrain_config)
            if collect is not None
            else None
        )
        self.gate = gate or PromotionGate()
        # `is not None`, not truthiness: a fresh registry is empty and
        # therefore falsy — `or` would silently drop the caller's store.
        self.registry = registry if registry is not None else ModelRegistry()
        entry = self.registry.register(predictor, source="initial")
        self.registry.promote(entry.version)
        self.incumbent_version = entry.version
        self.promote_enabled = promote
        self.promotions = 0
        self.retrains = 0
        self.state = self.STATE_MONITOR
        self.shadow: ShadowEvaluator | None = None
        self.events: list = []
        """Interleaved :class:`~repro.obs.audit.ModelEventRecord` /
        :class:`~repro.obs.audit.DivergenceRecord` stream for the
        current episode (also mirrored to an attached audit log)."""

    # -- Manager interface --------------------------------------------

    def decide(self, log):
        scheduler = self.scheduler
        pre_mis = scheduler.mispredictions
        pre_fallbacks = scheduler.fallbacks
        alloc = scheduler.decide(log)
        if len(log) == 0:
            return alloc
        latest = log.latest
        measured = float(self.qos.latency_of(latest))
        trace = scheduler.prediction_trace
        predicted = float(trace[-1]["predicted_ms"]) if trace else float("nan")
        self.detector.observe(
            measured,
            predicted,
            mispredicted=scheduler.mispredictions > pre_mis,
            fallback=scheduler.fallbacks > pre_fallbacks,
        )
        interval = scheduler.decisions - 1
        now = float(latest.time)
        if self.state == self.STATE_MONITOR:
            self._monitor_step(interval, now)
        elif self.state == self.STATE_RETRAINING:
            self._retraining_step(interval, now)
        else:
            self._shadow_step(log, alloc, interval, now)
        return alloc

    def reset(self) -> None:
        self.scheduler.reset()
        self.detector.reset()
        if self.worker is not None:
            self.worker.cancel()
        self.state = self.STATE_MONITOR
        self.shadow = None
        self.events = []

    # -- state machine -------------------------------------------------

    def _emit(self, record) -> None:
        from repro.obs.recorder import NULL_RECORDER

        self.events.append(record)
        recorder = self.scheduler.__dict__.get("recorder", NULL_RECORDER)
        if recorder.enabled:
            recorder.audit(record)

    def _monitor_step(self, interval: int, now: float) -> None:
        from repro.obs.audit import (
            EVENT_DRIFT,
            EVENT_RETRAIN_STARTED,
            ModelEventRecord,
        )

        signal = self.detector.check()
        if signal is None:
            return
        self._emit(ModelEventRecord(
            interval=interval, time=now, event=EVENT_DRIFT,
            version=self.incumbent_version, reason=signal.reason,
            detail=signal.describe(),
        ))
        if self.worker is None:
            return  # detect-only mode
        limit = self.retrain_config.max_retrains
        if limit is not None and self.retrains >= limit:
            return
        self.retrains += 1
        self.worker.submit(self.scheduler.predictor, interval)
        self._emit(ModelEventRecord(
            interval=interval, time=now, event=EVENT_RETRAIN_STARTED,
            version=self.incumbent_version, reason=signal.reason,
        ))
        self.state = self.STATE_RETRAINING

    def _retraining_step(self, interval: int, now: float) -> None:
        from repro.obs.audit import (
            EVENT_REJECTED,
            EVENT_SHADOW_STARTED,
            ModelEventRecord,
        )

        assert self.worker is not None
        was_busy = self.worker.busy
        challenger = self.worker.poll(interval)
        if challenger is not None:
            entry = self.registry.register(
                challenger,
                source=f"fine-tune@{interval}",
                parent=self.incumbent_version,
            )
            self.shadow = ShadowEvaluator(challenger, self.scheduler, entry.version)
            self._emit(ModelEventRecord(
                interval=interval, time=now, event=EVENT_SHADOW_STARTED,
                version=entry.version,
            ))
            self.state = self.STATE_SHADOW
        elif was_busy and not self.worker.busy:
            self._emit(ModelEventRecord(
                interval=interval, time=now, event=EVENT_REJECTED,
                version=self.incumbent_version, reason="retrain-failed",
                detail=self.worker.error or "",
            ))
            self.state = self.STATE_MONITOR

    def _shadow_step(self, log, alloc, interval: int, now: float) -> None:
        from repro.obs.audit import (
            EVENT_PROMOTED,
            EVENT_REJECTED,
            ModelEventRecord,
        )

        assert self.shadow is not None
        divergence = self.shadow.observe(log, alloc)
        if divergence is not None:
            self._emit(divergence)
        if self.shadow.intervals < self.retrain_config.shadow_intervals:
            return
        report = self.shadow.report()
        decision = self.gate.judge(report)
        detail = ", ".join(
            f"{key}={value:.3g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in decision.metrics.items()
        )
        if decision.promote and self.promote_enabled:
            challenger = self.shadow.challenger
            live_recorder = self.scheduler.predictor.__dict__.get("recorder")
            if live_recorder is not None:
                challenger.recorder = live_recorder
            self.scheduler.adopt_predictor(challenger)
            self.registry.promote(report.version, metrics=decision.metrics)
            self.incumbent_version = report.version
            self.promotions += 1
            self._emit(ModelEventRecord(
                interval=interval, time=now, event=EVENT_PROMOTED,
                version=report.version, reason=decision.reason, detail=detail,
            ))
            # The new model starts with a clean drift record.
            self.detector.reset()
        else:
            reason = decision.reason if not decision.promote else "promotion-disabled"
            self._emit(ModelEventRecord(
                interval=interval, time=now, event=EVENT_REJECTED,
                version=report.version, reason=reason, detail=detail,
            ))
        self.shadow = None
        self.state = self.STATE_MONITOR

    # -- introspection (mirrors SinanManager) --------------------------

    @property
    def predictor(self) -> HybridPredictor:
        return self.scheduler.predictor

    @property
    def prediction_trace(self):
        return self.scheduler.prediction_trace

    @property
    def mispredictions(self) -> int:
        return self.scheduler.mispredictions

    @property
    def trusted(self) -> bool:
        return self.scheduler.trusted

    @property
    def fallbacks(self) -> int:
        return self.scheduler.fallbacks

    @property
    def predictor_failures(self) -> int:
        return self.scheduler.predictor_failures


__all__ = [
    "fine_tune_predictor",
    "RetrainReport",
    "ModelVersion",
    "ModelRegistry",
    "RetrainConfig",
    "RetrainWorker",
    "ShadowEvaluator",
    "ShadowReport",
    "GateDecision",
    "PromotionGate",
    "ContinuousSinanManager",
]
