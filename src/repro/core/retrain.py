"""Incremental and transfer retraining (paper Section 5.4, Figure 13).

When the deployment changes — a new server platform (local -> GCE), a
different scale-out factor, or an application modification such as
AES-encrypting post bodies — the existing model is *fine-tuned* on a
small amount of newly collected data instead of retrained from scratch.
The learning rate drops to 1/100 of the original so SGD stays near the
learnt solution, and accuracy converges within roughly a thousand new
samples (minutes of profiling) instead of many hours.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.predictor import HybridPredictor
from repro.ml.dataset import SinanDataset


@dataclass
class RetrainReport:
    """Fine-tuning accuracy as a function of new-sample count.

    Mirrors the axes of paper Figure 13: x = number of newly collected
    samples, y = train/validation RMSE; ``base_rmse`` is the original
    model evaluated directly on the new platform's validation data
    (the paper's zero-new-samples point).
    """

    scenario: str
    base_rmse: float
    sample_counts: list[int] = field(default_factory=list)
    train_rmse: list[float] = field(default_factory=list)
    val_rmse: list[float] = field(default_factory=list)

    def converged_rmse(self) -> float:
        """Validation RMSE at the largest sample budget."""
        if not self.val_rmse:
            return self.base_rmse
        return self.val_rmse[-1]


def fine_tune_predictor(
    predictor: HybridPredictor,
    new_data: SinanDataset,
    sample_counts: list[int],
    scenario: str = "variant",
    lr_scale: float = 0.01,
    epochs: int | None = None,
    val_frac: float = 0.2,
    seed: int = 0,
) -> tuple[HybridPredictor, RetrainReport]:
    """Fine-tune a trained predictor on increasing amounts of new data.

    For each budget in ``sample_counts`` a fresh copy of the original
    predictor is fine-tuned on that many new samples and evaluated on a
    held-out validation slice of the new data; the returned predictor is
    the one fine-tuned at the largest budget.

    Returns
    -------
    (fine-tuned predictor, RetrainReport)
    """
    if predictor.report is None:
        raise ValueError("predictor must be trained before fine-tuning")
    if not sample_counts:
        raise ValueError("need at least one sample budget")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(new_data))
    n_val = max(int(len(new_data) * val_frac), 1)
    val = new_data.subset(order[:n_val])
    pool = new_data.subset(order[n_val:])
    # RMSE is reported on the QoS-relevant region, mirroring training:
    # client-timeout plateau samples would otherwise dominate the metric.
    cap = predictor.config.label_cap_frac * predictor.qos.latency_ms
    val_eval = val.filter_latency_below(cap)
    if len(val_eval) == 0:
        raise ValueError("validation slice has no samples below the label cap")
    max_budget = max(sample_counts)
    if max_budget > len(pool):
        raise ValueError(
            f"largest budget {max_budget} exceeds available pool {len(pool)}"
        )

    report = RetrainReport(
        scenario=scenario,
        base_rmse=predictor.evaluate(val_eval)["rmse"],
    )
    best: HybridPredictor | None = None
    for budget in sorted(sample_counts):
        tuned = copy.deepcopy(predictor)
        train = pool.subset(np.arange(budget))
        from repro.ml.dataset import TrainValSplit

        tuned._train_on_split(
            TrainValSplit(train=train, val=val),
            lr=tuned.config.lr * lr_scale,
            epochs=epochs if epochs is not None else max(tuned.config.epochs // 2, 5),
        )
        metrics_train = tuned.evaluate(train.filter_latency_below(cap))
        metrics_val = tuned.evaluate(val_eval)
        report.sample_counts.append(budget)
        report.train_rmse.append(metrics_train["rmse"])
        report.val_rmse.append(metrics_val["rmse"])
        best = tuned
    assert best is not None
    return best, report


__all__ = ["fine_tune_predictor", "RetrainReport"]
