"""Resource-manager interface shared by Sinan and the baselines.

A manager is called once per 1 s decision interval with the episode's
telemetry log and returns the per-tier CPU limits for the next interval
(or ``None`` to keep the current allocation) — exactly the control
surface the paper's centralized scheduler has over its per-node agents.
"""

from __future__ import annotations

import numpy as np

from repro.sim.telemetry import TelemetryLog


class Manager:
    """Base class for resource managers."""

    name = "manager"

    def decide(self, log: TelemetryLog) -> np.ndarray | None:
        """Return the next per-tier allocation, or ``None`` to hold."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-episode state (called between episodes)."""


class StaticManager(Manager):
    """Fixed allocation — the simplest possible baseline."""

    name = "static"

    def __init__(self, alloc: np.ndarray) -> None:
        self.alloc = np.asarray(alloc, dtype=float)

    def decide(self, log: TelemetryLog) -> np.ndarray | None:
        return self.alloc.copy()


__all__ = ["Manager", "StaticManager"]
