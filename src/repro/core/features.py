"""Feature encoding: from telemetry windows to CNN inputs.

Per paper Section 3.1 the latency predictor consumes three inputs built
purely from cgroup metrics and gateway latencies (no per-request
tracing):

* ``X_RH`` — a 3D "image" (F resource channels x N tiers x T
  timestamps) of per-tier utilization history, with consecutive tiers in
  adjacent rows,
* ``X_LH`` — the (T x M) end-to-end latency-percentile history,
* ``X_RC`` — the (N,) resource configuration examined for the next
  timestep.

``build_dataset`` turns a recorded episode (telemetry log) into aligned
training samples: the candidate allocation of sample *i* is the
allocation that was actually applied in interval *i+1*, the latency
target is what interval *i+1* measured, and the violation label looks
``k`` intervals ahead.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.qos import QoSTarget
from repro.sim.graph import AppGraph
from repro.sim.telemetry import IntervalStats, TelemetryLog
from repro.ml.dataset import SinanDataset

#: Per-tier / per-percentile fields checked (and repaired) by
#: :func:`sanitize_window` before encoding.
_SANITIZED_FIELDS: tuple[str, ...] = (
    "cpu_util",
    "cpu_alloc",
    "rss_mb",
    "cache_mb",
    "rx_pps",
    "tx_pps",
    "latency_ms",
)


def sanitize_window(window: list[IntervalStats]) -> list[IntervalStats]:
    """Repair non-finite telemetry before it reaches the models.

    A faulty agent can report NaN channels or corrupted counters (see
    :mod:`repro.sim.faults`); feeding those into the CNN would poison
    every candidate's score for the decision.  Each non-finite element
    is replaced by the most recent finite value of the same field from
    earlier in the window (carried forward), or ``0.0`` when the window
    never held a finite value.  Clean windows are returned as-is, with
    no copies made.
    """
    last_good: dict[str, np.ndarray] = {}
    cleaned: list[IntervalStats] = []
    any_repaired = False
    for stats in window:
        repairs: dict[str, np.ndarray] = {}
        for name in _SANITIZED_FIELDS:
            values = getattr(stats, name)
            finite = np.isfinite(values)
            if not finite.all():
                fallback = last_good.get(name)
                repaired = values.copy()
                if fallback is None:
                    repaired[~finite] = 0.0
                else:
                    repaired[~finite] = fallback[~finite]
                repairs[name] = repaired
                last_good[name] = repaired
            else:
                last_good[name] = values
        if repairs:
            any_repaired = True
            cleaned.append(replace(stats, **repairs))
        else:
            cleaned.append(stats)
    return cleaned if any_repaired else window


class WindowEncoder:
    """Builds raw (unnormalized) model inputs from telemetry windows."""

    def __init__(self, graph: AppGraph, n_timesteps: int = 5) -> None:
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        self.graph = graph
        self.n_timesteps = n_timesteps

    @property
    def n_channels(self) -> int:
        return 6  # see IntervalStats.resource_matrix

    def encode_window(
        self, window: list[IntervalStats], candidate_alloc: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode one sample from ``n_timesteps`` intervals of history.

        Returns ``(X_RH, X_LH, X_RC)`` with shapes ``(F, N, T)``,
        ``(T, M)`` and ``(N,)``.
        """
        if len(window) != self.n_timesteps:
            raise ValueError(
                f"window must hold {self.n_timesteps} intervals, got {len(window)}"
            )
        window = sanitize_window(window)
        x_rh = np.stack([s.resource_matrix() for s in window], axis=2)
        x_lh = np.stack([s.latency_ms for s in window], axis=0)
        x_rc = np.asarray(candidate_alloc, dtype=float)
        if x_rc.shape != (self.graph.n_tiers,):
            raise ValueError("candidate_alloc has wrong shape")
        return x_rh, x_lh, x_rc

    def encode_log(
        self, log: TelemetryLog, candidate_alloc: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode the latest window of an episode (online inference)."""
        return self.encode_window(log.window(self.n_timesteps), candidate_alloc)

    def encode_candidates(
        self, log: TelemetryLog, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode a batch of candidate allocations sharing one history.

        ``candidates`` has shape ``(B, N)``; the history tensors are
        broadcast, so one CNN forward evaluates every allocation the
        scheduler is considering.
        """
        window = sanitize_window(log.window(self.n_timesteps))
        x_rh = np.stack([s.resource_matrix() for s in window], axis=2)
        x_lh = np.stack([s.latency_ms for s in window], axis=0)
        b = len(candidates)
        return (
            np.broadcast_to(x_rh, (b, *x_rh.shape)).copy(),
            np.broadcast_to(x_lh, (b, *x_lh.shape)).copy(),
            np.asarray(candidates, dtype=float),
        )


def build_dataset(
    log: TelemetryLog,
    graph: AppGraph,
    qos: QoSTarget,
    n_timesteps: int = 5,
    horizon: int = 3,
    meta: dict | None = None,
) -> SinanDataset:
    """Convert one recorded episode into an aligned training dataset.

    Sample *i* pairs the history window ending at interval *i* with the
    allocation applied during interval *i+1* (the "examined resource
    configuration"), the measured tail latencies of interval *i+1*, and
    a violation flag over intervals *i+1 .. i+horizon*.
    """
    encoder = WindowEncoder(graph, n_timesteps)
    n = len(log)
    if n < n_timesteps + 1:
        raise ValueError(
            f"episode too short: {n} intervals, need > {n_timesteps}"
        )
    latency_series = np.array([qos.latency_of(s) for s in log])
    labels = qos.violation_labels(latency_series, horizon)

    x_rh_list, x_lh_list, x_rc_list, y_lat_list, y_viol_list = [], [], [], [], []
    for i in range(n_timesteps - 1, n - 1):
        window = [log[j] for j in range(i - n_timesteps + 1, i + 1)]
        nxt = log[i + 1]
        x_rh, x_lh, x_rc = encoder.encode_window(window, nxt.cpu_alloc)
        x_rh_list.append(x_rh)
        x_lh_list.append(x_lh)
        x_rc_list.append(x_rc)
        y_lat_list.append(nxt.latency_ms)
        y_viol_list.append(labels[i + 1])

    base_meta = {"app": graph.name, "qos_ms": qos.latency_ms, "horizon": horizon}
    if meta:
        base_meta.update(meta)
    return SinanDataset(
        X_RH=np.stack(x_rh_list),
        X_LH=np.stack(x_lh_list),
        X_RC=np.stack(x_rc_list),
        y_lat=np.stack(y_lat_list),
        y_viol=np.array(y_viol_list),
        meta=base_meta,
    )


__all__ = ["WindowEncoder", "build_dataset", "sanitize_window"]
