"""Feature encoding: from telemetry windows to CNN inputs.

Per paper Section 3.1 the latency predictor consumes three inputs built
purely from cgroup metrics and gateway latencies (no per-request
tracing):

* ``X_RH`` — a 3D "image" (F resource channels x N tiers x T
  timestamps) of per-tier utilization history, with consecutive tiers in
  adjacent rows,
* ``X_LH`` — the (T x M) end-to-end latency-percentile history,
* ``X_RC`` — the (N,) resource configuration examined for the next
  timestep.

``build_dataset`` turns a recorded episode (telemetry log) into aligned
training samples: the candidate allocation of sample *i* is the
allocation that was actually applied in interval *i+1*, the latency
target is what interval *i+1* measured, and the violation label looks
``k`` intervals ahead.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace

import numpy as np

from repro.core.qos import QoSTarget
from repro.sim.graph import AppGraph
from repro.sim.telemetry import IntervalStats, TelemetryLog
from repro.ml.dataset import SinanDataset

#: Per-tier / per-percentile fields checked (and repaired) by
#: :func:`sanitize_window` before encoding.
_SANITIZED_FIELDS: tuple[str, ...] = (
    "cpu_util",
    "cpu_alloc",
    "rss_mb",
    "cache_mb",
    "rx_pps",
    "tx_pps",
    "latency_ms",
)


def sanitize_window(window: list[IntervalStats]) -> list[IntervalStats]:
    """Repair non-finite telemetry before it reaches the models.

    A faulty agent can report NaN channels or corrupted counters (see
    :mod:`repro.sim.faults`); feeding those into the CNN would poison
    every candidate's score for the decision.  Each non-finite element
    is replaced by the most recent finite value of the same field from
    earlier in the window (carried forward), or ``0.0`` when the window
    never held a finite value.  Clean windows are returned as-is, with
    no copies made.
    """
    last_good: dict[str, np.ndarray] = {}
    cleaned: list[IntervalStats] = []
    any_repaired = False
    for stats in window:
        repairs: dict[str, np.ndarray] = {}
        for name in _SANITIZED_FIELDS:
            values = getattr(stats, name)
            finite = np.isfinite(values)
            if not finite.all():
                fallback = last_good.get(name)
                repaired = values.copy()
                if fallback is None:
                    repaired[~finite] = 0.0
                else:
                    repaired[~finite] = fallback[~finite]
                repairs[name] = repaired
                last_good[name] = repaired
            else:
                last_good[name] = values
        if repairs:
            any_repaired = True
            cleaned.append(replace(stats, **repairs))
        else:
            cleaned.append(stats)
    return cleaned if any_repaired else window


def _ffill_time(arr: np.ndarray, axis: int) -> np.ndarray:
    """Carry the last finite value forward along ``axis`` (0.0 before any).

    Array-level twin of :func:`sanitize_window`: each non-finite element
    becomes the most recent finite value of the same series earlier
    along the time axis, or 0.0 when none exists.  Returns the input
    unchanged (no copy) when everything is finite.
    """
    finite = np.isfinite(arr)
    if finite.all():
        return arr
    moved = np.moveaxis(arr, axis, -1)
    fin = np.moveaxis(finite, axis, -1)
    idx = np.where(fin, np.arange(moved.shape[-1]), 0)
    np.maximum.accumulate(idx, axis=-1, out=idx)
    filled = np.take_along_axis(moved, idx, axis=-1)
    seen = np.maximum.accumulate(fin, axis=-1)
    out = np.where(seen, filled, 0.0)
    return np.moveaxis(out, -1, axis)


@dataclass
class _HistoryCache:
    """Raw (unsanitized) encoded window, keyed on the telemetry log head.

    Consecutive ``decide()`` calls append one interval to the same
    :class:`~repro.sim.telemetry.TelemetryLog`, so the next window is
    the previous one shifted left by a single column.  The cache holds
    the raw tensors of the last encode; a weak reference (plus the log
    length) validates that the log is the same, still-growing episode.
    Sanitization runs on the assembled tensors afterwards, so the repair
    stays window-local exactly like the uncached path.
    """

    log_ref: weakref.ref
    length: int
    x_rh: np.ndarray  # (F, N, T) raw resource history
    x_lh: np.ndarray  # (T, M) raw latency history


class WindowEncoder:
    """Builds raw (unnormalized) model inputs from telemetry windows."""

    def __init__(self, graph: AppGraph, n_timesteps: int = 5) -> None:
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        self.graph = graph
        self.n_timesteps = n_timesteps
        self._cache: _HistoryCache | None = None

    def __getstate__(self) -> dict:
        # The per-decision cache holds a weakref (unpicklable) and is
        # only valid for a live episode; serialized encoders start cold.
        state = dict(self.__dict__)
        state["_cache"] = None
        return state

    def invalidate_cache(self) -> None:
        """Drop the incremental history cache.

        Call between episodes (the scheduler's ``reset`` does): the
        cache's shift-by-one fast path keys on the telemetry log object
        and its length, so a log that was cleared and refilled in place
        could otherwise shift stale features from the previous episode.
        """
        self._cache = None

    @property
    def n_channels(self) -> int:
        return 6  # see IntervalStats.resource_matrix

    def encode_window(
        self, window: list[IntervalStats], candidate_alloc: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode one sample from ``n_timesteps`` intervals of history.

        Returns ``(X_RH, X_LH, X_RC)`` with shapes ``(F, N, T)``,
        ``(T, M)`` and ``(N,)``.
        """
        if len(window) != self.n_timesteps:
            raise ValueError(
                f"window must hold {self.n_timesteps} intervals, got {len(window)}"
            )
        window = sanitize_window(window)
        x_rh = np.stack([s.resource_matrix() for s in window], axis=2)
        x_lh = np.stack([s.latency_ms for s in window], axis=0)
        x_rc = np.asarray(candidate_alloc, dtype=float)
        if x_rc.shape != (self.graph.n_tiers,):
            raise ValueError("candidate_alloc has wrong shape")
        return x_rh, x_lh, x_rc

    def encode_log(
        self, log: TelemetryLog, candidate_alloc: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode the latest window of an episode (online inference)."""
        return self.encode_window(log.window(self.n_timesteps), candidate_alloc)

    def encode_candidates(
        self, log: TelemetryLog, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode a batch of candidate allocations sharing one history.

        ``candidates`` has shape ``(B, N)``; the history tensors are
        broadcast, so one CNN forward evaluates every allocation the
        scheduler is considering.
        """
        window = sanitize_window(log.window(self.n_timesteps))
        x_rh = np.stack([s.resource_matrix() for s in window], axis=2)
        x_lh = np.stack([s.latency_ms for s in window], axis=0)
        b = len(candidates)
        return (
            np.broadcast_to(x_rh, (b, *x_rh.shape)).copy(),
            np.broadcast_to(x_lh, (b, *x_lh.shape)).copy(),
            np.asarray(candidates, dtype=float),
        )

    def encode_candidates_shared(
        self, log: TelemetryLog, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy twin of :meth:`encode_candidates`.

        Returns ``(X_RH (1, F, N, T), X_LH (1, T, M), X_RC (B, N))``:
        the shared history is encoded once (incrementally, via the
        per-decision cache) instead of being replicated B times, and the
        candidate matrix is passed through without broadcasting.  The
        tensors hold exactly the values :meth:`encode_candidates` would
        produce for each batch row.
        """
        cands = np.asarray(candidates, dtype=float)
        if cands.ndim != 2 or cands.shape[1] != self.graph.n_tiers:
            raise ValueError("candidates must have shape (B, n_tiers)")
        x_rh, x_lh = self.encode_history(log)
        return x_rh[None], x_lh[None], cands

    def encode_history(self, log: TelemetryLog) -> tuple[np.ndarray, np.ndarray]:
        """Sanitized history tensors ``(X_RH (F, N, T), X_LH (T, M))``.

        Incremental: when called on the same (append-only) log as the
        previous decision, only the newest interval is encoded and the
        cached window is shifted by one column.  Any other log — or a
        log still shorter than the window — is fully re-encoded.  The
        returned arrays are owned by the cache and must not be mutated.
        """
        n = len(log)
        t = self.n_timesteps
        cache = getattr(self, "_cache", None)
        raw_rh = raw_lh = None
        if cache is not None and cache.log_ref() is log and n > t:
            if n == cache.length:
                raw_rh, raw_lh = cache.x_rh, cache.x_lh
            elif n == cache.length + 1:
                latest = log.latest
                raw_rh = np.empty_like(cache.x_rh)
                raw_rh[:, :, :-1] = cache.x_rh[:, :, 1:]
                raw_rh[:, :, -1] = latest.resource_matrix()
                raw_lh = np.empty_like(cache.x_lh)
                raw_lh[:-1] = cache.x_lh[1:]
                raw_lh[-1] = latest.latency_ms
        if raw_rh is None:
            window = log.window(t)
            raw_rh = np.stack([s.resource_matrix() for s in window], axis=2)
            raw_lh = np.stack(
                [np.asarray(s.latency_ms, dtype=float) for s in window], axis=0
            )
        self._cache = _HistoryCache(
            log_ref=weakref.ref(log), length=n, x_rh=raw_rh, x_lh=raw_lh
        )
        return _ffill_time(raw_rh, axis=2), _ffill_time(raw_lh, axis=0)


def build_dataset(
    log: TelemetryLog,
    graph: AppGraph,
    qos: QoSTarget,
    n_timesteps: int = 5,
    horizon: int = 3,
    meta: dict | None = None,
) -> SinanDataset:
    """Convert one recorded episode into an aligned training dataset.

    Sample *i* pairs the history window ending at interval *i* with the
    allocation applied during interval *i+1* (the "examined resource
    configuration"), the measured tail latencies of interval *i+1*, and
    a violation flag over intervals *i+1 .. i+horizon*.
    """
    encoder = WindowEncoder(graph, n_timesteps)
    n = len(log)
    if n < n_timesteps + 1:
        raise ValueError(
            f"episode too short: {n} intervals, need > {n_timesteps}"
        )
    latency_series = np.array([qos.latency_of(s) for s in log])
    labels = qos.violation_labels(latency_series, horizon)

    # Encode each interval once, then cut the B overlapping training
    # windows as strided views — O(n) instead of the O(n*T) per-sample
    # restacking loop.  Telemetry needing sanitization (non-finite
    # values, possible only under fault injection) takes the per-window
    # reference path, whose carry-forward repair is window-local.
    resources = np.stack([s.resource_matrix() for s in log])  # (n, F, N)
    latencies = np.stack(
        [np.asarray(s.latency_ms, dtype=float) for s in log]
    )  # (n, M)
    allocs = np.stack(
        [np.asarray(s.cpu_alloc, dtype=float) for s in log]
    )  # (n, N)
    if allocs.shape[1] != graph.n_tiers:
        raise ValueError("candidate_alloc has wrong shape")
    if np.isfinite(resources).all() and np.isfinite(latencies).all():
        rh_windows = np.lib.stride_tricks.sliding_window_view(
            resources, n_timesteps, axis=0
        )  # (n - T + 1, F, N, T)
        lh_windows = np.lib.stride_tricks.sliding_window_view(
            latencies, n_timesteps, axis=0
        )  # (n - T + 1, M, T)
        x_rh = np.ascontiguousarray(rh_windows[: n - n_timesteps])
        x_lh = np.ascontiguousarray(
            lh_windows[: n - n_timesteps].transpose(0, 2, 1)
        )
        x_rc = allocs[n_timesteps:]
        y_lat = latencies[n_timesteps:]
        y_viol = np.asarray(labels[n_timesteps:])
    else:  # reference path: per-window encode with local sanitize
        x_rh_list, x_lh_list, x_rc_list, y_lat_list, y_viol_list = [], [], [], [], []
        for i in range(n_timesteps - 1, n - 1):
            window = [log[j] for j in range(i - n_timesteps + 1, i + 1)]
            nxt = log[i + 1]
            s_rh, s_lh, s_rc = encoder.encode_window(window, nxt.cpu_alloc)
            x_rh_list.append(s_rh)
            x_lh_list.append(s_lh)
            x_rc_list.append(s_rc)
            y_lat_list.append(nxt.latency_ms)
            y_viol_list.append(labels[i + 1])
        x_rh = np.stack(x_rh_list)
        x_lh = np.stack(x_lh_list)
        x_rc = np.stack(x_rc_list)
        y_lat = np.stack(y_lat_list)
        y_viol = np.array(y_viol_list)

    base_meta = {"app": graph.name, "qos_ms": qos.latency_ms, "horizon": horizon}
    if meta:
        base_meta.update(meta)
    return SinanDataset(
        X_RH=x_rh,
        X_LH=x_lh,
        X_RC=x_rc,
        y_lat=y_lat,
        y_viol=y_viol,
        meta=base_meta,
    )


__all__ = ["WindowEncoder", "build_dataset", "sanitize_window"]
