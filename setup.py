"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables
legacy ``pip install -e .`` on offline hosts where PEP 660 editable
wheels cannot be built.
"""

from setuptools import setup

setup()
