#!/usr/bin/env python
"""Transfer a trained model to a new platform (paper Section 5.4).

The Social Network moves from the local cluster to a GCE-like platform
(slower per request, noisier, replicated tiers).  Instead of repeating
the multi-hour data collection, the existing model is fine-tuned at
1/100 the learning rate on a short profiling run from the new platform,
then deployed there.
"""

import numpy as np

from repro.apps import SOCIAL_QOS_MS, social_network
from repro.core.retrain import fine_tune_predictor
from repro.core.sinan import SinanManager
from repro.harness.experiment import run_episode
from repro.harness.pipeline import (
    app_spec,
    collect_training_data,
    get_trained_predictor,
    make_cluster,
    resolve_budget,
)
from repro.harness.reporting import format_series, format_table
from repro.sim.cluster import GCE_PLATFORM


def main() -> None:
    graph = social_network()
    spec = app_spec(graph)
    budget = resolve_budget(None)

    print("Loading the local-cluster model (trains on first use)...")
    local_model = get_trained_predictor(graph, seed=0)
    print(f"  local validation RMSE: {local_model.rmse_val:.1f} ms\n")

    print("Profiling the GCE deployment (short bandit run)...")
    new_data = collect_training_data(graph, budget, seed=9, platform=GCE_PLATFORM)
    print(f"  collected {len(new_data)} samples on GCE\n")

    print("Fine-tuning at lr/100 on increasing sample budgets...")
    pool = int(len(new_data) * 0.8)
    counts = sorted({max(pool // 8, 8), max(pool // 3, 16), pool})
    tuned, report = fine_tune_predictor(
        local_model, new_data, counts, scenario="gce",
        epochs=max(budget.epochs // 3, 4), seed=9,
    )
    print(format_series(
        f"val RMSE vs new samples (0 = un-tuned model: {report.base_rmse:.1f} ms)",
        report.sample_counts, report.val_rmse, "# samples", "RMSE (ms)",
    ))

    print("\nDeploying the fine-tuned model on GCE:")
    rows = []
    for users in (150, 300, 450):
        manager = SinanManager(tuned, spec.qos, graph)
        cluster = make_cluster(graph, users, seed=500 + users, platform=GCE_PLATFORM)
        result = run_episode(manager, cluster, 120, spec.qos, warmup=30)
        rows.append([users, f"{result.mean_total_cpu:.0f}",
                     f"{result.qos_fraction:.3f}"])
    print(format_table(
        ["Users", "Mean CPU", "P(meet QoS)"], rows,
        title=f"GCE deployment, QoS p99 <= {SOCIAL_QOS_MS:.0f} ms",
    ))
    print("\nThe architecture and most of the learnt weights transfer; "
          "minutes of profiling replace hours of re-collection.")


if __name__ == "__main__":
    main()
