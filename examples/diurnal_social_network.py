#!/usr/bin/env python
"""Sinan vs autoscaling under a diurnal load (paper Figure 12, bottom).

The Social Network's user population swings through a day/night cycle;
the script runs Sinan and both autoscaler configurations over the same
cycle and prints an ASCII timeline of offered load, tail latency, and
aggregate CPU for each manager.
"""

import numpy as np

from repro.apps import SOCIAL_QOS_MS, social_network
from repro.baselines import AutoScale
from repro.core.sinan import SinanManager
from repro.harness.figures import sparkline
from repro.harness.pipeline import app_spec, build_sinan_pipeline, make_cluster
from repro.harness.reporting import format_table
from repro.workload.patterns import DiurnalLoad


def main() -> None:
    graph = social_network()
    spec = app_spec(graph)
    pattern = DiurnalLoad(base=180, amplitude=120, period=300)
    duration = 450

    sinan, _ = build_sinan_pipeline(graph, users=250, seed=0)
    managers = {
        "Sinan": sinan,
        "AutoScaleOpt": AutoScale.opt(graph.min_alloc(), graph.max_alloc()),
        "AutoScaleCons": AutoScale.conservative(graph.min_alloc(), graph.max_alloc()),
    }

    rows = []
    for name, manager in managers.items():
        manager.reset()
        cluster = make_cluster(graph, users=0, seed=77, pattern=pattern)
        for _ in range(duration):
            cluster.step(manager.decide(cluster.telemetry))
        log = cluster.telemetry
        p99 = log.p99_series()
        cpu = log.total_cpu_series()
        if name == "Sinan":
            print(f"\noffered load (users):  {sparkline(log.rps_series())}")
        print(f"{name:>14s}  p99 ms:  {sparkline(p99, hi=SOCIAL_QOS_MS)}")
        print(f"{'':>14s}  CPU:     {sparkline(cpu)}")
        rows.append([
            name,
            f"{cpu[60:].mean():.1f}",
            f"{np.median(p99[60:]):.0f}",
            f"{np.mean(p99[60:] <= SOCIAL_QOS_MS):.3f}",
        ])

    print()
    print(format_table(
        ["Manager", "Mean CPU", "Median p99 (ms)", "P(meet QoS)"],
        rows,
        title=f"Diurnal Social Network, QoS p99 <= {SOCIAL_QOS_MS:.0f} ms",
    ))


if __name__ == "__main__":
    main()
