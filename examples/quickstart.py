#!/usr/bin/env python
"""Quickstart: train Sinan for the Social Network and let it manage a
deployment for five simulated minutes.

This is the full paper pipeline in miniature:

1. explore the allocation space with the multi-armed bandit and collect
   a training dataset (paper Section 4.2);
2. train the hybrid model — the CNN latency predictor plus the
   Boosted-Trees violation predictor (Section 3);
3. deploy the online scheduler against a fresh cluster (Section 4.3).

Run with ``REPRO_BUDGET=small python examples/quickstart.py`` for a
~1 minute demo, or leave the default ``medium`` budget for a model close
to the benchmark suite's (~5 minutes of training on a laptop core).
"""

from repro.apps import SOCIAL_QOS_MS, social_network
from repro.harness.experiment import run_episode
from repro.harness.pipeline import app_spec, build_sinan_pipeline, make_cluster
from repro.harness.reporting import format_table


def main() -> None:
    graph = social_network()
    spec = app_spec(graph)
    print(f"Application: {graph.name} ({graph.n_tiers} tiers), "
          f"QoS: p99 <= {SOCIAL_QOS_MS:.0f} ms")
    print("Collecting training data and training the hybrid model "
          "(cached under .cache/ after the first run)...")
    manager, _ = build_sinan_pipeline(graph, users=250, seed=0)

    report = manager.predictor.report
    print(f"  CNN validation RMSE: {report.rmse_val:.1f} ms")
    print(f"  Boosted Trees validation accuracy: {report.bt_accuracy_val:.3f} "
          f"({report.bt_trees} trees)")

    print("\nDeploying Sinan at three load levels (120 s episodes):")
    rows = []
    for users in (100, 250, 400):
        cluster = make_cluster(graph, users, seed=100 + users)
        result = run_episode(manager, cluster, 120, spec.qos, warmup=30)
        rows.append([
            f"{users}",
            f"{result.mean_total_cpu:.1f}",
            f"{result.max_total_cpu:.1f}",
            f"{result.qos_fraction:.3f}",
        ])
    print(format_table(
        ["Users", "Mean CPU (cores)", "Max CPU", "P(meet QoS)"], rows
    ))
    print("\nSinan scales the aggregate allocation with load while holding "
          "the end-to-end tail-latency QoS.")


if __name__ == "__main__":
    main()
