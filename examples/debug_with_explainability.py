#!/usr/bin/env python
"""Debug a production pathology with explainable ML (paper Section 5.6).

Scenario: the Social Network shows periodic tail-latency spikes at
moderate load and nobody knows why.  Manually inspecting 28 dependent
tiers is impractical; instead we ask Sinan's model which tiers — and
which resources of the top suspect — drive its latency predictions.

The injected root cause is Redis's log persistence: every minute it
forks and copies its written memory to disk, stalling request service.
The LIME-style attribution surfaces ``graph-redis`` and its memory
counters, pointing an operator straight at the persistence settings.
"""

import numpy as np

from repro.apps import RedisLogSync, social_network
from repro.core.data_collection import (
    BanditExplorer,
    CollectionConfig,
    DataCollector,
)
from repro.core.interpret import LimeExplainer
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.harness.pipeline import app_spec, make_cluster
from repro.harness.reporting import format_table


def main() -> None:
    graph = social_network()
    spec = app_spec(graph)
    sync = RedisLogSync(graph, period=45.0)

    print("Step 1: observe the symptom (fixed healthy allocation, 150 users)")
    cluster = make_cluster(graph, 150, seed=5, behaviors=(sync,))
    cluster.current_alloc = cluster.clip_alloc(graph.max_alloc() * 0.5)
    for _ in range(150):
        cluster.step()
    p99 = cluster.telemetry.p99_series()
    print(f"  median p99 = {np.median(p99):.0f} ms, but spikes up to "
          f"{p99.max():.0f} ms every ~45 s\n")

    print("Step 2: collect data on the misbehaving deployment and train "
          "the hybrid model")
    config = CollectionConfig(qos=spec.qos)
    collector = DataCollector(
        lambda users, seed: make_cluster(graph, users, seed, behaviors=(sync,)),
        config,
    )
    dataset = collector.collect(
        BanditExplorer(config, seed=1), loads=[120, 250], seconds_per_load=200
    ).dataset
    predictor = HybridPredictor(
        graph, spec.qos, PredictorConfig(epochs=20, batch_size=256), seed=1
    )
    predictor.train(dataset)
    print(f"  trained on {len(dataset)} samples, "
          f"val RMSE {predictor.rmse_val:.1f} ms\n")

    print("Step 3: attribute the QoS violations")
    explainer = LimeExplainer(predictor, n_perturbations=300, seed=1)
    tiers = explainer.explain_tiers(dataset, top_k=5)
    print(format_table(
        ["Rank", "Tier", "Weight"],
        [[i + 1, a.name, f"{a.weight:+.1f}"] for i, a in enumerate(tiers)],
        title="Top-5 latency-critical tiers (LIME over the CNN)",
    ))

    suspect = tiers[0].name if "redis" in tiers[0].name else "graph-redis"
    resources = explainer.explain_resources(dataset, tier=suspect, top_k=3)
    print(format_table(
        ["Rank", "Resource", "Weight"],
        [[i + 1, a.name, f"{a.weight:+.1f}"] for i, a in enumerate(resources)],
        title=f"Critical resources of {suspect}",
    ))
    print(
        "\nMemory counters (cache / resident set) of a Redis tier pointing "
        "at latency -> check its persistence settings. Disabling the "
        "minutely log sync removes the spikes (paper Figure 16)."
    )


if __name__ == "__main__":
    main()
