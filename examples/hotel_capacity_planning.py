#!/usr/bin/env python
"""Capacity planning for the Hotel Reservation site.

A what-if study a cloud operator would run before a booking surge: how
much CPU does each manager need to survive 1000 -> 3700 users, and which
ones actually hold the 200 ms p99 QoS?  Reuses the paper's Figure 11
protocol on a coarser grid and adds the (untenable) do-nothing baseline
of a fixed allocation sized for the low-load point.
"""

import numpy as np

from repro.apps import HOTEL_QOS_MS, hotel_reservation
from repro.baselines import AutoScale, PowerChief
from repro.core.manager import StaticManager
from repro.core.sinan import SinanManager
from repro.harness.experiment import run_episode
from repro.harness.pipeline import (
    app_spec,
    get_trained_predictor,
    make_cluster,
)
from repro.harness.reporting import format_table


def size_static_alloc(graph, users=1000):
    """Fixed allocation an operator might provision from a low-load test."""
    probe = make_cluster(graph, users, seed=2)
    for _ in range(15):
        stats = probe.step()
    busy = stats.cpu_util * stats.cpu_alloc
    return probe.clip_alloc(busy / 0.45 + 0.3)


def main() -> None:
    graph = hotel_reservation()
    spec = app_spec(graph)
    print(f"Hotel Reservation: {graph.n_tiers} tiers, "
          f"QoS p99 <= {HOTEL_QOS_MS:.0f} ms")
    print("Training / loading Sinan's model...\n")
    predictor = get_trained_predictor(graph, seed=0)

    managers = {
        "Static@1000u": lambda: StaticManager(size_static_alloc(graph)),
        "AutoScaleOpt": lambda: AutoScale.opt(graph.min_alloc(), graph.max_alloc()),
        "AutoScaleCons": lambda: AutoScale.conservative(
            graph.min_alloc(), graph.max_alloc()
        ),
        "PowerChief": lambda: PowerChief(graph.min_alloc(), graph.max_alloc()),
        "Sinan": lambda: SinanManager(predictor, spec.qos, graph),
    }

    loads = (1000, 1900, 2800, 3700)
    rows = []
    for name, factory in managers.items():
        cells = [name]
        for users in loads:
            cluster = make_cluster(graph, users, seed=300 + users)
            result = run_episode(factory(), cluster, 120, spec.qos, warmup=25)
            cells.append(f"{result.mean_total_cpu:.0f} ({result.qos_fraction:.2f})")
        rows.append(cells)

    print(format_table(
        ["Manager"] + [f"{u} users" for u in loads],
        rows,
        title="Mean CPU cores (P(meet QoS)) per load level, 120 s episodes",
    ))
    print(
        "\nReading the table: the static allocation collapses once the surge "
        "arrives; AutoScaleOpt is cheap but drops QoS at the high end; "
        "AutoScaleCons holds QoS by overprovisioning; Sinan holds QoS at a "
        "fraction of its cost."
    )


if __name__ == "__main__":
    main()
