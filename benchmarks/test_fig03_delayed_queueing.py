"""Figure 3 — the delayed queueing effect.

The paper's motivating figure: once a QoS violation is detected, adding
resources *a posteriori* cannot avoid a long latency spike (the built-up
queue must drain), whereas acting one step earlier — before the queue
builds — keeps latency flat.  We reproduce both trajectories on the
Social Network under a load step that exceeds the initial allocation's
capacity.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.apps import SOCIAL_QOS_MS, social_network
from repro.harness.pipeline import make_cluster
from repro.harness.reporting import format_series
from repro.workload.patterns import StepLoad


def _lean_alloc(graph, users=150.0):
    """Allocation sized for ~55% utilization at the base load — healthy
    before the step, overwhelmed after it."""
    probe = make_cluster(graph, users=users, seed=3)
    for _ in range(12):
        stats = probe.step()
    busy = stats.cpu_util * stats.cpu_alloc
    return probe.clip_alloc(busy / 0.55 + 0.3)


def _run(proactive: bool) -> np.ndarray:
    graph = social_network()
    pattern = StepLoad(((0.0, 150.0), (30.0, 400.0)))
    cluster = make_cluster(graph, users=0, seed=11, pattern=pattern)
    lean = _lean_alloc(graph)
    rich = cluster.clip_alloc(graph.max_alloc() * 0.8)
    cluster.current_alloc = lean
    p99 = []
    upscaled = False
    for t in range(90):
        stats = cluster.step()
        p99.append(stats.p99_ms)
        if proactive and t >= 28 and not upscaled:
            # Eager path: upscale as the load ramp begins, before queues.
            cluster.current_alloc = rich
            upscaled = True
        elif not proactive and stats.p99_ms > SOCIAL_QOS_MS and not upscaled:
            # Reactive path: upscale only after the violation is measured.
            cluster.current_alloc = rich
            upscaled = True
    return np.array(p99)


def test_fig3_delayed_queueing_effect(benchmark):
    def experiment():
        return _run(proactive=True), _run(proactive=False)

    proactive, reactive = run_once(benchmark, experiment)
    t = np.arange(len(reactive))
    print()
    print(format_series(
        "Figure 3 (reactive): p99 after late upscale",
        t[28:60:4], reactive[28:60:4], "t (s)", "p99 (ms)",
    ))
    print(format_series(
        "Figure 3 (proactive): p99 with eager upscale",
        t[28:60:4], proactive[28:60:4], "t (s)", "p99 (ms)",
    ))

    violation_time_reactive = int(np.sum(reactive > SOCIAL_QOS_MS))
    violation_time_proactive = int(np.sum(proactive > SOCIAL_QOS_MS))
    print(
        f"violating intervals: reactive={violation_time_reactive} "
        f"proactive={violation_time_proactive}"
    )
    # The paper's claim: late action leaves a violation window that eager
    # action avoids (almost) entirely.
    assert violation_time_reactive >= violation_time_proactive + 3
    assert reactive.max() > SOCIAL_QOS_MS
