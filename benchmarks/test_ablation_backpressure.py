"""Ablation — synchronous-RPC backpressure.

DESIGN.md calls out the backpressure coupling as the mechanism that
makes "longest queue" a symptom rather than the culprit.  With the
coupling disabled, a starved downstream tier no longer inflates
upstream queues, and PowerChief's queue-chasing attribution becomes
accurate; with it enabled, the blame lands upstream.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.apps import social_network
from repro.harness.pipeline import app_spec
from repro.harness.reporting import format_table
from repro.sim.cluster import ClusterSimulator, LOCAL_PLATFORM
from repro.sim.engine import EngineConfig
from repro.workload.generator import Workload
from repro.workload.mixes import social_mix
from repro.workload.patterns import ConstantLoad


def _starved_run(backpressure: bool):
    graph = social_network()
    config = EngineConfig(backpressure=backpressure, rate_cv=0.0, spike_prob=0.0)
    cluster = ClusterSimulator(
        graph,
        Workload(graph, ConstantLoad(400), social_mix()),
        platform=LOCAL_PLATFORM,
        seed=7,
        engine_config=config,
    )
    alloc = cluster.clip_alloc(graph.max_alloc() * 0.6)
    # Starve the true culprit: postStore.
    culprit = graph.index["postStore"]
    alloc[culprit] = 1.0
    cluster.current_alloc = cluster.clip_alloc(alloc)
    for _ in range(20):
        stats = cluster.step()
    queues = stats.queue
    blamed = int(np.argmax(queues))
    upstream_queue = float(
        queues[graph.index["nginx"]]
        + queues[graph.index["homeTimeline"]]
        + queues[graph.index["userTimeline"]]
    )
    return {
        "blamed_tier": graph.tier_names[blamed],
        "culprit_queue": float(queues[culprit]),
        "upstream_queue": upstream_queue,
        "p99": stats.p99_ms,
    }


def test_ablation_backpressure(benchmark):
    def experiment():
        return _starved_run(True), _starved_run(False)

    with_bp, without_bp = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["Backpressure", "Longest-queue tier", "Culprit queue", "Upstream queues", "p99 (ms)"],
        [
            ["on", with_bp["blamed_tier"], f"{with_bp['culprit_queue']:.0f}",
             f"{with_bp['upstream_queue']:.0f}", f"{with_bp['p99']:.0f}"],
            ["off", without_bp["blamed_tier"], f"{without_bp['culprit_queue']:.0f}",
             f"{without_bp['upstream_queue']:.0f}", f"{without_bp['p99']:.0f}"],
        ],
        title="Backpressure ablation: starved postStore at 400 users",
    ))
    # With backpressure, upstream queues balloon; without it they stay
    # far smaller relative to the culprit's own queue.
    assert with_bp["upstream_queue"] > 5 * max(without_bp["upstream_queue"], 1.0)
