"""Figure 15 — p99 latency distribution for the four mixes on GCE.

Under Sinan, the distribution of per-interval 99th-percentile latency
stays below the 500 ms QoS for every request mix (the paper's violin
plots); we report the distribution's quantiles per mix.
"""

import numpy as np

from benchmarks.conftest import episode_seconds, run_once, warmup_seconds
from repro.core.sinan import SinanManager
from repro.harness.experiment import run_episode
from repro.harness.pipeline import app_spec, make_cluster
from repro.harness.reporting import format_table
from repro.sim.cluster import GCE_PLATFORM
from repro.workload.mixes import SOCIAL_MIXES


def test_fig15_latency_distribution(benchmark, gce_predictor):
    spec = app_spec("social_network")
    graph = spec.graph_factory()
    users = 300

    def experiment():
        table = {}
        for mix_name, mix in SOCIAL_MIXES.items():
            manager = SinanManager(gce_predictor, spec.qos, graph)
            cluster = make_cluster(
                graph, users, seed=150, mix=mix, platform=GCE_PLATFORM
            )
            run_episode(
                manager, cluster, episode_seconds(), spec.qos, warmup_seconds()
            )
            p99 = cluster.telemetry.p99_series()[warmup_seconds():]
            table[mix_name] = {
                "p25": float(np.percentile(p99, 25)),
                "p50": float(np.percentile(p99, 50)),
                "p75": float(np.percentile(p99, 75)),
                "p95": float(np.percentile(p99, 95)),
                "max": float(p99.max()),
                "meet": float(np.mean(p99 <= spec.qos.latency_ms)),
            }
        return table

    table = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["Mix", "p25", "median", "p75", "p95", "max", "QoS frac"],
        [
            [name, f"{d['p25']:.0f}", f"{d['p50']:.0f}", f"{d['p75']:.0f}",
             f"{d['p95']:.0f}", f"{d['max']:.0f}", f"{d['meet']:.2f}"]
            for name, d in table.items()
        ],
        title=(
            f"Figure 15 (GCE, {users} users): distribution of per-interval "
            "p99 latency (ms) under Sinan"
        ),
    ))
    for name, d in table.items():
        # Paper shape: the bulk of the distribution sits below QoS.
        assert d["p95"] <= spec.qos.latency_ms * 1.1, name
        assert d["meet"] > 0.9, name
