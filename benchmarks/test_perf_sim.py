"""(ours) Simulation-path performance: batched-tick fast path vs the
per-tick reference loop.

Times full episodes on the production-sized application (social_network,
28 tiers) at 20 ticks per decision interval, asserting the fast path is
bitwise-equivalent to ``run_interval_reference`` across normal, bursty,
and overload scenarios and at least 5x faster over a 300-interval
episode.  Results are written to ``BENCH_sim.json`` at the repo root
(the same artifact ``repro bench --sim`` produces).
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.harness.bench import SimBenchConfig, run_sim_bench

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_sim_path_speedup(benchmark):
    config = SimBenchConfig(
        intervals=300,
        repeats=3,
        output=str(REPO_ROOT / "BENCH_sim.json"),
    )

    results = run_once(benchmark, lambda: run_sim_bench(config))

    ep, eq = results["episode"], results["equivalence"]
    print()
    print(f"sim episode ({results['n_tiers']} tiers, "
          f"{results['ticks_per_interval']} ticks/interval, "
          f"{ep['intervals']} intervals): "
          f"{ep['fast_ms_per_interval']:.3f}ms fast vs "
          f"{ep['reference_ms_per_interval']:.3f}ms reference "
          f"({ep['speedup']:.1f}x)")
    print("equivalence: " + ", ".join(
        f"{k}={'yes' if v else 'NO'}" for k, v in eq.items() if k != "all"
    ))

    # The fast path is only shippable because it changes nothing but
    # wall-clock time: every scenario must be bitwise-identical.
    assert eq["all"], eq

    # Acceptance: >= 5x episode throughput at 28 tiers, 300 intervals.
    assert results["n_tiers"] == 28
    assert ep["intervals"] >= 300
    assert ep["speedup"] >= 5.0, ep

    artifact = REPO_ROOT / "BENCH_sim.json"
    assert artifact.exists()
    written = json.loads(artifact.read_text())
    assert written["equivalence"]["all"]
    assert written["episode"]["speedup"] >= 5.0
