"""Resilience under injected faults — this reproduction's own experiment.

The paper ships Sinan's safety mechanism (Section 4.3: unpredicted-
violation recovery, trust counter, max-allocation fallback) but its
deployments never stressed it. This benchmark does: under replica-crash
storms and telemetry corruption, Sinan must (a) complete every episode
without raising, (b) visibly exercise the safety paths, and (c) beat a
static baseline pinned at Sinan's *own* mean per-tier allocation — the
fairest possible comparison, since both spend the same CPU and face the
same fault schedule, but only Sinan can react.
"""

import numpy as np
import pytest

from benchmarks.conftest import episode_seconds, n_seeds, run_once, warmup_seconds
from repro.core.manager import StaticManager
from repro.core.sinan import SinanManager
from repro.harness.pipeline import app_spec, make_cluster
from repro.harness.resilience import format_resilience_report, run_resilience_episode

PROFILES = ("crash-storm", "telemetry-dropout")
USERS = 350.0  # near the social-network load knee: faults must matter


def _paired_cell(profile, predictor, seed, duration, warmup):
    """One Sinan episode plus a static baseline at Sinan's mean alloc,
    both under the same fault schedule and workload draw."""
    spec = app_spec("social_network")
    graph = spec.graph_factory()

    sinan = SinanManager(predictor, spec.qos, graph)
    cluster = make_cluster(
        graph, USERS, seed=seed, fault_profile=profile, fault_seed=seed
    )
    sinan_result = run_resilience_episode(
        sinan, cluster, duration, spec.qos, warmup=warmup, profile_name=profile
    )

    mean_alloc = cluster.telemetry.alloc_matrix()[warmup:].mean(axis=0)
    baseline_cluster = make_cluster(
        graph, USERS, seed=seed, fault_profile=profile, fault_seed=seed
    )
    static_result = run_resilience_episode(
        StaticManager(mean_alloc), baseline_cluster, duration, spec.qos,
        warmup=warmup, profile_name=profile,
    )
    return sinan_result, static_result


def _sweep(predictor):
    duration = episode_seconds()
    warmup = warmup_seconds()
    cells = {}
    for profile in PROFILES:
        cells[profile] = [
            _paired_cell(profile, predictor, seed, duration, warmup)
            for seed in range(n_seeds())
        ]
    return cells


def test_resilience_faults(benchmark, social_predictor):
    cells = run_once(benchmark, lambda: _sweep(social_predictor))

    flat = [r for pairs in cells.values() for pair in pairs for r in pair]
    print()
    print(format_resilience_report(flat))

    sinan_all = [s for pairs in cells.values() for s, _ in pairs]
    static_all = [t for pairs in cells.values() for _, t in pairs]

    # (a) Every fault-injected episode completed: the full grid is here,
    # with finite metrics.
    assert len(sinan_all) == len(PROFILES) * n_seeds()
    for result in sinan_all + static_all:
        assert np.isfinite(result.qos_fraction)
        assert np.isfinite(result.mean_total_cpu)

    # (b) The safety paths actually fired somewhere in the grid: either
    # the unpredicted-violation recovery (mispredictions) or the
    # max-allocation fallback.
    safety_hits = sum(s.mispredictions + s.fallbacks for s in sinan_all)
    print(f"safety-path activations (mispredictions + fallbacks): {safety_hits}")
    assert safety_hits >= 1

    # Telemetry corruption was really seen by the manager.
    dropout_sinan = [s for s, _ in cells["telemetry-dropout"]]
    assert all(s.dropped_intervals > 0 for s in dropout_sinan)
    assert all(s.corrupted_intervals > 0 for s in dropout_sinan)

    # (c) Graceful degradation beats a same-CPU static baseline: per
    # profile, Sinan's mean QoS-meet fraction is at least the static
    # baseline's, and strictly better somewhere in the grid.
    for profile, pairs in cells.items():
        sinan_qos = float(np.mean([s.qos_fraction for s, _ in pairs]))
        static_qos = float(np.mean([t.qos_fraction for _, t in pairs]))
        sinan_cpu = float(np.mean([s.mean_total_cpu for s, _ in pairs]))
        static_cpu = float(np.mean([t.mean_total_cpu for _, t in pairs]))
        print(f"{profile}: Sinan P(QoS) {sinan_qos:.3f} @ {sinan_cpu:.0f} cores "
              f"vs static {static_qos:.3f} @ {static_cpu:.0f} cores")
        # Equal mean CPU by construction (static pinned at Sinan's mean).
        assert abs(static_cpu - sinan_cpu) / sinan_cpu < 0.08
        assert sinan_qos >= static_qos - 1e-9
    margins = [
        s.qos_fraction - t.qos_fraction
        for pairs in cells.values() for s, t in pairs
    ]
    assert max(margins) > 0.0
