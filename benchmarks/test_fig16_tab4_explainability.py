"""Figure 16 + Table 4 — explainable ML finds the Redis log-sync culprit.

With Redis's minutely log persistence enabled, the Social Network shows
periodic tail-latency spikes at low load (Figure 16, red line).  The
LIME-style attribution over Sinan's CNN ranks ``graph-redis`` among the
most latency-critical tiers, and that tier's memory counters (cache /
resident set) as its critical resources (Table 4, "w/ Sync").  With log
persistence disabled the spikes disappear and the tier's importance
drops (Table 4, "w/o Sync").
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.apps import RedisLogSync, social_network
from repro.core.data_collection import (
    BanditExplorer,
    CollectionConfig,
    DataCollector,
)
from repro.core.interpret import LimeExplainer
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.harness.pipeline import app_spec, make_cluster, resolve_budget
from repro.harness.reporting import format_table


def _collect_and_train(graph, spec, budget, behaviors, seed):
    config = CollectionConfig(qos=spec.qos)
    collector = DataCollector(
        lambda users, s: make_cluster(graph, users, s, behaviors=behaviors),
        config,
    )
    result = collector.collect(
        BanditExplorer(config, seed=seed),
        loads=[120, 250],
        seconds_per_load=max(budget.seconds_per_load // 2, 60),
        seed=seed,
    )
    predictor = HybridPredictor(
        graph, spec.qos,
        PredictorConfig(epochs=max(budget.epochs // 2, 10),
                        batch_size=budget.batch_size),
        seed=seed,
    )
    predictor.train(result.dataset)
    return predictor, result.dataset


def test_fig16_tab4_redis_log_sync(benchmark):
    spec = app_spec("social_network")
    budget = resolve_budget(None)

    def experiment():
        graph = social_network()
        sync = RedisLogSync(graph, period=45.0)

        # Figure 16: fixed healthy allocation, low load, sync on vs off.
        timelines = {}
        for label, behaviors in (("with-sync", (sync,)), ("without-sync", ())):
            cluster = make_cluster(graph, 150, seed=16, behaviors=behaviors)
            cluster.current_alloc = cluster.clip_alloc(graph.max_alloc() * 0.5)
            for _ in range(150):
                cluster.step()
            timelines[label] = cluster.telemetry.p99_series()

        # Table 4: train on each deployment, attribute with LIME.
        attributions = {}
        for label, behaviors in (("with-sync", (sync,)), ("without-sync", ())):
            predictor, dataset = _collect_and_train(
                graph, spec, budget, behaviors, seed=61
            )
            explainer = LimeExplainer(predictor, n_perturbations=250, seed=61)
            tiers = explainer.explain_tiers(dataset, top_k=5)
            resources = explainer.explain_resources(
                dataset, tier="graph-redis", top_k=3
            )
            attributions[label] = {"tiers": tiers, "resources": resources}
        return timelines, attributions

    timelines, attributions = run_once(benchmark, experiment)

    print()
    with_spikes = timelines["with-sync"]
    without_spikes = timelines["without-sync"]
    print(
        "Figure 16: p99 with log sync: "
        f"median={np.median(with_spikes):.0f} max={with_spikes.max():.0f} ms; "
        f"without: median={np.median(without_spikes):.0f} "
        f"max={without_spikes.max():.0f} ms"
    )
    for label, attr in attributions.items():
        print(format_table(
            ["Rank", "Tier", "Weight"],
            [[i + 1, a.name, f"{a.weight:+.1f}"] for i, a in enumerate(attr["tiers"])],
            title=f"Table 4 [{label}]: top-5 latency-critical tiers",
        ))
        print(format_table(
            ["Rank", "graph-redis resource", "Weight"],
            [[i + 1, a.name, f"{a.weight:+.1f}"]
             for i, a in enumerate(attr["resources"])],
        ))

    # Figure 16 shape: spikes with sync, none without.
    assert with_spikes.max() > 2.5 * np.median(with_spikes)
    assert without_spikes.max() < with_spikes.max()

    # Table 4 shape: with sync enabled, graph-redis ranks among the top
    # tiers; its rank/weight drops once the pathology is removed.
    def redis_weight(attr):
        for a in attr["tiers"]:
            if a.name == "graph-redis":
                return abs(a.weight)
        return 0.0

    assert redis_weight(attributions["with-sync"]) >= redis_weight(
        attributions["without-sync"]
    )
