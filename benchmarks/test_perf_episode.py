"""(ours) End-to-end episode performance: vectorized control loop +
struct-of-arrays event engine vs their retained reference paths.

Replays full Sinan-attached episodes (fluid simulator + scheduler
decisions) on the production-sized application (social_network, 28
tiers, 300-tree predictor) with every fast path on vs the full
reference stack, times ``EventDrivenEngine.run`` against
``run_reference`` near saturation, and measures the control-loop
overhead of ``scheduler.decide`` over its model components at B=64.
Asserts ≥3x episode throughput, ≥3x event-engine runs, decide overhead
≤1.5x, and the bitwise equivalence gate (decision traces, telemetry,
event summaries, RNG state) in both normal and fault-profile episodes.
Results are written to ``BENCH_episode.json`` at the repo root (the
same artifact ``repro bench --episode`` produces).
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.harness.bench import EpisodeBenchConfig, run_episode_bench

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_episode_path_speedup(benchmark):
    config = EpisodeBenchConfig(
        output=str(REPO_ROOT / "BENCH_episode.json"),
    )

    results = run_once(benchmark, lambda: run_episode_bench(config))

    ep = results["episode"]
    ev = results["event_engine"]
    dec = results["decision"]
    eq = results["equivalence"]
    print()
    print(f"episode ({results['n_tiers']} tiers, {ep['intervals']} "
          f"intervals): {ep['fast_ms_per_interval']:.2f}ms fast vs "
          f"{ep['reference_ms_per_interval']:.2f}ms reference "
          f"({ep['speedup']:.1f}x)")
    print(f"event engine ({ev['n_requests']} requests, "
          f"{ev['duration_s']:.0f}s sim): {ev['fast_ms']:.0f}ms fast vs "
          f"{ev['reference_ms']:.0f}ms reference ({ev['speedup']:.1f}x)")
    print(f"decide: {dec['decide_ms']:.2f}ms vs "
          f"{dec['components_sum_ms']:.2f}ms components at "
          f"B={dec['component_candidates']} "
          f"(ratio {dec['overhead_ratio']:.2f})")
    print("equivalence: " + ", ".join(
        f"{k}={'yes' if v else 'NO'}" for k, v in eq.items() if k != "all"
    ))

    # The fast paths are only shippable because they change nothing but
    # wall-clock time: traces, telemetry, event summaries, and RNG
    # state must be identical in normal and fault-profile episodes.
    assert eq["all"], eq
    assert ep["identical_traces"], ep
    assert results["equivalent"], results

    # Acceptance: >= 3x Sinan-attached episode throughput and >= 3x
    # event-engine run() at 28 tiers.
    assert results["n_tiers"] == 28
    assert ep["speedup"] >= 3.0, ep
    assert ev["speedup"] >= 3.0, ev

    # Acceptance: decide() wall time <= 1.5x the sum of its model
    # components at B=64 (was 2.7x before the vectorized control loop).
    assert dec["component_candidates"] == 64
    assert dec["decisions_at_b"] > 0, dec
    assert dec["overhead_ratio"] <= 1.5, dec
    assert dec["components"]["bitwise_equal"], dec

    artifact = REPO_ROOT / "BENCH_episode.json"
    assert artifact.exists()
    written = json.loads(artifact.read_text())
    assert written["equivalent"]
    assert written["episode"]["speedup"] >= 3.0
    assert written["event_engine"]["speedup"] >= 3.0
    assert written["decision"]["overhead_ratio"] <= 1.5
