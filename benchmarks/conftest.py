"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper's evaluation
and prints the corresponding rows/series.  Model training is cached (in
process and under ``.cache/``), so the expensive pipeline runs once per
application per budget.

Environment knobs:

* ``REPRO_BUDGET`` — ``small`` / ``medium`` (default) / ``large``;
  scales data collection and training epochs.
* ``REPRO_EPISODE_SECONDS`` — length of each evaluation episode
  (default 150 intervals).
* ``REPRO_SEEDS`` — number of seeds averaged per experiment point
  (default 1).
* ``REPRO_JOBS`` — worker processes for data-collection fan-out
  (``0`` = one per CPU; unset/empty = serial).  The collected datasets
  and trained models are identical either way.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.pipeline import get_trained_predictor, resolve_budget


def episode_seconds() -> int:
    return int(os.environ.get("REPRO_EPISODE_SECONDS", "150"))


def n_seeds() -> int:
    return int(os.environ.get("REPRO_SEEDS", "2"))


def warmup_seconds() -> int:
    return min(40, episode_seconds() // 4)


def n_jobs() -> int | None:
    """Parallel fan-out from ``REPRO_JOBS`` (None = serial, 0 = all CPUs)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    return int(raw) if raw else None


@pytest.fixture(scope="session")
def budget():
    return resolve_budget(None)


@pytest.fixture(scope="session")
def social_predictor(budget):
    return get_trained_predictor("social_network", budget, seed=0, jobs=n_jobs())


@pytest.fixture(scope="session")
def hotel_predictor(budget):
    return get_trained_predictor("hotel_reservation", budget, seed=0, jobs=n_jobs())


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def gce_predictor(social_predictor, budget):
    """Social Network predictor fine-tuned for the GCE platform.

    This is the paper's Section 5.4 transfer step: collect a modest
    amount of data on the new platform and fine-tune at lr/100 instead
    of retraining from scratch.  Reused by the Figure 14/15 benches.
    """
    from repro.core.retrain import fine_tune_predictor
    from repro.harness.pipeline import collect_training_data
    from repro.sim.cluster import GCE_PLATFORM
    from repro.apps import social_network

    graph = social_network()
    new_data = collect_training_data(
        graph, budget, seed=41, platform=GCE_PLATFORM, jobs=n_jobs()
    )
    counts = [max(len(new_data) // 2, 10)]
    tuned, _ = fine_tune_predictor(
        social_predictor, new_data, counts, scenario="gce",
        epochs=max(budget.epochs // 3, 4), seed=41,
    )
    return tuned
