"""(ours) Observability overhead: a disabled recorder costs nothing.

The acceptance bar for the observability subsystem (ISSUE PR 5): with
the recorder off — the default — the instrumented decision path must be
within noise of the uninstrumented one, and episodes must be bitwise
identical whether a recorder is attached or not.

The off-path A/B is measured in-process to stay machine-independent:
``OnlineScheduler.decide`` (the instrumented wrapper, recorder
disabled) against ``OnlineScheduler._decide`` (the raw decision body
the wrapper grew around).  Both arms replay the same feedback episode,
so a single diverging decision would diverge every later interval.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.core.actions import ActionSpace
from repro.core.scheduler import OnlineScheduler
from repro.harness.bench import BenchConfig, make_synthetic_predictor
from repro.harness.pipeline import app_spec, make_cluster
from repro.obs import ActiveRecorder

#: Noise floor per decision (ms): below this, a relative bound on a
#: ~10 ms decision is dominated by scheduler jitter, not instrumentation.
ABS_FLOOR_MS = 0.10
REL_BOUND = 1.02  # disabled-recorder path within 2% of the raw body

_CONFIG = BenchConfig(n_trees=150, tree_depth=5, decision_intervals=15)


def _replay(predictor, use_wrapper: bool, recorder=None):
    """One managed episode; returns (decision trace, ms per decision)."""
    spec = app_spec(_CONFIG.app)
    graph = spec.graph_factory()
    lo, hi = spec.collection_load_range
    cluster = make_cluster(graph, users=(lo + hi) / 2, seed=_CONFIG.seed + 7)
    space = ActionSpace(graph.min_alloc(), graph.max_alloc())
    scheduler = OnlineScheduler(predictor, space, spec.qos)
    if recorder is not None:
        scheduler.recorder = recorder
        cluster.recorder = recorder
        cluster.engine.recorder = recorder
        predictor.recorder = recorder
    predictor.encoder.invalidate_cache()
    decide = scheduler.decide if use_wrapper else scheduler._decide

    trace: list[np.ndarray] = []
    spent = 0.0
    for _ in range(_CONFIG.decision_intervals):
        cluster.step(cluster.current_alloc)
        t0 = time.perf_counter()
        alloc = decide(cluster.observed)
        spent += time.perf_counter() - t0
        if alloc is not None:
            cluster.step(alloc)
            trace.append(np.asarray(alloc, dtype=float))
    if recorder is not None:
        predictor.__dict__.pop("recorder", None)
    return trace, spent * 1e3 / _CONFIG.decision_intervals


def test_disabled_recorder_within_noise(benchmark):
    predictor = make_synthetic_predictor(_CONFIG)

    def measure():
        # One unmeasured replay per arm warms every lazy path (einsum
        # plans, compiled trees, encoder cache); the arms then alternate
        # so background load hits both equally, and min-over-repeats
        # discards one-off hiccups.
        _replay(predictor, use_wrapper=True)
        _replay(predictor, use_wrapper=False)
        wrapped, raw = [], []
        for _ in range(4):
            wrapped.append(_replay(predictor, use_wrapper=True)[1])
            raw.append(_replay(predictor, use_wrapper=False)[1])
        return min(wrapped), min(raw)

    wrapped_ms, raw_ms = run_once(benchmark, measure)

    overhead_ms = wrapped_ms - raw_ms
    print(f"\nper-decision: wrapped={wrapped_ms:.3f}ms raw={raw_ms:.3f}ms "
          f"overhead={overhead_ms:+.3f}ms")
    assert wrapped_ms <= max(raw_ms * REL_BOUND, raw_ms + ABS_FLOOR_MS), (
        f"disabled-recorder decide() is {overhead_ms:.3f}ms/decision slower "
        f"than the raw decision body ({wrapped_ms:.3f} vs {raw_ms:.3f})"
    )

    # The wrapper must not change a single decision either.
    trace_wrapped, _ = _replay(predictor, use_wrapper=True)
    trace_raw, _ = _replay(predictor, use_wrapper=False)
    assert len(trace_wrapped) == len(trace_raw)
    for a, b in zip(trace_wrapped, trace_raw):
        np.testing.assert_array_equal(a, b)


def test_active_recorder_identical_decisions(benchmark):
    """Recording everything still changes nothing but the artifacts."""
    predictor = make_synthetic_predictor(_CONFIG)

    def measure():
        off = _replay(predictor, use_wrapper=True)
        recorder = ActiveRecorder()
        on = _replay(predictor, use_wrapper=True, recorder=recorder)
        return off, on, recorder

    (trace_off, ms_off), (trace_on, ms_on), recorder = run_once(
        benchmark, measure
    )

    print(f"\nper-decision: off={ms_off:.3f}ms on={ms_on:.3f}ms "
          f"({len(recorder.tracer)} spans, "
          f"{len(recorder.audit_log)} audit records)")
    assert len(trace_off) == len(trace_on)
    for a, b in zip(trace_off, trace_on):
        np.testing.assert_array_equal(a, b)
    assert len(recorder.audit_log) > 0
    assert len(recorder.tracer) > 0
