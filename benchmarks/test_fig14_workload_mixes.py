"""Figure 14 — average CPU allocation under the four request mixes on GCE.

Sinan (with the GCE fine-tuned model) manages the Social Network under
the W0-W3 ComposePost:ReadHomeTimeline:ReadUserTimeline mixes across the
load sweep.  Paper shape: W1 (most ComposePost, which triggers the
compute-heavy ML filters) needs the most CPU; Sinan meets QoS on every
mix, including the three mixes it was never trained on.
"""

import numpy as np

from benchmarks.conftest import episode_seconds, run_once, warmup_seconds
from repro.core.sinan import SinanManager
from repro.harness.experiment import run_episode
from repro.harness.pipeline import app_spec, make_cluster
from repro.harness.reporting import format_table
from repro.sim.cluster import GCE_PLATFORM
from repro.workload.mixes import SOCIAL_MIXES


def test_fig14_workload_mixes(benchmark, gce_predictor):
    spec = app_spec("social_network")
    graph = spec.graph_factory()
    loads = (150, 300, 450)

    def experiment():
        table = {}
        for mix_name, mix in SOCIAL_MIXES.items():
            series = []
            for users in loads:
                manager = SinanManager(gce_predictor, spec.qos, graph)
                cluster = make_cluster(
                    graph, users, seed=140 + users, mix=mix,
                    platform=GCE_PLATFORM,
                )
                result = run_episode(
                    manager, cluster, episode_seconds(), spec.qos,
                    warmup_seconds(),
                )
                series.append(
                    {"users": users, "cpu": result.mean_total_cpu,
                     "qos": result.qos_fraction}
                )
            table[mix_name] = series
        return table

    table = run_once(benchmark, experiment)
    print()
    rows = []
    for i, users in enumerate(loads):
        row = [users]
        for mix_name in ("W0", "W1", "W2", "W3"):
            point = table[mix_name][i]
            row.append(f"{point['cpu']:.0f} ({point['qos']:.2f})")
        rows.append(row)
    print(format_table(
        ["Users", "W0 5:80:15", "W1 10:80:10", "W2 1:90:9", "W3 5:70:25"],
        rows,
        title="Figure 14 (GCE): mean CPU allocation (QoS fraction)",
    ))

    # Paper shape: all mixes meet QoS; W1 (compose-heavy) is the most
    # expensive at the top load, W2 (read-heavy) among the cheapest.
    for mix_name, series in table.items():
        assert np.mean([p["qos"] for p in series]) > 0.92, mix_name
    top = {name: series[-1]["cpu"] for name, series in table.items()}
    assert top["W1"] >= top["W2"] * 0.98
