"""Table 3 — the Boosted-Trees violation predictor.

Reports train/validation accuracy, validation false positives/negatives,
tree count, and training time for both applications, anticipating a QoS
violation over the next k intervals from the CNN latent variable.
"""

import time

import pytest

from benchmarks.conftest import run_once
from repro.harness.reporting import format_table


@pytest.mark.parametrize("app_name", ["social_network", "hotel_reservation"])
def test_tab3_boosted_trees(benchmark, app_name, social_predictor, hotel_predictor):
    predictor = social_predictor if app_name == "social_network" else hotel_predictor

    def experiment():
        report = predictor.report
        return {
            "train_acc": report.bt_accuracy_train,
            "val_acc": report.bt_accuracy_val,
            "val_fp": report.bt_false_pos_val,
            "val_fn": report.bt_false_neg_val,
            "n_trees": report.bt_trees,
        }

    row = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["App", "Train acc", "Val acc", "Val FP", "Val FN", "# trees"],
        [[
            app_name,
            f"{row['train_acc']:.3f}",
            f"{row['val_acc']:.3f}",
            f"{row['val_fp']:.3f}",
            f"{row['val_fn']:.3f}",
            row["n_trees"],
        ]],
        title="Table 3 (paper: val accuracy > 94%, FP+FN ~3%)",
    ))
    # Shape: a usable classifier, not a coin flip; bounded trees.
    assert row["val_acc"] > 0.75
    assert row["n_trees"] > 0
    assert row["val_fp"] + row["val_fn"] < 0.3
