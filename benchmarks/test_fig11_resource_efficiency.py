"""Figure 11 — the headline result: mean/max CPU allocation and
P(meet QoS) for Sinan vs AutoScaleOpt / AutoScaleCons / PowerChief,
across the paper's load sweep, for both applications.

Paper shape to match: only Sinan and AutoScaleCons meet QoS at every
load; Sinan uses substantially less CPU than AutoScaleCons;
AutoScaleOpt is cheap but violates QoS beyond a load knee; PowerChief
degrades with load despite spending more than Sinan's budget on the
wrong tiers.
"""

import numpy as np
import pytest

from benchmarks.conftest import episode_seconds, n_seeds, run_once, warmup_seconds
from repro.baselines import AutoScale, PowerChief
from repro.core.sinan import SinanManager
from repro.harness.experiment import run_episode
from repro.harness.pipeline import app_spec, make_cluster
from repro.harness.reporting import format_table


def _sweep(app_name, predictor):
    spec = app_spec(app_name)
    graph = spec.graph_factory()
    duration = episode_seconds()
    warmup = warmup_seconds()

    managers = {
        "Sinan": lambda: SinanManager(predictor, spec.qos, graph),
        "AutoScaleOpt": lambda: AutoScale.opt(graph.min_alloc(), graph.max_alloc()),
        "AutoScaleCons": lambda: AutoScale.conservative(
            graph.min_alloc(), graph.max_alloc()
        ),
        "PowerChief": lambda: PowerChief(graph.min_alloc(), graph.max_alloc()),
    }
    table = {}
    for name, factory in managers.items():
        series = []
        for users in spec.fig11_loads:
            cpu, peak, qos = [], [], []
            for seed in range(n_seeds()):
                cluster = make_cluster(graph, users, seed=seed * 1000 + int(users))
                result = run_episode(factory(), cluster, duration, spec.qos, warmup)
                cpu.append(result.mean_total_cpu)
                peak.append(result.max_total_cpu)
                qos.append(result.qos_fraction)
            series.append(
                {"users": users, "cpu": np.mean(cpu), "max": np.mean(peak),
                 "qos": np.mean(qos)}
            )
        table[name] = series
    return table


@pytest.mark.parametrize("app_name", ["social_network", "hotel_reservation"])
def test_fig11_resource_efficiency(benchmark, app_name, social_predictor, hotel_predictor):
    predictor = social_predictor if app_name == "social_network" else hotel_predictor
    table = run_once(benchmark, lambda: _sweep(app_name, predictor))

    spec = app_spec(app_name)
    print()
    rows = []
    for i, users in enumerate(spec.fig11_loads):
        row = [f"{users:g}"]
        for name in ("Sinan", "AutoScaleOpt", "AutoScaleCons", "PowerChief"):
            point = table[name][i]
            row.append(f"{point['cpu']:.0f}/{point['max']:.0f}/{point['qos']:.2f}")
        rows.append(row)
    print(format_table(
        ["Users", "Sinan", "AutoScaleOpt", "AutoScaleCons", "PowerChief"],
        rows,
        title=(
            f"Figure 11 ({app_name}): mean CPU / max CPU / P(meet QoS), "
            f"QoS = {spec.qos.latency_ms:.0f} ms p99"
        ),
    ))

    sinan_qos = np.array([p["qos"] for p in table["Sinan"]])
    cons_qos = np.array([p["qos"] for p in table["AutoScaleCons"]])
    opt_qos = np.array([p["qos"] for p in table["AutoScaleOpt"]])
    sinan_cpu = np.array([p["cpu"] for p in table["Sinan"]])
    cons_cpu = np.array([p["cpu"] for p in table["AutoScaleCons"]])

    savings = 1.0 - sinan_cpu / cons_cpu
    print(f"Sinan CPU saving vs AutoScaleCons: mean {savings.mean():+.1%}, "
          f"max {savings.max():+.1%}")

    # Paper shape: Sinan and Cons (essentially) always meet QoS.
    assert sinan_qos.min() > 0.93
    assert cons_qos.min() > 0.95
    # Sinan saves CPU vs the only other QoS-meeting policy.
    assert savings.mean() > 0.10
    # AutoScaleOpt is not QoS-safe across the sweep, and its worst
    # points sit in the upper half of the load range.
    assert opt_qos.min() < 0.99
    worst = int(np.argmin(opt_qos + np.linspace(0, 1e-6, len(opt_qos))))
    assert worst >= len(opt_qos) // 3
