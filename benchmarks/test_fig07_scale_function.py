"""Figure 7 — the latency scaling function phi (Eq. 2).

Regenerates the three curves with t = 100 and alpha in
{0.005, 0.01, 0.02}: identity below the knee, saturating decay above.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.reporting import format_table
from repro.ml.losses import LatencyScaler


def test_fig7_scale_function(benchmark):
    def experiment():
        xs = np.array([0.0, 50.0, 100.0, 150.0, 200.0, 300.0])
        rows = []
        for alpha in (0.005, 0.01, 0.02):
            scaler = LatencyScaler(t=100.0, alpha=alpha)
            rows.append([alpha] + [f"{v:.1f}" for v in scaler.scale(xs)])
        return xs, rows

    xs, rows = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["alpha"] + [f"x={x:g}" for x in xs],
        rows,
        title="Figure 7: phi(x) with t=100",
    ))

    # Shape assertions: identity below t, ordered compression above.
    for alpha_row in rows:
        assert float(alpha_row[1]) == 0.0
        assert float(alpha_row[3]) == 100.0
    above = [float(r[-1]) for r in rows]
    assert above[0] > above[1] > above[2]
    # Ceiling: alpha=0.02 saturates below t + 1/alpha = 150.
    assert above[2] < 150.0
