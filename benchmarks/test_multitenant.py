"""(ours) Multi-tenant contention: credit arbitration vs static partitions.

Runs the standard 3-tenant contention scenario (Social Network, Hotel
Reservation, and Media Service with staggered load peaks) on one shared
cluster budget, twice per seed: once under the
:class:`~repro.tenancy.arbiter.CreditArbiter` and once under equal
static partitioning (the quota-carved baseline).  The per-tenant
scheduler is the elastic QoS-meeting autoscaler — the arbitration layer
is manager-agnostic, and the autoscaler's load-following demands make
the credit-vs-static comparison meaningful at every pipeline budget
(``repro multitenant --manager sinan`` runs the same scenario with
per-tenant Sinan schedulers; see EXPERIMENTS.md for why the smoke gate
pins the autoscaler).

Asserts the subsystem's acceptance gate — credit arbitration meets or
beats static partitioning on aggregate QoS attainment at equal or lower
mean cluster CPU, with real contention occurring — and the determinism
contract: the pooled (``jobs=2``) sweep is bitwise identical to the
serial one, tenant by tenant.  Results are written to
``BENCH_multitenant.json`` at the repo root (the same artifact
``repro multitenant`` summarizes).
"""

import json

import numpy as np

from benchmarks.conftest import episode_seconds, n_seeds, run_once
from repro.harness.bench import resolve_output
from repro.harness.multitenant import (
    default_tenant_specs,
    format_multitenant_report,
    sweep_multitenant,
)

#: Shared cluster budget (cores).  Sized so the three staggered peaks
#: overlap pairwise: tight enough to contend, wide enough that credit
#: arbitration can still cover every tenant's QoS.
CLUSTER_CPU = 240.0


def _fingerprints(results):
    """Bitwise per-tenant trace identity for a sweep's results."""
    return [
        (r.arbiter, r.seed, t.tenant,
         t.telemetry.latency_matrix().tobytes(),
         t.telemetry.alloc_matrix().tobytes(),
         t.telemetry.rps_series().tobytes())
        for r in results for t in r.tenants
    ]


def _arm_mean(results, arm, metric):
    return float(np.mean([getattr(r, metric) for r in results
                          if r.arbiter == arm]))


def test_credit_arbitration_beats_static_partitioning(benchmark):
    specs = default_tenant_specs(manager="autoscale-cons")
    # The scenario's last load step lands at t=130, so never run shorter
    # than 150 intervals regardless of REPRO_EPISODE_SECONDS.
    duration = max(episode_seconds(), 150)
    warmup = min(40, duration // 4)
    seeds = list(range(n_seeds()))

    def _run():
        serial = sweep_multitenant(
            specs, CLUSTER_CPU, duration, seeds=seeds, warmup=warmup, jobs=1,
        )
        pooled = sweep_multitenant(
            specs, CLUSTER_CPU, duration, seeds=seeds, warmup=warmup, jobs=2,
        )
        return serial, pooled

    serial, pooled = run_once(benchmark, _run)

    print()
    print(format_multitenant_report(serial))

    credit = [r for r in serial if r.arbiter == "credit"]
    credit_qos = _arm_mean(serial, "credit", "aggregate_qos_fraction")
    static_qos = _arm_mean(serial, "static", "aggregate_qos_fraction")
    credit_cpu = _arm_mean(serial, "credit", "mean_cluster_cpu")
    static_cpu = _arm_mean(serial, "static", "mean_cluster_cpu")
    contended = float(np.mean([r.contended_fraction for r in credit]))
    pooled_equal = _fingerprints(serial) == _fingerprints(pooled)
    qos_ok = credit_qos >= static_qos - 1e-9
    cpu_ok = credit_cpu <= static_cpu + 1e-6
    print(f"gate: credit P(QoS) {credit_qos:.3f} vs static {static_qos:.3f}, "
          f"mean cluster CPU {credit_cpu:.1f} vs {static_cpu:.1f} cores "
          f"(budget {CLUSTER_CPU:.0f}, contended {contended:.0%}) -> "
          f"{'OK' if qos_ok and cpu_ok else 'REGRESSION'}")

    summary = {
        "budget_cpu": CLUSTER_CPU,
        "duration": duration,
        "warmup": warmup,
        "seeds": seeds,
        "manager": "autoscale-cons",
        "arms": {
            arm: {
                "aggregate_qos_fraction": _arm_mean(
                    serial, arm, "aggregate_qos_fraction"),
                "mean_cluster_cpu": _arm_mean(serial, arm, "mean_cluster_cpu"),
                "max_cluster_cpu": _arm_mean(serial, arm, "max_cluster_cpu"),
            }
            for arm in ("credit", "static")
        },
        "contended_fraction": contended,
        "mode_counts": {str(r.seed): r.mode_counts for r in credit},
        "tenants": [
            {
                "arbiter": r.arbiter,
                "seed": r.seed,
                "tenant": t.tenant,
                "app": t.app,
                "qos_fraction": t.qos_fraction,
                "mean_total_cpu": t.mean_total_cpu,
                "max_total_cpu": t.max_total_cpu,
            }
            for r in serial for t in r.tenants
        ],
        "gate": {
            "qos_ok": qos_ok,
            "cpu_ok": cpu_ok,
            "contended": contended > 0,
            "pooled_bitwise_equal": pooled_equal,
        },
    }
    artifact = resolve_output("BENCH_multitenant.json")
    artifact.write_text(json.dumps(summary, indent=2))

    # Determinism contract: fanning the same (arm, seed) grid over the
    # warm worker pool must not change a single bit of any tenant trace.
    assert pooled_equal

    # The scenario must actually exercise the arbiter — staggered peaks
    # overlapping on a finite budget, not three isolated tenants.
    assert contended > 0, [r.contended_fraction for r in credit]

    # Acceptance gate: credit-based arbitration covers the cluster's
    # QoS at least as well as equal static partitions, without burning
    # more CPU than the carved-up baseline does.
    assert qos_ok, (credit_qos, static_qos)
    assert cpu_ok, (credit_cpu, static_cpu)

    written = json.loads(artifact.read_text())
    assert all(written["gate"].values()), written["gate"]
