"""(ours) Training-path performance: fast vs reference model fitting.

Times the three training workloads the scheduler periodically re-runs —
the Boosted-Trees fit (histogram grower vs per-node re-scan), a CNN
training epoch (im2col backprop vs einsum/tap-loop), and one full
``HybridPredictor.train`` — asserting the fast paths reproduce the
reference results (trees split-for-split, CNN losses to 1e-8) and that
end-to-end training is at least 4x faster at the benchmark config
(400 trees, 5 CNN epochs).  Results are written to
``BENCH_training.json`` at the repo root (the same artifact
``repro bench --training`` produces).
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.harness.bench import (
    TrainingBenchConfig,
    format_training_bench,
    run_training_bench,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_training_path_speedup(benchmark):
    config = TrainingBenchConfig(
        output=str(REPO_ROOT / "BENCH_training.json"),
    )
    assert config.n_trees >= 200 and config.cnn_epochs >= 5

    results = run_once(benchmark, lambda: run_training_bench(config))

    print()
    print(format_training_bench(results))

    # The fast paths must be drop-in: identical trees, matching loss
    # trajectories, and end-to-end model quality within tolerance.
    tf = results["tree_fit"]
    assert tf["structures_equal"]
    assert tf["margins_bitwise_equal"]
    assert results["cnn_fit"]["losses_close"]
    assert results["end_to_end"]["quality_close"]
    assert results["equivalent"]

    # Acceptance: >= 4x end-to-end HybridPredictor.train at the
    # benchmark config (>= 200 trees, >= 5 CNN epochs).
    assert results["end_to_end"]["speedup"] >= 4.0, results["end_to_end"]
    # The tree fit is the dominant retraining cost; it should be well
    # clear of the end-to-end bar on its own.
    assert tf["speedup"] >= 4.0, tf

    artifact = REPO_ROOT / "BENCH_training.json"
    assert artifact.exists()
    assert json.loads(artifact.read_text())["equivalent"]
