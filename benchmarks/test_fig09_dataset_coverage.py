"""Figure 9 — training-set latency coverage vs model quality.

Left panel: the CDF of the bandit-collected dataset's latencies covers
both sides of the QoS boundary.  Right panel: training the models only
on samples below a latency cutoff (x-axis) — if the dataset contains no
QoS-violating samples, both the CNN and the Boosted Trees overfit badly
and quality collapses; including boundary/violation samples fixes it.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.harness.pipeline import app_spec, collect_training_data, resolve_budget
from repro.harness.reporting import format_series, format_table


def test_fig9_dataset_coverage(benchmark):
    spec = app_spec("social_network")
    budget = resolve_budget(None)
    qos = spec.qos.latency_ms

    def experiment():
        graph = spec.graph_factory()
        dataset = collect_training_data(graph, budget, seed=2)
        p99 = dataset.y_lat[:, -1]
        percentiles = np.percentile(p99, [10, 25, 50, 75, 90, 99])

        # Hold out an untruncated evaluation slice.
        rng = np.random.default_rng(2)
        order = rng.permutation(len(dataset))
        holdout = dataset.subset(order[: len(dataset) // 5])
        pool = dataset.subset(order[len(dataset) // 5 :])
        eval_set = holdout.filter_latency_below(2.4 * qos)

        cutoffs = [0.6 * qos, 0.9 * qos, 1.2 * qos, 2.4 * qos]
        rows = []
        for cutoff in cutoffs:
            truncated = pool.filter_latency_below(cutoff)
            if len(truncated) < 50 or truncated.violation_fraction() in (0.0, 1.0):
                # Degenerate truncation: record and move on.
                rows.append({"cutoff": cutoff, "rmse": float("nan"),
                             "bt_err": float("nan"), "n": len(truncated)})
                continue
            predictor = HybridPredictor(
                graph, spec.qos,
                PredictorConfig(epochs=max(budget.epochs // 2, 10),
                                batch_size=budget.batch_size),
                seed=2,
            )
            predictor.train(truncated)
            metrics = predictor.evaluate(eval_set)
            rows.append({
                "cutoff": cutoff,
                "rmse": metrics["rmse"],
                "bt_err": 1.0 - metrics["bt_accuracy"],
                "n": len(truncated),
            })
        return percentiles, rows

    percentiles, rows = run_once(benchmark, experiment)
    print()
    print(format_series(
        "Figure 9 (left): training-set p99 CDF",
        ["p10", "p25", "p50", "p75", "p90", "p99"],
        [float(v) for v in percentiles],
        "quantile", "latency (ms)",
    ))
    print(format_table(
        ["Train cutoff (ms)", "#samples", "Eval RMSE (ms)", "BT err rate"],
        [
            [f"{r['cutoff']:.0f}", r["n"],
             f"{r['rmse']:.1f}" if np.isfinite(r["rmse"]) else "n/a",
             f"{r['bt_err']:.3f}" if np.isfinite(r["bt_err"]) else "n/a"]
            for r in rows
        ],
        title="Figure 9 (right): error vs training latency range (QoS=500)",
    ))

    # Dataset spans the boundary (paper: approximately balanced).
    assert percentiles[-1] > qos
    assert percentiles[0] < qos
    finite = [r for r in rows if np.isfinite(r["rmse"])]
    # Models trained with boundary coverage beat the most truncated one.
    assert finite[-1]["rmse"] <= finite[0]["rmse"] if len(finite) > 1 else True
