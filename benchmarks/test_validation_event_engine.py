"""Substrate validation — fluid engine vs per-request discrete-event
simulation.

Not a paper figure: this bench cross-checks the two independent
implementations of the cluster physics.  For a sweep of allocations on
the tiny validation app, both engines must agree on the latency regime
(healthy / degraded / violating) even though their mechanics are
completely different (fluid queues + synthesized sampling vs per-request
FCFS event simulation).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.reporting import format_table
from repro.sim.engine import EngineConfig, QueueingEngine
from repro.sim.event_engine import EventDrivenEngine, EventEngineConfig
from tests.conftest import make_tiny_graph


def test_validation_fluid_vs_event(benchmark):
    graph = make_tiny_graph()
    rates = np.array([150.0, 15.0])

    def experiment():
        rows = []
        for level in (0.4, 1.0, 2.0, 4.0, 8.0):
            alloc = np.full(graph.n_tiers, level)
            event = EventDrivenEngine(graph, EventEngineConfig(), seed=9)
            event_result = event.run(alloc, rates, 30.0)
            series = event_result["p99_series_ms"]
            # Idle seconds are NaN (no completions, not "0 ms"); aggregate
            # over the observed seconds only.
            series = series[np.isfinite(series)]
            event_p99 = float(np.median(series[series > 0])) if (series > 0).any() else 0.0

            fluid = QueueingEngine(
                graph,
                EngineConfig(rate_cv=0.0, spike_prob=0.0, capacity_jitter=0.0),
                seed=9,
            )
            fluid_p99 = float(np.median(
                [fluid.run_interval(alloc, rates).p99_ms for _ in range(30)]
            ))
            rows.append({
                "alloc": level,
                "fluid": fluid_p99,
                "event": event_p99,
                "fluid_util": float(np.mean([
                    s for s in [fluid.queue.sum()]
                ])),
            })
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["Per-tier alloc", "Fluid p99 (ms)", "Event p99 (ms)", "Regime agreement"],
        [
            [f"{r['alloc']:.1f}", f"{r['fluid']:.0f}", f"{r['event']:.0f}",
             "yes" if _same_regime(r) else "NO"]
            for r in rows
        ],
        title="Fluid vs per-request event simulation (tiny app, 165 rps)",
    ))
    # Both engines classify each allocation into the same latency regime.
    assert all(_same_regime(r) for r in rows)
    # And both improve monotonically-ish with allocation (endpoints).
    assert rows[-1]["fluid"] < rows[0]["fluid"]
    assert rows[-1]["event"] < rows[0]["event"]


def _regime(p99_ms: float) -> str:
    if p99_ms < 200.0:
        return "healthy"
    if p99_ms < 1000.0:
        return "degraded"
    return "violating"


def _same_regime(row) -> bool:
    fluid, event = _regime(row["fluid"]), _regime(row["event"])
    if fluid == event:
        return True
    # Near a regime boundary the two may land one class apart; that is
    # acceptable — opposite extremes are not.
    return {fluid, event} != {"healthy", "violating"}
