"""Figure 13 — incremental retraining across deployment changes.

Three scenarios from paper Section 5.4, each fine-tuning the original
Social Network model on increasing amounts of newly collected data
(at 1/100 the original learning rate) instead of retraining:

1. new server platform (local cluster -> GCE),
2. different replica count for all tiers except the databases,
3. modified application (posts AES-encrypted before storage).

The series to match in shape: the original model's error on the new
deployment drops sharply within the first budget of new samples and
converges with modest data.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import (
    encrypted_posts_variant,
    scaled_replicas_variant,
    social_network,
)
from repro.core.retrain import fine_tune_predictor
from repro.harness.pipeline import collect_training_data, resolve_budget
from repro.harness.reporting import format_series
from repro.sim.cluster import GCE_PLATFORM, LOCAL_PLATFORM


def _scenario(name):
    graph = social_network()
    if name == "gce":
        return graph, GCE_PLATFORM
    if name == "replicas":
        return scaled_replicas_variant(graph, replicas=2), LOCAL_PLATFORM
    if name == "encrypted":
        return encrypted_posts_variant(graph, cpu_scale=1.3), LOCAL_PLATFORM
    raise ValueError(name)


@pytest.mark.parametrize("scenario", ["gce", "replicas", "encrypted"])
def test_fig13_incremental_retraining(benchmark, scenario, social_predictor):
    budget = resolve_budget(None)

    def experiment():
        graph, platform = _scenario(scenario)
        new_data = collect_training_data(
            graph, budget, seed=53, platform=platform
        )
        pool = int(len(new_data) * 0.8)
        counts = sorted({max(pool // 8, 8), max(pool // 3, 16), pool})
        _, report = fine_tune_predictor(
            social_predictor,
            new_data,
            sample_counts=counts,
            scenario=scenario,
            epochs=max(budget.epochs // 3, 4),
            seed=53,
        )
        return report

    report = run_once(benchmark, experiment)
    print()
    print(format_series(
        f"Figure 13 [{scenario}]: val RMSE vs new samples "
        f"(0 samples = original model: {report.base_rmse:.1f} ms)",
        report.sample_counts,
        report.val_rmse,
        "# new samples", "val RMSE (ms)",
    ))
    print(format_series(
        f"Figure 13 [{scenario}]: train RMSE",
        report.sample_counts,
        report.train_rmse,
        "# new samples", "train RMSE (ms)",
    ))

    # Shape: fine-tuning with the full new-data budget improves on the
    # un-tuned model, and train/val converge (no catastrophic overfit).
    assert report.converged_rmse() < report.base_rmse * 1.02
    final_gap = abs(report.val_rmse[-1] - report.train_rmse[-1])
    assert final_gap < max(report.val_rmse[-1], 1.0) * 0.8
