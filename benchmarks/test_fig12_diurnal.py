"""Figure 12 — detailed timelines under Sinan for Social Network.

Top row of the paper: constant 250-user load.  Bottom row: diurnal load
peaking at ~300 users.  The three panels per row are offered RPS,
predicted vs measured tail latency (plus the predicted violation
probability), and per-tier CPU allocation; here we print compact series
and check that predictions track the measurements and allocations track
the load.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.sinan import SinanManager
from repro.harness.pipeline import app_spec, make_cluster
from repro.harness.reporting import format_series
from repro.workload.patterns import ConstantLoad, DiurnalLoad


def _run_timeline(predictor, pattern, duration=300, seed=12):
    spec = app_spec("social_network")
    graph = spec.graph_factory()
    manager = SinanManager(predictor, spec.qos, graph)
    cluster = make_cluster(graph, users=0, seed=seed, pattern=pattern)
    for _ in range(duration):
        cluster.step(manager.decide(cluster.telemetry))
    log = cluster.telemetry
    trace = manager.prediction_trace
    measured = np.array([t["measured_ms"] for t in trace])
    predicted = np.array([t["predicted_ms"] for t in trace])
    p_viol = np.array([t["p_violation"] for t in trace])
    return {
        "rps": log.rps_series(),
        "p99": log.p99_series(),
        "cpu": log.total_cpu_series(),
        "alloc": log.alloc_matrix(),
        "measured": measured,
        "predicted": predicted,
        "p_viol": p_viol,
        "qos_frac": log.qos_meet_fraction(spec.qos.latency_ms),
    }


@pytest.mark.parametrize(
    "scenario,pattern",
    [
        ("constant-250", ConstantLoad(250)),
        ("diurnal-300", DiurnalLoad(base=170, amplitude=130, period=240)),
    ],
)
def test_fig12_timeline(benchmark, scenario, pattern, social_predictor):
    result = run_once(benchmark, lambda: _run_timeline(social_predictor, pattern))

    t = np.arange(len(result["rps"]))
    step = max(len(t) // 12, 1)
    print()
    print(format_series(
        f"Figure 12 [{scenario}] offered load", t[::step], result["rps"][::step],
        "t (s)", "RPS",
    ))
    print(format_series(
        f"Figure 12 [{scenario}] measured p99", t[::step], result["p99"][::step],
        "t (s)", "ms",
    ))
    print(format_series(
        f"Figure 12 [{scenario}] total CPU", t[::step], result["cpu"][::step],
        "t (s)", "cores",
    ))
    print(f"QoS-met fraction: {result['qos_frac']:.3f}")

    valid = np.isfinite(result["predicted"])
    corr = np.corrcoef(result["predicted"][valid], result["measured"][valid])[0, 1]
    print(f"pred-vs-measured correlation: {corr:.2f}")

    # Sinan's prediction tracks the ground truth (paper: "closely
    # follows"), QoS holds, and no allocation pegs at the ceiling for
    # the whole run.
    assert result["qos_frac"] > 0.93
    assert corr > 0.3
    if scenario.startswith("diurnal"):
        # Allocation follows the load cycle: peak-load CPU > trough CPU.
        rps = result["rps"]
        cpu = result["cpu"]
        high = cpu[rps > np.percentile(rps, 80)].mean()
        low = cpu[rps < np.percentile(rps, 20)].mean()
        assert high > low
