"""Figure 10 — autoscaling vs random data collection.

Training on autoscaler-managed traces (few violations) makes the model
underestimate latency near the boundary; random exploration makes it
overestimate and block reclamation.  The bandit-collected model sits in
between.  We train one hybrid model per collection scheme and compare
their latency bias on a common bandit-collected evaluation slice (which
covers the boundary).

This bench doubles as the data-collection ablation called out in
DESIGN.md.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines.autoscale import AutoScale
from repro.core.data_collection import (
    AutoscaleCollectPolicy,
    BanditExplorer,
    CollectionConfig,
    DataCollector,
    RandomCollectPolicy,
)
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.harness.pipeline import (
    app_spec,
    collection_loads,
    make_cluster,
    resolve_budget,
)
from repro.harness.reporting import format_table


def test_fig10_collection_policies(benchmark):
    spec = app_spec("social_network")
    budget = resolve_budget(None)
    graph = spec.graph_factory()
    config = CollectionConfig(qos=spec.qos)

    def experiment():
        collector = DataCollector(
            lambda users, seed: make_cluster(graph, users, seed), config
        )
        loads = collection_loads(spec, budget)
        seconds = max(budget.seconds_per_load // 2, 60)

        policies = {
            "bandit": BanditExplorer(config, seed=3),
            "autoscale": AutoscaleCollectPolicy(
                AutoScale.opt(graph.min_alloc(), graph.max_alloc())
            ),
            "random": RandomCollectPolicy(seed=3),
        }
        datasets = {
            name: collector.collect(policy, loads, seconds, seed=31).dataset
            for name, policy in policies.items()
        }
        eval_set = datasets["bandit"].filter_latency_below(2.4 * spec.qos.latency_ms)

        rows = []
        for name, dataset in datasets.items():
            predictor = HybridPredictor(
                graph, spec.qos,
                PredictorConfig(epochs=max(budget.epochs // 2, 10),
                                batch_size=budget.batch_size),
                seed=3,
            )
            try:
                predictor.train(dataset)
            except ValueError:
                rows.append({"policy": name, "bias": float("nan"),
                             "rmse": float("nan"),
                             "viol_frac": dataset.violation_fraction()})
                continue
            lat, _ = predictor.predict_raw(
                eval_set.X_RH, eval_set.X_LH, eval_set.X_RC
            )
            truth = eval_set.y_lat[:, -1]
            rows.append({
                "policy": name,
                "bias": float(np.mean(lat[:, -1] - truth)),
                "rmse": float(np.sqrt(np.mean((lat[:, -1] - truth) ** 2))),
                "viol_frac": dataset.violation_fraction(),
            })
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["Collection", "Dataset viol. frac", "p99 bias (ms)", "p99 RMSE (ms)"],
        [
            [r["policy"], f"{r['viol_frac']:.3f}", f"{r['bias']:+.1f}",
             f"{r['rmse']:.1f}"]
            for r in rows
        ],
        title="Figure 10: prediction quality by collection scheme",
    ))
    by_name = {r["policy"]: r for r in rows}
    # Autoscale-collected data sees far fewer violations than the bandit
    # (it steers away from the boundary), and underestimates latency.
    assert by_name["autoscale"]["viol_frac"] < by_name["bandit"]["viol_frac"]
    assert by_name["autoscale"]["bias"] < 0
    # Boundary-focused collection produces the most accurate and least
    # biased boundary model (paper's joint-design takeaway).
    assert by_name["bandit"]["rmse"] <= min(
        by_name["autoscale"]["rmse"], by_name["random"]["rmse"]
    ) * 1.05
    assert abs(by_name["bandit"]["bias"]) <= min(
        abs(by_name["autoscale"]["bias"]), abs(by_name["random"]["bias"])
    ) + 5.0
