"""Continuous learning end-to-end: drift -> detect -> retrain -> promote.

The scenario behind paper Section 5.4: a deployment change invalidates
the deploy-time model.  Here the platform permanently loses ~60% of its
service capacity early in the episode (:class:`CapacityDrift`).  The
frozen incumbent keeps scheduling with its stale latency model — it
under-predicts tails, scales down into violations, and oscillates on
the recovery-boost path.  The continuous manager detects the drift from
its own decision stream, fine-tunes a challenger on freshly collected
boundary data from the drifted platform (off the control path), shadows
it, and promotes it through the gate.

Both arms replay the identical seeded episode, so the post-promotion
QoS-attainment gap isolates exactly what the learning loop buys.

The deploy-time model is pinned to the *small* collection budget
regardless of ``REPRO_BUDGET``: the scenario needs a deliberately
modest deployment model (that is what drifts into trouble), and pinning
it keeps the whole experiment deterministic across budget settings.
"""

from benchmarks.conftest import run_once
from repro.core.drift import DriftConfig
from repro.core.retrain import PromotionGate, RetrainConfig
from repro.harness.continuous import (
    BoundaryCollector,
    format_drift_scenario,
    run_drift_scenario,
)
from repro.harness.pipeline import app_spec, get_trained_predictor
from repro.sim.behaviors import CapacityDrift

USERS = 260.0
SEED = 3
CAPACITY = 0.42
DURATION = 180


def test_continuous_learning_drift_scenario(benchmark):
    spec = app_spec("social_network")
    graph = spec.graph_factory()
    predictor = get_trained_predictor("social_network", "small", seed=0)

    def experiment():
        return run_drift_scenario(
            predictor, graph, spec.qos,
            users=USERS, duration=DURATION, seed=SEED,
            drift=CapacityDrift(start=20.0, ramp=10.0,
                                final_capacity=CAPACITY),
            collect=BoundaryCollector(
                graph, spec.qos, capacity=CAPACITY,
                loads=(USERS * 0.85, USERS, USERS * 1.15),
                seconds_per_load=60,
            ),
            drift_config=DriftConfig(
                window=15, min_decisions=8, misprediction_rate=0.08,
                calibration_frac=0.25, cooldown=30,
            ),
            # Full-rate fine-tune: the capacity regression moves the
            # latency surface far from the deploy-time solution, so the
            # paper's lambda/100 transfer step is too timid here.
            retrain_config=RetrainConfig(
                delivery_intervals=10, shadow_intervals=20,
                lr_scale=1.0, epochs=12, seed=7,
            ),
            # Under reduced capacity the challenger's max-allocation
            # fallbacks are the correct call, so the gate must not
            # punish conservatism as if it were model failure.
            gate=PromotionGate(
                min_intervals=15, max_fallback_rate=0.9,
                max_misprediction_rate=0.3, max_mae_ratio=1.5,
            ),
        )

    result = run_once(benchmark, experiment)
    print()
    print(format_drift_scenario(result))

    c = result.continuous
    # The loop actually closed: signal -> retrain -> shadow -> promote.
    assert len(c.drift_signals) >= 1
    assert c.retrains >= 1
    assert c.promotions >= 1
    assert c.promotion_interval is not None
    assert c.promotion_interval < DURATION - 20  # a real post window

    # The promoted challenger beats the never-retrained incumbent on
    # the same seeded episode over the post-promotion window.
    assert result.continuous_post_qos > result.frozen_post_qos
