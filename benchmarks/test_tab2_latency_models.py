"""Table 2 — short-term latency model comparison: CNN vs MLP vs LSTM.

For each application, the three architectures are trained on the same
bandit-collected dataset with the same scaled loss, and we report
train/validation RMSE, model size, and per-batch train+inference speed.
The paper's finding to match in shape: the CNN achieves the lowest RMSE
with the smallest model.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.harness.pipeline import app_spec, collect_training_data, resolve_budget
from repro.harness.reporting import format_table
from repro.ml.dataset import FeatureNormalizer
from repro.ml.losses import LatencyScaler, ScaledMSELoss
from repro.ml.lstm import LatencyLSTM
from repro.ml.metrics import rmse
from repro.ml.mlp import LatencyMLP
from repro.ml.cnn import LatencyCNN


def _compare_models(app_name: str, seed: int = 0):
    spec = app_spec(app_name)
    budget = resolve_budget(None)
    graph = spec.graph_factory()
    dataset = collect_training_data(graph, budget, seed=seed)
    dataset = dataset.filter_latency_below(2.4 * spec.qos.latency_ms)
    split = dataset.split(0.9, np.random.default_rng(seed))
    normalizer = FeatureNormalizer(spec.qos.latency_ms).fit(split.train)
    train = normalizer.transform_dataset(split.train)
    val = normalizer.transform_dataset(split.val)
    train_in = (train.X_RH, train.X_LH, train.X_RC)
    val_in = (val.X_RH, val.X_LH, val.X_RC)
    loss = ScaledMSELoss(LatencyScaler(t=spec.qos.latency_ms, alpha=1.0 / spec.qos.latency_ms))

    models = {
        "MLP": LatencyMLP(graph.n_tiers, seed=seed),
        "LSTM": LatencyLSTM(graph.n_tiers, seed=seed),
        "CNN": LatencyCNN(graph.n_tiers, seed=seed),
    }
    rows = []
    epochs = max(budget.epochs // 2, 10)
    for name, model in models.items():
        model.fit(
            train_in, train.y_lat, val_in, val.y_lat,
            loss=loss, epochs=epochs, batch_size=budget.batch_size,
            lr=0.003, seed=seed,
        )
        # Timed batch: one forward+backward on a 256-sample batch.
        batch = tuple(x[:256] for x in train_in)
        t0 = time.perf_counter()
        pred = model.forward_batch(batch, training=True)
        model.backward_batch(np.ones_like(pred))
        ms_per_batch = (time.perf_counter() - t0) * 1000
        rows.append({
            "model": name,
            "train_rmse": rmse(model.predict(train_in), train.y_lat),
            "val_rmse": rmse(model.predict(val_in), val.y_lat),
            "size_kb": model.size_kb,
            "ms_batch": ms_per_batch,
        })
    return rows


@pytest.mark.parametrize("app_name", ["social_network", "hotel_reservation"])
def test_tab2_latency_models(benchmark, app_name):
    rows = run_once(benchmark, lambda: _compare_models(app_name))
    print()
    print(format_table(
        ["Model", "Train RMSE (ms)", "Val RMSE (ms)", "Size (KB)", "ms/batch"],
        [
            [r["model"], f"{r['train_rmse']:.1f}", f"{r['val_rmse']:.1f}",
             f"{r['size_kb']:.0f}", f"{r['ms_batch']:.1f}"]
            for r in rows
        ],
        title=f"Table 2 ({app_name})",
    ))
    by_name = {r["model"]: r for r in rows}
    # Paper shape: the CNN is the most accurate and smallest model.
    assert by_name["CNN"]["val_rmse"] <= min(
        by_name["MLP"]["val_rmse"], by_name["LSTM"]["val_rmse"]
    ) * 1.1, "CNN should be (about) the most accurate"
    assert by_name["CNN"]["size_kb"] < by_name["MLP"]["size_kb"]
