"""(ours) Decision-path performance: fast vs reference scoring.

Times one scheduler decision — candidate encoding, shared-trunk CNN
inference, compiled Boosted-Trees inference, selection — across
candidate counts and window lengths, asserting the fast path is
bitwise-equivalent to the reference path and at least 5x faster at 64+
candidates.  Results are written to ``BENCH_decision.json`` at the repo
root (the same artifact ``repro bench`` produces).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.harness.bench import (
    BenchConfig,
    bench_components,
    make_bench_log,
    make_synthetic_predictor,
    run_bench,
)
from repro.harness.reporting import format_table

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_decision_path_speedup(benchmark):
    config = BenchConfig(
        candidate_counts=(16, 64, 128),
        repeats=10,
        output=str(REPO_ROOT / "BENCH_decision.json"),
    )

    results = run_once(benchmark, lambda: run_bench(config))

    print()
    rows = [
        [
            row["candidates"],
            f"{row['total']['fast_ms']:.2f}",
            f"{row['total']['reference_ms']:.2f}",
            f"{row['total']['speedup']:.1f}x",
            "yes" if row["bitwise_equal"] else "NO",
        ]
        for row in results["components"]
    ]
    print(format_table(
        ["Candidates", "Fast (ms)", "Reference (ms)", "Speedup", "Bitwise equal"],
        rows,
        title="Per-decision scoring (social_network, 28 tiers, 300 trees)",
    ))
    sched = results["scheduler"]
    print(f"scheduler replay: {sched['decisions']} decisions, "
          f"{sched['speedup']:.1f}x, traces "
          + ("identical" if sched["identical_traces"] else "DIVERGED"))

    # Every batch size must be bitwise-equivalent; the optimization is
    # only shippable because it changes nothing but wall-clock time.
    assert all(row["bitwise_equal"] for row in results["components"])
    assert sched["identical_traces"]

    # Acceptance: >= 5x end-to-end at 64+ candidates.
    for row in results["components"]:
        if row["candidates"] >= 64:
            assert row["total"]["speedup"] >= 5.0, row

    artifact = REPO_ROOT / "BENCH_decision.json"
    assert artifact.exists()
    assert json.loads(artifact.read_text())["components"]


@pytest.mark.parametrize("window", [5, 10])
def test_decision_path_windows(benchmark, window):
    """Equivalence and speedup hold across telemetry window lengths."""
    config = BenchConfig(
        candidate_counts=(64,),
        n_timesteps=window,
        repeats=5,
        n_trees=150,
        output="",
    )
    predictor = make_synthetic_predictor(config)
    log = make_bench_log(config)

    row = run_once(benchmark, lambda: bench_components(predictor, log, 64, config))

    print(f"\nwindow={window}: {row['total']['speedup']:.1f}x, "
          f"equal={row['bitwise_equal']}")
    assert row["bitwise_equal"]
    assert row["total"]["speedup"] >= 5.0


def test_incremental_encode_matches_fresh():
    """The per-decision window cache never changes encoded values.

    Steps a live cluster, encoding after every interval with one
    long-lived encoder (exercising the shift-by-one path) and a fresh
    encoder (full rebuild); the tensors must match bitwise.
    """
    from repro.core.features import WindowEncoder
    from repro.harness.pipeline import app_spec, make_cluster

    config = BenchConfig()
    spec = app_spec(config.app)
    graph = spec.graph_factory()
    cluster = make_cluster(graph, users=200, seed=3)
    encoder = WindowEncoder(graph, config.n_timesteps)
    rng = np.random.default_rng(0)
    for _ in range(config.n_timesteps + 8):
        cluster.step(cluster.clip_alloc(
            cluster.current_alloc + rng.uniform(-0.2, 0.2, cluster.n_tiers)
        ))
        cached = encoder.encode_history(cluster.telemetry)
        fresh = WindowEncoder(graph, config.n_timesteps).encode_history(
            cluster.telemetry
        )
        assert np.array_equal(cached[0], fresh[0])
        assert np.array_equal(cached[1], fresh[1])
