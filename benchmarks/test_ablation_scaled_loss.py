"""Ablation — the scaled loss (Eq. 2) vs plain MSE.

The paper biases the squared loss toward the below-QoS range because
plain MSE overfits the latency spikes and overestimates in the region
the scheduler actually cares about.  We train the same CNN with both
losses and compare RMSE restricted to the below-QoS region.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.pipeline import app_spec, collect_training_data, resolve_budget
from repro.harness.reporting import format_table
from repro.ml.cnn import LatencyCNN
from repro.ml.dataset import FeatureNormalizer
from repro.ml.losses import LatencyScaler, MSELoss, ScaledMSELoss
from repro.ml.metrics import rmse


def test_ablation_scaled_loss(benchmark):
    spec = app_spec("social_network")
    budget = resolve_budget(None)
    qos = spec.qos.latency_ms

    def experiment():
        graph = spec.graph_factory()
        dataset = collect_training_data(graph, budget, seed=8)
        dataset = dataset.filter_latency_below(2.4 * qos)
        split = dataset.split(0.9, np.random.default_rng(8))
        normalizer = FeatureNormalizer(qos).fit(split.train)
        train = normalizer.transform_dataset(split.train)
        val = normalizer.transform_dataset(split.val)
        train_in = (train.X_RH, train.X_LH, train.X_RC)
        val_in = (val.X_RH, val.X_LH, val.X_RC)

        losses = {
            "scaled (Eq. 2)": ScaledMSELoss(LatencyScaler(t=qos, alpha=1.0 / qos)),
            "plain MSE": MSELoss(),
        }
        rows = []
        below = val.y_lat[:, -1] <= qos
        epochs = max(budget.epochs // 2, 10)
        for name, loss in losses.items():
            model = LatencyCNN(graph.n_tiers, seed=8)
            model.fit(
                train_in, train.y_lat, val_in, val.y_lat, loss=loss,
                epochs=epochs, batch_size=budget.batch_size, lr=0.003, seed=8,
            )
            pred = model.predict(val_in)
            rows.append({
                "loss": name,
                "rmse_below": rmse(pred[below], val.y_lat[below]),
                "rmse_all": rmse(pred, val.y_lat),
                "bias_below": float(np.mean(pred[below, -1] - val.y_lat[below, -1])),
            })
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["Loss", "Val RMSE below QoS", "Val RMSE all", "Bias below QoS"],
        [
            [r["loss"], f"{r['rmse_below']:.1f}", f"{r['rmse_all']:.1f}",
             f"{r['bias_below']:+.1f}"]
            for r in rows
        ],
        title="Scaled-loss ablation (Social Network, QoS region = below 500 ms)",
    ))
    by_name = {r["loss"]: r for r in rows}
    # Shape: the scaled loss stays competitive in the QoS region and is
    # not dragged off overall by the above-QoS spikes.  (With the
    # timeout-plateau samples already filtered by the label cap, the two
    # losses are close; the scaled loss's job is to keep it that way.)
    assert (
        by_name["scaled (Eq. 2)"]["rmse_below"]
        <= by_name["plain MSE"]["rmse_below"] * 1.2
    )
    assert (
        by_name["scaled (Eq. 2)"]["rmse_all"]
        <= by_name["plain MSE"]["rmse_all"] * 1.1
    )
