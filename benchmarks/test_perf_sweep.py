"""(ours) Fan-out performance: persistent warm worker pool + one-time
model broadcast vs the cold per-task-pickle baseline.

Runs a ≥32-episode on-policy collection sweep at ``jobs=cpu_count``
(the paper's Section 4.2 fan-out point) on the cold pre-pool path — a
fresh process pool per call with the full ~300-tree + CNN predictor
pickled into every task — and on the warm shared pool, where the
predictor is published once to ``multiprocessing.shared_memory`` and
each task carries only a slim ``ModelRef``.  Asserts ≥2x sweep
wall-clock, ≥50x smaller per-task payloads, warm-pool reuse across
successive calls, and the bitwise equivalence contract: pooled results
equal ``jobs=1`` and the cold path, in normal and chaos fault-profile
episodes.  Results are written to ``BENCH_sweep.json`` at the repo root
(the same artifact ``repro bench --sweep`` produces).
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.harness.bench import SweepBenchConfig, run_sweep_bench

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_fanout_sweep_speedup(benchmark):
    config = SweepBenchConfig(
        output=str(REPO_ROOT / "BENCH_sweep.json"),
    )

    results = run_once(benchmark, lambda: run_sweep_bench(config))

    th = results["throughput"]
    pl = results["payload"]
    ru = results["reuse"]
    eq = results["equivalence"]
    print()
    print(f"sweep ({th['episodes']} episodes x {th['seconds_per_episode']} "
          f"intervals, {th['workers']} workers): {th['warm_s']:.2f}s warm "
          f"vs {th['baseline_cold_s']:.2f}s cold ({th['speedup']:.1f}x)")
    print(f"payload: {pl['warm_task_bytes']:,}B vs "
          f"{pl['cold_task_bytes']:,}B per task ({pl['reduction']:.0f}x)")
    print(f"reuse: {ru['one_warm_pool_s']:.2f}s warm vs "
          f"{ru['two_cold_pools_s']:.2f}s cold over two sweeps")
    print("equivalence: " + ", ".join(
        f"{k}={'yes' if v else 'NO'}" for k, v in eq.items() if k != "all"
    ))

    # The warm pool is only shippable because it changes nothing but
    # wall-clock time: pooled results must equal jobs=1 and the cold
    # per-task path, in normal and fault-profile episodes.
    assert eq["all"], eq
    assert th["identical_results"], th
    assert ru["identical_results"], ru
    assert results["equivalent"], results

    # Acceptance: >= 2x sweep wall-clock on a >= 32-episode collection
    # sweep at jobs=cpu_count, and >= 50x smaller per-task payloads.
    assert th["episodes"] >= 32
    assert th["speedup"] >= 2.0, th
    assert pl["reduction"] >= 50.0, pl
    assert pl["broadcast_bytes_once"] > 1_000_000, pl

    # The warm pool actually persists: the second call on it must
    # report reuse with zero new broadcast publishes.
    assert th["pool_reused"], th
    assert ru["second_call_reused"], ru
    assert ru["second_call_publishes"] == 0, ru

    artifact = REPO_ROOT / "BENCH_sweep.json"
    assert artifact.exists()
    written = json.loads(artifact.read_text())
    assert written["equivalent"]
    assert written["throughput"]["speedup"] >= 2.0
    assert written["payload"]["reduction"] >= 50.0
