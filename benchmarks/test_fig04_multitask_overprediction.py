"""Figure 4 — the rejected multi-task NN overpredicts latency.

A single network jointly trained to predict next-interval latency
(unbounded) and QoS-violation probability (in [0, 1]) suffers from the
semantic gap between the two objectives and overpredicts tail latency,
which is why the paper splits the tasks across a CNN and Boosted Trees.
We train the multi-task model on the same data as the hybrid and compare
their latency bias on validation data.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness.pipeline import app_spec, collect_training_data, resolve_budget
from repro.harness.reporting import format_table
from repro.ml.dataset import FeatureNormalizer
from repro.ml.multitask import MultiTaskNN


def test_fig4_multitask_overprediction(benchmark, social_predictor):
    spec = app_spec("social_network")
    budget = resolve_budget(None)

    def experiment():
        graph = spec.graph_factory()
        dataset = collect_training_data(graph, budget, seed=1)
        # The joint model trains on the raw trace — spikes included —
        # with plain MSE + BCE, exactly the paper's first attempt.  The
        # hybrid's boundary-focused regression (scaled loss, boundary
        # label cap) is the design that avoids the resulting bias.
        split = dataset.split(0.9, np.random.default_rng(1))
        normalizer = FeatureNormalizer(spec.qos.latency_ms).fit(split.train)
        train = normalizer.transform_dataset(split.train)
        train_in = (train.X_RH, train.X_LH, train.X_RC)

        model = MultiTaskNN(graph.n_tiers, violation_weight=4.0, seed=1)
        targets = model.pack_targets(train.y_lat, train.y_viol)
        model.fit(
            train_in, targets, loss=model.loss(),
            epochs=max(budget.epochs // 2, 10),
            batch_size=budget.batch_size, lr=0.003, seed=1,
        )

        # Both models evaluated on below-boundary validation windows
        # (the region the scheduler operates in).
        eval_set = split.val.filter_latency_below(2.4 * spec.qos.latency_ms)
        eval_norm = normalizer.transform_dataset(eval_set)
        val_in = (eval_norm.X_RH, eval_norm.X_LH, eval_norm.X_RC)
        mt_pred = model.predict_latency(val_in)[:, -1]

        hybrid_pred, _ = social_predictor.predict_raw(
            eval_set.X_RH, eval_set.X_LH, eval_set.X_RC
        )
        truth = eval_set.y_lat[:, -1]
        return {
            "mt_bias": float(np.mean(mt_pred - truth)),
            "hybrid_bias": float(np.mean(hybrid_pred[:, -1] - truth)),
            "mt_mean_pred": float(np.mean(mt_pred)),
            "truth_mean": float(np.mean(truth)),
        }

    row = run_once(benchmark, experiment)
    print()
    print(format_table(
        ["Model", "Mean p99 bias (ms)"],
        [
            ["Multi-task NN", f"{row['mt_bias']:+.1f}"],
            ["Hybrid (CNN+BT)", f"{row['hybrid_bias']:+.1f}"],
        ],
        title=(
            "Figure 4: multi-task joint model vs two-stage hybrid "
            f"(truth mean {row['truth_mean']:.0f} ms)"
        ),
    ))
    # Paper shape: the joint model is biased upward relative to the
    # hybrid in the QoS-relevant region (the spikes and the bounded
    # violation head drag the shared representation).
    assert row["mt_bias"] > row["hybrid_bias"]
    assert abs(row["hybrid_bias"]) < abs(row["mt_bias"]) + 40.0
