"""Shared fixtures for the test suite.

Most tests run on a tiny 4-tier application (fast); a handful of
integration tests use the real Social Network / Hotel Reservation
topologies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.graph import AppGraph, RequestType
from repro.sim.tier import TierKind, TierSpec
from repro.workload.generator import RequestMix, Workload
from repro.workload.patterns import ConstantLoad
from repro.sim.cluster import ClusterSimulator


def make_tiny_graph() -> AppGraph:
    """A 4-tier chain with a fan-out: front -> logic -> (cache, db)."""
    tiers = [
        TierSpec("front", kind=TierKind.FRONTEND, max_cpu=8.0),
        TierSpec("logic", kind=TierKind.LOGIC, max_cpu=8.0),
        TierSpec("cache", kind=TierKind.CACHE, max_cpu=4.0),
        TierSpec("db", kind=TierKind.DB, max_cpu=4.0),
    ]
    edges = [("front", "logic"), ("logic", "cache"), ("logic", "db")]
    rtypes = [
        RequestType(
            name="Read",
            stages=(("front",), ("logic",), ("cache", "db")),
            work={"db": 0.3},
        ),
        RequestType(
            name="Write",
            stages=(("front",), ("logic",), ("db",)),
        ),
    ]
    return AppGraph("tiny", tiers, edges, rtypes)


@pytest.fixture
def tiny_graph() -> AppGraph:
    return make_tiny_graph()


@pytest.fixture
def tiny_mix() -> RequestMix:
    return RequestMix.from_ratios({"Read": 9, "Write": 1})


def make_tiny_cluster(users: float = 100, seed: int = 0) -> ClusterSimulator:
    graph = make_tiny_graph()
    mix = RequestMix.from_ratios({"Read": 9, "Write": 1})
    workload = Workload(graph, ConstantLoad(users), mix)
    return ClusterSimulator(graph, workload, seed=seed)


@pytest.fixture
def tiny_cluster() -> ClusterSimulator:
    return make_tiny_cluster()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
