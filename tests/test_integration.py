"""End-to-end integration: collect -> train -> deploy Sinan on the tiny app.

The real applications are exercised by the benchmark suite; here the
full pipeline runs on the 4-tier test app in a few seconds.
"""

import numpy as np
import pytest

from repro.core.data_collection import (
    BanditExplorer,
    CollectionConfig,
    DataCollector,
)
from repro.core.predictor import HybridPredictor, PredictorConfig
from repro.core.qos import QoSTarget
from repro.core.sinan import SinanManager
from repro.harness.experiment import run_episode
from repro.ml.cnn import CNNConfig
from tests.conftest import make_tiny_cluster, make_tiny_graph

QOS = QoSTarget(200.0)


@pytest.fixture(scope="module")
def sinan_manager():
    graph = make_tiny_graph()
    config = CollectionConfig(qos=QOS)
    collector = DataCollector(
        lambda users, seed: make_tiny_cluster(users, seed), config
    )
    dataset = collector.collect(
        BanditExplorer(config, seed=0),
        loads=[40, 120, 200, 300],
        seconds_per_load=120,
    ).dataset
    predictor = HybridPredictor(
        graph,
        QOS,
        PredictorConfig(
            epochs=20,
            batch_size=64,
            cnn=CNNConfig(conv_channels=(4,), rh_embed=16, lh_embed=8,
                          rc_embed=8, latent_dim=16),
        ),
        seed=0,
    )
    predictor.train(dataset)
    # A model trained on minutes of data is noisier than the real
    # pipeline's; the thresholds loosen accordingly.
    from repro.core.scheduler import SchedulerConfig

    return SinanManager(
        predictor, QOS, graph,
        scheduler_config=SchedulerConfig(p_down=0.08, p_up=0.25),
    )


class TestEndToEnd:
    def test_sinan_manages_episode(self, sinan_manager):
        cluster = make_tiny_cluster(users=120, seed=77)
        result = run_episode(sinan_manager, cluster, 60, QOS, warmup=15)
        # Sinan should keep the cluster mostly healthy on the app it was
        # trained for, without pinning everything at max.
        assert result.qos_fraction > 0.85
        assert result.mean_total_cpu < 0.9 * cluster.max_alloc.sum()

    def test_sinan_adapts_to_load(self, sinan_manager):
        low = run_episode(
            sinan_manager, make_tiny_cluster(users=40, seed=5), 60, QOS, warmup=15
        )
        high = run_episode(
            sinan_manager, make_tiny_cluster(users=300, seed=5), 60, QOS, warmup=15
        )
        assert high.mean_total_cpu > low.mean_total_cpu

    def test_prediction_trace_populated(self, sinan_manager):
        cluster = make_tiny_cluster(users=100, seed=8)
        run_episode(sinan_manager, cluster, 30, QOS, warmup=5)
        trace = sinan_manager.prediction_trace
        # The first decision has no telemetry yet (no record).
        assert len(trace) == 29
        measured = np.array([t["measured_ms"] for t in trace])
        assert np.all(measured > 0)

    def test_beats_undersized_static_on_qos(self, sinan_manager):
        from repro.core.manager import StaticManager

        cluster_a = make_tiny_cluster(users=300, seed=9)
        starved = StaticManager(np.full(cluster_a.n_tiers, 0.3))
        static_result = run_episode(starved, cluster_a, 50, QOS, warmup=10)
        cluster_b = make_tiny_cluster(users=300, seed=9)
        sinan_result = run_episode(sinan_manager, cluster_b, 50, QOS, warmup=10)
        assert sinan_result.qos_fraction > static_result.qos_fraction
