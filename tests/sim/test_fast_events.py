"""Struct-of-arrays event loop vs the object-loop oracle: bitwise
equality (this is the equality-test file named by
``repro.sim.event_engine``'s module docstring).

The fast loop replaces ``_Request``/``_Visit`` objects and the tuple
heap with preallocated arrays, incremental busy-time accounting, and
pre-drawn arrival streams — all of it only shippable because nothing
observable changes: every summary field, the engines' final RNG
bit-generator state, and the per-tier busy/completed-work counters must
match ``run_reference`` exactly, across the validation scenarios
(allocation sweep on the tiny app), overload/drop regimes, multi-run
windowing, non-default physics knobs, and the production-sized graph.
"""

import numpy as np
import pytest

from repro.harness.pipeline import app_spec
from repro.sim.event_engine import EventDrivenEngine, EventEngineConfig
from tests.conftest import make_tiny_graph

GRAPH = make_tiny_graph()
#: The validation-bench load (165 rps total on the tiny app).
RATES = np.array([150.0, 15.0])


def paired_engines(graph=GRAPH, seed=0, **cfg):
    """A (fast, reference) engine pair built identically."""
    return (
        EventDrivenEngine(graph, EventEngineConfig(**cfg), seed=seed),
        EventDrivenEngine(graph, EventEngineConfig(**cfg), seed=seed),
    )


def assert_summary_equal(fast: dict, ref: dict) -> None:
    assert set(fast) == set(ref)
    for key in fast:
        assert np.array_equal(
            np.asarray(fast[key]), np.asarray(ref[key]), equal_nan=True
        ), key


def assert_state_equal(fast_e, ref_e) -> None:
    """Engine-level state: time, drops, tier counters, RNG stream."""
    assert fast_e.time == ref_e.time
    assert fast_e.dropped == ref_e.dropped
    for tf, tr in zip(fast_e.tiers, ref_e.tiers):
        assert tf.busy == tr.busy
        assert tf.completed_work == tr.completed_work
    assert (
        fast_e._rng.bit_generator.state == ref_e._rng.bit_generator.state
    )


class TestRunEquality:
    @pytest.mark.parametrize("level", [0.4, 1.0, 2.0, 4.0, 8.0])
    def test_validation_alloc_sweep(self, level):
        """The ``test_validation_event_engine`` scenarios: the same
        allocation sweep, seed, and horizon the cross-validation bench
        runs — from overloaded-with-drops to heavily overprovisioned."""
        fast_e, ref_e = paired_engines(seed=9)
        alloc = np.full(GRAPH.n_tiers, level)
        assert_summary_equal(
            fast_e.run(alloc, RATES, 30.0),
            ref_e.run_reference(alloc, RATES, 30.0),
        )
        assert_state_equal(fast_e, ref_e)

    def test_zero_load(self):
        fast_e, ref_e = paired_engines(seed=2)
        alloc = np.full(GRAPH.n_tiers, 2.0)
        zero = np.zeros(GRAPH.n_types)
        assert_summary_equal(
            fast_e.run(alloc, zero, 5.0),
            ref_e.run_reference(alloc, zero, 5.0),
        )
        assert_state_equal(fast_e, ref_e)

    def test_drop_heavy_small_queue(self):
        fast_e, ref_e = paired_engines(seed=5, max_queue=50)
        alloc = np.full(GRAPH.n_tiers, 0.4)
        fast = fast_e.run(alloc, RATES, 10.0)
        ref = ref_e.run_reference(alloc, RATES, 10.0)
        assert fast["dropped"] > 0  # the drop path actually ran
        assert_summary_equal(fast, ref)
        assert_state_equal(fast_e, ref_e)

    def test_non_default_physics_knobs(self):
        fast_e, ref_e = paired_engines(
            seed=7,
            service_mult=1.3,
            base_lat_mult=0.7,
            noise_sigma=0.4,
            drop_latency=2.5,
            max_queue=200,
        )
        alloc = np.full(GRAPH.n_tiers, 1.0)
        assert_summary_equal(
            fast_e.run(alloc, RATES, 10.0),
            ref_e.run_reference(alloc, RATES, 10.0),
        )
        assert_state_equal(fast_e, ref_e)

    def test_multi_run_windowing_with_alloc_changes(self):
        """Carried-over in-flight work, per-run summary windowing, and
        allocation changes between runs stay equivalent run by run."""
        fast_e, ref_e = paired_engines(seed=3, max_queue=200)
        for level, duration in ((0.6, 8.0), (2.0, 6.0), (0.8, 8.0)):
            alloc = np.full(GRAPH.n_tiers, level)
            assert_summary_equal(
                fast_e.run(alloc, RATES, duration),
                ref_e.run_reference(alloc, RATES, duration),
            )
            assert_state_equal(fast_e, ref_e)

    def test_pre_seeded_busy_tail(self):
        """The accounting hack the engine tests rely on — poking
        ``tiers[0].busy`` before the first run — must behave identically
        on the adopted struct-of-arrays mirrors."""
        fast_e, ref_e = paired_engines(seed=1)
        for engine in (fast_e, ref_e):
            engine.tiers[0].busy = 1
        alloc = np.full(GRAPH.n_tiers, 2.0)
        assert_summary_equal(
            fast_e.run(alloc, RATES, 5.0),
            ref_e.run_reference(alloc, RATES, 5.0),
        )
        assert_state_equal(fast_e, ref_e)

    @pytest.mark.parametrize("level,rps", [(1.0, 120.0), (0.5, 200.0)])
    def test_production_graph(self, level, rps):
        graph = app_spec("social_network").graph_factory()
        fast_e, ref_e = paired_engines(graph=graph, seed=13)
        alloc = np.full(graph.n_tiers, level)
        rates = np.full(graph.n_types, rps / graph.n_types)
        assert_summary_equal(
            fast_e.run(alloc, rates, 10.0),
            ref_e.run_reference(alloc, rates, 10.0),
        )
        assert_state_equal(fast_e, ref_e)


class TestDispatchRules:
    def test_fast_events_toggle_runs_reference_loop(self):
        """``fast_events=False`` must route ``run()`` through the object
        loop — observable through identical results and object-path
        state (populated tier queues under overload)."""
        toggled_e = EventDrivenEngine(
            GRAPH, EventEngineConfig(fast_events=False, max_queue=200), seed=4
        )
        ref_e = EventDrivenEngine(
            GRAPH, EventEngineConfig(max_queue=200), seed=4
        )
        alloc = np.full(GRAPH.n_tiers, 0.4)
        assert_summary_equal(
            toggled_e.run(alloc, RATES, 5.0),
            ref_e.run_reference(alloc, RATES, 5.0),
        )
        assert any(t.queue for t in toggled_e.tiers)  # object-path state

    def test_reference_after_fast_in_flight_raises(self):
        engine = EventDrivenEngine(
            GRAPH, EventEngineConfig(max_queue=400), seed=6
        )
        engine.run(np.full(GRAPH.n_tiers, 0.4), RATES, 5.0)  # leaves work
        with pytest.raises(RuntimeError, match="fresh engine"):
            engine.run_reference(np.full(GRAPH.n_tiers, 0.4), RATES, 5.0)

    def test_fast_after_reference_in_flight_falls_back(self):
        """`run()` on an engine with object-path work in flight must not
        silently adopt it into the fast loop: it continues on the
        reference path, matching a pure-reference engine."""
        mixed_e, ref_e = paired_engines(seed=8, max_queue=400)
        alloc = np.full(GRAPH.n_tiers, 0.4)
        mixed_e.run_reference(alloc, RATES, 5.0)
        ref_e.run_reference(alloc, RATES, 5.0)
        assert any(t.queue for t in mixed_e.tiers)
        assert_summary_equal(
            mixed_e.run(alloc, RATES, 5.0),
            ref_e.run_reference(alloc, RATES, 5.0),
        )
        assert_state_equal(mixed_e, ref_e)


class TestP99SeriesRegression:
    """Satellite: the vectorized (searchsorted) per-second p99 series
    must equal the original O(seconds x completions) mask scan,
    including NaN for idle seconds."""

    def _oracle_series(self, engine, duration: float) -> np.ndarray:
        lat = engine.latencies
        times = np.array([t for t, _ in lat])
        values = np.array([v for _, v in lat]) * 1000.0
        start = engine.time - duration
        series = []
        for second in range(int(duration)):
            mask = (times >= start + second) & (times < start + second + 1)
            series.append(
                float(np.percentile(values[mask], 99))
                if mask.any()
                else float("nan")
            )
        return np.array(series)

    @pytest.mark.parametrize("method", ["run", "run_reference"])
    def test_series_matches_mask_scan_with_idle_seconds(self, method):
        engine = EventDrivenEngine(GRAPH, EventEngineConfig(), seed=12)
        alloc = np.full(GRAPH.n_tiers, 2.0)
        sparse = np.array([2.0, 0.5])  # ~2.5 rps: plenty of idle seconds
        summary = getattr(engine, method)(alloc, sparse, 20.0)
        oracle = self._oracle_series(engine, 20.0)
        assert np.isnan(oracle).any()  # idle seconds actually occurred
        assert np.array_equal(
            summary["p99_series_ms"], oracle, equal_nan=True
        )

    def test_series_windowed_on_second_run(self):
        """Only this run's completions feed the series (lat_start
        windowing) — the vectorized bucketing must respect it."""
        engine = EventDrivenEngine(GRAPH, EventEngineConfig(), seed=14)
        alloc = np.full(GRAPH.n_tiers, 2.0)
        engine.run(alloc, RATES, 5.0)
        n_before = len(engine.latencies)
        summary = engine.run(alloc, np.array([2.0, 0.5]), 10.0)
        lat = engine.latencies[n_before:]
        times = np.array([t for t, _ in lat])
        values = np.array([v for _, v in lat]) * 1000.0
        start = engine.time - 10.0
        oracle = []
        for second in range(10):
            mask = (times >= start + second) & (times < start + second + 1)
            oracle.append(
                float(np.percentile(values[mask], 99))
                if mask.any()
                else float("nan")
            )
        assert np.array_equal(
            summary["p99_series_ms"], np.array(oracle), equal_nan=True
        )
