"""Fault-injection layer tests: schedules, corruption, determinism."""

import numpy as np
import pytest

from repro.sim.cluster import ClusterSimulator
from repro.sim.faults import (
    CORRUPTIBLE_CHANNELS,
    FAULT_PROFILES,
    FaultEvent,
    FaultInjector,
    FaultProfile,
    LoadStormSpec,
    ReplicaCrashSpec,
    StragglerSpec,
    TelemetryFaultSpec,
    resolve_profile,
)
from repro.workload.generator import RequestMix, Workload
from repro.workload.patterns import ConstantLoad
from tests.conftest import make_tiny_graph
from tests.sim.test_telemetry import make_stats


def make_fault_cluster(profile, users=150, seed=0, fault_seed=None):
    graph = make_tiny_graph()
    workload = Workload(
        graph, ConstantLoad(users), RequestMix.from_ratios({"Read": 9, "Write": 1})
    )
    injector = FaultInjector(
        profile, graph.n_tiers, seed=seed if fault_seed is None else fault_seed
    )
    return ClusterSimulator(graph, workload, seed=seed, faults=injector)


class TestProfiles:
    def test_resolve_by_name(self):
        profile = resolve_profile("crash-storm")
        assert profile.name == "crash-storm"
        assert resolve_profile(profile) is profile

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="crash-storm"):
            resolve_profile("nope")

    def test_builtin_profiles_well_formed(self):
        for name, profile in FAULT_PROFILES.items():
            assert profile.name == name
            assert profile.specs
            # Every profile must construct cleanly for any tier count.
            FaultInjector(profile, n_tiers=4, seed=1)

    def test_telemetry_probabilities_validated(self):
        with pytest.raises(ValueError):
            TelemetryFaultSpec(drop_prob=0.5, nan_prob=0.6)

    def test_spec_partition(self):
        profile = FAULT_PROFILES["chaos"]
        assert isinstance(profile.telemetry_spec, TelemetryFaultSpec)
        kinds = {type(s) for s in profile.scheduled_specs}
        assert kinds == {ReplicaCrashSpec, StragglerSpec, LoadStormSpec}


class TestFaultEvent:
    def test_active_window(self):
        event = FaultEvent(kind="straggler", start=10.0, duration=5.0)
        assert not event.active(9.9)
        assert event.active(10.0)
        assert event.active(14.9)
        assert not event.active(15.0)

    def test_affects_physics(self):
        assert FaultEvent("replica_crash", 0, 1).affects_physics
        assert FaultEvent("load_storm", 0, 1).affects_physics
        assert not FaultEvent("telemetry_nan", 0, 1).affects_physics


class TestScheduling:
    def test_schedule_deterministic_across_resets(self):
        injector = FaultInjector("chaos", n_tiers=4, seed=7)
        first = list(injector.events)
        injector.reset()
        assert injector.events == first

    def test_same_seed_same_schedule_new_instance(self):
        a = FaultInjector("crash-storm", n_tiers=4, seed=3)
        b = FaultInjector("crash-storm", n_tiers=4, seed=3)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = FaultInjector("crash-storm", n_tiers=4, seed=0)
        b = FaultInjector("crash-storm", n_tiers=4, seed=1)
        assert a.events != b.events

    def test_events_sorted_and_within_horizon(self):
        injector = FaultInjector("chaos", n_tiers=4, seed=5, horizon_s=600.0)
        starts = [e.start for e in injector.events]
        assert starts == sorted(starts)
        assert all(0.0 <= s < 600.0 for s in starts)

    def test_physics_events_until(self):
        injector = FaultInjector("crash-storm", n_tiers=4, seed=2)
        all_events = injector.physics_events()
        early = injector.physics_events(until=100.0)
        assert all(e.start < 100.0 for e in early)
        assert len(early) <= len(all_events)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector("crash-storm", n_tiers=0)
        with pytest.raises(ValueError):
            FaultInjector("crash-storm", n_tiers=4, horizon_s=0.0)


class TestPhysicsHooks:
    def test_crash_shrinks_replica_multiplier(self):
        injector = FaultInjector("crash-storm", n_tiers=4, seed=0)
        injector.events = [
            FaultEvent("replica_crash", start=5.0, duration=10.0,
                       tier=2, magnitude=0.5)
        ]
        assert injector.replica_multiplier(0.0, 4) is None
        mult = injector.replica_multiplier(6.0, 4)
        np.testing.assert_allclose(mult, [1.0, 1.0, 0.5, 1.0])

    def test_straggler_shrinks_capacity(self):
        injector = FaultInjector("stragglers", n_tiers=4, seed=0)
        injector.events = [
            FaultEvent("straggler", start=0.0, duration=10.0,
                       tier=1, magnitude=0.3)
        ]
        mult = injector.capacity_multiplier(1.0, 4)
        np.testing.assert_allclose(mult, [1.0, 0.3, 1.0, 1.0])

    def test_load_storm_multiplies(self):
        injector = FaultInjector("load-storm", n_tiers=4, seed=0)
        injector.events = [
            FaultEvent("load_storm", start=0.0, duration=10.0, magnitude=2.0)
        ]
        assert injector.load_multiplier(5.0) == pytest.approx(2.0)
        assert injector.load_multiplier(50.0) == pytest.approx(1.0)

    def test_crash_degrades_engine_latency(self):
        """Losing most replicas of every tier must hurt tail latency."""
        def run(profile):
            cluster = make_fault_cluster(profile, users=220, seed=0)
            log = cluster.run(30)
            return np.median(log.p99_series()[10:])

        crash_all = FaultProfile(
            name="crash-test",
            description="test",
            specs=(),
        )
        baseline = run(crash_all)
        injector_profile = FaultProfile(
            name="crash-test",
            description="test",
            specs=(ReplicaCrashSpec(rate_per_min=0.0),),
        )
        cluster = make_fault_cluster(injector_profile, users=220, seed=0)
        cluster.faults.events = [
            FaultEvent("replica_crash", start=5.0, duration=60.0,
                       tier=t, magnitude=0.95)
            for t in range(4)
        ]
        degraded = np.median(cluster.run(30).p99_series()[10:])
        assert degraded > baseline * 3.0


class TestTelemetryCorruption:
    def _spec_injector(self, **probs):
        profile = FaultProfile(
            name="t", description="test",
            specs=(TelemetryFaultSpec(**probs),),
        )
        return FaultInjector(profile, n_tiers=3, seed=0)

    def test_drop_returns_none_and_counts(self):
        injector = self._spec_injector(drop_prob=1.0)
        assert injector.observe(make_stats()) is None
        assert injector.dropped_intervals == 1
        assert injector.corrupted_intervals == 0

    def test_nan_corruption_hits_channels_not_truth(self):
        injector = self._spec_injector(nan_prob=1.0, channel_frac=1.0)
        truth = make_stats()
        observed = injector.observe(truth)
        for name in CORRUPTIBLE_CHANNELS:
            assert np.isnan(getattr(observed, name)).all()
            assert np.isfinite(getattr(truth, name)).all()
        # cpu_alloc is the manager's own knob — never corrupted.
        np.testing.assert_allclose(observed.cpu_alloc, truth.cpu_alloc)
        assert injector.corrupted_intervals == 1

    def test_stale_repeats_previous_observation(self):
        injector = self._spec_injector(stale_prob=1.0)
        first = make_stats(time=1.0, p99=100.0)
        injector._last_observed = first
        observed = injector.observe(make_stats(time=2.0, p99=300.0))
        assert observed.time == 2.0
        np.testing.assert_allclose(observed.latency_ms, first.latency_ms)

    def test_reset_zeroes_counters(self):
        injector = self._spec_injector(reset_prob=1.0)
        observed = injector.observe(make_stats())
        assert np.all(observed.cpu_util == 0.0)
        assert np.all(observed.rx_pps == 0.0)
        assert np.all(observed.tx_pps == 0.0)
        # Memory footprints persist through a counter reset.
        assert np.all(observed.rss_mb > 0.0)

    def test_clean_profile_passes_through(self):
        injector = FaultInjector("crash-storm", n_tiers=3, seed=0)
        stats = make_stats()
        assert injector.observe(stats) is stats

    def test_telemetry_events_recorded(self):
        injector = self._spec_injector(drop_prob=0.5, nan_prob=0.5)
        for i in range(20):
            injector.observe(make_stats(time=float(i)))
        kinds = {e.kind for e in injector.telemetry_events}
        assert kinds <= {"telemetry_drop", "telemetry_nan"}
        assert len(injector.telemetry_events) == 20


class TestClusterIntegration:
    def test_observed_log_diverges_from_truth(self):
        cluster = make_fault_cluster("telemetry-dropout", seed=0)
        cluster.run(40)
        assert len(cluster.telemetry) == 40
        assert len(cluster.observed) == 40 - cluster.faults.dropped_intervals
        assert cluster.faults.dropped_intervals > 0
        assert cluster.faults.corrupted_intervals > 0
        # Ground truth never carries the injected NaNs.
        for stats in cluster.telemetry:
            assert np.isfinite(stats.cpu_util).all()

    def test_no_faults_shares_one_log(self):
        graph = make_tiny_graph()
        workload = Workload(
            graph, ConstantLoad(100),
            RequestMix.from_ratios({"Read": 9, "Write": 1}),
        )
        cluster = ClusterSimulator(graph, workload, seed=0)
        cluster.run(3)
        assert cluster.observed is cluster.telemetry

    def test_tier_count_mismatch_rejected(self):
        graph = make_tiny_graph()
        workload = Workload(
            graph, ConstantLoad(100),
            RequestMix.from_ratios({"Read": 9, "Write": 1}),
        )
        injector = FaultInjector("crash-storm", n_tiers=7)
        with pytest.raises(ValueError, match="tiers"):
            ClusterSimulator(graph, workload, faults=injector)

    def test_reset_restores_schedule_and_logs(self):
        cluster = make_fault_cluster("chaos", seed=4)
        events = list(cluster.faults.events)
        first = cluster.run(25).p99_series()
        first_observed = len(cluster.observed)
        cluster.reset(seed=4)  # re-seed the engine for a replay
        assert cluster.faults.events == events
        assert len(cluster.telemetry) == 0
        assert cluster.faults.dropped_intervals == 0
        second = cluster.run(25).p99_series()
        np.testing.assert_allclose(second, first)
        assert len(cluster.observed) == first_observed

    def test_identical_runs_bit_identical(self):
        a = make_fault_cluster("chaos", seed=9)
        b = make_fault_cluster("chaos", seed=9)
        pa = a.run(25).p99_series()
        pb = b.run(25).p99_series()
        np.testing.assert_array_equal(pa, pb)
        assert a.faults.dropped_intervals == b.faults.dropped_intervals
