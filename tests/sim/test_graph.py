"""Unit tests for the application graph."""

import numpy as np
import pytest

from repro.sim.graph import AppGraph, RequestType
from repro.sim.tier import TierKind, TierSpec


def two_tiers():
    return [TierSpec("a", kind=TierKind.FRONTEND), TierSpec("b", kind=TierKind.DB)]


class TestRequestType:
    def test_requires_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            RequestType("r", stages=())

    def test_rejects_empty_stage(self):
        with pytest.raises(ValueError, match="empty stage"):
            RequestType("r", stages=((),))

    def test_tiers_deduplicated_in_order(self):
        r = RequestType("r", stages=(("a",), ("b", "a"), ("c",)))
        assert r.tiers == ("a", "b", "c")

    def test_visits_counts_appearances_times_work(self):
        r = RequestType("r", stages=(("a",), ("a", "b")), work={"a": 2.0})
        assert r.visits("a") == pytest.approx(4.0)
        assert r.visits("b") == pytest.approx(1.0)
        assert r.visits("missing") == pytest.approx(0.0)


class TestAppGraphValidation:
    def test_rejects_duplicate_tier_names(self):
        tiers = [TierSpec("a"), TierSpec("a")]
        with pytest.raises(ValueError, match="duplicate"):
            AppGraph("app", tiers, [], [RequestType("r", (("a",),))])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(ValueError, match="not a tier"):
            AppGraph("app", two_tiers(), [("a", "zz")], [RequestType("r", (("a",),))])

    def test_rejects_unknown_request_tier(self):
        with pytest.raises(ValueError, match="unknown tier"):
            AppGraph("app", two_tiers(), [], [RequestType("r", (("zz",),))])

    def test_rejects_cyclic_call_graph(self):
        with pytest.raises(ValueError, match="acyclic"):
            AppGraph(
                "app",
                two_tiers(),
                [("a", "b"), ("b", "a")],
                [RequestType("r", (("a",),))],
            )

    def test_rejects_empty_tiers(self):
        with pytest.raises(ValueError, match="at least one tier"):
            AppGraph("app", [], [], [])

    def test_rejects_duplicate_request_types(self):
        reqs = [RequestType("r", (("a",),)), RequestType("r", (("b",),))]
        with pytest.raises(ValueError, match="duplicate request type"):
            AppGraph("app", two_tiers(), [], reqs)


class TestAppGraphStructure:
    def test_visit_matrix(self, tiny_graph):
        read = tiny_graph.type_names.index("Read")
        db = tiny_graph.index["db"]
        logic = tiny_graph.index["logic"]
        assert tiny_graph.visit_matrix[read, db] == pytest.approx(0.3)
        assert tiny_graph.visit_matrix[read, logic] == pytest.approx(1.0)

    def test_reverse_topo_children_first(self, tiny_graph):
        order = list(tiny_graph.reverse_topo_order)
        for idx in range(tiny_graph.n_tiers):
            for child in tiny_graph.children[idx]:
                assert order.index(int(child)) < order.index(idx)

    def test_alloc_bounds_vectors(self, tiny_graph):
        assert tiny_graph.min_alloc().shape == (4,)
        assert np.all(tiny_graph.min_alloc() <= tiny_graph.max_alloc())

    def test_request_type_lookup(self, tiny_graph):
        assert tiny_graph.request_type("Read").name == "Read"
        with pytest.raises(KeyError):
            tiny_graph.request_type("nope")

    def test_map_tiers_keeps_topology(self, tiny_graph):
        scaled = tiny_graph.map_tiers(lambda t: t.scaled(cpu_scale=2.0))
        assert scaled.tier_names == tiny_graph.tier_names
        assert scaled.tiers[0].cpu_per_req == pytest.approx(
            2.0 * tiny_graph.tiers[0].cpu_per_req
        )
        assert set(scaled.digraph.edges) == set(tiny_graph.digraph.edges)

    def test_with_tiers_rejects_reordered_names(self, tiny_graph):
        reordered = list(reversed(tiny_graph.tiers))
        with pytest.raises(ValueError, match="names and order"):
            tiny_graph.with_tiers(reordered)

    def test_stage_indices_align_with_stages(self, tiny_graph):
        read = tiny_graph.type_names.index("Read")
        stages = tiny_graph.stage_indices[read]
        assert [list(s) for s in stages] == [
            [tiny_graph.index["front"]],
            [tiny_graph.index["logic"]],
            [tiny_graph.index["cache"], tiny_graph.index["db"]],
        ]
