"""Discrete-event engine tests, including cross-validation against the
fluid engine."""

import numpy as np
import pytest

from repro.sim.engine import EngineConfig, QueueingEngine
from repro.sim.event_engine import EventDrivenEngine, EventEngineConfig
from tests.conftest import make_tiny_graph

GRAPH = make_tiny_graph()
RATES = np.array([120.0, 12.0])


def run_event(alloc, rates=RATES, duration=20.0, seed=0, **cfg):
    engine = EventDrivenEngine(GRAPH, EventEngineConfig(**cfg), seed=seed)
    return engine.run(np.asarray(alloc, dtype=float), rates, duration)


class TestBasics:
    def test_summary_shapes(self):
        result = run_event(np.full(4, 4.0))
        assert result["latency_ms"].shape == (5,)
        assert len(result["p99_series_ms"]) == 20
        assert result["n_requests"] > 0
        assert result["cpu_util"].shape == (4,)

    def test_percentiles_sorted(self):
        result = run_event(np.full(4, 4.0))
        assert np.all(np.diff(result["latency_ms"]) >= -1e-9)

    def test_zero_load(self):
        result = run_event(np.full(4, 2.0), rates=np.zeros(2), duration=5.0)
        assert result["n_requests"] == 0
        assert result["dropped"] == 0

    def test_input_validation(self):
        engine = EventDrivenEngine(GRAPH)
        with pytest.raises(ValueError):
            engine.run(np.ones(2), RATES, 5.0)
        with pytest.raises(ValueError):
            engine.run(np.ones(4), np.ones(3), 5.0)

    def test_deterministic_by_seed(self):
        a = run_event(np.full(4, 3.0), seed=42)
        b = run_event(np.full(4, 3.0), seed=42)
        np.testing.assert_allclose(a["latency_ms"], b["latency_ms"])
        assert a["n_requests"] == b["n_requests"]


class TestAccounting:
    """Regression tests for busy-time and summary windowing."""

    def test_busy_tail_counted_up_to_horizon(self):
        # A server busy across the whole horizon with no events in between
        # must accrue its full busy time: with zero offered load the event
        # loop never runs, so only the final (horizon - last_t) segment
        # can account for it.  Before the fix this reported 0 utilization.
        engine = EventDrivenEngine(GRAPH, EventEngineConfig(), seed=0)
        engine.tiers[0].busy = 1  # in-flight request carried into the run
        result = engine.run(np.full(4, 1.0), np.zeros(2), 5.0)
        assert result["cpu_util"][0] == pytest.approx(1.0)
        assert np.all(result["cpu_util"][1:] == 0.0)

    def test_successive_runs_report_per_run_requests(self):
        engine = EventDrivenEngine(GRAPH, EventEngineConfig(), seed=5)
        alloc = np.full(4, 3.0)
        r1 = engine.run(alloc, RATES, 10.0)
        r2 = engine.run(alloc, RATES, 10.0)
        assert r1["n_requests"] > 0 and r2["n_requests"] > 0
        # The engine keeps pooled cross-run state, but each summary is
        # windowed to its own run's completions.
        assert len(engine.latencies) == r1["n_requests"] + r2["n_requests"]
        assert len(r2["p99_series_ms"]) == 10

    def test_successive_runs_report_per_run_drops(self):
        engine = EventDrivenEngine(
            GRAPH, EventEngineConfig(max_queue=50), seed=6
        )
        overload = engine.run(
            np.full(4, 0.2), np.array([800.0, 80.0]), 10.0
        )
        assert overload["dropped"] > 0
        calm = engine.run(np.full(4, 6.0), np.array([5.0, 1.0]), 10.0)
        # The calm run's drop count must not inherit the overload run's.
        assert calm["dropped"] < overload["dropped"]
        assert engine.dropped >= overload["dropped"] + calm["dropped"]

    def test_second_run_percentiles_not_contaminated(self):
        # Run 1 books thousands of timeout latencies; a healthy run 2 must
        # not report them in its own percentiles.
        engine = EventDrivenEngine(
            GRAPH, EventEngineConfig(max_queue=50, drop_latency=5.0), seed=7
        )
        engine.run(np.full(4, 0.2), np.array([800.0, 80.0]), 10.0)
        # Drain: generous allocation, light load, long enough to clear the
        # carried-over queues before the windowed summary matters.
        engine.run(np.full(4, 8.0), np.array([1.0, 0.0]), 30.0)
        healthy = engine.run(np.full(4, 8.0), np.array([20.0, 2.0]), 20.0)
        assert healthy["p99_ms"] < 5000.0

    def test_idle_seconds_are_nan(self):
        result = run_event(np.full(4, 2.0), rates=np.zeros(2), duration=5.0)
        series = result["p99_series_ms"]
        assert len(series) == 5
        assert np.isnan(series).all()
        # The pooled percentile vector stays finite (zero placeholder).
        assert np.all(np.isfinite(result["latency_ms"]))


class TestPhysics:
    def test_more_cpu_lower_latency(self):
        lean = run_event(np.full(4, 0.5), seed=1)
        rich = run_event(np.full(4, 6.0), seed=1)
        assert rich["p99_ms"] < lean["p99_ms"]

    def test_overload_queues_and_drops(self):
        result = run_event(
            np.full(4, 0.3), rates=np.array([600.0, 60.0]), duration=15.0,
            max_queue=200,
        )
        assert result["dropped"] > 0
        assert result["p99_ms"] >= 1000.0

    def test_utilization_tracks_load(self):
        low = run_event(np.full(4, 4.0), rates=np.array([20.0, 2.0]), seed=2)
        high = run_event(np.full(4, 4.0), rates=np.array([300.0, 30.0]), seed=2)
        assert high["cpu_util"].sum() > low["cpu_util"].sum()

    def test_latency_capped_at_timeout(self):
        result = run_event(
            np.full(4, 0.2), rates=np.array([800.0, 80.0]), duration=10.0,
            max_queue=100, drop_latency=5.0,
        )
        assert result["latency_ms"].max() <= 5000.0 + 1e-6


class TestCrossValidation:
    """The fluid engine and the event engine must agree qualitatively."""

    # Operating points below and above the knee.  Deep heavy traffic
    # (rho ~ 0.9) is excluded: there the fluid model's capped stochastic
    # wait is deliberately optimistic versus true G/G/1 queue growth —
    # the fluid engine relies on its explicit-backlog term instead,
    # which the overload-verdict test below exercises.
    @pytest.mark.parametrize("alloc_level", [1.2, 2.0, 6.0])
    def test_latency_within_band(self, alloc_level):
        alloc = np.full(4, alloc_level)
        event = run_event(alloc, duration=30.0, seed=3)

        fluid_engine = QueueingEngine(
            GRAPH,
            EngineConfig(rate_cv=0.0, spike_prob=0.0, capacity_jitter=0.0),
            seed=3,
        )
        fluid_p99 = np.median(
            [fluid_engine.run_interval(alloc, RATES).p99_ms for _ in range(30)]
        )
        event_p99 = np.median(event["p99_series_ms"][event["p99_series_ms"] > 0])
        # Same order of magnitude across a 10x allocation range.
        ratio = fluid_p99 / max(event_p99, 1e-9)
        assert 0.2 < ratio < 5.0, (alloc_level, fluid_p99, event_p99)

    def test_same_overload_verdict(self):
        """Both engines agree on which allocation violates a 200 ms QoS."""
        verdicts = {}
        for name, alloc_level in (("starved", 0.25), ("healthy", 5.0)):
            alloc = np.full(4, alloc_level)
            event = run_event(
                alloc, rates=np.array([250.0, 25.0]), duration=25.0, seed=4
            )
            fluid_engine = QueueingEngine(
                GRAPH,
                EngineConfig(rate_cv=0.0, spike_prob=0.0, capacity_jitter=0.0),
                seed=4,
            )
            fluid = [
                fluid_engine.run_interval(alloc, np.array([250.0, 25.0])).p99_ms
                for _ in range(25)
            ]
            verdicts[name] = (
                bool(np.nanmedian(event["p99_series_ms"][-10:]) > 200.0),
                np.median(fluid[-10:]) > 200.0,
            )
        assert verdicts["starved"] == (True, True)
        assert verdicts["healthy"] == (False, False)
