"""Telemetry container tests."""

import numpy as np
import pytest

from repro.sim.telemetry import (
    LATENCY_PERCENTILES,
    RESOURCE_CHANNELS,
    IntervalStats,
    TelemetryLog,
)


def make_stats(time=1.0, p99=100.0, alloc=2.0, n=3):
    latency = np.linspace(p99 * 0.8, p99, len(LATENCY_PERCENTILES))
    return IntervalStats(
        time=time,
        rps=50.0,
        rps_by_type={"r": 50.0},
        cpu_alloc=np.full(n, alloc),
        cpu_util=np.full(n, 0.5),
        rss_mb=np.full(n, 100.0),
        cache_mb=np.full(n, 50.0),
        rx_pps=np.full(n, 10.0),
        tx_pps=np.full(n, 10.0),
        queue=np.zeros(n),
        latency_ms=latency,
    )


class TestIntervalStats:
    def test_p99_is_last_percentile(self):
        stats = make_stats(p99=123.0)
        assert stats.p99_ms == pytest.approx(123.0)
        assert LATENCY_PERCENTILES[-1] == 99

    def test_total_cpu(self):
        assert make_stats(alloc=2.0, n=4).total_cpu == pytest.approx(8.0)

    def test_resource_matrix_layout(self):
        stats = make_stats(n=3)
        matrix = stats.resource_matrix()
        assert matrix.shape == (len(RESOURCE_CHANNELS), 3)
        np.testing.assert_allclose(matrix[0], stats.cpu_util)
        np.testing.assert_allclose(matrix[1], stats.cpu_alloc)


class TestTelemetryLog:
    def test_empty_log_raises(self):
        log = TelemetryLog()
        with pytest.raises(IndexError):
            _ = log.latest
        with pytest.raises(IndexError):
            log.window(3)

    def test_window_rejects_nonpositive_length(self):
        """Regression: length <= 0 used to silently return the whole log
        (Python's ``list[-0:]``), handing the encoder a wrong-size
        window."""
        log = TelemetryLog()
        log.append(make_stats())
        for length in (0, -1, -5):
            with pytest.raises(ValueError, match="window length"):
                log.window(length)

    def test_window_pads_with_oldest(self):
        log = TelemetryLog()
        log.append(make_stats(time=1.0, p99=10.0))
        log.append(make_stats(time=2.0, p99=20.0))
        window = log.window(5)
        assert len(window) == 5
        assert [w.p99_ms for w in window] == [10.0, 10.0, 10.0, 10.0, 20.0]

    def test_window_takes_tail(self):
        log = TelemetryLog()
        for i in range(10):
            log.append(make_stats(time=i, p99=float(i)))
        window = log.window(3)
        assert [w.p99_ms for w in window] == [7.0, 8.0, 9.0]

    def test_series_helpers(self):
        log = TelemetryLog()
        for i in range(4):
            log.append(make_stats(time=i, p99=100.0 * (i + 1), alloc=i + 1))
        np.testing.assert_allclose(log.p99_series(), [100, 200, 300, 400])
        assert log.total_cpu_series()[0] == pytest.approx(3.0)
        assert log.latency_matrix().shape == (4, len(LATENCY_PERCENTILES))
        assert log.alloc_matrix().shape == (4, 3)
        assert len(log.rps_series()) == 4

    def test_qos_meet_fraction(self):
        log = TelemetryLog()
        for p99 in (100.0, 200.0, 300.0, 400.0):
            log.append(make_stats(p99=p99))
        assert log.qos_meet_fraction(250.0) == pytest.approx(0.5)
        assert TelemetryLog().qos_meet_fraction(100.0) == 1.0

    def test_iteration_and_indexing(self):
        log = TelemetryLog()
        log.append(make_stats(p99=1.0))
        log.append(make_stats(p99=2.0))
        assert len(log) == 2
        assert log[0].p99_ms == 1.0
        assert [s.p99_ms for s in log] == [1.0, 2.0]
        assert log.latest.p99_ms == 2.0
