"""Bitwise equivalence of the batched-tick fast interval path.

The fast path (`EngineConfig.fast_sim`, default on) must be
indistinguishable from the per-tick reference loop
(:meth:`QueueingEngine.run_interval_reference`): every
:class:`IntervalStats` field, the engine's internal state vectors, and
the RNG stream itself are compared bitwise across normal, bursty,
overload, and chaos-fault episodes — serial and under the process-pool
harness — with the compiled kernel and with the pure-numpy fallback
(``REPRO_SIM_PURE_NUMPY=1``).
"""

import dataclasses

import numpy as np
import pytest

from repro.sim.cluster import ClusterSimulator
from repro.sim.engine import EngineConfig, QueueingEngine
from repro.sim.faults import FaultInjector
from repro.workload.generator import RequestMix, Workload
from repro.workload.patterns import ConstantLoad
from tests.conftest import make_tiny_graph

_STAT_FIELDS = (
    "time", "rps", "cpu_alloc", "cpu_util", "rss_mb", "cache_mb",
    "rx_pps", "tx_pps", "queue", "latency_ms", "drops",
    "latency_samples_ms",
)
_STATE_ATTRS = ("queue", "_busy_ewma", "_busy_frac", "_demand", "_sojourn")


def assert_stats_equal(a, b, context=""):
    for name in _STAT_FIELDS:
        va, vb = np.asarray(getattr(a, name)), np.asarray(getattr(b, name))
        assert np.array_equal(va, vb), f"{context} field {name}: {va} != {vb}"
    assert a.rps_by_type == b.rps_by_type, context


def assert_engines_equal(fast, ref, context=""):
    for attr in _STATE_ATTRS:
        assert np.array_equal(getattr(fast, attr), getattr(ref, attr)), (
            f"{context} state {attr}"
        )
    assert fast.time == ref.time, context
    assert (
        fast._rng.bit_generator.state == ref._rng.bit_generator.state
    ), f"{context} RNG state diverged"


def _engine_pair(overrides, seed=7):
    graph = make_tiny_graph()
    cfg = EngineConfig(**overrides)
    fast = QueueingEngine(
        graph, dataclasses.replace(cfg, fast_sim=True), seed=seed
    )
    ref = QueueingEngine(
        graph, dataclasses.replace(cfg, fast_sim=False), seed=seed
    )
    return graph, fast, ref


def _drive(graph, fast, ref, intervals=25, rps=140.0, use_reference_api=False):
    n = graph.n_tiers
    base = np.full(n, 2.0)
    rates = np.full(graph.n_types, rps / graph.n_types)
    phase = np.arange(n)
    total_drops = 0.0
    for i in range(intervals):
        allocs = base * (1.0 + 0.1 * np.sin(i + phase))
        tr = rates * (1.0 + 0.2 * np.sin(i / 3.0))
        sf = fast.run_interval(allocs, tr)
        sr = (
            ref.run_interval_reference(allocs, tr)
            if use_reference_api
            else ref.run_interval(allocs, tr)
        )
        assert_stats_equal(sf, sr, f"interval {i}")
        total_drops += sr.drops
    assert_engines_equal(fast, ref)
    return total_drops


SCENARIOS = {
    "normal": {},
    "bursty": {"spike_prob": 0.5, "spike_mult_range": (2.0, 3.0)},
    "no-jitter": {"capacity_jitter": 0.0},
    "no-backpressure": {"backpressure": False},
    "fine-tick": {"tick": 0.05},
}


class TestEngineEquivalence:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_bitwise_identical_episode(self, scenario):
        graph, fast, ref = _engine_pair(SCENARIOS[scenario])
        _drive(graph, fast, ref)

    def test_overload_with_drops(self):
        # The drop branch flips extra RNG draws (per-type coin flips), so
        # a drops-free run would silently skip it; assert it triggered.
        graph, fast, ref = _engine_pair({"max_queue": 40.0})
        drops = _drive(graph, fast, ref, rps=900.0)
        assert drops > 0

    def test_reference_api_is_the_oracle(self):
        # run_interval_reference forces the per-tick loop even on a
        # fast_sim engine; a fast engine against it must still agree.
        graph, fast, ref = _engine_pair({})
        ref.config = dataclasses.replace(ref.config, fast_sim=True)
        _drive(graph, fast, ref, intervals=10, use_reference_api=True)

    def test_pure_numpy_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_PURE_NUMPY", "1")
        graph, fast, ref = _engine_pair({"max_queue": 60.0})
        _drive(graph, fast, ref, rps=500.0)
        assert fast._fast_plan is not None
        assert fast._fast_plan.clib is None

    def test_kernel_used_when_available(self):
        pytest.importorskip("cffi")
        import shutil

        if not any(shutil.which(cc) for cc in ("cc", "gcc", "clang")):
            pytest.skip("no C compiler")
        graph, fast, ref = _engine_pair({})
        _drive(graph, fast, ref, intervals=5)
        assert fast._fast_plan.clib is not None


class TestReset:
    def test_engine_reset_reproduces_fresh_engine(self):
        graph = make_tiny_graph()
        cfg = EngineConfig()
        allocs = np.full(graph.n_tiers, 2.0)
        rates = np.full(graph.n_types, 70.0)
        engine = QueueingEngine(graph, cfg, seed=1)
        for _ in range(10):
            engine.run_interval(allocs, rates)
        engine.reset(seed=5)
        fresh = QueueingEngine(graph, cfg, seed=5)
        for i in range(10):
            assert_stats_equal(
                engine.run_interval(allocs, rates),
                fresh.run_interval(allocs, rates),
                f"post-reset interval {i}",
            )
        assert_engines_equal(engine, fresh)

    def _make_cluster(self, seed, faults):
        graph = make_tiny_graph()
        mix = RequestMix.from_ratios({"Read": 9, "Write": 1})
        workload = Workload(graph, ConstantLoad(120), mix)
        injector = (
            FaultInjector("chaos", graph.n_tiers, seed=3) if faults else None
        )
        return ClusterSimulator(graph, workload, seed=seed, faults=injector)

    @pytest.mark.parametrize("faults", [False, True])
    def test_cluster_reset_mid_episode(self, faults):
        cluster = self._make_cluster(seed=1, faults=faults)
        for _ in range(8):
            cluster.step()
        cluster.reset(seed=5)
        fresh = self._make_cluster(seed=5, faults=faults)
        for i in range(8):
            assert_stats_equal(
                cluster.step(), fresh.step(), f"post-reset interval {i}"
            )
        assert_engines_equal(cluster.engine, fresh.engine)


class TestClusterEquivalence:
    def _cluster(self, fast_sim, faults=False):
        graph = make_tiny_graph()
        mix = RequestMix.from_ratios({"Read": 9, "Write": 1})
        workload = Workload(graph, ConstantLoad(150), mix)
        injector = (
            FaultInjector("chaos", graph.n_tiers, seed=11) if faults else None
        )
        return ClusterSimulator(
            graph, workload, seed=4, faults=injector, fast_sim=fast_sim
        )

    @pytest.mark.parametrize("faults", [False, True])
    def test_cluster_fast_vs_reference(self, faults):
        fast = self._cluster(True, faults)
        ref = self._cluster(False, faults)
        assert fast.engine.config.fast_sim is True
        assert ref.engine.config.fast_sim is False
        for i in range(20):
            assert_stats_equal(fast.step(), ref.step(), f"interval {i}")
        assert_engines_equal(fast.engine, ref.engine)
        if faults:
            # The chaos profile installs physics behaviors; make sure the
            # behavior-multiplier path of the fast loop actually ran.
            assert fast.engine.behaviors


def _episode_digest(seed: int, fast_sim: bool) -> np.ndarray:
    """Picklable episode for the process-pool determinism check."""
    graph = make_tiny_graph()
    engine = QueueingEngine(
        graph, EngineConfig(fast_sim=fast_sim, max_queue=200.0), seed=seed
    )
    allocs = np.full(graph.n_tiers, 1.5)
    rates = np.full(graph.n_types, 120.0)
    samples = [
        engine.run_interval(allocs, rates).latency_samples_ms
        for _ in range(12)
    ]
    return np.concatenate(samples)


class TestParallelHarness:
    def test_serial_vs_jobs(self):
        from repro.harness.parallel import EpisodeTask, run_episodes

        def tasks(fast_sim):
            return [
                EpisodeTask(
                    index=i,
                    label=f"ep{i}",
                    fn=_episode_digest,
                    kwargs={"seed": 100 + i, "fast_sim": fast_sim},
                )
                for i in range(4)
            ]

        serial = run_episodes(tasks(True), jobs=1)
        pooled = run_episodes(tasks(True), jobs=2)
        reference = run_episodes(tasks(False), jobs=1)
        assert not serial.failures and not pooled.failures
        assert not reference.failures
        for a, b, c in zip(serial.results, pooled.results, reference.results):
            assert np.array_equal(a, b)  # fork-safe and deterministic
            assert np.array_equal(a, c)  # and identical to the reference


class TestTelemetryWindow:
    def test_window_left_padding_under_fast_sim(self):
        """Early intervals (< window length) left-pad with the oldest
        stats; the encoder's incremental cache must agree bitwise with a
        fresh encode at every step, fast sim on."""
        from repro.core.features import WindowEncoder

        graph = make_tiny_graph()
        mix = RequestMix.from_ratios({"Read": 9, "Write": 1})
        workload = Workload(graph, ConstantLoad(120), mix)
        cluster = ClusterSimulator(graph, workload, seed=2, fast_sim=True)
        window = 5
        encoder = WindowEncoder(graph, window)
        rng = np.random.default_rng(0)
        for step in range(window + 4):
            cluster.step(cluster.clip_alloc(
                cluster.current_alloc
                + rng.uniform(-0.2, 0.2, cluster.n_tiers)
            ))
            recent = cluster.telemetry.window(window)
            assert len(recent) == window  # left-padded before `window` steps
            if step < window - 1:
                assert recent[0] is recent[1]  # padding repeats the oldest
            cached = encoder.encode_history(cluster.telemetry)
            fresh = WindowEncoder(graph, window).encode_history(
                cluster.telemetry
            )
            assert np.array_equal(cached[0], fresh[0])
            assert np.array_equal(cached[1], fresh[1])
