"""Engine tests: queueing physics, telemetry, determinism."""

import numpy as np
import pytest

from repro.sim.engine import EngineConfig, QueueingEngine
from repro.sim.telemetry import LATENCY_PERCENTILES


def quiet_config(**overrides):
    """Engine config without exogenous load variability (pure physics)."""
    defaults = dict(rate_cv=0.0, spike_prob=0.0, capacity_jitter=0.0)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def make_engine(graph, seed=0, **cfg):
    return QueueingEngine(graph, quiet_config(**cfg), seed=seed)


def generous(graph):
    return graph.max_alloc()


class TestIntervalBasics:
    def test_stats_shapes(self, tiny_graph):
        eng = make_engine(tiny_graph)
        stats = eng.run_interval(generous(tiny_graph), np.array([50.0, 5.0]))
        n = tiny_graph.n_tiers
        assert stats.cpu_util.shape == (n,)
        assert stats.latency_ms.shape == (len(LATENCY_PERCENTILES),)
        assert stats.rx_pps.shape == (n,)
        assert stats.time == pytest.approx(1.0)
        assert stats.rps > 0

    def test_latency_percentiles_monotonic(self, tiny_graph):
        eng = make_engine(tiny_graph)
        stats = eng.run_interval(generous(tiny_graph), np.array([80.0, 8.0]))
        assert np.all(np.diff(stats.latency_ms) >= 0)

    def test_rejects_bad_alloc_shape(self, tiny_graph):
        eng = make_engine(tiny_graph)
        with pytest.raises(ValueError, match="shape"):
            eng.run_interval(np.ones(2), np.array([1.0, 1.0]))

    def test_rejects_nonpositive_alloc(self, tiny_graph):
        eng = make_engine(tiny_graph)
        alloc = generous(tiny_graph)
        alloc[0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            eng.run_interval(alloc, np.array([1.0, 1.0]))

    def test_rejects_bad_rates_shape(self, tiny_graph):
        eng = make_engine(tiny_graph)
        with pytest.raises(ValueError, match="type_rates"):
            eng.run_interval(generous(tiny_graph), np.array([1.0]))

    def test_zero_load_is_quiet(self, tiny_graph):
        eng = make_engine(tiny_graph)
        stats = eng.run_interval(generous(tiny_graph), np.zeros(2))
        assert stats.rps == 0
        assert stats.drops == 0
        assert np.all(stats.queue == 0)

    def test_determinism_by_seed(self, tiny_graph):
        a = make_engine(tiny_graph, seed=7)
        b = make_engine(tiny_graph, seed=7)
        rates = np.array([60.0, 6.0])
        sa = a.run_interval(generous(tiny_graph), rates)
        sb = b.run_interval(generous(tiny_graph), rates)
        np.testing.assert_allclose(sa.latency_ms, sb.latency_ms)
        np.testing.assert_allclose(sa.cpu_util, sb.cpu_util)

    def test_different_seeds_differ(self, tiny_graph):
        a = make_engine(tiny_graph, seed=1)
        b = make_engine(tiny_graph, seed=2)
        rates = np.array([60.0, 6.0])
        sa = a.run_interval(generous(tiny_graph), rates)
        sb = b.run_interval(generous(tiny_graph), rates)
        assert not np.allclose(sa.latency_ms, sb.latency_ms)


class TestQueueingPhysics:
    def test_overload_builds_queue_and_latency(self, tiny_graph):
        eng = make_engine(tiny_graph)
        starved = np.full(tiny_graph.n_tiers, 0.2)
        rates = np.array([400.0, 40.0])
        first = eng.run_interval(starved, rates)
        later = None
        for _ in range(5):
            later = eng.run_interval(starved, rates)
        assert later.queue.sum() > first.queue.sum()
        assert later.p99_ms > 500

    def test_delayed_queueing_effect(self, tiny_graph):
        """Paper Figure 3: after overload, latency stays high for a while
        even after resources are restored, then recovers."""
        eng = make_engine(tiny_graph)
        rates = np.array([300.0, 30.0])
        for _ in range(8):
            eng.run_interval(np.full(tiny_graph.n_tiers, 0.2), rates)
        recovered = [
            eng.run_interval(generous(tiny_graph), rates) for _ in range(30)
        ]
        # Latency right after upscaling is still elevated (queue drain)...
        assert recovered[0].p99_ms > 200
        # ...but eventually recovers to a low level.
        assert recovered[-1].p99_ms < 200
        assert recovered[-1].queue.sum() < recovered[0].queue.sum()

    def test_queue_cap_drops_requests(self, tiny_graph):
        eng = make_engine(tiny_graph, max_queue=50.0)
        starved = np.full(tiny_graph.n_tiers, 0.2)
        total_drops = 0.0
        for _ in range(5):
            stats = eng.run_interval(starved, np.array([500.0, 50.0]))
            total_drops += stats.drops
        assert total_drops > 0
        assert np.all(eng.queue <= 50.0 + 1e-6)

    def test_dropped_latency_capped_at_timeout(self, tiny_graph):
        eng = make_engine(tiny_graph, max_queue=50.0, drop_latency=5.0)
        starved = np.full(tiny_graph.n_tiers, 0.2)
        for _ in range(5):
            stats = eng.run_interval(starved, np.array([500.0, 50.0]))
        assert stats.p99_ms <= 5000.0 + 1e-6

    def test_more_cpu_means_lower_latency_under_load(self, tiny_graph):
        rates = np.array([300.0, 30.0])
        lean = make_engine(tiny_graph, seed=3)
        rich = make_engine(tiny_graph, seed=3)
        lean_alloc = np.full(tiny_graph.n_tiers, 1.2)
        rich_alloc = generous(tiny_graph)
        lean_p99 = np.mean(
            [lean.run_interval(lean_alloc, rates).p99_ms for _ in range(10)]
        )
        rich_p99 = np.mean(
            [rich.run_interval(rich_alloc, rates).p99_ms for _ in range(10)]
        )
        assert rich_p99 < lean_p99

    def test_backpressure_starves_upstream(self, tiny_graph):
        """A starved downstream tier (db) inflates the upstream queue."""
        with_bp = make_engine(tiny_graph, seed=5)
        without_bp = make_engine(tiny_graph, seed=5, backpressure=False)
        alloc = generous(tiny_graph)
        alloc[tiny_graph.index["db"]] = 0.2
        rates = np.array([250.0, 100.0])
        for _ in range(8):
            s_bp = with_bp.run_interval(alloc, rates)
            s_nobp = without_bp.run_interval(alloc, rates)
        front = tiny_graph.index["front"]
        logic = tiny_graph.index["logic"]
        upstream_bp = s_bp.queue[front] + s_bp.queue[logic]
        upstream_nobp = s_nobp.queue[front] + s_nobp.queue[logic]
        assert upstream_bp > upstream_nobp

    def test_utilization_reflects_load(self, tiny_graph):
        eng = make_engine(tiny_graph)
        alloc = generous(tiny_graph)
        low = eng.run_interval(alloc, np.array([10.0, 1.0]))
        eng.reset()
        high = eng.run_interval(alloc, np.array([400.0, 40.0]))
        assert high.cpu_util.sum() > low.cpu_util.sum()

    def test_reset_clears_state(self, tiny_graph):
        eng = make_engine(tiny_graph)
        starved = np.full(tiny_graph.n_tiers, 0.2)
        for _ in range(5):
            eng.run_interval(starved, np.array([400.0, 40.0]))
        assert eng.queue.sum() > 0
        eng.reset(seed=1)
        assert eng.queue.sum() == 0
        assert eng.time == 0.0


class TestBursts:
    def test_burst_modulation_raises_offered_load(self, tiny_graph):
        cfg = EngineConfig(
            rate_cv=0.0, capacity_jitter=0.0,
            spike_prob=1.0, spike_mult_range=(2.0, 2.0),
            spike_duration_range=(10.0, 10.0),
        )
        eng = QueueingEngine(tiny_graph, cfg, seed=0)
        rates = np.array([100.0, 0.0])
        # Mid-burst intervals should carry noticeably more than 100 rps.
        rps = [eng.run_interval(generous(tiny_graph), rates).rps for _ in range(10)]
        assert max(rps) > 130

    def test_no_bursts_when_disabled(self, tiny_graph):
        eng = make_engine(tiny_graph, seed=0)
        rates = np.array([100.0, 0.0])
        rps = [eng.run_interval(generous(tiny_graph), rates).rps for _ in range(20)]
        # Pure Poisson: fluctuation stays within ~5 sigma of the mean.
        assert max(rps) < 100 + 5 * np.sqrt(100)
