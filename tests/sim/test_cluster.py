"""Cluster simulator wrapper tests."""

import numpy as np
import pytest

from repro.sim.cluster import (
    GCE_PLATFORM,
    LOCAL_PLATFORM,
    ClusterSimulator,
    PlatformSpec,
)
from repro.workload.generator import RequestMix, Workload
from repro.workload.patterns import ConstantLoad

from tests.conftest import make_tiny_cluster, make_tiny_graph


class TestStep:
    def test_step_appends_telemetry(self, tiny_cluster):
        stats = tiny_cluster.step()
        assert len(tiny_cluster.telemetry) == 1
        assert tiny_cluster.telemetry.latest is stats
        assert tiny_cluster.time == pytest.approx(1.0)

    def test_step_with_vector(self, tiny_cluster):
        alloc = np.full(tiny_cluster.n_tiers, 2.0)
        stats = tiny_cluster.step(alloc)
        np.testing.assert_allclose(stats.cpu_alloc, alloc)

    def test_step_with_partial_dict(self, tiny_cluster):
        before = tiny_cluster.current_alloc.copy()
        stats = tiny_cluster.step({"db": 3.0})
        db = tiny_cluster.graph.index["db"]
        assert stats.cpu_alloc[db] == pytest.approx(3.0)
        unchanged = [i for i in range(tiny_cluster.n_tiers) if i != db]
        np.testing.assert_allclose(stats.cpu_alloc[unchanged], before[unchanged])

    def test_step_none_keeps_current(self, tiny_cluster):
        first = tiny_cluster.step()
        second = tiny_cluster.step(None)
        np.testing.assert_allclose(second.cpu_alloc, first.cpu_alloc)

    def test_run_fixed_duration(self, tiny_cluster):
        log = tiny_cluster.run(5)
        assert len(log) == 5

    def test_reset(self, tiny_cluster):
        tiny_cluster.run(3)
        tiny_cluster.reset(seed=9)
        assert len(tiny_cluster.telemetry) == 0
        assert tiny_cluster.time == 0.0

    def test_reset_restores_initial_alloc(self, tiny_cluster):
        """Regression: back-to-back episodes used to start from whatever
        the previous manager last set, not the deploy-time allocation."""
        initial = tiny_cluster.current_alloc.copy()
        tiny_cluster.step(np.full(tiny_cluster.n_tiers, 1.0))
        assert not np.allclose(tiny_cluster.current_alloc, initial)
        tiny_cluster.reset()
        np.testing.assert_allclose(tiny_cluster.current_alloc, initial)

    def test_reset_restores_explicit_initial_alloc(self):
        graph = make_tiny_graph()
        mix = RequestMix.from_ratios({"Read": 1})
        cluster = ClusterSimulator(
            graph,
            Workload(graph, ConstantLoad(10), mix),
            initial_alloc=np.full(graph.n_tiers, 1.5),
        )
        cluster.step(np.full(graph.n_tiers, 3.0))
        cluster.reset(seed=4)
        np.testing.assert_allclose(cluster.current_alloc, 1.5)


class TestClipAlloc:
    def test_clips_to_tier_bounds(self, tiny_cluster):
        clipped = tiny_cluster.clip_alloc(np.full(tiny_cluster.n_tiers, 100.0))
        np.testing.assert_allclose(clipped, tiny_cluster.max_alloc)
        clipped = tiny_cluster.clip_alloc(np.full(tiny_cluster.n_tiers, 0.001))
        np.testing.assert_allclose(clipped, tiny_cluster.min_alloc)

    def test_scales_back_above_cluster_capacity(self):
        graph = make_tiny_graph()
        mix = RequestMix.from_ratios({"Read": 1})
        platform = PlatformSpec(name="small", total_cpu=10.0)
        cluster = ClusterSimulator(
            graph, Workload(graph, ConstantLoad(10), mix), platform=platform
        )
        clipped = cluster.clip_alloc(graph.max_alloc())
        assert clipped.sum() == pytest.approx(10.0)
        assert np.all(clipped >= cluster.min_alloc - 1e-9)

    def test_within_capacity_untouched(self, tiny_cluster):
        alloc = np.full(tiny_cluster.n_tiers, 1.0)
        np.testing.assert_allclose(tiny_cluster.clip_alloc(alloc), alloc)


class TestPlatforms:
    def test_gce_adds_replicas(self):
        graph = make_tiny_graph()
        mix = RequestMix.from_ratios({"Read": 1})
        cluster = ClusterSimulator(
            graph, Workload(graph, ConstantLoad(10), mix), platform=GCE_PLATFORM
        )
        assert all(
            t.replicas == GCE_PLATFORM.replica_factor for t in cluster.graph.tiers
        )

    def test_local_platform_default(self, tiny_cluster):
        assert tiny_cluster.platform is LOCAL_PLATFORM
        assert all(t.replicas == 1 for t in tiny_cluster.graph.tiers)

    def test_workload_rebound_to_replicated_graph(self):
        graph = make_tiny_graph()
        mix = RequestMix.from_ratios({"Read": 1})
        cluster = ClusterSimulator(
            graph, Workload(graph, ConstantLoad(10), mix), platform=GCE_PLATFORM
        )
        # Should step fine with the rebuilt graph.
        stats = cluster.step()
        assert stats.rps >= 0

    def test_initial_alloc_respects_bounds(self, tiny_cluster):
        assert np.all(tiny_cluster.current_alloc >= tiny_cluster.min_alloc)
        assert np.all(tiny_cluster.current_alloc <= tiny_cluster.max_alloc)

    def test_explicit_initial_alloc(self):
        graph = make_tiny_graph()
        mix = RequestMix.from_ratios({"Read": 1})
        cluster = ClusterSimulator(
            graph,
            Workload(graph, ConstantLoad(10), mix),
            initial_alloc=np.full(graph.n_tiers, 1.5),
        )
        np.testing.assert_allclose(cluster.current_alloc, 1.5)
