"""Behavior injection tests."""

import numpy as np
import pytest

from repro.sim.behaviors import Behavior, CapacityFault


class TestCapacityFault:
    def test_stall_windows(self):
        fault = CapacityFault(tier_index=1, period=60.0, duration=2.0)
        mult = fault.capacity_multiplier(0.5, 3)
        assert mult is not None
        assert mult[1] == pytest.approx(0.05)
        assert mult[0] == 1.0
        assert fault.capacity_multiplier(10.0, 3) is None
        # next period
        assert fault.capacity_multiplier(60.5, 3) is not None

    def test_start_offset_shifts_phase(self):
        fault = CapacityFault(tier_index=0, period=60.0, duration=2.0, start_offset=30.0)
        assert fault.capacity_multiplier(0.5, 2) is None
        assert fault.capacity_multiplier(30.5, 2) is not None

    def test_rss_spike_only_during_stall(self):
        fault = CapacityFault(
            tier_index=0, period=60.0, duration=2.0, rss_spike_mb=400.0
        )
        extra = fault.rss_extra_mb(1.0, 2)
        assert extra is not None and extra[0] == pytest.approx(400.0)
        assert fault.rss_extra_mb(30.0, 2) is None

    def test_no_rss_spike_when_zero(self):
        fault = CapacityFault(tier_index=0, period=60.0, duration=2.0)
        assert fault.rss_extra_mb(1.0, 2) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityFault(0, period=0.0, duration=1.0)
        with pytest.raises(ValueError):
            CapacityFault(0, period=10.0, duration=1.0, residual_capacity=0.0)
        with pytest.raises(ValueError):
            CapacityFault(0, period=10.0, duration=1.0, residual_capacity=1.5)

    def test_base_behavior_is_noop(self):
        behavior = Behavior()
        assert behavior.capacity_multiplier(0.0, 3) is None
        assert behavior.rss_extra_mb(0.0, 3) is None
        assert behavior.cache_extra_mb(0.0, 3) is None


class TestFaultInEngine:
    def test_fault_causes_periodic_latency_spike(self, tiny_graph):
        from repro.sim.engine import EngineConfig, QueueingEngine

        fault = CapacityFault(
            tier_index=tiny_graph.index["db"],
            period=30.0,
            duration=2.0,
            residual_capacity=0.02,
            start_offset=10.0,
        )
        cfg = EngineConfig(rate_cv=0.0, spike_prob=0.0, capacity_jitter=0.0)
        eng = QueueingEngine(tiny_graph, cfg, seed=0, behaviors=(fault,))
        alloc = tiny_graph.max_alloc()
        rates = np.array([200.0, 20.0])
        p99 = [eng.run_interval(alloc, rates).p99_ms for _ in range(20)]
        calm = np.median(p99[:9])
        spike = max(p99[10:13])
        assert spike > 3 * calm
